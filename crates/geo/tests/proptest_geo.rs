//! Property-based tests of the geographic substrate.

use lead_geo::distance::{equirectangular_m, haversine_m};
use lead_geo::{BoundingBox, GpsPoint, GridIndex, LocalProjection};
use proptest::prelude::*;

/// City-scale coordinates around Nantong.
fn city_lat() -> impl Strategy<Value = f64> {
    31.7..32.3f64
}
fn city_lng() -> impl Strategy<Value = f64> {
    120.6..121.2f64
}

proptest! {
    #[test]
    fn haversine_is_nonnegative_and_symmetric(
        a in (city_lat(), city_lng()),
        b in (city_lat(), city_lng()),
    ) {
        let d1 = haversine_m(a.0, a.1, b.0, b.1);
        let d2 = haversine_m(b.0, b.1, a.0, a.1);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn haversine_identity_of_indiscernibles(p in (city_lat(), city_lng())) {
        prop_assert_eq!(haversine_m(p.0, p.1, p.0, p.1), 0.0);
    }

    #[test]
    fn haversine_triangle_inequality(
        a in (city_lat(), city_lng()),
        b in (city_lat(), city_lng()),
        c in (city_lat(), city_lng()),
    ) {
        let ab = haversine_m(a.0, a.1, b.0, b.1);
        let bc = haversine_m(b.0, b.1, c.0, c.1);
        let ac = haversine_m(a.0, a.1, c.0, c.1);
        prop_assert!(ac <= ab + bc + 1e-6);
    }

    #[test]
    fn equirectangular_tracks_haversine_at_city_scale(
        a in (city_lat(), city_lng()),
        b in (city_lat(), city_lng()),
    ) {
        let h = haversine_m(a.0, a.1, b.0, b.1);
        let e = equirectangular_m(a.0, a.1, b.0, b.1);
        // < 0.1 % relative error within a ~60 km extent.
        prop_assert!((h - e).abs() <= h.max(1.0) * 1e-3, "h={} e={}", h, e);
    }

    #[test]
    fn equirectangular_tracks_haversine_across_the_antimeridian(
        lat in -60.0..60.0f64,
        // Longitudes in a ±0.3° band around the dateline, on either side.
        e1 in 179.7..180.0f64,
        w2 in -180.0..-179.7f64,
    ) {
        let h = haversine_m(lat, e1, lat + 0.01, w2);
        let e = equirectangular_m(lat, e1, lat + 0.01, w2);
        // City-scale separation (< ~70 km): the approximation must agree.
        prop_assert!(h < 70_000.0, "pair not city-scale: {} m", h);
        prop_assert!((h - e).abs() <= h.max(1.0) * 1e-3, "h={} e={}", h, e);
    }

    #[test]
    fn grid_index_matches_linear_scan(
        items in prop::collection::vec((city_lat(), city_lng()), 1..80),
        q in (city_lat(), city_lng()),
        radius in 10.0..5_000.0f64,
    ) {
        let indexed: Vec<(f64, f64, usize)> = items
            .iter()
            .enumerate()
            .map(|(i, &(lat, lng))| (lat, lng, i))
            .collect();
        let grid = GridIndex::build(indexed, 250.0);
        let mut got: Vec<usize> = grid
            .within_radius(q.0, q.1, radius)
            .into_iter()
            .map(|(i, _)| *i)
            .collect();
        got.sort_unstable();
        let mut expect: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, &(lat, lng))| haversine_m(q.0, q.1, lat, lng) <= radius)
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn grid_count_equals_within_len(
        items in prop::collection::vec((city_lat(), city_lng()), 1..60),
        q in (city_lat(), city_lng()),
        radius in 10.0..3_000.0f64,
    ) {
        let indexed: Vec<(f64, f64, ())> =
            items.iter().map(|&(lat, lng)| (lat, lng, ())).collect();
        let grid = GridIndex::build(indexed, 400.0);
        prop_assert_eq!(
            grid.count_within(q.0, q.1, radius),
            grid.within_radius(q.0, q.1, radius).len()
        );
    }

    #[test]
    fn bbox_from_points_contains_all(
        pts in prop::collection::vec((city_lat(), city_lng()), 1..50),
    ) {
        let gps: Vec<GpsPoint> = pts
            .iter()
            .enumerate()
            .map(|(i, &(lat, lng))| GpsPoint::new(lat, lng, i as i64))
            .collect();
        let bbox = BoundingBox::from_points(&gps).unwrap();
        for p in &gps {
            prop_assert!(bbox.contains(p.lat, p.lng));
        }
    }

    #[test]
    fn projection_roundtrip(
        x in -40_000.0..40_000.0f64,
        y in -40_000.0..40_000.0f64,
    ) {
        let proj = LocalProjection::new(32.0, 120.9);
        let (lat, lng) = proj.to_latlng(x, y);
        let (x2, y2) = proj.to_xy(lat, lng);
        prop_assert!((x - x2).abs() < 1e-5);
        prop_assert!((y - y2).abs() < 1e-5);
    }

    #[test]
    fn projection_preserves_distance(
        a in (-20_000.0..20_000.0f64, -20_000.0..20_000.0f64),
        b in (-20_000.0..20_000.0f64, -20_000.0..20_000.0f64),
    ) {
        let proj = LocalProjection::new(32.0, 120.9);
        let (alat, alng) = proj.to_latlng(a.0, a.1);
        let (blat, blng) = proj.to_latlng(b.0, b.1);
        let euclid = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        let sphere = haversine_m(alat, alng, blat, blng);
        // Equirectangular projection error at ≤ 60 km scales: < 0.2 %.
        prop_assert!((euclid - sphere).abs() <= euclid.max(1.0) * 2e-3);
    }
}
