//! Fixture-driven CSV ingestion tests: pathological feeds a real deployment
//! produces (clock skew, truncated trailers) must fail with diagnostics that
//! point at the offending input, never at fabricated positions.

use lead_geo::csv::{read_trajectories, CsvError, HEADER};

/// A truck whose device clock jumps backward mid-day (row 6 reports 28961 s
/// after row 5's 29161 s) — the non-increasing-timestamp error path.
const CLOCK_SKEW: &str = include_str!("data/clock_skew.csv");

#[test]
fn clock_skew_fixture_fails_on_the_offending_line() {
    let err = read_trajectories(&mut CLOCK_SKEW.as_bytes()).unwrap_err();
    match &err {
        CsvError::Parse(line, msg) => {
            assert_eq!(*line, 6, "1-based file line of the backward jump");
            assert!(
                msg.contains("non-increasing timestamp 28961 after 29161"),
                "{msg}"
            );
        }
        other => panic!("expected Parse error, got {other:?}"),
    }
    // The rendered message names the line, and no message anywhere in this
    // module may leak a sentinel line number (the old final-flush bug
    // printed `line 18446744073709551615`).
    let rendered = err.to_string();
    assert!(rendered.starts_with("line 6:"), "{rendered}");
    assert!(!rendered.contains("18446744073709551615"), "{rendered}");
}

#[test]
fn end_of_input_errors_name_end_of_input_not_a_line_number() {
    let rendered = CsvError::EndOfInput("truck 7 has no points".into()).to_string();
    assert_eq!(rendered, "end of input: truck 7 has no points");
}

#[test]
fn fixture_prefix_before_the_skew_parses_cleanly() {
    // Dropping the skewed row (and everything after it) yields a valid feed:
    // the error is about ordering, not about the values themselves.
    let clean: String = CLOCK_SKEW
        .lines()
        .filter(|l| !l.starts_with("7,28961"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert!(clean.starts_with(HEADER));
    let got = read_trajectories(&mut clean.as_bytes()).unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].0, 7);
    assert_eq!(got[0].1.len(), 5);
}
