//! A local metric projection around a reference coordinate.
//!
//! The synthetic city generator plans truck movement in a flat meter-space
//! (x east, y north) and converts to WGS84 only when emitting GPS points; the
//! projection error at city scale (< 100 km) is centimeters, far below GPS
//! noise.

use crate::distance::{meters_to_lat_deg, meters_to_lng_deg};

/// An equirectangular local projection anchored at a reference point.
#[derive(Debug, Clone, Copy)]
pub struct LocalProjection {
    ref_lat: f64,
    ref_lng: f64,
    lat_per_m: f64,
    lng_per_m: f64,
}

impl LocalProjection {
    /// Anchors a projection at `(ref_lat, ref_lng)`.
    ///
    /// # Panics
    /// Panics in debug builds within 0.1° of a pole.
    pub fn new(ref_lat: f64, ref_lng: f64) -> Self {
        Self {
            ref_lat,
            ref_lng,
            lat_per_m: meters_to_lat_deg(1.0),
            lng_per_m: meters_to_lng_deg(1.0, ref_lat),
        }
    }

    /// The anchor as `(lat, lng)`.
    pub fn reference(&self) -> (f64, f64) {
        (self.ref_lat, self.ref_lng)
    }

    /// Converts local `(x_east_m, y_north_m)` meters to `(lat, lng)` degrees.
    pub fn to_latlng(&self, x_m: f64, y_m: f64) -> (f64, f64) {
        (
            self.ref_lat + y_m * self.lat_per_m,
            self.ref_lng + x_m * self.lng_per_m,
        )
    }

    /// Converts `(lat, lng)` degrees to local `(x_east_m, y_north_m)` meters.
    pub fn to_xy(&self, lat: f64, lng: f64) -> (f64, f64) {
        (
            (lng - self.ref_lng) / self.lng_per_m,
            (lat - self.ref_lat) / self.lat_per_m,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::haversine_m;

    #[test]
    fn roundtrip_is_identity() {
        let proj = LocalProjection::new(32.0, 120.9);
        for &(x, y) in &[(0.0, 0.0), (1500.0, -2300.0), (-40000.0, 35000.0)] {
            let (lat, lng) = proj.to_latlng(x, y);
            let (x2, y2) = proj.to_xy(lat, lng);
            assert!((x - x2).abs() < 1e-6, "x {x} vs {x2}");
            assert!((y - y2).abs() < 1e-6, "y {y} vs {y2}");
        }
    }

    #[test]
    fn one_km_east_is_one_km() {
        let proj = LocalProjection::new(32.0, 120.9);
        let (lat, lng) = proj.to_latlng(1000.0, 0.0);
        let d = haversine_m(32.0, 120.9, lat, lng);
        assert!((d - 1000.0).abs() < 1.0, "got {d}");
    }

    #[test]
    fn one_km_north_is_one_km() {
        let proj = LocalProjection::new(32.0, 120.9);
        let (lat, lng) = proj.to_latlng(0.0, 1000.0);
        let d = haversine_m(32.0, 120.9, lat, lng);
        assert!((d - 1000.0).abs() < 1.0, "got {d}");
    }

    #[test]
    fn reference_maps_to_origin() {
        let proj = LocalProjection::new(32.0, 120.9);
        let (x, y) = proj.to_xy(32.0, 120.9);
        assert_eq!((x, y), (0.0, 0.0));
        assert_eq!(proj.reference(), (32.0, 120.9));
    }
}
