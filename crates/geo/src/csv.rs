//! CSV import/export for trajectories.
//!
//! Real deployments receive truck GPS feeds as delimited text; this module
//! reads and writes the minimal interchange format
//! `truck_id,timestamp_s,lat,lng` (header required, one point per line,
//! points of one truck grouped and chronological).

use crate::point::{GpsPoint, Trajectory};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing trajectory CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line (1-based line number and description).
    Parse(usize, String),
    /// A structural error only detectable once the input ends (e.g. the
    /// final trajectory flush), where no line number exists to point at.
    EndOfInput(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Parse(line, m) => write!(f, "line {line}: {m}"),
            CsvError::EndOfInput(m) => write!(f, "end of input: {m}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// The expected header line.
pub const HEADER: &str = "truck_id,timestamp_s,lat,lng";

/// Writes trajectories as CSV, one `(truck_id, trajectory)` pair after
/// another.
pub fn write_trajectories<W: Write>(
    items: &[(u32, &Trajectory)],
    w: &mut W,
) -> std::io::Result<()> {
    writeln!(w, "{HEADER}")?;
    for (truck_id, tr) in items {
        for p in tr.points() {
            writeln!(w, "{truck_id},{},{:.7},{:.7}", p.t, p.lat, p.lng)?;
        }
    }
    Ok(())
}

/// Streaming CSV reader: an iterator yielding one `(truck_id, Trajectory)`
/// at a time, so arbitrarily large feeds can be consumed without
/// materializing the whole dataset.
///
/// Consecutive rows with the same `truck_id` form one trajectory; a change
/// of id yields the previous one. Within one trajectory timestamps must be
/// strictly increasing; rows are otherwise free-form CSV without quoting
/// (coordinates and ids contain no commas). After yielding an error the
/// iterator is fused: further calls return `None`.
pub struct CsvReader<R: BufRead> {
    lines: std::iter::Enumerate<std::io::Lines<R>>,
    pending: Option<(u32, Vec<GpsPoint>)>,
    done: bool,
}

impl<R: BufRead> CsvReader<R> {
    /// Opens a reader, consuming and validating the header line.
    ///
    /// # Errors
    ///
    /// [`CsvError::Parse`] on empty input or a wrong header line,
    /// [`CsvError::Io`] when the header cannot be read.
    pub fn new(r: R) -> Result<Self, CsvError> {
        let mut lines = r.lines().enumerate();
        let (_, header) = lines
            .next()
            .ok_or_else(|| CsvError::Parse(1, "empty input".into()))?;
        let header = header?;
        if header.trim() != HEADER {
            return Err(CsvError::Parse(1, format!("expected header `{HEADER}`")));
        }
        Ok(Self {
            lines,
            pending: None,
            done: false,
        })
    }

    /// Parses one body row into its truck id and point.
    fn parse_row(line: &str, lineno: usize) -> Result<(u32, GpsPoint), CsvError> {
        let mut parts = line.split(',');
        let id: u32 = parse_field(&mut parts, lineno, "truck_id")?;
        let t: i64 = parse_field(&mut parts, lineno, "timestamp_s")?;
        let lat: f64 = parse_field(&mut parts, lineno, "lat")?;
        let lng: f64 = parse_field(&mut parts, lineno, "lng")?;
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lng) {
            return Err(CsvError::Parse(
                lineno,
                format!("coordinates out of range: {lat},{lng}"),
            ));
        }
        Ok((id, GpsPoint::new(lat, lng, t)))
    }

    /// Emits a completed trajectory, or the structural error for an empty
    /// one. `lineno` is the row that triggered the flush; `None` at
    /// end-of-input, where no line exists to blame.
    fn flush(
        id: u32,
        points: Vec<GpsPoint>,
        lineno: Option<usize>,
    ) -> Result<(u32, Trajectory), CsvError> {
        if points.is_empty() {
            let msg = format!("truck {id} has no points");
            return Err(match lineno {
                Some(line) => CsvError::Parse(line, msg),
                None => CsvError::EndOfInput(msg),
            });
        }
        Ok((id, Trajectory::new(points)))
    }
}

impl<R: BufRead> Iterator for CsvReader<R> {
    type Item = Result<(u32, Trajectory), CsvError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            let Some((idx, line)) = self.lines.next() else {
                // The final flush happens after the last line was consumed;
                // there is no "current line" to blame, so the error (if
                // any) names end-of-input instead of a fabricated number.
                self.done = true;
                let (id, points) = self.pending.take()?;
                return Some(Self::flush(id, points, None));
            };
            let lineno = idx + 1;
            let line = match line {
                Ok(l) => l,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e.into()));
                }
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let (id, point) = match Self::parse_row(trimmed, lineno) {
                Ok(v) => v,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            match &mut self.pending {
                Some((cur, points)) if *cur == id => {
                    if let Some(last) = points.last() {
                        if last.t >= point.t {
                            self.done = true;
                            return Some(Err(CsvError::Parse(
                                lineno,
                                format!("non-increasing timestamp {} after {}", point.t, last.t),
                            )));
                        }
                    }
                    points.push(point);
                }
                Some(_) => {
                    if let Some((prev_id, prev_points)) = self.pending.replace((id, vec![point])) {
                        let flushed = Self::flush(prev_id, prev_points, Some(lineno));
                        if flushed.is_err() {
                            self.done = true;
                        }
                        return Some(flushed);
                    }
                }
                None => self.pending = Some((id, vec![point])),
            }
        }
    }
}

/// Reads trajectories written by [`write_trajectories`] (or any conforming
/// producer), collecting the streaming [`CsvReader`] into a `Vec`.
pub fn read_trajectories<R: BufRead>(r: &mut R) -> Result<Vec<(u32, Trajectory)>, CsvError> {
    CsvReader::new(r)?.collect()
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    lineno: usize,
    what: &str,
) -> Result<T, CsvError>
where
    T::Err: fmt::Display,
{
    let tok = parts
        .next()
        .ok_or_else(|| CsvError::Parse(lineno, format!("missing field `{what}`")))?;
    tok.trim()
        .parse()
        .map_err(|e| CsvError::Parse(lineno, format!("bad {what} `{tok}`: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(points: &[(f64, f64, i64)]) -> Trajectory {
        Trajectory::new(
            points
                .iter()
                .map(|&(lat, lng, t)| GpsPoint::new(lat, lng, t))
                .collect(),
        )
    }

    #[test]
    fn roundtrip_two_trucks() {
        let a = tr(&[(32.0, 120.9, 0), (32.01, 120.91, 120)]);
        let b = tr(&[
            (31.9, 120.8, 60),
            (31.91, 120.81, 180),
            (31.92, 120.82, 300),
        ]);
        let mut buf = Vec::new();
        write_trajectories(&[(7, &a), (9, &b)], &mut buf).unwrap();
        let got = read_trajectories(&mut buf.as_slice()).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, 7);
        assert_eq!(got[0].1.len(), 2);
        assert_eq!(got[1].0, 9);
        assert_eq!(got[1].1.points()[2].t, 300);
        // Coordinates survive at 1e-7 degrees (~1 cm).
        assert!((got[0].1.points()[0].lat - 32.0).abs() < 1e-7);
    }

    #[test]
    fn alternating_ids_split_trajectories() {
        let csv = format!("{HEADER}\n1,0,32.0,120.9\n2,0,32.0,120.9\n1,120,32.0,120.9\n");
        let got = read_trajectories(&mut csv.as_bytes()).unwrap();
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn bad_header_rejected() {
        let err = read_trajectories(&mut "a,b,c\n".as_bytes()).unwrap_err();
        assert!(matches!(err, CsvError::Parse(1, _)), "{err}");
    }

    #[test]
    fn non_increasing_timestamps_rejected() {
        let csv = format!("{HEADER}\n1,100,32.0,120.9\n1,100,32.0,120.9\n");
        let err = read_trajectories(&mut csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("non-increasing"), "{err}");
    }

    #[test]
    fn out_of_range_coordinates_rejected() {
        let csv = format!("{HEADER}\n1,0,95.0,120.9\n");
        assert!(read_trajectories(&mut csv.as_bytes()).is_err());
    }

    #[test]
    fn missing_field_rejected() {
        let csv = format!("{HEADER}\n1,0,32.0\n");
        let err = read_trajectories(&mut csv.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("missing field"), "{err}");
    }

    #[test]
    fn empty_body_is_ok() {
        let csv = format!("{HEADER}\n");
        assert!(read_trajectories(&mut csv.as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn iterator_yields_trajectories_incrementally() {
        let csv = format!("{HEADER}\n1,0,32.0,120.9\n1,60,32.0,120.9\n2,0,31.0,120.0\n");
        let mut it = CsvReader::new(csv.as_bytes()).unwrap();
        let (id, t) = it.next().unwrap().unwrap();
        assert_eq!((id, t.len()), (1, 2));
        let (id, t) = it.next().unwrap().unwrap();
        assert_eq!((id, t.len()), (2, 1));
        assert!(it.next().is_none());
    }

    #[test]
    fn iterator_is_fused_after_an_error() {
        let csv = format!("{HEADER}\n1,100,32.0,120.9\n1,50,32.0,120.9\n1,200,32.0,120.9\n");
        let mut it = CsvReader::new(csv.as_bytes()).unwrap();
        assert!(it.next().unwrap().is_err());
        assert!(it.next().is_none());
        assert!(it.next().is_none());
    }

    #[test]
    fn iterator_reports_body_line_numbers() {
        // The bad row is physical line 3 (header is line 1).
        let csv = format!("{HEADER}\n1,0,32.0,120.9\n1,60,oops,120.9\n");
        let mut it = CsvReader::new(csv.as_bytes()).unwrap();
        match it.next().unwrap() {
            Err(CsvError::Parse(3, msg)) => assert!(msg.contains("bad lat"), "{msg}"),
            other => panic!("expected Parse(3, ..), got {other:?}"),
        }
    }

    #[test]
    fn iterator_matches_collecting_wrapper() {
        let csv = format!(
            "{HEADER}\n5,0,32.0,120.9\n5,60,32.1,120.8\n6,10,31.0,120.0\n6,70,31.1,120.1\n"
        );
        let streamed: Vec<_> = CsvReader::new(csv.as_bytes())
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        let collected = read_trajectories(&mut csv.as_bytes()).unwrap();
        assert_eq!(streamed, collected);
    }
}
