//! Geographic primitives for the LEAD hazardous-chemicals-transportation framework.
//!
//! This crate is the spatial substrate shared by every other crate in the
//! workspace: GPS points and trajectories ([`point`]), great-circle and fast
//! approximate distances ([`distance`]), bounding boxes ([`bbox`]), a uniform
//! grid index for radius queries ([`grid`]), a local metric projection
//! ([`local`]), and CSV trajectory interchange ([`csv`]).
//!
//! All distances are in **meters**, all durations in **seconds**, and all
//! coordinates are WGS84 latitude/longitude in **degrees**, matching the
//! conventions of the paper's Nantong dataset.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bbox;
pub mod csv;
pub mod distance;
pub mod grid;
pub mod local;
pub mod point;

pub use bbox::BoundingBox;
pub use distance::{equirectangular_m, haversine_m, EARTH_RADIUS_M};
pub use grid::GridIndex;
pub use local::LocalProjection;
pub use point::{GpsPoint, Trajectory};
