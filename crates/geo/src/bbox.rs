//! Axis-aligned bounding boxes over WGS84 coordinates.

use crate::point::GpsPoint;

/// An axis-aligned lat/lng bounding box.
///
/// Used to delimit the synthetic city extent and to size the [`crate::GridIndex`].
/// Does not handle antimeridian wrapping: the LEAD deployment area (a single
/// Chinese prefecture) never crosses it, and the synthetic city inherits that
/// assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundingBox {
    /// Southernmost latitude in degrees.
    pub min_lat: f64,
    /// Westernmost longitude in degrees.
    pub min_lng: f64,
    /// Northernmost latitude in degrees.
    pub max_lat: f64,
    /// Easternmost longitude in degrees.
    pub max_lng: f64,
}

impl BoundingBox {
    /// Creates a bounding box.
    ///
    /// # Panics
    /// Panics if `min_lat > max_lat` or `min_lng > max_lng`.
    pub fn new(min_lat: f64, min_lng: f64, max_lat: f64, max_lng: f64) -> Self {
        assert!(
            min_lat <= max_lat && min_lng <= max_lng,
            "inverted bounding box"
        );
        Self {
            min_lat,
            min_lng,
            max_lat,
            max_lng,
        }
    }

    /// The smallest box containing every point, or `None` for an empty slice.
    pub fn from_points(points: &[GpsPoint]) -> Option<Self> {
        let first = points.first()?;
        let mut b = BoundingBox::new(first.lat, first.lng, first.lat, first.lng);
        for p in &points[1..] {
            b.min_lat = b.min_lat.min(p.lat);
            b.max_lat = b.max_lat.max(p.lat);
            b.min_lng = b.min_lng.min(p.lng);
            b.max_lng = b.max_lng.max(p.lng);
        }
        Some(b)
    }

    /// Whether `(lat, lng)` lies inside (boundary inclusive).
    pub fn contains(&self, lat: f64, lng: f64) -> bool {
        lat >= self.min_lat && lat <= self.max_lat && lng >= self.min_lng && lng <= self.max_lng
    }

    /// Latitude span in degrees.
    pub fn lat_span(&self) -> f64 {
        self.max_lat - self.min_lat
    }

    /// Longitude span in degrees.
    pub fn lng_span(&self) -> f64 {
        self.max_lng - self.min_lng
    }

    /// Box grown by `margin_deg` degrees on every side.
    pub fn expanded(&self, margin_deg: f64) -> Self {
        BoundingBox::new(
            self.min_lat - margin_deg,
            self.min_lng - margin_deg,
            self.max_lat + margin_deg,
            self.max_lng + margin_deg,
        )
    }

    /// Center of the box as `(lat, lng)`.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lng + self.max_lng) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            GpsPoint::new(32.0, 120.9, 0),
            GpsPoint::new(32.5, 120.5, 60),
            GpsPoint::new(31.8, 121.1, 120),
        ];
        let b = BoundingBox::from_points(&pts).unwrap();
        assert_eq!(b.min_lat, 31.8);
        assert_eq!(b.max_lat, 32.5);
        assert_eq!(b.min_lng, 120.5);
        assert_eq!(b.max_lng, 121.1);
        for p in &pts {
            assert!(b.contains(p.lat, p.lng));
        }
    }

    #[test]
    fn from_points_empty_is_none() {
        assert!(BoundingBox::from_points(&[]).is_none());
    }

    #[test]
    fn contains_boundary_inclusive() {
        let b = BoundingBox::new(31.0, 120.0, 32.0, 121.0);
        assert!(b.contains(31.0, 120.0));
        assert!(b.contains(32.0, 121.0));
        assert!(!b.contains(32.0001, 121.0));
    }

    #[test]
    fn expanded_grows_every_side() {
        let b = BoundingBox::new(31.0, 120.0, 32.0, 121.0).expanded(0.1);
        assert_eq!(b.min_lat, 30.9);
        assert_eq!(b.max_lng, 121.1);
    }

    #[test]
    fn center_is_midpoint() {
        let b = BoundingBox::new(31.0, 120.0, 33.0, 122.0);
        assert_eq!(b.center(), (32.0, 121.0));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_box_panics() {
        let _ = BoundingBox::new(33.0, 120.0, 31.0, 122.0);
    }
}
