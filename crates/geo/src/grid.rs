//! A uniform grid spatial index for radius queries.
//!
//! LEAD issues two kinds of radius queries in hot paths:
//! - POI feature extraction counts POIs within **100 m** of every GPS point of
//!   every candidate trajectory (Section IV-A);
//! - the SP-R baseline searches the whitelist within **500 m** of every stay
//!   point (Section VI-A).
//!
//! A uniform grid keyed on lat/lng cells turns both from `O(|POIs|)` scans
//! into constant-neighborhood lookups. The `poi_index` benchmark in
//! `lead-bench` measures the gain over a linear scan.

use crate::bbox::BoundingBox;
use crate::distance::{haversine_m, meters_to_lat_deg, meters_to_lng_deg};

/// A static point set indexed by a uniform lat/lng grid, supporting
/// `within_radius` queries.
///
/// Items are `(lat, lng, payload)` triples. The grid is built once and is
/// immutable afterwards — both use sites index static databases (the POI
/// database, the SP-R whitelist).
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    bbox: BoundingBox,
    cell_m: f64,
    cell_lat_deg: f64,
    cell_lng_deg: f64,
    cols: usize,
    rows: usize,
    /// `cells[row * cols + col]` holds indexes into `items`.
    cells: Vec<Vec<u32>>,
    items: Vec<(f64, f64, T)>,
}

impl<T> GridIndex<T> {
    /// Builds an index over `items` with square-ish cells of `cell_m` meters.
    ///
    /// `cell_m` should be on the order of the query radius: queries then touch
    /// at most a 3×3 (or slightly larger) neighborhood of cells.
    ///
    /// # Panics
    /// Panics if `cell_m <= 0` or any item falls outside a sane latitude band
    /// (|lat| ≥ 89.9°).
    pub fn build(items: Vec<(f64, f64, T)>, cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        let pts: Vec<crate::GpsPoint> = items
            .iter()
            .map(|(lat, lng, _)| crate::GpsPoint::new(*lat, *lng, 0))
            .collect();
        let bbox = BoundingBox::from_points(&pts)
            .unwrap_or_else(|| BoundingBox::new(0.0, 0.0, 0.0, 0.0))
            // A tiny margin keeps max-edge points strictly inside.
            .expanded(1e-9);
        assert!(
            bbox.min_lat.abs() < 89.9 && bbox.max_lat.abs() < 89.9,
            "grid index does not support polar latitudes"
        );
        let cell_lat_deg = meters_to_lat_deg(cell_m);
        let ref_lat = bbox.max_lat.abs().max(bbox.min_lat.abs());
        let cell_lng_deg = meters_to_lng_deg(cell_m, ref_lat.min(89.0));
        let cols = ((bbox.lng_span() / cell_lng_deg).ceil() as usize).max(1);
        let rows = ((bbox.lat_span() / cell_lat_deg).ceil() as usize).max(1);
        let mut cells = vec![Vec::new(); rows * cols];
        for (i, (lat, lng, _)) in items.iter().enumerate() {
            let (r, c) = Self::cell_of(&bbox, cell_lat_deg, cell_lng_deg, rows, cols, *lat, *lng);
            cells[r * cols + c].push(i as u32);
        }
        Self {
            bbox,
            cell_m,
            cell_lat_deg,
            cell_lng_deg,
            cols,
            rows,
            cells,
            items,
        }
    }

    fn cell_of(
        bbox: &BoundingBox,
        cell_lat_deg: f64,
        cell_lng_deg: f64,
        rows: usize,
        cols: usize,
        lat: f64,
        lng: f64,
    ) -> (usize, usize) {
        let r =
            (((lat - bbox.min_lat) / cell_lat_deg).floor() as isize).clamp(0, rows as isize - 1);
        let c =
            (((lng - bbox.min_lng) / cell_lng_deg).floor() as isize).clamp(0, cols as isize - 1);
        (r as usize, c as usize)
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// All items as `(lat, lng, payload)` triples, in insertion order.
    pub fn items(&self) -> &[(f64, f64, T)] {
        &self.items
    }

    /// Calls `f(lat, lng, payload, distance_m)` for every item within
    /// `radius_m` meters of `(lat, lng)` (boundary inclusive).
    pub fn for_each_within<'a, F: FnMut(f64, f64, &'a T, f64)>(
        &'a self,
        lat: f64,
        lng: f64,
        radius_m: f64,
        mut f: F,
    ) {
        if self.items.is_empty() || radius_m < 0.0 {
            return;
        }
        // Cells are ~cell_m meters on each side, so the radius spans this many
        // whole cells in every direction (+1 absorbs the approximation slack
        // of the degree↔meter conversion across the city extent).
        let span = (radius_m / self.cell_m).ceil() as isize + 1;
        let (dlat_cells, dlng_cells) = (span, span);
        let (r0, c0) = Self::cell_of(
            &self.bbox,
            self.cell_lat_deg,
            self.cell_lng_deg,
            self.rows,
            self.cols,
            lat,
            lng,
        );
        let rlo = (r0 as isize - dlat_cells).max(0) as usize;
        let rhi = ((r0 as isize + dlat_cells) as usize).min(self.rows - 1);
        let clo = (c0 as isize - dlng_cells).max(0) as usize;
        let chi = ((c0 as isize + dlng_cells) as usize).min(self.cols - 1);
        for r in rlo..=rhi {
            for c in clo..=chi {
                for &idx in &self.cells[r * self.cols + c] {
                    let (ilat, ilng, ref payload) = self.items[idx as usize];
                    let d = haversine_m(lat, lng, ilat, ilng);
                    if d <= radius_m {
                        f(ilat, ilng, payload, d);
                    }
                }
            }
        }
    }

    /// Collects the payloads (with distances) of all items within `radius_m`.
    pub fn within_radius(&self, lat: f64, lng: f64, radius_m: f64) -> Vec<(&T, f64)> {
        let mut out = Vec::new();
        self.for_each_within(lat, lng, radius_m, |_, _, t, d| out.push((t, d)));
        out
    }

    /// Counts items within `radius_m` of `(lat, lng)`.
    pub fn count_within(&self, lat: f64, lng: f64, radius_m: f64) -> usize {
        let mut n = 0;
        self.for_each_within(lat, lng, radius_m, |_, _, _, _| n += 1);
        n
    }

    /// The nearest item to `(lat, lng)` within `radius_m`, if any.
    pub fn nearest_within(&self, lat: f64, lng: f64, radius_m: f64) -> Option<(&T, f64)> {
        let mut best: Option<(&T, f64)> = None;
        self.for_each_within(lat, lng, radius_m, |_, _, t, d| match best {
            Some((_, bd)) if bd <= d => {}
            _ => best = Some((t, d)),
        });
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::meters_to_lng_deg;

    fn grid_200m_points() -> Vec<(f64, f64, usize)> {
        // A 10x10 grid of points 200 m apart around Nantong.
        let dlat = meters_to_lat_deg(200.0);
        let dlng = meters_to_lng_deg(200.0, 32.0);
        let mut v = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                v.push((32.0 + dlat * i as f64, 120.9 + dlng * j as f64, i * 10 + j));
            }
        }
        v
    }

    #[test]
    fn within_radius_matches_linear_scan() {
        let items = grid_200m_points();
        let idx = GridIndex::build(items.clone(), 150.0);
        for &(qlat, qlng, radius) in &[
            (32.0005, 120.9005, 250.0),
            (32.001, 120.905, 500.0),
            (32.0, 120.9, 0.0),
            (31.99, 120.89, 100.0),
        ] {
            let mut expect: Vec<usize> = items
                .iter()
                .filter(|(lat, lng, _)| haversine_m(qlat, qlng, *lat, *lng) <= radius)
                .map(|&(_, _, id)| id)
                .collect();
            let mut got: Vec<usize> = idx
                .within_radius(qlat, qlng, radius)
                .into_iter()
                .map(|(id, _)| *id)
                .collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "q=({qlat},{qlng}) r={radius}");
        }
    }

    #[test]
    fn count_within_counts() {
        let idx = GridIndex::build(grid_200m_points(), 150.0);
        // Radius 250 m around the first grid point covers itself + 2 axis
        // neighbors at 200 m (diagonal is ~283 m away).
        let n = idx.count_within(32.0, 120.9, 250.0);
        assert_eq!(n, 3);
    }

    #[test]
    fn nearest_within_returns_closest() {
        let idx = GridIndex::build(grid_200m_points(), 150.0);
        let (id, d) = idx.nearest_within(32.00001, 120.90001, 1000.0).unwrap();
        assert_eq!(*id, 0);
        assert!(d < 5.0);
    }

    #[test]
    fn nearest_within_none_when_out_of_range() {
        let idx = GridIndex::build(grid_200m_points(), 150.0);
        assert!(idx.nearest_within(40.0, 110.0, 100.0).is_none());
    }

    #[test]
    fn empty_index_is_safe() {
        let idx: GridIndex<u8> = GridIndex::build(Vec::new(), 100.0);
        assert!(idx.is_empty());
        assert_eq!(idx.count_within(32.0, 120.9, 100.0), 0);
        assert!(idx.nearest_within(32.0, 120.9, 100.0).is_none());
    }

    #[test]
    fn single_item_index() {
        let idx = GridIndex::build(vec![(32.0, 120.9, 7u32)], 100.0);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.count_within(32.0, 120.9, 1.0), 1);
        assert_eq!(idx.count_within(33.0, 120.9, 1.0), 0);
    }

    #[test]
    fn duplicate_positions_are_all_returned() {
        let items = vec![(32.0, 120.9, 1u8), (32.0, 120.9, 2), (32.0, 120.9, 3)];
        let idx = GridIndex::build(items, 100.0);
        assert_eq!(idx.count_within(32.0, 120.9, 1.0), 3);
    }

    #[test]
    fn negative_radius_yields_nothing() {
        let idx = GridIndex::build(vec![(32.0, 120.9, ())], 100.0);
        assert_eq!(idx.count_within(32.0, 120.9, -5.0), 0);
    }

    #[test]
    fn boundary_inclusive() {
        let dlat = meters_to_lat_deg(100.0);
        let idx = GridIndex::build(vec![(32.0 + dlat, 120.9, 1u8)], 50.0);
        // The item sits ~100 m north of the query point.
        let n = idx.count_within(32.0, 120.9, 100.5);
        assert_eq!(n, 1);
        let n = idx.count_within(32.0, 120.9, 99.0);
        assert_eq!(n, 0);
    }
}
