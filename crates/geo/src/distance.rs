//! Great-circle and fast approximate distances on the WGS84 sphere.

/// Mean Earth radius in meters (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Great-circle distance between two WGS84 coordinates, in meters, using the
/// haversine formula.
///
/// Numerically stable for both very small and antipodal separations; this is
/// the `distance(p_i, p_k)` used by the paper's stay-point definition
/// (Definition 2).
pub fn haversine_m(lat1: f64, lng1: f64, lat2: f64, lng2: f64) -> f64 {
    let (phi1, phi2) = (lat1.to_radians(), lat2.to_radians());
    let dphi = (lat2 - lat1).to_radians();
    let dlambda = (lng2 - lng1).to_radians();
    let a = (dphi / 2.0).sin().powi(2) + phi1.cos() * phi2.cos() * (dlambda / 2.0).sin().powi(2);
    // Clamp guards tiny negative values / >1 from floating-point rounding.
    let a = a.clamp(0.0, 1.0);
    2.0 * EARTH_RADIUS_M * a.sqrt().asin()
}

/// Fast equirectangular approximation of the distance in meters.
///
/// Within a city-scale extent (tens of kilometers) the error versus haversine
/// is far below GPS noise, so hot loops (stay-point extraction over millions
/// of points, grid-index candidate filtering) may use this instead. The
/// `distance` benchmark in `lead-bench` quantifies the speedup.
///
/// The longitude delta is normalized into (−180°, 180°], so a pair
/// straddling the antimeridian (179.9° and −179.9°) measures the ~22 km that
/// actually separate the points, not a spurious near-circumference span —
/// haversine gets this for free from its trigonometry, and the two must
/// agree wherever both are valid.
pub fn equirectangular_m(lat1: f64, lng1: f64, lat2: f64, lng2: f64) -> f64 {
    let mean_lat = ((lat1 + lat2) / 2.0).to_radians();
    let x = wrap_deg(lng2 - lng1).to_radians() * mean_lat.cos();
    let y = (lat2 - lat1).to_radians();
    EARTH_RADIUS_M * (x * x + y * y).sqrt()
}

/// Normalizes a longitude difference in degrees into (−180°, 180°].
fn wrap_deg(dlng: f64) -> f64 {
    let w = (dlng + 180.0).rem_euclid(360.0) - 180.0;
    if w == -180.0 {
        180.0
    } else {
        w
    }
}

/// Degrees of latitude spanning `meters` on the meridian.
pub fn meters_to_lat_deg(meters: f64) -> f64 {
    meters / EARTH_RADIUS_M * 180.0 / std::f64::consts::PI
}

/// Degrees of longitude spanning `meters` along the parallel at `lat` degrees.
///
/// # Panics
/// Panics in debug builds if `lat` is within 0.1° of a pole, where a
/// longitude span is ill-defined.
pub fn meters_to_lng_deg(meters: f64, lat: f64) -> f64 {
    debug_assert!(lat.abs() < 89.9, "longitude span undefined near the poles");
    meters_to_lat_deg(meters) / lat.to_radians().cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_for_identical_coordinates() {
        assert_eq!(haversine_m(32.0, 120.9, 32.0, 120.9), 0.0);
        assert_eq!(equirectangular_m(32.0, 120.9, 32.0, 120.9), 0.0);
    }

    #[test]
    fn one_degree_latitude_is_about_111_km() {
        let d = haversine_m(32.0, 120.9, 33.0, 120.9);
        assert!((d - 111_195.0).abs() < 200.0, "got {d}");
    }

    #[test]
    fn known_pair_nantong_to_shanghai() {
        // Nantong (32.01, 120.86) to Shanghai (31.23, 121.47): ~105 km.
        let d = haversine_m(32.01, 120.86, 31.23, 121.47);
        assert!((d - 104_000.0).abs() < 3_000.0, "got {d}");
    }

    #[test]
    fn symmetric() {
        let d1 = haversine_m(32.0, 120.9, 31.5, 121.2);
        let d2 = haversine_m(31.5, 121.2, 32.0, 120.9);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn equirectangular_close_to_haversine_at_city_scale() {
        // 500 m and 5 km separations around Nantong.
        for (dlat, dlng) in [(0.001, 0.002), (0.02, 0.03), (0.0, 0.005), (0.004, 0.0)] {
            let h = haversine_m(32.0, 120.9, 32.0 + dlat, 120.9 + dlng);
            let e = equirectangular_m(32.0, 120.9, 32.0 + dlat, 120.9 + dlng);
            assert!((h - e).abs() / h.max(1.0) < 1e-4, "h={h} e={e}");
        }
    }

    #[test]
    fn antipodal_is_half_circumference() {
        let d = haversine_m(0.0, 0.0, 0.0, 180.0);
        let half = std::f64::consts::PI * EARTH_RADIUS_M;
        assert!((d - half).abs() < 1.0);
    }

    #[test]
    fn equirectangular_agrees_with_haversine_across_the_antimeridian() {
        // Pairs straddling ±180° longitude, a few km apart on the ground.
        // Pre-fix the unwrapped Δlng of ~359.8° reported ~40,000 km.
        for (lat, lng1, lng2) in [
            (32.0, 179.9, -179.9),
            (32.0, -179.95, 179.99),
            (0.0, 179.99, -179.99),
            (-45.0, 179.9, -179.97),
        ] {
            let h = haversine_m(lat, lng1, lat, lng2);
            let e = equirectangular_m(lat, lng1, lat, lng2);
            assert!(h < 40_000.0, "test pair not city-scale: {h} m");
            assert!((h - e).abs() / h.max(1.0) < 1e-3, "h={h} e={e}");
        }
        // And the direction of travel must not matter (up to the ~1e-13°
        // rounding asymmetry of `rem_euclid` on either side of the wrap).
        let a = equirectangular_m(32.0, 179.9, 32.01, -179.9);
        let b = equirectangular_m(32.01, -179.9, 32.0, 179.9);
        assert!((a - b).abs() < 1e-6, "a={a} b={b}");
    }

    #[test]
    fn wrap_deg_normalizes_into_half_open_range() {
        assert_eq!(wrap_deg(0.0), 0.0);
        assert!((wrap_deg(359.8) - -0.2).abs() < 1e-9);
        assert!((wrap_deg(-359.8) - 0.2).abs() < 1e-9);
        assert_eq!(wrap_deg(180.0), 180.0);
        assert_eq!(wrap_deg(-180.0), 180.0);
        assert_eq!(wrap_deg(540.0), 180.0);
        assert!((wrap_deg(720.1) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn meters_to_degrees_roundtrip() {
        let dlat = meters_to_lat_deg(500.0);
        let d = haversine_m(32.0, 120.9, 32.0 + dlat, 120.9);
        assert!((d - 500.0).abs() < 0.5, "got {d}");

        let dlng = meters_to_lng_deg(500.0, 32.0);
        let d = haversine_m(32.0, 120.9, 32.0, 120.9 + dlng);
        assert!((d - 500.0).abs() < 0.5, "got {d}");
    }
}
