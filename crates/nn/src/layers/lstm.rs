//! Long short-term memory recurrence (Hochreiter & Schmidhuber 1997), the
//! paper's Equation (2).

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};
use crate::tape::{Graph, Var};
use rand::Rng;

/// A single-direction LSTM.
///
/// Gate layout in the fused weight matrices is `[i | f | g | o]` (input,
/// forget, cell candidate, output). The forget-gate bias is initialised to 1,
/// the standard trick that lets gradients flow through long sequences early in
/// training.
#[derive(Debug, Clone)]
pub struct Lstm {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl Lstm {
    /// Registers an LSTM with `in_dim` inputs and `hidden` units under `name`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx = ps.register(
            format!("{name}.wx"),
            xavier_uniform(rng, in_dim, 4 * hidden),
        );
        let wh = ps.register(
            format!("{name}.wh"),
            xavier_uniform(rng, hidden, 4 * hidden),
        );
        let mut bias = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            bias.set(0, c, 1.0); // forget gate
        }
        let b = ps.register(format!("{name}.b"), bias);
        Self {
            wx,
            wh,
            b,
            in_dim,
            hidden,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Zero-valued initial `(h, c)` state.
    pub fn zero_state(&self, g: &mut Graph) -> (Var, Var) {
        let h = g.constant(Matrix::zeros(1, self.hidden));
        let c = g.constant(Matrix::zeros(1, self.hidden));
        (h, c)
    }

    /// The four per-gate bias slices `(i, f, g, o)`, recorded once so every
    /// step of a sequence shares the same nodes.
    fn bias_slices(&self, g: &mut Graph) -> (Var, Var, Var, Var) {
        let b = g.param(self.b);
        let hsz = self.hidden;
        (
            g.slice_cols(b, 0, hsz),
            g.slice_cols(b, hsz, 2 * hsz),
            g.slice_cols(b, 2 * hsz, 3 * hsz),
            g.slice_cols(b, 3 * hsz, 4 * hsz),
        )
    }

    /// One recurrence step with pre-sliced gate biases; the gates run
    /// through the fused bias-then-activation kernels, which compute
    /// `(x·Wx + h·Wh) + b` in the same per-element order the broadcast
    /// formulation did.
    fn step_with_bias(
        &self,
        g: &mut Graph,
        x: Var,
        h: Var,
        c: Var,
        bias: (Var, Var, Var, Var),
    ) -> (Var, Var) {
        debug_assert_eq!(g.value(x).shape(), (1, self.in_dim), "lstm input shape");
        let (bi, bf, bg, bo) = bias;
        let wx = g.param(self.wx);
        let wh = g.param(self.wh);
        let gx = g.matmul(x, wx);
        let gh = g.matmul(h, wh);
        let pre = g.add(gx, gh);
        let hsz = self.hidden;
        let i_pre = g.slice_cols(pre, 0, hsz);
        let f_pre = g.slice_cols(pre, hsz, 2 * hsz);
        let g_pre = g.slice_cols(pre, 2 * hsz, 3 * hsz);
        let o_pre = g.slice_cols(pre, 3 * hsz, 4 * hsz);
        let i = g.sigmoid_gate(i_pre, bi);
        let f = g.sigmoid_gate(f_pre, bf);
        let cand = g.tanh_gate(g_pre, bg);
        let o = g.sigmoid_gate(o_pre, bo);
        let fc = g.mul(f, c);
        let ig = g.mul(i, cand);
        let c_new = g.add(fc, ig);
        let c_act = g.tanh(c_new);
        let h_new = g.mul(o, c_act);
        (h_new, c_new)
    }

    /// One recurrence step: consumes `x` (1×in_dim) and state, returns the new
    /// `(h, c)`.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var, c: Var) -> (Var, Var) {
        let bias = self.bias_slices(g);
        self.step_with_bias(g, x, h, c, bias)
    }

    /// Runs the recurrence over a sequence of 1×in_dim nodes, returning every
    /// hidden state (one per step).
    ///
    /// # Panics
    /// Panics if `xs` is empty: the LEAD data model guarantees every stay
    /// point and move point sequence is non-empty.
    pub fn forward(&self, g: &mut Graph, xs: &[Var]) -> Vec<Var> {
        assert!(!xs.is_empty(), "LSTM over an empty sequence");
        let bias = self.bias_slices(g);
        let (mut h, mut c) = self.zero_state(g);
        let mut hs = Vec::with_capacity(xs.len());
        for &x in xs {
            let (h2, c2) = self.step_with_bias(g, x, h, c, bias);
            h = h2;
            c = c2;
            hs.push(h);
        }
        hs
    }

    /// Runs the recurrence feeding the *same* input vector at every one of
    /// `steps` steps — the paper's decompression operator (Equation (5)),
    /// which unrolls a compressed vector back into a sequence.
    pub fn forward_repeated(&self, g: &mut Graph, x: Var, steps: usize) -> Vec<Var> {
        assert!(steps > 0, "decompression over zero steps");
        let bias = self.bias_slices(g);
        let (mut h, mut c) = self.zero_state(g);
        let mut hs = Vec::with_capacity(steps);
        for _ in 0..steps {
            let (h2, c2) = self.step_with_bias(g, x, h, c, bias);
            h = h2;
            c = c2;
            hs.push(h);
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(g: &mut Graph, t: usize, d: usize) -> Vec<Var> {
        (0..t)
            .map(|i| {
                g.constant(Matrix::from_fn(1, d, |_, c| {
                    ((i * d + c) as f32 * 0.13).sin() * 0.5
                }))
            })
            .collect()
    }

    #[test]
    fn forward_emits_one_hidden_per_step() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 3, 5);
        let mut g = Graph::new(&ps);
        let xs = seq(&mut g, 7, 3);
        let hs = lstm.forward(&mut g, &xs);
        assert_eq!(hs.len(), 7);
        for &h in &hs {
            assert_eq!(g.value(h).shape(), (1, 5));
        }
    }

    #[test]
    fn hidden_values_bounded_by_one() {
        // h = o·tanh(c), both factors in (-1, 1)·(0, 1).
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(13);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 2, 4);
        let mut g = Graph::new(&ps);
        let xs = seq(&mut g, 20, 2);
        let hs = lstm.forward(&mut g, &xs);
        for &h in &hs {
            assert!(g.value(h).data().iter().all(|v| v.abs() < 1.0));
        }
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(17);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 2, 3);
        let b = ps.value(lstm.b);
        assert_eq!(b.slice_cols(3, 6).data(), &[1.0, 1.0, 1.0]);
        assert_eq!(b.slice_cols(0, 3).data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(19);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 2, 3);
        let mut g = Graph::new(&ps);
        let _ = lstm.forward(&mut g, &[]);
    }

    #[test]
    fn forward_repeated_emits_requested_steps() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(23);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 4, 3);
        let mut g = Graph::new(&ps);
        let x = g.constant(Matrix::full(1, 4, 0.3));
        let hs = lstm.forward_repeated(&mut g, x, 5);
        assert_eq!(hs.len(), 5);
        // Steps differ because the state evolves.
        assert_ne!(g.value(hs[0]).data(), g.value(hs[4]).data());
    }

    #[test]
    fn gradcheck_through_time() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(29);
        let lstm = Lstm::new(&mut ps, &mut rng, "l", 2, 3);
        for target in [lstm.wx, lstm.wh, lstm.b] {
            let l = lstm.clone();
            gradcheck(&mut ps.clone(), target, 1e-2, 3e-2, move |g| {
                let xs = seq(g, 4, 2);
                let hs = l.forward(g, &xs);
                let last = *hs.last().unwrap();
                let sq = g.mul(last, last);
                g.sum_all(sq)
            });
        }
    }
}
