//! Neural layers used by the LEAD architectures.
//!
//! Layers are plain structs of [`crate::ParamId`] handles; they register their
//! parameters in a [`crate::ParamSet`] at construction and replay their
//! computation onto a [`crate::Graph`] per forward pass. Sequences are slices
//! of 1×d nodes — the paper runs everything at batch size 1, so a "sequence"
//! is simply the list of per-timestep row vectors.

mod attention;
mod bilstm;
mod gru;
mod linear;
mod lstm;

pub use attention::SelfAttention;
pub use bilstm::{BiLstm, StackedBiLstm};
pub use gru::Gru;
pub use linear::Linear;
pub use lstm::Lstm;
