//! Fully connected layer.

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};
use crate::tape::{Graph, Var};
use rand::Rng;

/// A fully connected layer `y = x·W + b`.
///
/// `x` may be a T×in matrix (the bias broadcasts over rows), which is how the
/// paper's decompression operators map a whole hidden-state matrix through
/// shared fully connected layers (Equation (6)). Both the product and the
/// bias broadcast run on the dispatched SIMD kernels (`matmul_acc`/`axpy`)
/// in forward and backward passes.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a `in_dim → out_dim` layer under `name`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = ps.register(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        let b = ps.register(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Applies the layer to a (rows × in_dim) node.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        debug_assert_eq!(g.value(x).cols(), self.in_dim, "linear input width");
        let w = g.param(self.w);
        let b = g.param(self.b);
        let xw = g.matmul(x, w);
        g.add_row_broadcast(xw, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let l = Linear::new(&mut ps, &mut rng, "l", 4, 2);
        let mut g = Graph::new(&ps);
        let x = g.constant(Matrix::full(3, 4, 0.5));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), (3, 2));
        assert_eq!((l.in_dim(), l.out_dim()), (4, 2));
    }

    #[test]
    fn zero_weights_give_bias() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::zeros(2, 2));
        let b = ps.register("b", Matrix::from_vec(1, 2, vec![1.5, -0.5]));
        let l = Linear {
            w,
            b,
            in_dim: 2,
            out_dim: 2,
        };
        let mut g = Graph::new(&ps);
        let x = g.constant(Matrix::full(1, 2, 9.0));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).data(), &[1.5, -0.5]);
    }

    #[test]
    fn gradients_flow_to_both_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let l = Linear::new(&mut ps, &mut rng, "l", 3, 2);
        let x = Matrix::from_fn(2, 3, |r, c| 0.1 * (r * 3 + c) as f32 + 0.1);
        for target in [l.w, l.b] {
            let lc = l.clone();
            let xc = x.clone();
            gradcheck(&mut ps.clone(), target, 1e-2, 2e-2, move |g| {
                let xv = g.constant(xc.clone());
                let y = lc.forward(g, xv);
                let t = g.tanh(y);
                g.sum_all(t)
            });
        }
    }
}
