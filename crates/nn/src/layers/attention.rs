//! The self-attention aggregation used inside the paper's compression
//! operators (Section IV-B, Equation (3)).
//!
//! The mechanism is query-from-last-hidden attention: the LSTM's final hidden
//! state forms the query, all hidden states form the keys, and the values are
//! the hidden states themselves. The attention weights say how much each step
//! contributes to the aggregated vector — the paper's remedy for long-range
//! feature sequences.

use crate::init::xavier_uniform;
use crate::params::{ParamId, ParamSet};
use crate::tape::{Graph, Var};
use rand::Rng;

/// Last-hidden-query self-attention over a hidden-state sequence.
#[derive(Debug, Clone)]
pub struct SelfAttention {
    wq: ParamId,
    bq: ParamId,
    wk: ParamId,
    bk: ParamId,
    hidden: usize,
    key_dim: usize,
}

impl SelfAttention {
    /// Registers attention over `hidden`-wide states with `key_dim`-wide
    /// queries/keys under `name`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        hidden: usize,
        key_dim: usize,
    ) -> Self {
        let wq = ps.register(format!("{name}.wq"), xavier_uniform(rng, hidden, key_dim));
        let bq = ps.register(
            format!("{name}.bq"),
            crate::matrix::Matrix::zeros(1, key_dim),
        );
        let wk = ps.register(format!("{name}.wk"), xavier_uniform(rng, hidden, key_dim));
        let bk = ps.register(
            format!("{name}.bk"),
            crate::matrix::Matrix::zeros(1, key_dim),
        );
        Self {
            wq,
            bq,
            wk,
            bk,
            hidden,
            key_dim,
        }
    }

    /// Width of the aggregated output (equals the hidden width).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Aggregates a sequence of 1×hidden states into a single 1×hidden vector.
    ///
    /// Per Equation (3): `q = h_last·Wq + bq`, `K = H·Wk + bk`,
    /// `s = softmax(q·Kᵀ/√d_k)`, output `= s·H`. The scoring product uses
    /// the transpose-free `matmul_bt` op (one dispatched blocked `dot` per
    /// step) instead of materialising `Kᵀ`.
    ///
    /// # Panics
    /// Panics if `hs` is empty.
    pub fn aggregate(&self, g: &mut Graph, hs: &[Var]) -> Var {
        assert!(!hs.is_empty(), "attention over an empty sequence");
        let h_mat = g.concat_rows(hs); // T × hidden
                                       // lint: allow(panic, panic-path): hs non-empty is asserted at entry (documented # Panics)
        let last = *hs.last().expect("non-empty");
        let wq = g.param(self.wq);
        let bq = g.param(self.bq);
        let wk = g.param(self.wk);
        let bk = g.param(self.bk);
        let q0 = g.matmul(last, wq);
        let q = g.add_row_broadcast(q0, bq); // 1 × key_dim
        let k0 = g.matmul(h_mat, wk);
        let k = g.add_row_broadcast(k0, bk); // T × key_dim
        let scores0 = g.matmul_bt(q, k); // 1 × T, q·Kᵀ without the transpose
        let scores = g.scale(
            scores0,
            1.0 / crate::num::exact_usize_f32(self.key_dim).sqrt(),
        );
        let s = g.softmax_rows(scores); // 1 × T
        g.matmul(s, h_mat) // 1 × hidden
    }

    /// The attention distribution over steps (for diagnostics/tests).
    pub fn weights(&self, g: &mut Graph, hs: &[Var]) -> Var {
        assert!(!hs.is_empty(), "attention over an empty sequence");
        let h_mat = g.concat_rows(hs);
        // lint: allow(panic, panic-path): hs non-empty is asserted at entry (documented # Panics)
        let last = *hs.last().expect("non-empty");
        let wq = g.param(self.wq);
        let bq = g.param(self.bq);
        let wk = g.param(self.wk);
        let bk = g.param(self.bk);
        let q0 = g.matmul(last, wq);
        let q = g.add_row_broadcast(q0, bq);
        let k0 = g.matmul(h_mat, wk);
        let k = g.add_row_broadcast(k0, bk);
        let scores0 = g.matmul_bt(q, k);
        let scores = g.scale(
            scores0,
            1.0 / crate::num::exact_usize_f32(self.key_dim).sqrt(),
        );
        g.softmax_rows(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::testing::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn states(g: &mut Graph, t: usize, h: usize) -> Vec<Var> {
        (0..t)
            .map(|i| {
                g.constant(Matrix::from_fn(1, h, |_, c| {
                    ((i * 3 + c) as f32 * 0.41).sin() * 0.7
                }))
            })
            .collect()
    }

    #[test]
    fn aggregate_output_shape() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(71);
        let att = SelfAttention::new(&mut ps, &mut rng, "a", 4, 4);
        let mut g = Graph::new(&ps);
        let hs = states(&mut g, 6, 4);
        let out = att.aggregate(&mut g, &hs);
        assert_eq!(g.value(out).shape(), (1, 4));
    }

    #[test]
    fn weights_form_distribution() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(73);
        let att = SelfAttention::new(&mut ps, &mut rng, "a", 4, 4);
        let mut g = Graph::new(&ps);
        let hs = states(&mut g, 5, 4);
        let w = att.weights(&mut g, &hs);
        let m = g.value(w);
        assert_eq!(m.shape(), (1, 5));
        assert!((m.sum() - 1.0).abs() < 1e-5);
        assert!(m.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn aggregate_is_convex_combination() {
        // The output must lie inside the convex hull of the hidden states:
        // for a single repeated state, the output equals that state.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(79);
        let att = SelfAttention::new(&mut ps, &mut rng, "a", 3, 3);
        let mut g = Graph::new(&ps);
        let s = Matrix::from_vec(1, 3, vec![0.2, -0.4, 0.6]);
        let hs: Vec<Var> = (0..4).map(|_| g.constant(s.clone())).collect();
        let out = att.aggregate(&mut g, &hs);
        for (a, b) in g.value(out).data().iter().zip(s.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn singleton_sequence_weight_is_one() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(83);
        let att = SelfAttention::new(&mut ps, &mut rng, "a", 3, 3);
        let mut g = Graph::new(&ps);
        let hs = states(&mut g, 1, 3);
        let w = att.weights(&mut g, &hs);
        assert!((g.value(w).at(0, 0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gradcheck_attention_params() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(89);
        let att = SelfAttention::new(&mut ps, &mut rng, "a", 3, 3);
        for target in [att.wq, att.wk, att.bq, att.bk] {
            let a = att.clone();
            gradcheck(&mut ps.clone(), target, 1e-2, 3e-2, move |g| {
                let hs = states(g, 4, 3);
                let out = a.aggregate(g, &hs);
                let sq = g.mul(out, out);
                g.sum_all(sq)
            });
        }
    }
}
