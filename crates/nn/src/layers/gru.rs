//! Gated recurrent unit (Chung et al. 2014), used by the SP-GRU baseline.

use crate::init::xavier_uniform;
use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};
use crate::tape::{Graph, Var};
use rand::Rng;

/// A single-direction GRU.
///
/// Gate layout in the fused weight matrices is `[z | r | n]` (update, reset,
/// candidate). The candidate uses the "v3" formulation
/// `n = tanh(x·Wxn + r ⊙ (h·Whn) + bn)`, matching the reference
/// implementation evaluated by Chung et al.
#[derive(Debug, Clone)]
pub struct Gru {
    wx: ParamId,
    wh: ParamId,
    b: ParamId,
    in_dim: usize,
    hidden: usize,
}

impl Gru {
    /// Registers a GRU with `in_dim` inputs and `hidden` units under `name`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let wx = ps.register(
            format!("{name}.wx"),
            xavier_uniform(rng, in_dim, 3 * hidden),
        );
        let wh = ps.register(
            format!("{name}.wh"),
            xavier_uniform(rng, hidden, 3 * hidden),
        );
        let b = ps.register(format!("{name}.b"), Matrix::zeros(1, 3 * hidden));
        Self {
            wx,
            wh,
            b,
            in_dim,
            hidden,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// The three per-gate bias slices `(z, r, n)`, recorded once so every
    /// step of a sequence shares the same nodes.
    fn bias_slices(&self, g: &mut Graph) -> (Var, Var, Var) {
        let b = g.param(self.b);
        let hsz = self.hidden;
        (
            g.slice_cols(b, 0, hsz),
            g.slice_cols(b, hsz, 2 * hsz),
            g.slice_cols(b, 2 * hsz, 3 * hsz),
        )
    }

    /// One recurrence step with pre-sliced gate biases. Each gate is the
    /// canonical `act(x·Wx + h·Wh + b)` form, evaluated by the fused
    /// bias-then-activation kernels (the bias joins last, inside the gate —
    /// the textbook formula, rather than folded into `x·Wx` up front).
    fn step_with_bias(&self, g: &mut Graph, x: Var, h: Var, bias: (Var, Var, Var)) -> Var {
        debug_assert_eq!(g.value(x).shape(), (1, self.in_dim), "gru input shape");
        let (bz, br, bn) = bias;
        let wx = g.param(self.wx);
        let wh = g.param(self.wh);
        let gx = g.matmul(x, wx);
        let gh = g.matmul(h, wh);
        let hsz = self.hidden;
        let zx = g.slice_cols(gx, 0, hsz);
        let rx = g.slice_cols(gx, hsz, 2 * hsz);
        let nx = g.slice_cols(gx, 2 * hsz, 3 * hsz);
        let zh = g.slice_cols(gh, 0, hsz);
        let rh = g.slice_cols(gh, hsz, 2 * hsz);
        let nh = g.slice_cols(gh, 2 * hsz, 3 * hsz);
        let z_pre = g.add(zx, zh);
        let z = g.sigmoid_gate(z_pre, bz);
        let r_pre = g.add(rx, rh);
        let r = g.sigmoid_gate(r_pre, br);
        let rnh = g.mul(r, nh);
        let n_pre = g.add(nx, rnh);
        let n = g.tanh_gate(n_pre, bn);
        let omz = g.one_minus(z);
        let new_part = g.mul(omz, n);
        let keep_part = g.mul(z, h);
        g.add(new_part, keep_part)
    }

    /// One recurrence step: consumes `x` (1×in_dim) and `h`, returns new `h`.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        let bias = self.bias_slices(g);
        self.step_with_bias(g, x, h, bias)
    }

    /// Runs the recurrence over a sequence of 1×in_dim nodes, returning every
    /// hidden state.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn forward(&self, g: &mut Graph, xs: &[Var]) -> Vec<Var> {
        assert!(!xs.is_empty(), "GRU over an empty sequence");
        let bias = self.bias_slices(g);
        let mut h = g.constant(Matrix::zeros(1, self.hidden));
        let mut hs = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.step_with_bias(g, x, h, bias);
            hs.push(h);
        }
        hs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(g: &mut Graph, t: usize, d: usize) -> Vec<Var> {
        (0..t)
            .map(|i| {
                g.constant(Matrix::from_fn(1, d, |_, c| {
                    ((i * d + c) as f32 * 0.29).cos() * 0.4
                }))
            })
            .collect()
    }

    #[test]
    fn forward_emits_one_hidden_per_step() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(31);
        let gru = Gru::new(&mut ps, &mut rng, "g", 3, 6);
        let mut g = Graph::new(&ps);
        let xs = seq(&mut g, 5, 3);
        let hs = gru.forward(&mut g, &xs);
        assert_eq!(hs.len(), 5);
        for &h in &hs {
            assert_eq!(g.value(h).shape(), (1, 6));
        }
    }

    #[test]
    fn hidden_values_bounded() {
        // h is a convex combination of tanh outputs, so |h| < 1.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(37);
        let gru = Gru::new(&mut ps, &mut rng, "g", 2, 4);
        let mut g = Graph::new(&ps);
        let xs = seq(&mut g, 30, 2);
        for &h in &gru.forward(&mut g, &xs) {
            assert!(g.value(h).data().iter().all(|v| v.abs() < 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(41);
        let gru = Gru::new(&mut ps, &mut rng, "g", 2, 3);
        let mut g = Graph::new(&ps);
        let _ = gru.forward(&mut g, &[]);
    }

    #[test]
    fn gradcheck_through_time() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(43);
        let gru = Gru::new(&mut ps, &mut rng, "g", 2, 3);
        for target in [gru.wx, gru.wh, gru.b] {
            let l = gru.clone();
            gradcheck(&mut ps.clone(), target, 1e-2, 3e-2, move |g| {
                let xs = seq(g, 4, 2);
                let hs = l.forward(g, &xs);
                let last = *hs.last().unwrap();
                let sq = g.mul(last, last);
                g.sum_all(sq)
            });
        }
    }
}
