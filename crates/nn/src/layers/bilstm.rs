//! Bidirectional and stacked-bidirectional LSTMs (the paper's detectors,
//! Section V-B).

use crate::layers::{Linear, Lstm};
use crate::params::ParamSet;
use crate::tape::{Graph, Var};
use rand::Rng;

/// A bidirectional LSTM layer.
///
/// Per the paper's Equation (9): a forward LSTM reads the sequence
/// left-to-right, a backward LSTM right-to-left, the per-step hidden pairs are
/// concatenated and passed through a fully connected layer so the output width
/// equals the single-direction hidden width (keeping stacked layers uniform).
/// Both directions inherit the fused, SIMD-dispatched gate kernels from
/// [`Lstm`], and the merge layer's product/bias run on the same backends.
#[derive(Debug, Clone)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
    merge: Linear,
    hidden: usize,
}

impl BiLstm {
    /// Registers a BiLSTM with `in_dim` inputs and `hidden` units per
    /// direction under `name`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
    ) -> Self {
        let fwd = Lstm::new(ps, rng, &format!("{name}.fwd"), in_dim, hidden);
        let bwd = Lstm::new(ps, rng, &format!("{name}.bwd"), in_dim, hidden);
        let merge = Linear::new(ps, rng, &format!("{name}.merge"), 2 * hidden, hidden);
        Self {
            fwd,
            bwd,
            merge,
            hidden,
        }
    }

    /// Hidden width per direction (equal to the output width).
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs both directions over `xs` and merges per step; output length
    /// equals input length, each node 1×hidden.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn forward(&self, g: &mut Graph, xs: &[Var]) -> Vec<Var> {
        assert!(!xs.is_empty(), "BiLSTM over an empty sequence");
        let hs_fwd = self.fwd.forward(g, xs);
        let rev: Vec<Var> = xs.iter().rev().copied().collect();
        let mut hs_bwd = self.bwd.forward(g, &rev);
        hs_bwd.reverse();
        hs_fwd
            .iter()
            .zip(hs_bwd.iter())
            .map(|(&hf, &hb)| {
                let cat = g.concat_cols(&[hf, hb]);
                self.merge.forward(g, cat)
            })
            .collect()
    }
}

/// A stack of [`BiLstm`] layers (the paper uses `L = 4`), each consuming the
/// previous layer's per-step outputs. Deeper layers extract sequential
/// features at coarser timescales (Pascanu et al. 2013).
#[derive(Debug, Clone)]
pub struct StackedBiLstm {
    layers: Vec<BiLstm>,
}

impl StackedBiLstm {
    /// Registers `num_layers` stacked BiLSTM layers; the first maps
    /// `in_dim → hidden`, the rest `hidden → hidden`.
    ///
    /// # Panics
    /// Panics if `num_layers == 0`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
        num_layers: usize,
    ) -> Self {
        assert!(num_layers > 0, "stacked BiLSTM needs at least one layer");
        let layers = (0..num_layers)
            .map(|i| {
                let d = if i == 0 { in_dim } else { hidden };
                BiLstm::new(ps, rng, &format!("{name}.l{i}"), d, hidden)
            })
            .collect();
        Self { layers }
    }

    /// Number of stacked layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Output width.
    pub fn hidden(&self) -> usize {
        self.layers.first().map_or(0, |l| l.hidden())
    }

    /// Runs the whole stack; output length equals input length.
    pub fn forward(&self, g: &mut Graph, xs: &[Var]) -> Vec<Var> {
        let mut seq: Vec<Var> = xs.to_vec();
        for layer in &self.layers {
            seq = layer.forward(g, &seq);
        }
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq(g: &mut Graph, t: usize, d: usize) -> Vec<Var> {
        (0..t)
            .map(|i| {
                g.constant(Matrix::from_fn(1, d, |_, c| {
                    ((i + c) as f32 * 0.37).sin() * 0.6
                }))
            })
            .collect()
    }

    #[test]
    fn bilstm_preserves_length_and_width() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(47);
        let bl = BiLstm::new(&mut ps, &mut rng, "b", 3, 5);
        let mut g = Graph::new(&ps);
        let xs = seq(&mut g, 6, 3);
        let ys = bl.forward(&mut g, &xs);
        assert_eq!(ys.len(), 6);
        for &y in &ys {
            assert_eq!(g.value(y).shape(), (1, 5));
        }
    }

    #[test]
    fn bilstm_sees_the_future() {
        // Changing the *last* input must change the *first* output (the
        // backward direction carries future context) — a plain LSTM would not.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(53);
        let bl = BiLstm::new(&mut ps, &mut rng, "b", 2, 4);

        let run = |last_val: f32| {
            let mut g = Graph::new(&ps);
            let mut xs = seq(&mut g, 5, 2);
            let replaced = g.constant(Matrix::full(1, 2, last_val));
            *xs.last_mut().unwrap() = replaced;
            let ys = bl.forward(&mut g, &xs);
            g.value(ys[0]).clone()
        };
        assert_ne!(run(0.9).data(), run(-0.9).data());
    }

    #[test]
    fn singleton_sequence_works() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(59);
        let bl = BiLstm::new(&mut ps, &mut rng, "b", 2, 3);
        let mut g = Graph::new(&ps);
        let xs = seq(&mut g, 1, 2);
        let ys = bl.forward(&mut g, &xs);
        assert_eq!(ys.len(), 1);
    }

    #[test]
    fn stacked_runs_all_layers() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(61);
        let st = StackedBiLstm::new(&mut ps, &mut rng, "s", 3, 4, 4);
        assert_eq!(st.num_layers(), 4);
        let mut g = Graph::new(&ps);
        let xs = seq(&mut g, 5, 3);
        let ys = st.forward(&mut g, &xs);
        assert_eq!(ys.len(), 5);
        for &y in &ys {
            assert_eq!(g.value(y).shape(), (1, 4));
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_layers_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(67);
        let _ = StackedBiLstm::new(&mut ps, &mut rng, "s", 3, 4, 0);
    }
}
