//! From-scratch neural-network substrate for the LEAD framework.
//!
//! The LEAD paper trains three neural systems — a hierarchical LSTM
//! autoencoder with self-attention, two stacked-BiLSTM detectors, and
//! GRU/LSTM baselines. No deep-learning dependency is available (or needed:
//! all models are tiny, hidden sizes 32–128, batch size 1), so this crate
//! implements the full stack:
//!
//! - [`matrix`] — dense row-major `f32` matrices with the kernels the tape needs;
//! - [`tape`] — eager reverse-mode autodiff ([`Graph`], [`Var`]);
//! - [`params`] — parameter arena ([`ParamSet`]) and gradient buffers;
//! - [`init`] — Xavier/uniform initialisation;
//! - [`layers`] — `Linear`, `Lstm`, `Gru`, `BiLstm`, `StackedBiLstm`,
//!   `SelfAttention`, mirroring the operators of the paper;
//! - [`optim`] — Adam(W) (the paper's optimiser) and SGD;
//! - [`io`] — lossless text serialisation of trained parameters;
//! - [`par`] — scoped-thread data-parallel map with a determinism contract;
//! - [`simd`] — runtime-dispatched SIMD kernels (the workspace's only
//!   sanctioned-unsafe module) with a bit-identity contract against a safe
//!   scalar reference;
//! - [`train`] — batch-accumulation loop helpers and early stopping;
//! - [`testing`] — finite-difference gradient checking.
//!
//! ```
//! use lead_nn::{Graph, Matrix, ParamSet};
//! use lead_nn::optim::Adam;
//!
//! // Fit y = x·W to a target with a few Adam steps.
//! let mut params = ParamSet::new();
//! let w = params.register("w", Matrix::zeros(2, 1));
//! let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
//! let target = Matrix::from_vec(1, 1, vec![3.0]);
//! let mut adam = Adam::new(&params, 0.1);
//! for _ in 0..200 {
//!     let mut g = Graph::new(&params);
//!     let xv = g.constant(x.clone());
//!     let wv = g.param(w);
//!     let y = g.matmul(xv, wv);
//!     let loss = g.mse_loss(y, &target);
//!     let grads = g.backward(loss);
//!     adam.step(&mut params, &grads);
//! }
//! let fit = x.matmul(params.value(w));
//! assert!((fit.at(0, 0) - 3.0).abs() < 0.05);
//! ```

// `deny` (not `forbid`) so the one sanctioned module below can re-open
// unsafe under the lint gate's R10 contract; everywhere else in the crate
// `unsafe` still fails the build.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod init;
pub mod io;
pub mod layers;
pub mod matrix;
pub mod num;
pub mod optim;
pub mod par;
pub mod params;
#[allow(unsafe_code)]
pub mod simd;
pub mod tape;
pub mod testing;
pub mod train;

pub use matrix::Matrix;
pub use params::{Gradients, ParamId, ParamSet};
pub use tape::{Graph, Var};
