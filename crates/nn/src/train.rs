//! Training-loop helpers: gradient accumulation over consecutive samples and
//! early stopping.
//!
//! The paper trains with batch size 1 (inputs have variable shapes) but
//! back-propagates the *average* loss of `B = 64` consecutive samples as one
//! optimiser step. [`AccumTrainer`] reproduces that exactly: submit one
//! gradient per sample; every `B` submissions the mean gradient (optionally
//! clipped) is applied. Every float loop in the accumulate → average → clip →
//! step pipeline runs on the dispatched SIMD kernels (`axpy`, `scale`, `dot`,
//! `adam_update`), so training is bit-identical across backends.

use crate::optim::Adam;
use crate::params::{Gradients, ParamSet};
use lead_obs::probe::{Probe, NOOP};

/// Accumulates per-sample gradients and steps the optimiser every
/// `batch` submissions with the batch-mean gradient.
///
/// An optional [`Probe`] (see [`AccumTrainer::with_probe`]) receives the
/// pre-clip gradient norm and an optimiser-step counter on every applied
/// batch. Metric values are write-only: training is bit-identical with and
/// without a recording probe attached.
pub struct AccumTrainer<'p> {
    opt: Adam,
    batch: usize,
    clip_norm: Option<f32>,
    acc: Option<Gradients>,
    pending: usize,
    probe: &'p dyn Probe,
    scope: String,
}

impl std::fmt::Debug for AccumTrainer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccumTrainer")
            .field("opt", &self.opt)
            .field("batch", &self.batch)
            .field("clip_norm", &self.clip_norm)
            .field("pending", &self.pending)
            .field("scope", &self.scope)
            .finish_non_exhaustive()
    }
}

impl AccumTrainer<'static> {
    /// Creates a trainer stepping every `batch` samples (unprobed).
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn new(opt: Adam, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        Self {
            opt,
            batch,
            clip_norm: None,
            acc: None,
            pending: 0,
            probe: &NOOP,
            scope: String::new(),
        }
    }
}

impl<'p> AccumTrainer<'p> {
    /// Enables global-norm gradient clipping at `max_norm` before each step.
    pub fn with_clip_norm(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "clip norm must be positive");
        self.clip_norm = Some(max_norm);
        self
    }

    /// Attaches an observability probe. Each applied batch emits the
    /// pre-clip gradient norm as `<scope>.grad_norm` and bumps
    /// `<scope>.optim_steps`.
    pub fn with_probe<'q>(self, probe: &'q dyn Probe, scope: &str) -> AccumTrainer<'q> {
        AccumTrainer {
            opt: self.opt,
            batch: self.batch,
            clip_norm: self.clip_norm,
            acc: self.acc,
            pending: self.pending,
            probe,
            scope: scope.to_string(),
        }
    }

    /// Number of optimiser steps taken so far.
    pub fn steps(&self) -> u64 {
        self.opt.steps()
    }

    /// Submits one sample's gradients; steps the optimiser when the batch
    /// fills.
    pub fn submit(&mut self, params: &mut ParamSet, grads: Gradients) {
        match &mut self.acc {
            Some(acc) => acc.accumulate(&grads),
            None => self.acc = Some(grads),
        }
        self.pending += 1;
        if self.pending >= self.batch {
            self.apply(params);
        }
    }

    /// Runs one accumulation window data-parallel: computes every item's
    /// `(loss, gradients)` with `f` against the shared read-only parameter
    /// snapshot, then submits the gradients **in item order**. Because the
    /// reduction order is fixed and each item's arithmetic is independent of
    /// thread interleaving, the resulting parameters (and the returned
    /// per-item losses) are bit-identical for every `num_threads`, including
    /// the exact serial path at `num_threads = 1`.
    ///
    /// Callers who want parity with a plain per-sample `submit` loop should
    /// pass windows of at most `batch` items so optimiser steps land on the
    /// same sample boundaries.
    pub fn submit_window<T, F>(
        &mut self,
        params: &mut ParamSet,
        num_threads: usize,
        items: &[T],
        f: F,
    ) -> Vec<f32>
    where
        T: Sync,
        F: Fn(usize, &T, &ParamSet) -> (f32, Gradients) + Sync,
    {
        let snapshot: &ParamSet = params;
        let results = crate::par::par_map(num_threads, items, |i, item| f(i, item, snapshot));
        let mut losses = Vec::with_capacity(results.len());
        for (loss, grads) in results {
            losses.push(loss);
            self.submit(params, grads);
        }
        losses
    }

    /// Applies any partially filled batch (end of epoch).
    pub fn flush(&mut self, params: &mut ParamSet) {
        if self.pending > 0 {
            self.apply(params);
        }
    }

    fn apply(&mut self, params: &mut ParamSet) {
        // No accumulator means no pending examples: nothing to apply.
        let Some(mut acc) = self.acc.take() else {
            self.pending = 0;
            return;
        };
        acc.scale(1.0 / crate::num::exact_usize_f32(self.pending));
        let probing = self.probe.enabled();
        if let Some(max) = self.clip_norm {
            // The pre-clip norm is computed by the clip either way; only the
            // probe emission is conditional, so results never depend on it.
            let pre_clip = acc.clip_global_norm(max);
            if probing {
                self.probe
                    .observe(&format!("{}.grad_norm", self.scope), f64::from(pre_clip));
            }
        } else if probing {
            self.probe.observe(
                &format!("{}.grad_norm", self.scope),
                f64::from(acc.global_norm()),
            );
        }
        if probing {
            self.probe.count(&format!("{}.optim_steps", self.scope), 1);
        }
        self.opt.step(params, &acc);
        self.pending = 0;
    }
}

/// The per-epoch visit order of a training set: a persistent permutation
/// that is reshuffled in place at the top of every epoch.
///
/// Persistence is part of the determinism contract. The training loops
/// shuffle the *previous* epoch's order rather than a fresh identity
/// permutation; rebuilding from identity each epoch would consume the same
/// RNG draws but visit samples in a different sequence, changing gradient
/// order and breaking bit-for-bit reproducibility with the historical
/// loops. `EpochPlan` encapsulates that invariant so every loop (and any
/// future streaming consumer) shares one implementation.
#[derive(Debug, Clone)]
pub struct EpochPlan {
    order: Vec<usize>,
}

impl EpochPlan {
    /// A plan over `len` samples, starting as the identity permutation.
    pub fn new(len: usize) -> Self {
        Self {
            order: (0..len).collect(),
        }
    }

    /// Reshuffles the current order in place (Fisher–Yates, one draw per
    /// element past the first — identical RNG consumption for any content).
    pub fn reshuffle<R: rand::RngCore + ?Sized>(&mut self, rng: &mut R) {
        use rand::seq::SliceRandom;
        self.order.shuffle(rng);
    }

    /// The current visit order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The current order split into accumulation windows of at most
    /// `batch` samples (the last may be shorter).
    pub fn windows(&self, batch: usize) -> std::slice::Chunks<'_, usize> {
        self.order.chunks(batch)
    }

    /// Number of samples the plan covers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the plan covers no samples.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Early stopping on a validation (or training) loss (Caruana et al. 2000),
/// the paper's overfitting guard.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f32,
    best: f32,
    best_epoch: usize,
    epochs_seen: usize,
    bad_streak: usize,
}

impl EarlyStopping {
    /// Stops after `patience` consecutive epochs without improving the best
    /// loss by at least `min_delta`.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        assert!(patience > 0, "patience must be positive");
        Self {
            patience,
            min_delta,
            best: f32::INFINITY,
            best_epoch: 0,
            epochs_seen: 0,
            bad_streak: 0,
        }
    }

    /// Records one epoch's loss; returns `true` when training should stop.
    pub fn observe(&mut self, loss: f32) -> bool {
        self.epochs_seen += 1;
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.best_epoch = self.epochs_seen;
            self.bad_streak = 0;
        } else {
            self.bad_streak += 1;
        }
        self.bad_streak >= self.patience
    }

    /// The best loss observed.
    pub fn best(&self) -> f32 {
        self.best
    }

    /// The 1-based epoch at which the best loss was observed (0 before any
    /// observation).
    pub fn best_epoch(&self) -> usize {
        self.best_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::tape::Graph;

    #[test]
    fn accum_trainer_steps_once_per_batch() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::zeros(1, 1));
        let mut tr = AccumTrainer::new(Adam::new(&ps, 0.01), 4);
        for i in 0..8 {
            let mut g = ps.zero_gradients();
            g.get_mut(w).data_mut()[0] = 1.0;
            tr.submit(&mut ps, g);
            let expect = (i + 1) / 4;
            assert_eq!(tr.steps(), expect as u64, "after sample {i}");
        }
    }

    #[test]
    fn flush_applies_partial_batch() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::zeros(1, 1));
        let mut tr = AccumTrainer::new(Adam::new(&ps, 0.01), 64);
        let mut g = ps.zero_gradients();
        g.get_mut(w).data_mut()[0] = 1.0;
        tr.submit(&mut ps, g);
        assert_eq!(tr.steps(), 0);
        tr.flush(&mut ps);
        assert_eq!(tr.steps(), 1);
        tr.flush(&mut ps); // idempotent when nothing pending
        assert_eq!(tr.steps(), 1);
    }

    #[test]
    fn accumulated_mean_matches_single_large_batch() {
        // Two samples with gradients 1 and 3 must step with mean 2.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::zeros(1, 1));
        let mut tr = AccumTrainer::new(Adam::new(&ps, 0.01), 2);
        for v in [1.0, 3.0] {
            let mut g = ps.zero_gradients();
            g.get_mut(w).data_mut()[0] = v;
            tr.submit(&mut ps, g);
        }
        // Compare to Adam stepped directly with gradient 2.0 (first Adam step
        // size depends only on sign for constant gradients, so compare values).
        let mut ps2 = ParamSet::new();
        let w2 = ps2.register("w", Matrix::zeros(1, 1));
        let mut opt = Adam::new(&ps2, 0.01);
        let mut g = ps2.zero_gradients();
        g.get_mut(w2).data_mut()[0] = 2.0;
        opt.step(&mut ps2, &g);
        assert!((ps.value(w).at(0, 0) - ps2.value(w2).at(0, 0)).abs() < 1e-7);
    }

    #[test]
    fn trainer_reduces_real_loss() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 2, vec![2.0, -2.0]));
        let target = Matrix::from_vec(1, 2, vec![0.5, 0.5]);
        let mut tr = AccumTrainer::new(Adam::new(&ps, 0.05), 8).with_clip_norm(5.0);
        let loss_at = |ps: &ParamSet| {
            let mut g = Graph::new(ps);
            let wv = g.param(w);
            let l = g.mse_loss(wv, &target);
            g.scalar(l)
        };
        let before = loss_at(&ps);
        for _ in 0..1600 {
            let mut g = Graph::new(&ps);
            let wv = g.param(w);
            let l = g.mse_loss(wv, &target);
            let grads = g.backward(l);
            tr.submit(&mut ps, grads);
        }
        tr.flush(&mut ps);
        assert!(loss_at(&ps) < before * 0.01);
    }

    #[test]
    fn submit_window_matches_per_sample_submit_bitwise() {
        let targets: Vec<Matrix> = (0..10)
            .map(|i| Matrix::from_vec(1, 2, vec![i as f32 * 0.1, 1.0 - i as f32 * 0.05]))
            .collect();
        let run = |threads: usize, windowed: bool| -> (Vec<u32>, Vec<f32>) {
            let mut ps = ParamSet::new();
            let w = ps.register("w", Matrix::from_vec(1, 2, vec![0.7, -0.4]));
            let mut tr = AccumTrainer::new(Adam::new(&ps, 0.05), 4).with_clip_norm(5.0);
            let item_pass = |_: usize, target: &Matrix, ps: &ParamSet| {
                let mut g = Graph::new(ps);
                let wv = g.param(w);
                let l = g.mse_loss(wv, target);
                let loss = g.scalar(l);
                (loss, g.backward(l))
            };
            let mut losses = Vec::new();
            for _ in 0..3 {
                if windowed {
                    for chunk in targets.chunks(4) {
                        losses.extend(tr.submit_window(&mut ps, threads, chunk, item_pass));
                    }
                } else {
                    for (i, t) in targets.iter().enumerate() {
                        let (loss, grads) = item_pass(i, t, &ps);
                        losses.push(loss);
                        tr.submit(&mut ps, grads);
                    }
                }
                tr.flush(&mut ps);
            }
            let bits = ps.value(w).data().iter().map(|v| v.to_bits()).collect();
            (bits, losses)
        };
        let reference = run(1, false);
        for threads in [1, 2, 4] {
            assert_eq!(run(threads, true), reference, "threads={threads}");
        }
    }

    #[test]
    fn probed_training_is_bit_identical_and_records_norms() {
        use lead_obs::Recorder;
        let targets: Vec<Matrix> = (0..6)
            .map(|i| Matrix::from_vec(1, 2, vec![i as f32 * 0.2, -0.3]))
            .collect();
        let run = |probe: Option<&Recorder>| -> Vec<u32> {
            let mut ps = ParamSet::new();
            let w = ps.register("w", Matrix::from_vec(1, 2, vec![0.7, -0.4]));
            let tr = AccumTrainer::new(Adam::new(&ps, 0.05), 2).with_clip_norm(5.0);
            let mut tr = match probe {
                Some(p) => tr.with_probe(p, "t"),
                None => tr,
            };
            for target in &targets {
                let mut g = Graph::new(&ps);
                let wv = g.param(w);
                let l = g.mse_loss(wv, target);
                let grads = g.backward(l);
                tr.submit(&mut ps, grads);
            }
            tr.flush(&mut ps);
            ps.value(w).data().iter().map(|v| v.to_bits()).collect()
        };
        let rec = Recorder::new();
        assert_eq!(run(None), run(Some(&rec)), "probe changed the arithmetic");
        assert_eq!(rec.counter("t.optim_steps"), Some(3));
        let snap = rec.snapshot();
        let (name, norms) = &snap.histograms[0];
        assert_eq!(name, "t.grad_norm");
        assert_eq!(norms.count, 3);
        assert!(norms.min >= 0.0);
    }

    #[test]
    fn early_stopping_triggers_after_patience() {
        let mut es = EarlyStopping::new(3, 0.0);
        assert!(!es.observe(1.0));
        assert!(!es.observe(0.5)); // improvement
        assert!(!es.observe(0.6));
        assert!(!es.observe(0.7));
        assert!(es.observe(0.8)); // third bad epoch
        assert_eq!(es.best(), 0.5);
        assert_eq!(es.best_epoch(), 2);
    }

    #[test]
    fn early_stopping_min_delta_counts_tiny_gains_as_bad() {
        let mut es = EarlyStopping::new(2, 0.1);
        assert!(!es.observe(1.0));
        assert!(!es.observe(0.99)); // gain < min_delta → bad epoch 1
        assert!(es.observe(0.98)); // bad epoch 2 → stop
    }

    #[test]
    fn epoch_plan_matches_the_historical_inline_shuffle() {
        use rand::rngs::StdRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        // The pre-EpochPlan loops kept one order vec alive across epochs and
        // shuffled it in place; the plan must reproduce that sequence of
        // permutations exactly, draw for draw.
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let mut order: Vec<usize> = (0..23).collect();
        let mut plan = EpochPlan::new(23);
        assert_eq!(plan.order(), order.as_slice());
        for _ in 0..5 {
            order.shuffle(&mut rng_a);
            plan.reshuffle(&mut rng_b);
            assert_eq!(plan.order(), order.as_slice());
            let chunked: Vec<&[usize]> = order.chunks(4).collect();
            let windows: Vec<&[usize]> = plan.windows(4).collect();
            assert_eq!(windows, chunked);
        }
        assert_eq!(plan.len(), 23);
        assert!(!plan.is_empty());
        assert!(EpochPlan::new(0).is_empty());
    }
}
