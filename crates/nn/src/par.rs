//! Data-parallel primitives for the training and inference hot paths.
//!
//! The build environment cannot fetch rayon, so this module provides the
//! small slice the workspace needs on top of `std::thread::scope`: an
//! order-preserving [`par_map`] with work stealing via an atomic cursor.
//!
//! Determinism contract: `par_map` returns results in *item order*, and every
//! item's computation reads only shared immutable state (`&ParamSet`, inputs)
//! plus its own index. Per-item float arithmetic is therefore independent of
//! the thread interleaving, so any reduction the caller performs over the
//! returned `Vec` in index order is bit-identical for every thread count —
//! including the `threads == 1` case, which takes an exact serial path with
//! no thread spawned at all.

use std::sync::atomic::{AtomicUsize, Ordering};

// The parallel layer shares `&ParamSet` across worker threads and sends
// `Gradients`/`Matrix` values back; these compile-time checks document (and
// enforce) that the nn substrate stays free of interior mutability.
const _: () = {
    const fn sync<T: Sync>() {}
    const fn send<T: Send>() {}
    sync::<crate::params::ParamSet>();
    sync::<crate::matrix::Matrix>();
    send::<crate::params::Gradients>();
    send::<crate::matrix::Matrix>();
};

/// Number of worker threads a `num_threads` knob resolves to:
/// `0` means all available cores, any other value is taken literally.
pub fn resolve_threads(num_threads: usize) -> usize {
    if num_threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        num_threads
    }
}

/// Maps `f` over `items` on up to `resolve_threads(num_threads)` scoped
/// threads and returns the results **in item order**.
///
/// `f` receives `(index, &item)`. With an effective thread count of one (or
/// one item) no thread is spawned and the map runs serially — this is the
/// exact `num_threads = 1` path the determinism tests pin against.
///
/// # Panics
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn par_map<T, R, F>(num_threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = resolve_threads(num_threads).min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            let produced = match handle.join() {
                Ok(p) => p,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, r) in produced {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        // lint: allow(panic, panic-path): structural invariant — the index partition covers 0..n exactly once
        .map(|s| s.expect("par_map: every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn par_map_preserves_order_and_matches_serial() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let got = par_map(threads, &items, |_, &x| x * x + 1);
            assert_eq!(got, serial, "threads={threads}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u32], |i, &x| x + i as u32), vec![9]);
    }

    #[test]
    fn par_map_index_argument_matches_position() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(3, &items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c", "3d", "4e"]);
    }

    #[test]
    fn par_map_float_results_bitwise_equal_across_thread_counts() {
        let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.37 - 5.0).collect();
        let reference: Vec<u32> = par_map(1, &items, |_, &x| {
            ((x.sin() * (x * 0.01).exp()).tanh()).to_bits()
        });
        for threads in [2, 4] {
            let got: Vec<u32> = par_map(threads, &items, |_, &x| {
                ((x.sin() * (x * 0.01).exp()).tanh()).to_bits()
            });
            assert_eq!(got, reference, "threads={threads}");
        }
    }
}
