//! Weight initialisation schemes.

use crate::matrix::Matrix;
use crate::num::narrow_f64;
use rand::Rng;

/// Xavier/Glorot uniform initialisation: entries drawn from
/// `U(-√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
///
/// The paper's operators are tanh/sigmoid-activated LSTMs and fully connected
/// layers, for which Glorot initialisation is the standard choice.
pub fn xavier_uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let limit = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| narrow_f64(rng.gen_range(-limit..limit)))
}

/// Uniform initialisation in `[-limit, limit]`.
pub fn uniform<R: Rng>(rng: &mut R, rows: usize, cols: usize, limit: f64) -> Matrix {
    assert!(limit >= 0.0, "limit must be non-negative");
    if limit <= 0.0 {
        return Matrix::zeros(rows, cols);
    }
    Matrix::from_fn(rows, cols, |_, _| narrow_f64(rng.gen_range(-limit..limit)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = xavier_uniform(&mut rng, 32, 128);
        let limit = (6.0f64 / 160.0).sqrt() as f32;
        assert!(m.data().iter().all(|v| v.abs() <= limit));
        // Not all zero.
        assert!(m.frobenius_norm() > 0.0);
    }

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(&mut StdRng::seed_from_u64(7), 4, 4);
        let b = xavier_uniform(&mut StdRng::seed_from_u64(7), 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_zero_limit_is_zeros() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = uniform(&mut rng, 3, 3, 0.0);
        assert_eq!(m, Matrix::zeros(3, 3));
    }
}
