//! Dense row-major `f32` matrices and the handful of kernels the autodiff
//! tape needs.
//!
//! Everything in the LEAD paper is small (hidden sizes 32–128, batch size 1),
//! so kernels favour low per-call overhead over cache blocking: `matmul` uses
//! the i-k-j loop order, which is the right shape for the tall-times-small
//! products that dominate LSTM steps.
//!
//! All floating-point hot paths — the three matmul kernels, elementwise
//! arithmetic, activations/gates and their backwards, and the in-place
//! accumulators — dispatch through [`crate::simd::active`], so every backend
//! produces bit-identical results (the `simd` module's contract) and forcing
//! `Backend::Scalar` never changes a stored model byte.

use crate::simd::{self, Kernel};
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix with every entry `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable row-major data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Entry at `(r, c)`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_acc_into(rhs, &mut out);
        out
    }

    /// `out += self × rhs`, the i-k-j kernel shared by forward and backward
    /// passes (backward accumulates into existing gradients). Dispatches to
    /// the active SIMD backend's blocked `matmul_acc`.
    pub fn matmul_acc_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "matmul shape mismatch");
        assert_eq!(out.rows, self.rows, "output rows mismatch");
        assert_eq!(out.cols, rhs.cols, "output cols mismatch");
        simd::active().matmul_acc(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows,
            self.cols,
            rhs.cols,
        );
    }

    /// `out += self^T × rhs` without materialising the transpose; the inner
    /// loop is the dispatched `axpy` kernel with the same exact-zero
    /// sparsity skip as `matmul_acc`.
    pub fn matmul_at_b_acc_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "A^T·B shape mismatch");
        assert_eq!(out.rows, self.cols);
        assert_eq!(out.cols, rhs.cols);
        let kernel = simd::active();
        let n = rhs.cols;
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = rhs.row(r);
            for (k, &a) in a_row.iter().enumerate() {
                // lint: allow(float-eq): exact-zero sparsity skip; a tolerance would change results
                if a == 0.0 {
                    continue;
                }
                kernel.axpy(a, b_row, &mut out.data[k * n..(k + 1) * n]);
            }
        }
    }

    /// `out += self × rhs^T` without materialising the transpose: one
    /// dispatched blocked `dot` per output entry.
    pub fn matmul_a_bt_acc_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.cols, "A·B^T shape mismatch");
        assert_eq!(out.rows, self.rows);
        assert_eq!(out.cols, rhs.rows);
        let kernel = simd::active();
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..rhs.rows {
                out.data[i * rhs.rows + j] += kernel.dot(a_row, rhs.row(j));
            }
        }
    }

    /// `self × rhs^T` as a new matrix — the attention scoring shape
    /// (`Q × Kᵀ`) without materialising the transpose.
    pub fn matmul_bt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_bt shape mismatch: {}x{} × ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_a_bt_acc_into(rhs, &mut out);
        out
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum; shapes must match.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        simd::active().add(&self.data, &rhs.data, &mut out.data);
        out
    }

    /// Elementwise difference; shapes must match.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        simd::active().sub(&self.data, &rhs.data, &mut out.data);
        out
    }

    /// Elementwise (Hadamard) product; shapes must match.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "mul shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        simd::active().mul(&self.data, &rhs.data, &mut out.data);
        out
    }

    /// Adds the 1×cols row vector `row` to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let kernel = simd::active();
        let mut out = self.clone();
        for r in 0..out.rows {
            // `1.0 * b` is exact, so axpy(1.0, ..) is bitwise `+= b`.
            kernel.axpy(1.0, &row.data, out.row_mut(r));
        }
        out
    }

    /// Accumulates every row of `src` into this 1×cols row vector — the
    /// backward pass of a row broadcast (and of the fused gate bias), in
    /// ascending row order.
    pub fn accumulate_row_sums(&mut self, src: &Matrix) {
        assert_eq!(self.rows, 1, "row-sum destination must be a row vector");
        assert_eq!(self.cols, src.cols, "row-sum width mismatch");
        let kernel = simd::active();
        for r in 0..src.rows {
            kernel.axpy(1.0, src.row(r), &mut self.data);
        }
    }

    /// `self * scalar`.
    pub fn scale(&self, s: f32) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(s);
        out
    }

    /// `self *= scalar` in place.
    pub fn scale_assign(&mut self, s: f32) {
        simd::active().scale(&mut self.data, s);
    }

    /// Elementwise logistic sigmoid (scalar libm in every backend — part of
    /// the bit-identity contract).
    pub fn sigmoid(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        simd::active().sigmoid(&self.data, &mut out.data);
        out
    }

    /// Elementwise hyperbolic tangent (scalar libm in every backend).
    pub fn tanh(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        simd::active().tanh(&self.data, &mut out.data);
        out
    }

    /// Fused gate `sigmoid(self + bias)` where `bias` is a 1×cols row
    /// vector broadcast over the rows — one dispatched kernel call per row.
    pub fn sigmoid_gate(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "gate bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "gate bias width mismatch");
        let kernel = simd::active();
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let dst = &mut out.data[r * self.cols..(r + 1) * self.cols];
            kernel.sigmoid_gate(self.row(r), &bias.data, dst);
        }
        out
    }

    /// Fused gate `tanh(self + bias)`; see [`Matrix::sigmoid_gate`].
    pub fn tanh_gate(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "gate bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "gate bias width mismatch");
        let kernel = simd::active();
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let dst = &mut out.data[r * self.cols..(r + 1) * self.cols];
            kernel.tanh_gate(self.row(r), &bias.data, dst);
        }
        out
    }

    /// Sigmoid backward `self * y * (1 - y)` where `self` is the upstream
    /// gradient and `y` the forward output.
    pub fn sigmoid_bwd(&self, y: &Matrix) -> Matrix {
        assert_eq!(self.shape(), y.shape(), "sigmoid_bwd shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        simd::active().sigmoid_bwd(&self.data, &y.data, &mut out.data);
        out
    }

    /// Tanh backward `self * (1 - y * y)`; see [`Matrix::sigmoid_bwd`].
    pub fn tanh_bwd(&self, y: &Matrix) -> Matrix {
        assert_eq!(self.shape(), y.shape(), "tanh_bwd shape mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols);
        simd::active().tanh_bwd(&self.data, &y.data, &mut out.data);
        out
    }

    /// Applies `f` to every entry.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Combines two same-shaped matrices entrywise.
    pub fn zip_map(&self, rhs: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "zip_map shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += rhs` in place; shapes must match.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        // axpy(1.0, ..) is bitwise `+= b` since `1.0 * b` is exact.
        simd::active().axpy(1.0, &rhs.data, &mut self.data);
    }

    /// `self += rhs * s` in place; shapes must match.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled_assign shape mismatch"
        );
        simd::active().axpy(s, &rhs.data, &mut self.data);
    }

    /// Zeroes every entry, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all entries (`NaN` for empty matrices).
    pub fn mean(&self) -> f32 {
        self.sum() / self.data.len() as f32
    }

    /// Index of the maximum entry as `(row, col)`; ties resolve to the first.
    ///
    /// Returns `None` for an empty matrix.
    pub fn argmax(&self) -> Option<(usize, usize)> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some((best / self.cols, best % self.cols))
    }

    /// Frobenius norm, via the dispatched blocked `dot` of the data with
    /// itself (so the gradient-clipping threshold is backend-independent).
    pub fn frobenius_norm(&self) -> f32 {
        simd::active().dot(&self.data, &self.data).sqrt()
    }

    /// Concatenates matrices left-to-right; all must share the row count.
    pub fn concat_cols(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = parts.first().map_or(0, |m| m.rows);
        assert!(
            parts.iter().all(|m| m.rows == rows),
            "concat_cols row mismatch"
        );
        let cols: usize = parts.iter().map(|m| m.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for m in parts {
                out.data[r * cols + off..r * cols + off + m.cols].copy_from_slice(m.row(r));
                off += m.cols;
            }
        }
        out
    }

    /// Concatenates matrices top-to-bottom; all must share the column count.
    pub fn concat_rows(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = parts.first().map_or(0, |m| m.cols);
        assert!(
            parts.iter().all(|m| m.cols == cols),
            "concat_rows col mismatch"
        );
        let rows: usize = parts.iter().map(|m| m.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for m in parts {
            data.extend_from_slice(&m.data);
        }
        Matrix { rows, cols, data }
    }

    /// Columns `c0..c1` as a new matrix.
    ///
    /// # Panics
    /// Panics if `c0 >= c1` or `c1 > cols`.
    pub fn slice_cols(&self, c0: usize, c1: usize) -> Matrix {
        assert!(c0 < c1 && c1 <= self.cols, "slice_cols out of range");
        let mut out = Matrix::zeros(self.rows, c1 - c0);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[c0..c1]);
        }
        out
    }

    /// Rows `r0..r1` as a new matrix.
    pub fn slice_rows(&self, r0: usize, r1: usize) -> Matrix {
        assert!(r0 < r1 && r1 <= self.rows, "slice_rows out of range");
        Matrix {
            rows: r1 - r0,
            cols: self.cols,
            data: self.data[r0 * self.cols..r1 * self.cols].to_vec(),
        }
    }

    /// Row-wise softmax: every row becomes a probability distribution.
    ///
    /// Uses the max-subtraction trick for numerical stability.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
            debug_assert!(
                row.iter().all(|v| v.is_finite()),
                "softmax produced a non-finite entry (all-(-inf) or NaN input row?)"
            );
        }
        out
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i).data(), a.data());
        assert_eq!(i.matmul(&a).data(), a.data());
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let mut got = Matrix::zeros(2, 4);
        a.matmul_at_b_acc_into(&b, &mut got);
        let expect = a.transpose().matmul(&b);
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let mut got = Matrix::zeros(2, 4);
        a.matmul_a_bt_acc_into(&b, &mut got);
        let expect = a.matmul(&b.transpose());
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_row_broadcast_adds_to_every_row() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(1, 2, &[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&b).data(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn concat_cols_and_slice_cols_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 5.0, 6.0]);
        let b = m(2, 1, &[3.0, 7.0]);
        let c = Matrix::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 5.0, 6.0, 7.0]);
        assert_eq!(c.slice_cols(0, 2), a);
        assert_eq!(c.slice_cols(2, 3), b);
    }

    #[test]
    fn concat_rows_and_slice_rows_roundtrip() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(2, 3, &[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let c = Matrix::concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 3));
        assert_eq!(c.slice_rows(0, 1), a);
        assert_eq!(c.slice_rows(1, 3), b);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&v| v > 0.0));
        }
        // Monotone: larger logits get larger probabilities.
        assert!(s.at(0, 2) > s.at(0, 1) && s.at(0, 1) > s.at(0, 0));
    }

    #[test]
    fn softmax_rows_stable_for_large_logits() {
        let a = m(1, 2, &[1000.0, 1001.0]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_finds_max_and_ties_first() {
        let a = m(2, 2, &[1.0, 5.0, 5.0, 0.0]);
        assert_eq!(a.argmax(), Some((0, 1)));
        assert_eq!(Matrix::zeros(0, 0).argmax(), None);
    }

    #[test]
    fn sum_mean_norm() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.frobenius_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn add_scaled_assign_accumulates() {
        let mut a = m(1, 2, &[1.0, 2.0]);
        let b = m(1, 2, &[10.0, 10.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[6.0, 7.0]);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(a.at(1, 2), 12.0);
    }

    #[test]
    fn fill_zero_keeps_shape() {
        let mut a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        a.fill_zero();
        assert_eq!(a, Matrix::zeros(2, 2));
    }

    #[test]
    fn matmul_bt_matches_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        let got = a.matmul_bt(&b);
        let expect = a.matmul(&b.transpose());
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn scale_assign_matches_scale() {
        let a = m(2, 2, &[1.0, -2.0, 0.5, 4.0]);
        let mut b = a.clone();
        b.scale_assign(0.25);
        assert_eq!(b.data(), a.scale(0.25).data());
        assert_eq!(b.data(), &[0.25, -0.5, 0.125, 1.0]);
    }

    #[test]
    fn activations_match_libm_bitwise() {
        let a = m(1, 5, &[-2.0, -0.0, 0.0, 0.5, 3.0]);
        let s = a.sigmoid();
        let t = a.tanh();
        for (i, &v) in a.data().iter().enumerate() {
            let want_s = 1.0 / (1.0 + (-v).exp());
            assert_eq!(s.data()[i].to_bits(), want_s.to_bits());
            assert_eq!(t.data()[i].to_bits(), v.tanh().to_bits());
        }
        // tanh preserves the sign of zero — the reason plain activations
        // never route through the gate kernels with a zero bias.
        assert_eq!(t.data()[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn gates_match_broadcast_then_activation_bitwise() {
        let x = m(2, 3, &[0.5, -1.0, 2.0, -0.25, 0.0, 1.5]);
        let b = m(1, 3, &[0.25, 1.0, -2.0]);
        let via_broadcast_sig = x.add_row_broadcast(&b).sigmoid();
        let via_broadcast_tanh = x.add_row_broadcast(&b).tanh();
        let gate_sig = x.sigmoid_gate(&b);
        let gate_tanh = x.tanh_gate(&b);
        for i in 0..x.len() {
            assert_eq!(
                gate_sig.data()[i].to_bits(),
                via_broadcast_sig.data()[i].to_bits()
            );
            assert_eq!(
                gate_tanh.data()[i].to_bits(),
                via_broadcast_tanh.data()[i].to_bits()
            );
        }
    }

    #[test]
    fn activation_backwards_match_formulas() {
        let g = m(1, 4, &[1.0, -0.5, 2.0, 0.25]);
        let y = m(1, 4, &[0.5, 0.25, 0.75, -0.5]);
        let sb = g.sigmoid_bwd(&y);
        let tb = g.tanh_bwd(&y);
        for i in 0..4 {
            let (gi, yi) = (g.data()[i], y.data()[i]);
            assert_eq!(sb.data()[i].to_bits(), (gi * yi * (1.0 - yi)).to_bits());
            assert_eq!(tb.data()[i].to_bits(), (gi * (1.0 - yi * yi)).to_bits());
        }
    }

    #[test]
    fn accumulate_row_sums_is_broadcast_backward() {
        let src = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut acc = m(1, 2, &[10.0, 20.0]);
        acc.accumulate_row_sums(&src);
        assert_eq!(acc.data(), &[19.0, 32.0]);
    }
}
