//! Optimisers: Adam (the paper's choice, learning rate 1e-4) and plain SGD.
//!
//! Both update loops run on the dispatched SIMD kernels: Adam through the
//! fused [`Kernel::adam_update`] (one call per parameter buffer), SGD through
//! `axpy` via `Matrix::add_scaled_assign` — so optimiser steps are
//! bit-identical across backends like the rest of the hot paths.

use crate::matrix::Matrix;
use crate::params::{Gradients, ParamSet};
use crate::simd::{self, AdamCoeffs, Kernel};

/// The Adam optimiser (Kingma & Ba 2014) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates Adam with the given learning rate and default moments
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    pub fn new(params: &ParamSet, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        let m = params
            .iter()
            .map(|(_, p)| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let v = params
            .iter()
            .map(|(_, p)| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m,
            v,
        }
    }

    /// Enables decoupled weight decay (AdamW, Loshchilov & Hutter): each step
    /// additionally shrinks parameters by `lr · decay`.
    pub fn with_weight_decay(mut self, decay: f32) -> Self {
        assert!(decay >= 0.0, "weight decay must be non-negative");
        self.weight_decay = decay;
        self
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Overrides the learning rate (scheduled learning rates).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update using `grads`.
    ///
    /// # Panics
    /// Panics if the parameter set has grown since the optimiser was created.
    pub fn step(&mut self, params: &mut ParamSet, grads: &Gradients) {
        assert_eq!(
            self.m.len(),
            params.len(),
            "optimiser state and parameter set diverged"
        );
        assert_eq!(grads.len(), params.len(), "gradient arity mismatch");
        self.t += 1;
        // powi saturates the exponent: beyond i32::MAX steps the bias
        // correction is 1.0 - beta^huge = 1.0 anyway.
        let t = i32::try_from(self.t).unwrap_or(i32::MAX);
        let coeffs = AdamCoeffs {
            beta1: self.beta1,
            beta2: self.beta2,
            bc1: 1.0 - self.beta1.powi(t),
            bc2: 1.0 - self.beta2.powi(t),
            lr: self.lr,
            eps: self.eps,
            weight_decay: self.weight_decay,
        };
        let kernel = simd::active();
        for idx in 0..params.len() {
            let id = crate::params::ParamId(idx);
            let g = grads.get(id);
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let p = params.value_mut(id);
            kernel.adam_update(p.data_mut(), g.data(), m.data_mut(), v.data_mut(), &coeffs);
        }
    }
}

/// Plain stochastic gradient descent, used in tests as a known-simple
/// reference optimiser.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    /// Applies `p -= lr · g` to every parameter.
    pub fn step(&self, params: &mut ParamSet, grads: &Gradients) {
        for (id, g) in grads.iter() {
            params.value_mut(id).add_scaled_assign(g, -self.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Graph;

    /// Minimise ||w - target||² and check convergence.
    fn quadratic_descent<F: FnMut(&mut ParamSet, &Gradients)>(mut apply: F) -> f32 {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 2, vec![5.0, -3.0]));
        let target = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        for _ in 0..400 {
            let mut g = Graph::new(&ps);
            let wv = g.param(w);
            let loss = g.mse_loss(wv, &target);
            let grads = g.backward(loss);
            apply(&mut ps, &grads);
        }
        let d = ps.value(w).sub(&target);
        d.frobenius_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let opt = Sgd::new(0.1);
        let dist = quadratic_descent(|ps, gr| opt.step(ps, gr));
        assert!(dist < 1e-3, "distance {dist}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut ps0 = ParamSet::new();
        ps0.register("w", Matrix::zeros(1, 2));
        let mut opt = Adam::new(&ps0, 0.05);
        let dist = quadratic_descent(|ps, gr| opt.step(ps, gr));
        assert!(dist < 1e-2, "distance {dist}");
        assert_eq!(opt.steps(), 400);
    }

    #[test]
    fn adam_first_step_size_is_about_lr() {
        // With bias correction, the very first Adam step has magnitude ≈ lr
        // regardless of gradient scale.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![0.0]));
        let mut opt = Adam::new(&ps, 0.01);
        let mut grads = ps.zero_gradients();
        grads.get_mut(w).data_mut()[0] = 123.0;
        opt.step(&mut ps, &grads);
        assert!((ps.value(w).at(0, 0).abs() - 0.01).abs() < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        // With zero gradients, AdamW still decays weights toward zero; plain
        // Adam leaves them unchanged.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![1.0]));
        let grads = ps.zero_gradients();

        let mut plain = Adam::new(&ps, 0.1);
        let mut ps_plain = ps.clone();
        plain.step(&mut ps_plain, &grads);
        assert_eq!(ps_plain.value(w).at(0, 0), 1.0);

        let mut decayed = Adam::new(&ps, 0.1).with_weight_decay(0.1);
        let mut ps_decay = ps.clone();
        decayed.step(&mut ps_decay, &grads);
        assert!((ps_decay.value(w).at(0, 0) - 0.99).abs() < 1e-6);
    }

    #[test]
    fn exploding_gradients_are_survivable_with_clipping() {
        use crate::train::AccumTrainer;
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 2, vec![0.1, -0.1]));
        let mut tr = AccumTrainer::new(Adam::new(&ps, 0.01), 1).with_clip_norm(1.0);
        for _ in 0..5 {
            let mut g = ps.zero_gradients();
            g.get_mut(w).data_mut().copy_from_slice(&[1e20, -1e20]);
            tr.submit(&mut ps, g);
        }
        assert!(ps.value(w).data().iter().all(|v| v.is_finite()));
        // Clipped steps are bounded: 5 steps of ≤ lr each.
        assert!(ps.value(w).frobenius_norm() < 1.0);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        let ps = ParamSet::new();
        let _ = Adam::new(&ps, 0.0);
    }
}
