//! Trainable parameters and their gradient buffers.
//!
//! Layers own [`ParamId`] handles into a [`ParamSet`] arena. The tape
//! ([`crate::tape::Graph`]) reads parameter values from the set during the
//! forward pass and writes gradients into a separate [`Gradients`] buffer
//! during the backward pass, so the set itself stays immutable while a graph
//! is alive. Optimisers ([`crate::optim`]) consume a `Gradients` to update the
//! set.

use crate::matrix::Matrix;

/// Handle to a parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw arena index.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// An arena of named trainable parameters.
#[derive(Debug, Default, Clone)]
pub struct ParamSet {
    values: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamSet {
    /// An empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value and a diagnostic name.
    pub fn register(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// The current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.values[id.0]
    }

    /// Mutable access to a parameter value (used by optimisers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.values[id.0]
    }

    /// The diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Matrix::len).sum()
    }

    /// A zeroed gradient buffer matching this set's shapes.
    pub fn zero_gradients(&self) -> Gradients {
        Gradients {
            grads: self
                .values
                .iter()
                .map(|m| Matrix::zeros(m.rows(), m.cols()))
                .collect(),
        }
    }

    /// Iterates over `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.values.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }
}

/// Gradient buffers aligned with a [`ParamSet`].
#[derive(Debug, Clone)]
pub struct Gradients {
    grads: Vec<Matrix>,
}

impl Gradients {
    /// The gradient of a parameter.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.grads[id.0]
    }

    /// Mutable access to the gradient of a parameter.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.grads[id.0]
    }

    /// Number of gradient buffers.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// Whether the buffer set is empty.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Adds `other`'s gradients into `self` (gradient accumulation across the
    /// paper's `B = 64` consecutive samples).
    pub fn accumulate(&mut self, other: &Gradients) {
        assert_eq!(
            self.grads.len(),
            other.grads.len(),
            "gradient arity mismatch"
        );
        for (g, o) in self.grads.iter_mut().zip(other.grads.iter()) {
            g.add_assign(o);
        }
    }

    /// Multiplies every gradient by `s` in place (averaging accumulated
    /// batches) via the dispatched `scale` kernel — no reallocation.
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.grads {
            g.scale_assign(s);
        }
    }

    /// Zeroes every buffer, keeping allocations.
    pub fn zero(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global L2 norm across all buffers (for gradient clipping).
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| {
                let n = g.frobenius_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Rescales all gradients so the global norm is at most `max_norm`.
    ///
    /// Returns the pre-clip norm.
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            self.scale(s);
        }
        norm
    }

    /// Iterates over the raw gradient matrices in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::full(2, 2, 1.0));
        let b = ps.register("b", Matrix::zeros(1, 2));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.num_scalars(), 6);
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.value(b).shape(), (1, 2));
    }

    #[test]
    fn gradients_match_shapes() {
        let mut ps = ParamSet::new();
        ps.register("w", Matrix::zeros(3, 4));
        ps.register("b", Matrix::zeros(1, 4));
        let g = ps.zero_gradients();
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(ParamId(0)).shape(), (3, 4));
    }

    #[test]
    fn accumulate_and_scale() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::zeros(1, 2));
        let mut g1 = ps.zero_gradients();
        g1.get_mut(id).data_mut().copy_from_slice(&[1.0, 2.0]);
        let mut g2 = ps.zero_gradients();
        g2.get_mut(id).data_mut().copy_from_slice(&[3.0, 4.0]);
        g1.accumulate(&g2);
        assert_eq!(g1.get(id).data(), &[4.0, 6.0]);
        g1.scale(0.5);
        assert_eq!(g1.get(id).data(), &[2.0, 3.0]);
    }

    #[test]
    fn clip_global_norm_rescales() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::zeros(1, 2));
        let mut g = ps.zero_gradients();
        g.get_mut(id).data_mut().copy_from_slice(&[3.0, 4.0]);
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // Direction preserved.
        let d = g.get(id).data();
        assert!((d[0] / d[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn clip_noop_when_under_limit() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::zeros(1, 2));
        let mut g = ps.zero_gradients();
        g.get_mut(id).data_mut().copy_from_slice(&[0.3, 0.4]);
        g.clip_global_norm(1.0);
        assert_eq!(g.get(id).data(), &[0.3, 0.4]);
    }
}
