//! Eager reverse-mode automatic differentiation on a tape.
//!
//! A [`Graph`] records every operation as it is evaluated (values are computed
//! eagerly), then [`Graph::backward`] walks the tape in reverse, producing a
//! [`Gradients`] buffer aligned with the [`ParamSet`] the graph reads from.
//!
//! The op vocabulary is exactly what the LEAD architectures need: matrix
//! products (including the transpose-free `A·Bᵀ` attention scoring shape),
//! elementwise arithmetic, broadcasts, slicing/concatenation (for LSTM gate
//! splits and bidirectional merges), `tanh`/`sigmoid`/row-softmax, fused
//! bias-then-activation gates, and two fused losses (MSE for the
//! hierarchical autoencoder, KL divergence for the detectors). Forward and
//! backward passes route through the dispatched SIMD kernels via `Matrix`,
//! so autodiff inherits the backend bit-identity contract.

use crate::matrix::Matrix;
use crate::params::{Gradients, ParamId, ParamSet};
use crate::simd::{self, Kernel};

/// Handle to a node in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug)]
enum Op {
    /// A constant input; no gradient flows into it.
    Constant,
    /// A trainable parameter; gradients are exported via its [`ParamId`].
    Param(ParamId),
    MatMul(Var, Var),
    /// `a × b^T` without materialising the transpose (attention scoring).
    MatMulBt(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    /// `a + row` with `row` broadcast over `a`'s rows.
    AddRowBroadcast(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Tanh(Var),
    Sigmoid(Var),
    /// Fused `sigmoid(pre + bias)` with `bias` a 1×cols row broadcast.
    SigmoidGate(Var, Var),
    /// Fused `tanh(pre + bias)` with `bias` a 1×cols row broadcast.
    TanhGate(Var, Var),
    Relu(Var),
    SoftmaxRows(Var),
    ConcatCols(Vec<Var>),
    ConcatRows(Vec<Var>),
    /// Columns `start..start+width` of the input (width = node's own cols).
    SliceCols(Var, usize),
    /// Row `r` of the input as a 1×cols node.
    Row(Var, usize),
    Transpose(Var),
    MeanAll(Var),
    SumAll(Var),
    /// `mean((a - target)^2)`; the paper's Equation (8).
    MseLoss(Var, Matrix),
    /// `Σ p·ln(p/q)` with constant `p`; the paper's Equations (11)–(12).
    KldLoss(Var, Matrix),
    /// Mean binary cross-entropy on logits against constant targets.
    BceWithLogitsLoss(Var, Matrix),
}

struct Node {
    value: Matrix,
    op: Op,
    needs_grad: bool,
}

/// A tape of eagerly evaluated operations over matrices.
///
/// Graphs borrow the [`ParamSet`] immutably; gradients come back in a
/// separate [`Gradients`] buffer so several graphs (the paper accumulates
/// `B = 64` consecutive samples) can be evaluated against one parameter
/// snapshot before an optimiser step.
pub struct Graph<'p> {
    params: &'p ParamSet,
    nodes: Vec<Node>,
    param_cache: Vec<Option<Var>>,
}

impl<'p> Graph<'p> {
    /// Starts an empty tape over `params`.
    pub fn new(params: &'p ParamSet) -> Self {
        Self {
            params,
            nodes: Vec::new(),
            param_cache: vec![None; params.len()],
        }
    }

    fn push(&mut self, value: Matrix, op: Op, needs_grad: bool) -> Var {
        debug_assert!(value.all_finite(), "non-finite value produced by {op:?}");
        self.nodes.push(Node {
            value,
            op,
            needs_grad,
        });
        Var(self.nodes.len() - 1)
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].needs_grad
    }

    /// The computed value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The scalar value of a 1×1 node.
    ///
    /// # Panics
    /// Panics if the node is not 1×1.
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar node");
        m.at(0, 0)
    }

    /// Number of recorded nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- inputs -----------------------------------------------------------

    /// Records a constant (no gradient) input.
    pub fn constant(&mut self, value: Matrix) -> Var {
        self.push(value, Op::Constant, false)
    }

    /// Records a trainable parameter, caching repeat uses of the same id.
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.param_cache[id.index()] {
            return v;
        }
        let v = self.push(self.params.value(id).clone(), Op::Param(id), true);
        self.param_cache[id.index()] = Some(v);
        v
    }

    // ---- arithmetic -------------------------------------------------------

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(value, Op::MatMul(a, b), ng)
    }

    /// Matrix product `a × b^T` without materialising the transpose — the
    /// attention scoring shape (`Q × Kᵀ`).
    pub fn matmul_bt(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).matmul_bt(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(value, Op::MatMulBt(a, b), ng)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).add(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(value, Op::Add(a, b), ng)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).sub(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(value, Op::Sub(a, b), ng)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.value(a).mul(self.value(b));
        let ng = self.needs(a) || self.needs(b);
        self.push(value, Op::Mul(a, b), ng)
    }

    /// Adds a 1×cols `row` vector to every row of `a` (bias add).
    pub fn add_row_broadcast(&mut self, a: Var, row: Var) -> Var {
        let value = self.value(a).add_row_broadcast(self.value(row));
        let ng = self.needs(a) || self.needs(row);
        self.push(value, Op::AddRowBroadcast(a, row), ng)
    }

    /// Multiplies by a compile-time scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).scale(s);
        let ng = self.needs(a);
        self.push(value, Op::Scale(a, s), ng)
    }

    /// Adds a compile-time scalar to every entry.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = self.value(a).map(|v| v + s);
        let ng = self.needs(a);
        self.push(value, Op::AddScalar(a), ng)
    }

    /// `1 - a`, used by GRU update gates.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let neg = self.scale(a, -1.0);
        self.add_scalar(neg, 1.0)
    }

    // ---- activations ------------------------------------------------------

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.value(a).tanh();
        let ng = self.needs(a);
        self.push(value, Op::Tanh(a), ng)
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.value(a).sigmoid();
        let ng = self.needs(a);
        self.push(value, Op::Sigmoid(a), ng)
    }

    /// Fused gate `sigmoid(pre + bias)` with `bias` a 1×cols row vector
    /// broadcast over `pre`'s rows — one kernel call per row instead of a
    /// broadcast node plus an activation node.
    pub fn sigmoid_gate(&mut self, pre: Var, bias: Var) -> Var {
        let value = self.value(pre).sigmoid_gate(self.value(bias));
        let ng = self.needs(pre) || self.needs(bias);
        self.push(value, Op::SigmoidGate(pre, bias), ng)
    }

    /// Fused gate `tanh(pre + bias)`; see [`Graph::sigmoid_gate`].
    pub fn tanh_gate(&mut self, pre: Var, bias: Var) -> Var {
        let value = self.value(pre).tanh_gate(self.value(bias));
        let ng = self.needs(pre) || self.needs(bias);
        self.push(value, Op::TanhGate(pre, bias), ng)
    }

    /// Elementwise rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.value(a).map(|v| v.max(0.0));
        let ng = self.needs(a);
        self.push(value, Op::Relu(a), ng)
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let value = self.value(a).softmax_rows();
        let ng = self.needs(a);
        self.push(value, Op::SoftmaxRows(a), ng)
    }

    // ---- shape ------------------------------------------------------------

    /// Concatenates nodes left-to-right.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let mats: Vec<&Matrix> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Matrix::concat_cols(&mats);
        let ng = parts.iter().any(|&v| self.needs(v));
        self.push(value, Op::ConcatCols(parts.to_vec()), ng)
    }

    /// Concatenates nodes top-to-bottom (stacking per-step hidden states).
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let mats: Vec<&Matrix> = parts.iter().map(|&v| self.value(v)).collect();
        let value = Matrix::concat_rows(&mats);
        let ng = parts.iter().any(|&v| self.needs(v));
        self.push(value, Op::ConcatRows(parts.to_vec()), ng)
    }

    /// Columns `c0..c1` (LSTM gate splits).
    pub fn slice_cols(&mut self, a: Var, c0: usize, c1: usize) -> Var {
        let value = self.value(a).slice_cols(c0, c1);
        let ng = self.needs(a);
        self.push(value, Op::SliceCols(a, c0), ng)
    }

    /// Row `r` as a 1×cols node (per-timestep input extraction).
    pub fn row(&mut self, a: Var, r: usize) -> Var {
        let value = Matrix::row_vector(self.value(a).row(r).to_vec());
        let ng = self.needs(a);
        self.push(value, Op::Row(a, r), ng)
    }

    /// The transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let value = self.value(a).transpose();
        let ng = self.needs(a);
        self.push(value, Op::Transpose(a), ng)
    }

    // ---- reductions and losses ---------------------------------------------

    /// Mean of all entries, as a 1×1 node.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).mean()]);
        let ng = self.needs(a);
        self.push(value, Op::MeanAll(a), ng)
    }

    /// Sum of all entries, as a 1×1 node.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        let ng = self.needs(a);
        self.push(value, Op::SumAll(a), ng)
    }

    /// Fused mean-squared-error loss `mean((a - target)^2)` — Equation (8).
    pub fn mse_loss(&mut self, a: Var, target: &Matrix) -> Var {
        assert_eq!(self.value(a).shape(), target.shape(), "mse target shape");
        let diff = self.value(a).sub(target);
        let v = diff.data().iter().map(|&d| d * d).sum::<f32>() / diff.len() as f32;
        let ng = self.needs(a);
        self.push(
            Matrix::from_vec(1, 1, vec![v]),
            Op::MseLoss(a, target.clone()),
            ng,
        )
    }

    /// Fused KL-divergence loss `Σ p·ln(p/q)` against constant distribution
    /// `p` — Equations (11)–(12). `q` (the node) must be strictly positive,
    /// which softmax outputs guarantee.
    pub fn kld_loss(&mut self, q: Var, p: &Matrix) -> Var {
        assert_eq!(self.value(q).shape(), p.shape(), "kld label shape");
        let qv = self.value(q);
        let mut v = 0.0;
        for (&pi, &qi) in p.data().iter().zip(qv.data().iter()) {
            debug_assert!(pi > 0.0 && qi > 0.0, "KLD requires positive p and q");
            v += pi * (pi / qi).ln();
        }
        let ng = self.needs(q);
        self.push(
            Matrix::from_vec(1, 1, vec![v]),
            Op::KldLoss(q, p.clone()),
            ng,
        )
    }

    /// Fused numerically-stable binary cross-entropy on logits `z` against
    /// constant targets `y ∈ [0, 1]`:
    /// `mean(max(z, 0) − z·y + ln(1 + e^{−|z|}))`.
    ///
    /// Used by the `LEAD-NoGro` ablation's per-candidate sigmoid classifier.
    pub fn bce_with_logits_loss(&mut self, z: Var, y: &Matrix) -> Var {
        assert_eq!(self.value(z).shape(), y.shape(), "bce target shape");
        let zv = self.value(z);
        let mut v = 0.0;
        for (&zi, &yi) in zv.data().iter().zip(y.data().iter()) {
            debug_assert!((0.0..=1.0).contains(&yi), "bce target outside [0,1]");
            v += zi.max(0.0) - zi * yi + (1.0 + (-zi.abs()).exp()).ln();
        }
        v /= y.len() as f32;
        let ng = self.needs(z);
        self.push(
            Matrix::from_vec(1, 1, vec![v]),
            Op::BceWithLogitsLoss(z, y.clone()),
            ng,
        )
    }

    // ---- backward ----------------------------------------------------------

    /// Reverse-mode pass from the 1×1 `loss` node; returns gradients for every
    /// parameter the tape touched (zeros for untouched parameters).
    ///
    /// # Panics
    /// Panics if `loss` is not 1×1.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward() must start from a scalar loss"
        );
        let mut grads: Vec<Option<Matrix>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[loss.0] = Some(Matrix::full(1, 1, 1.0));
        let mut out = self.params.zero_gradients();

        for i in (0..=loss.0).rev() {
            if !self.nodes[i].needs_grad {
                continue;
            }
            let Some(g) = grads[i].take() else { continue };
            match &self.nodes[i].op {
                Op::Constant => {}
                Op::Param(pid) => out.get_mut(*pid).add_assign(&g),
                Op::MatMul(a, b) => {
                    if self.needs(*a) {
                        let ga = self.grad_slot(&mut grads, *a);
                        g.matmul_a_bt_acc_into(&self.nodes[b.0].value, ga);
                    }
                    if self.needs(*b) {
                        let gb = self.grad_slot(&mut grads, *b);
                        self.nodes[a.0].value.matmul_at_b_acc_into(&g, gb);
                    }
                }
                Op::MatMulBt(a, b) => {
                    // y = A·Bᵀ, so dA = G·B and dB = Gᵀ·A.
                    if self.needs(*a) {
                        let ga = self.grad_slot(&mut grads, *a);
                        g.matmul_acc_into(&self.nodes[b.0].value, ga);
                    }
                    if self.needs(*b) {
                        let gb = self.grad_slot(&mut grads, *b);
                        g.matmul_at_b_acc_into(&self.nodes[a.0].value, gb);
                    }
                }
                Op::Add(a, b) => {
                    if self.needs(*a) {
                        self.grad_slot(&mut grads, *a).add_assign(&g);
                    }
                    if self.needs(*b) {
                        self.grad_slot(&mut grads, *b).add_assign(&g);
                    }
                }
                Op::Sub(a, b) => {
                    if self.needs(*a) {
                        self.grad_slot(&mut grads, *a).add_assign(&g);
                    }
                    if self.needs(*b) {
                        self.grad_slot(&mut grads, *b).add_scaled_assign(&g, -1.0);
                    }
                }
                Op::Mul(a, b) => {
                    if self.needs(*a) {
                        let gb = g.mul(&self.nodes[b.0].value);
                        self.grad_slot(&mut grads, *a).add_assign(&gb);
                    }
                    if self.needs(*b) {
                        let ga = g.mul(&self.nodes[a.0].value);
                        self.grad_slot(&mut grads, *b).add_assign(&ga);
                    }
                }
                Op::AddRowBroadcast(a, row) => {
                    if self.needs(*a) {
                        self.grad_slot(&mut grads, *a).add_assign(&g);
                    }
                    if self.needs(*row) {
                        self.grad_slot(&mut grads, *row).accumulate_row_sums(&g);
                    }
                }
                Op::Scale(a, s) => {
                    if self.needs(*a) {
                        self.grad_slot(&mut grads, *a).add_scaled_assign(&g, *s);
                    }
                }
                Op::AddScalar(a) => {
                    if self.needs(*a) {
                        self.grad_slot(&mut grads, *a).add_assign(&g);
                    }
                }
                Op::Tanh(a) => {
                    if self.needs(*a) {
                        let dg = g.tanh_bwd(&self.nodes[i].value);
                        self.grad_slot(&mut grads, *a).add_assign(&dg);
                    }
                }
                Op::Sigmoid(a) => {
                    if self.needs(*a) {
                        let dg = g.sigmoid_bwd(&self.nodes[i].value);
                        self.grad_slot(&mut grads, *a).add_assign(&dg);
                    }
                }
                Op::SigmoidGate(pre, bias) => {
                    // d/d(pre+bias) = g·y·(1−y); pre takes it elementwise,
                    // the bias row accumulates it over rows.
                    let dz = g.sigmoid_bwd(&self.nodes[i].value);
                    if self.needs(*pre) {
                        self.grad_slot(&mut grads, *pre).add_assign(&dz);
                    }
                    if self.needs(*bias) {
                        self.grad_slot(&mut grads, *bias).accumulate_row_sums(&dz);
                    }
                }
                Op::TanhGate(pre, bias) => {
                    let dz = g.tanh_bwd(&self.nodes[i].value);
                    if self.needs(*pre) {
                        self.grad_slot(&mut grads, *pre).add_assign(&dz);
                    }
                    if self.needs(*bias) {
                        self.grad_slot(&mut grads, *bias).accumulate_row_sums(&dz);
                    }
                }
                Op::Relu(a) => {
                    if self.needs(*a) {
                        let x = &self.nodes[a.0].value;
                        let dg = g.zip_map(x, |gi, xi| if xi > 0.0 { gi } else { 0.0 });
                        self.grad_slot(&mut grads, *a).add_assign(&dg);
                    }
                }
                Op::SoftmaxRows(a) => {
                    if self.needs(*a) {
                        let y = &self.nodes[i].value;
                        let mut dg = Matrix::zeros(g.rows(), g.cols());
                        for r in 0..g.rows() {
                            let dot: f32 = g
                                .row(r)
                                .iter()
                                .zip(y.row(r).iter())
                                .map(|(&gi, &yi)| gi * yi)
                                .sum();
                            for c in 0..g.cols() {
                                dg.set(r, c, y.at(r, c) * (g.at(r, c) - dot));
                            }
                        }
                        self.grad_slot(&mut grads, *a).add_assign(&dg);
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = self.nodes[p.0].value.cols();
                        if self.needs(p) {
                            let gp = g.slice_cols(off, off + w);
                            self.grad_slot(&mut grads, p).add_assign(&gp);
                        }
                        off += w;
                    }
                }
                Op::ConcatRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let h = self.nodes[p.0].value.rows();
                        if self.needs(p) {
                            let gp = g.slice_rows(off, off + h);
                            self.grad_slot(&mut grads, p).add_assign(&gp);
                        }
                        off += h;
                    }
                }
                Op::SliceCols(a, c0) => {
                    if self.needs(*a) {
                        let w = self.nodes[i].value.cols();
                        let kernel = simd::active();
                        let ga = self.grad_slot(&mut grads, *a);
                        for r in 0..g.rows() {
                            kernel.axpy(1.0, g.row(r), &mut ga.row_mut(r)[*c0..c0 + w]);
                        }
                    }
                }
                Op::Row(a, r) => {
                    if self.needs(*a) {
                        let ga = self.grad_slot(&mut grads, *a);
                        simd::active().axpy(1.0, g.row(0), ga.row_mut(*r));
                    }
                }
                Op::Transpose(a) => {
                    if self.needs(*a) {
                        self.grad_slot(&mut grads, *a).add_assign(&g.transpose());
                    }
                }
                Op::MeanAll(a) => {
                    if self.needs(*a) {
                        let n = self.nodes[a.0].value.len() as f32;
                        let gs = g.at(0, 0) / n;
                        let shape = self.nodes[a.0].value.shape();
                        let dg = Matrix::full(shape.0, shape.1, gs);
                        self.grad_slot(&mut grads, *a).add_assign(&dg);
                    }
                }
                Op::SumAll(a) => {
                    if self.needs(*a) {
                        let gs = g.at(0, 0);
                        let shape = self.nodes[a.0].value.shape();
                        let dg = Matrix::full(shape.0, shape.1, gs);
                        self.grad_slot(&mut grads, *a).add_assign(&dg);
                    }
                }
                Op::MseLoss(a, target) => {
                    if self.needs(*a) {
                        let n = target.len() as f32;
                        let gs = g.at(0, 0) * 2.0 / n;
                        let diff = self.nodes[a.0].value.sub(target);
                        self.grad_slot(&mut grads, *a).add_scaled_assign(&diff, gs);
                    }
                }
                Op::KldLoss(q, p) => {
                    if self.needs(*q) {
                        let gs = g.at(0, 0);
                        let qv = &self.nodes[q.0].value;
                        let dg = p.zip_map(qv, |pi, qi| -gs * pi / qi);
                        self.grad_slot(&mut grads, *q).add_assign(&dg);
                    }
                }
                Op::BceWithLogitsLoss(z, y) => {
                    if self.needs(*z) {
                        let gs = g.at(0, 0) / y.len() as f32;
                        let zv = &self.nodes[z.0].value;
                        // d/dz = sigmoid(z) - y.
                        let dg = zv.zip_map(y, |zi, yi| gs * (1.0 / (1.0 + (-zi).exp()) - yi));
                        self.grad_slot(&mut grads, *z).add_assign(&dg);
                    }
                }
            }
        }
        out
    }

    fn grad_slot<'g>(&self, grads: &'g mut [Option<Matrix>], v: Var) -> &'g mut Matrix {
        let (r, c) = self.nodes[v.0].value.shape();
        grads[v.0].get_or_insert_with(|| Matrix::zeros(r, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::gradcheck;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn forward_values_compose() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let a = g.constant(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let b = g.constant(Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]));
        let c = g.matmul(a, b);
        let d = g.scale(c, 3.0);
        assert_eq!(g.value(d).data(), &[3.0, 6.0]);
    }

    #[test]
    fn param_cache_returns_same_var() {
        let mut ps = ParamSet::new();
        let id = ps.register("w", Matrix::zeros(1, 1));
        let mut g = Graph::new(&ps);
        assert_eq!(g.param(id), g.param(id));
    }

    #[test]
    fn backward_through_matmul_chain() {
        // loss = sum(x W), dL/dW = x^T 1.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut g = Graph::new(&ps);
        let x = g.constant(Matrix::from_vec(1, 2, vec![5.0, 7.0]));
        let wv = g.param(w);
        let y = g.matmul(x, wv);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert_eq!(grads.get(w).data(), &[5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn shared_param_grads_accumulate() {
        // loss = sum(w) + sum(w) => grad = 2.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let mut g = Graph::new(&ps);
        let wv = g.param(w);
        let s1 = g.sum_all(wv);
        let s2 = g.sum_all(wv);
        let loss = g.add(s1, s2);
        let grads = g.backward(loss);
        assert_eq!(grads.get(w).data(), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_from_non_scalar_panics() {
        let ps = ParamSet::new();
        let g2 = {
            let mut g = Graph::new(&ps);
            let a = g.constant(Matrix::zeros(2, 2));
            (g, a)
        };
        let (g, a) = g2;
        let _ = g.backward(a);
    }

    // ---- finite-difference gradient checks, one per differentiable op ------

    #[test]
    fn gradcheck_matmul() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::xavier_uniform(&mut rng(), 3, 4));
        let x = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.1 + 0.05);
        gradcheck(&mut ps, w, 1e-2, 2e-2, |g| {
            let xv = g.constant(x.clone());
            let wv = g.param(w);
            let y = g.matmul(xv, wv);
            g.sum_all(y)
        });
    }

    #[test]
    fn gradcheck_tanh_sigmoid_relu() {
        for act in 0..3 {
            let mut ps = ParamSet::new();
            let w = ps.register("w", crate::init::uniform(&mut rng(), 2, 3, 0.8));
            gradcheck(&mut ps, w, 1e-2, 2e-2, move |g| {
                let wv = g.param(w);
                let y = match act {
                    0 => g.tanh(wv),
                    1 => g.sigmoid(wv),
                    _ => {
                        // Shift away from the ReLU kink so finite differences
                        // are valid.
                        let s = g.add_scalar(wv, 2.0);
                        g.relu(s)
                    }
                };
                g.sum_all(y)
            });
        }
    }

    #[test]
    fn gradcheck_softmax() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::uniform(&mut rng(), 2, 4, 1.0));
        // Weighted sum to give asymmetric upstream gradients.
        let weights = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as f32 * 0.3 + 0.1);
        gradcheck(&mut ps, w, 1e-2, 2e-2, move |g| {
            let wv = g.param(w);
            let s = g.softmax_rows(wv);
            let c = g.constant(weights.clone());
            let weighted = g.mul(s, c);
            g.sum_all(weighted)
        });
    }

    #[test]
    fn gradcheck_mul_sub_broadcast_scale() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::uniform(&mut rng(), 3, 2, 0.9));
        let b = ps.register("b", crate::init::uniform(&mut rng(), 1, 2, 0.9));
        for target in [w, b] {
            gradcheck(&mut ps.clone(), target, 1e-2, 2e-2, move |g| {
                let wv = g.param(w);
                let bv = g.param(b);
                let y = g.add_row_broadcast(wv, bv);
                let z = g.mul(y, y);
                let s = g.scale(z, 0.5);
                let t = g.constant(Matrix::full(3, 2, 0.3));
                let d = g.sub(s, t);
                g.mean_all(d)
            });
        }
    }

    #[test]
    fn gradcheck_concat_and_slice() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::uniform(&mut rng(), 2, 4, 0.8));
        gradcheck(&mut ps, w, 1e-2, 2e-2, |g| {
            let wv = g.param(w);
            let left = g.slice_cols(wv, 0, 2);
            let right = g.slice_cols(wv, 2, 4);
            let prod = g.mul(left, right);
            let stacked = g.concat_rows(&[prod, prod]);
            let wide = g.concat_cols(&[stacked, stacked]);
            let r = g.row(wide, 1);
            let t = g.transpose(r);
            g.sum_all(t)
        });
    }

    #[test]
    fn gradcheck_matmul_bt() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::xavier_uniform(&mut rng(), 4, 3));
        let x = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 * 0.1 + 0.05);
        // Check gradients through both operands: once with w as B, once as A.
        gradcheck(&mut ps.clone(), w, 1e-2, 2e-2, {
            let x = x.clone();
            move |g| {
                let xv = g.constant(x.clone());
                let wv = g.param(w);
                let y = g.matmul_bt(xv, wv);
                g.sum_all(y)
            }
        });
        gradcheck(&mut ps, w, 1e-2, 2e-2, move |g| {
            let xv = g.constant(x.clone());
            let wv = g.param(w);
            let y = g.matmul_bt(wv, xv);
            g.sum_all(y)
        });
    }

    #[test]
    fn matmul_bt_matches_transpose_then_matmul() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let a = g.constant(Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32 * 0.5));
        let b = g.constant(Matrix::from_fn(4, 3, |r, c| (r + c) as f32 * 0.25));
        let direct = g.matmul_bt(a, b);
        let bt = g.transpose(b);
        let via_transpose = g.matmul(a, bt);
        assert_eq!(g.value(direct).data(), g.value(via_transpose).data());
    }

    #[test]
    fn gradcheck_fused_gates() {
        for gate in 0..2 {
            let mut ps = ParamSet::new();
            let w = ps.register("w", crate::init::uniform(&mut rng(), 3, 2, 0.8));
            let b = ps.register("b", crate::init::uniform(&mut rng(), 1, 2, 0.8));
            for target in [w, b] {
                gradcheck(&mut ps.clone(), target, 1e-2, 2e-2, move |g| {
                    let wv = g.param(w);
                    let bv = g.param(b);
                    let y = if gate == 0 {
                        g.sigmoid_gate(wv, bv)
                    } else {
                        g.tanh_gate(wv, bv)
                    };
                    // Square to give asymmetric upstream gradients.
                    let z = g.mul(y, y);
                    g.sum_all(z)
                });
            }
        }
    }

    #[test]
    fn fused_gates_match_broadcast_then_activation() {
        let mut ps = ParamSet::new();
        let b = ps.register("b", crate::init::uniform(&mut rng(), 1, 3, 0.5));
        let mut g = Graph::new(&ps);
        let x = g.constant(Matrix::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.4));
        let bv = g.param(b);
        let fused_sig = g.sigmoid_gate(x, bv);
        let fused_tanh = g.tanh_gate(x, bv);
        let pre = g.add_row_broadcast(x, bv);
        let unfused_sig = g.sigmoid(pre);
        let unfused_tanh = g.tanh(pre);
        for i in 0..6 {
            assert_eq!(
                g.value(fused_sig).data()[i].to_bits(),
                g.value(unfused_sig).data()[i].to_bits()
            );
            assert_eq!(
                g.value(fused_tanh).data()[i].to_bits(),
                g.value(unfused_tanh).data()[i].to_bits()
            );
        }
    }

    #[test]
    fn gradcheck_mse_loss() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::uniform(&mut rng(), 2, 3, 1.0));
        let target = Matrix::from_fn(2, 3, |r, c| (r as f32 - c as f32) * 0.2);
        gradcheck(&mut ps, w, 1e-2, 2e-2, move |g| {
            let wv = g.param(w);
            let y = g.tanh(wv);
            g.mse_loss(y, &target)
        });
    }

    #[test]
    fn gradcheck_kld_loss() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::uniform(&mut rng(), 1, 5, 1.0));
        let mut p = Matrix::from_vec(1, 5, vec![1e-5, 1e-5, 1.0 - 4e-5, 1e-5, 1e-5]);
        // Make p a proper distribution (it already is by construction).
        let z: f32 = p.data().iter().sum();
        for v in p.data_mut() {
            *v /= z;
        }
        gradcheck(&mut ps, w, 1e-2, 2e-2, move |g| {
            let wv = g.param(w);
            let q = g.softmax_rows(wv);
            g.kld_loss(q, &p)
        });
    }

    #[test]
    fn gradcheck_one_minus() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::uniform(&mut rng(), 1, 4, 0.9));
        gradcheck(&mut ps, w, 1e-2, 2e-2, |g| {
            let wv = g.param(w);
            let z = g.sigmoid(wv);
            let om = g.one_minus(z);
            let p = g.mul(om, om);
            g.sum_all(p)
        });
    }

    #[test]
    fn gradcheck_bce_with_logits() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", crate::init::uniform(&mut rng(), 1, 4, 1.5));
        let y = Matrix::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.5]);
        gradcheck(&mut ps, w, 1e-2, 2e-2, move |g| {
            let wv = g.param(w);
            g.bce_with_logits_loss(wv, &y)
        });
    }

    #[test]
    fn bce_matches_naive_formula_for_moderate_logits() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let z = g.constant(Matrix::from_vec(1, 2, vec![0.5, -1.2]));
        let y = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let loss = g.bce_with_logits_loss(z, &y);
        let p = |z: f32| 1.0 / (1.0 + (-z).exp());
        let expect = (-(p(0.5).ln()) + -((1.0 - p(-1.2)).ln())) / 2.0;
        assert!((g.scalar(loss) - expect).abs() < 1e-5);
    }

    #[test]
    fn bce_stable_for_huge_logits() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let z = g.constant(Matrix::from_vec(1, 2, vec![500.0, -500.0]));
        let y = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let loss = g.bce_with_logits_loss(z, &y);
        assert!(g.scalar(loss).is_finite());
        assert!(g.scalar(loss) < 1e-3);
    }

    #[test]
    fn kld_of_identical_distributions_is_zero() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let logits = g.constant(Matrix::from_vec(1, 3, vec![0.3, -0.2, 1.0]));
        let q = g.softmax_rows(logits);
        let p = g.value(q).clone();
        let loss = g.kld_loss(q, &p);
        assert!(g.scalar(loss).abs() < 1e-6);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let a = g.constant(Matrix::full(2, 2, 0.7));
        let loss = g.mse_loss(a, &Matrix::full(2, 2, 0.7));
        assert_eq!(g.scalar(loss), 0.0);
    }
}
