//! Finite-difference gradient checking, shared by this crate's tests and by
//! downstream crates verifying their model wiring.

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};
use crate::tape::{Graph, Var};

/// Verifies the analytic gradient of `build`'s scalar output with respect to
/// parameter `target` against central finite differences.
///
/// `build` must construct the same computation every call (it is re-run with
/// perturbed parameter values). `eps` is the perturbation size; `tol` the
/// allowed relative error per entry (absolute for near-zero gradients).
///
/// # Panics
/// Panics with a diagnostic message on the first mismatching entry.
pub fn gradcheck<F>(params: &mut ParamSet, target: ParamId, eps: f32, tol: f32, build: F)
where
    F: Fn(&mut Graph) -> Var,
{
    // Analytic gradient at the current parameter values.
    let analytic = {
        let mut g = Graph::new(params);
        let loss = build(&mut g);
        let grads = g.backward(loss);
        grads.get(target).clone()
    };

    let (rows, cols) = params.value(target).shape();
    let mut numeric = Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let orig = params.value(target).at(r, c);

            params.value_mut(target).set(r, c, orig + eps);
            let lp = eval_loss(params, &build);
            params.value_mut(target).set(r, c, orig - eps);
            let lm = eval_loss(params, &build);
            params.value_mut(target).set(r, c, orig);

            numeric.set(r, c, (lp - lm) / (2.0 * eps));
        }
    }

    for r in 0..rows {
        for c in 0..cols {
            let a = analytic.at(r, c);
            let n = numeric.at(r, c);
            let denom = a.abs().max(n.abs()).max(1.0);
            let rel = (a - n).abs() / denom;
            assert!(
                rel <= tol,
                "gradcheck failed at ({r},{c}): analytic={a} numeric={n} rel={rel}"
            );
        }
    }
}

fn eval_loss<F>(params: &ParamSet, build: &F) -> f32
where
    F: Fn(&mut Graph) -> Var,
{
    let mut g = Graph::new(params);
    let loss = build(&mut g);
    g.scalar(loss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradcheck_passes_on_simple_quadratic() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 2, vec![0.5, -0.3]));
        gradcheck(&mut ps, w, 1e-3, 1e-3, |g| {
            let wv = g.param(w);
            let sq = g.mul(wv, wv);
            g.sum_all(sq)
        });
    }

    #[test]
    #[should_panic(expected = "gradcheck failed")]
    fn gradcheck_catches_wrong_gradient() {
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![0.7]));
        // loss value is w^2 but the recorded op chain computes 3·w (different
        // gradient), simulated by building a graph whose loss ignores part of
        // the dependency: scale has gradient 3, numeric sees 2w = 1.4.
        gradcheck(&mut ps, w, 1e-3, 1e-3, |g| {
            let wv = g.param(w);
            // Analytic path: d(3w)/dw = 3; numeric path recomputes 3w too, so
            // to force a mismatch we compare against a *different* function of
            // the parameter value injected as a constant.
            let huge = g.scale(wv, 3.0);
            let c = g.constant(Matrix::from_vec(1, 1, vec![g.value(wv).at(0, 0).powi(2)]));
            let diff = g.mul(huge, c);
            g.sum_all(diff)
        });
    }
}
