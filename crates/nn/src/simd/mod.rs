//! Runtime-dispatched SIMD kernels with a bit-identity contract.
//!
//! This is the workspace's only sanctioned-unsafe module (lint rule R10):
//! the crate root re-opens `unsafe_code` for `simd` alone, and every
//! `unsafe` site below carries a `// SAFETY:` justification that the lint
//! gate verifies mechanically.
//!
//! # Determinism contract
//!
//! Every backend must return **bit-identical** results to [`scalar`], the
//! safe reference implementation, on every input — not merely close. For
//! reduction kernels the reference fixes the floating-point evaluation
//! order that vector units natively produce: [`LANES`]-wide blocked
//! accumulation over full chunks, a fixed-order sequential reduction of the
//! lane accumulators, then a sequential tail. For elementwise kernels the
//! reference fixes the per-element instruction sequence: separate multiply
//! and add (never FMA, which would change rounding), exactly-rounded
//! `div`/`sqrt`, and scalar libm transcendentals in every backend.
//! `tests/simd_parity.rs` and `tests/proptest_simd.rs` pin the contract
//! with `f32::to_bits` comparisons across backends and pinned fingerprints.
//!
//! # Length contract
//!
//! Mismatched slice lengths are a caller bug: every kernel
//! `debug_assert!`s that its operands agree. In release builds (where
//! `debug_assert!` compiles out) the kernels degrade deterministically by
//! operating over the *common prefix* — the shortest operand's length —
//! never reading or writing past it; a `dot` of empty slices is `0.0`.
//!
//! # Dispatch
//!
//! [`Backend::select`] probes the CPU once at runtime and picks the widest
//! backend available; hot paths call [`active`], which layers two override
//! mechanisms over `select` (a programmatic [`force_backend`] and the
//! `LEAD_SIMD_FORCE` environment variable) so parity tests and CI can pin a
//! backend. All dispatch is safe: the unsafe `target_feature` entry points
//! are private to their backend modules, and the only way to obtain
//! [`Backend::Avx2`] is through feature detection.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The blocked accumulation width shared by every backend (f32 lanes in a
/// 256-bit vector). Part of the bit-identity contract: changing it changes
/// the summation order, hence the results.
pub const LANES: usize = 8;

/// Coefficients for one [`Kernel::adam_update`] call: the optimiser
/// precomputes the step-dependent bias corrections once per step and the
/// kernel applies the same per-element update to every parameter buffer.
#[derive(Debug, Clone, Copy)]
pub struct AdamCoeffs {
    /// First-moment decay rate (`β₁`).
    pub beta1: f32,
    /// Second-moment decay rate (`β₂`).
    pub beta2: f32,
    /// First-moment bias correction for the current step, `1 − β₁ᵗ`.
    pub bc1: f32,
    /// Second-moment bias correction for the current step, `1 − β₂ᵗ`.
    pub bc2: f32,
    /// Learning rate.
    pub lr: f32,
    /// Denominator stabiliser (`ε`).
    pub eps: f32,
    /// Decoupled (AdamW) weight decay; `0.0` disables it.
    pub weight_decay: f32,
}

/// The kernel surface the network spends its time in.
///
/// Implementations promise bit-identical output to the scalar reference on
/// every input (see the module docs for the fixed evaluation orders), and
/// share the release-mode common-prefix length contract. All output slices
/// are fully overwritten over the common prefix; accumulating kernels
/// ([`Kernel::axpy`], [`Kernel::matmul_acc`], [`Kernel::adam_update`]) read
/// and update their destinations instead.
pub trait Kernel {
    /// A stable, human-readable backend name for logs and fingerprints.
    fn name(&self) -> &'static str;

    /// The dot product of `a` and `b` in the blocked evaluation order
    /// (empty input yields `0.0`).
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// `y[i] += a * x[i]` — the accumulation primitive shared by matrix
    /// products, gradient accumulation, and SGD.
    fn axpy(&self, a: f32, x: &[f32], y: &mut [f32]);

    /// Elementwise sum `out[i] = a[i] + b[i]`.
    fn add(&self, a: &[f32], b: &[f32], out: &mut [f32]);

    /// Elementwise difference `out[i] = a[i] - b[i]`.
    fn sub(&self, a: &[f32], b: &[f32], out: &mut [f32]);

    /// Elementwise (Hadamard) product `out[i] = a[i] * b[i]`.
    fn mul(&self, a: &[f32], b: &[f32], out: &mut [f32]);

    /// In-place scaling `x[i] *= s`.
    fn scale(&self, x: &mut [f32], s: f32);

    /// Elementwise logistic sigmoid `out[i] = 1/(1+e^{-a[i]})`. Evaluated
    /// by the same scalar libm call in every backend: a vectorised `exp`
    /// approximation would break bit-identity.
    fn sigmoid(&self, a: &[f32], out: &mut [f32]);

    /// Elementwise hyperbolic tangent; scalar libm in every backend, like
    /// [`Kernel::sigmoid`].
    fn tanh(&self, a: &[f32], out: &mut [f32]);

    /// Fused affine-then-activation over a row:
    /// `out[i] = sigmoid(pre[i] + bias[i])`. The add is exactly rounded and
    /// may be vectorised; the activation stays scalar.
    fn sigmoid_gate(&self, pre: &[f32], bias: &[f32], out: &mut [f32]);

    /// Fused affine-then-activation over a row:
    /// `out[i] = tanh(pre[i] + bias[i])`.
    fn tanh_gate(&self, pre: &[f32], bias: &[f32], out: &mut [f32]);

    /// Sigmoid backward `out[i] = g[i] * y[i] * (1 - y[i])` (where `y` is
    /// the forward output), left-associated.
    fn sigmoid_bwd(&self, g: &[f32], y: &[f32], out: &mut [f32]);

    /// Tanh backward `out[i] = g[i] * (1 - y[i] * y[i])`.
    fn tanh_bwd(&self, g: &[f32], y: &[f32], out: &mut [f32]);

    /// Blocked matrix-multiply accumulate `out[m×n] += a[m×k] × b[k×n]`
    /// (row-major), in the i-k-j loop order with an [`Kernel::axpy`] inner
    /// loop and an exact-zero sparsity skip on `a`'s entries.
    fn matmul_acc(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// One Adam/AdamW update over parameter buffer `p` with gradient `g`
    /// and moment buffers `m`/`v`, all updated in place.
    fn adam_update(&self, p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], c: &AdamCoeffs);
}

/// An available kernel backend, selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The safe scalar reference implementation (always available).
    Scalar,
    /// 256-bit AVX2 (x86-64 only; constructed only after feature detection).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Backend {
    /// Picks the widest backend the running CPU supports. Deterministic for
    /// a given machine; the result is bit-identical across backends either
    /// way, so selection never changes observable output.
    pub fn select() -> Backend {
        match Backend::try_avx2() {
            Some(b) => b,
            None => Backend::Scalar,
        }
    }

    /// The AVX2 backend, when the running CPU supports it. `None` on other
    /// architectures or older x86-64 parts; this constructor is the only
    /// source of [`Backend::Avx2`], which is what makes dispatch safe.
    pub fn try_avx2() -> Option<Backend> {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(Backend::Avx2);
        }
        None
    }

    /// Every backend available on the running CPU, scalar first. Parity
    /// tests iterate this to compare all implementations pairwise.
    pub fn available() -> Vec<Backend> {
        let mut out = vec![Backend::Scalar];
        if let Some(b) = Backend::try_avx2() {
            out.push(b);
        }
        out
    }
}

/// Programmatic backend override: `0` = none, `1` = scalar, `2` = AVX2.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The resolved default backend (`LEAD_SIMD_FORCE` or [`Backend::select`]),
/// computed once: the environment is read a single time per process.
static DEFAULT: OnceLock<Backend> = OnceLock::new();

fn default_backend() -> Backend {
    match std::env::var("LEAD_SIMD_FORCE").as_deref() {
        Ok("scalar") => Backend::Scalar,
        Ok("avx2") => match Backend::try_avx2() {
            Some(b) => b,
            // Requested but unsupported: fall back to the safe reference
            // rather than panicking — results are bit-identical anyway.
            None => Backend::Scalar,
        },
        // Unset or unrecognised: normal runtime selection.
        _ => Backend::select(),
    }
}

/// The backend every dispatched hot path uses, resolved in precedence
/// order: [`force_backend`] override, then the `LEAD_SIMD_FORCE`
/// environment variable (`"scalar"` or `"avx2"`, read once per process),
/// then [`Backend::select`]. Because all backends are bit-identical, the
/// choice never changes results — only throughput — which is exactly what
/// the cross-backend parity tests verify end to end.
pub fn active() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        1 => Backend::Scalar,
        #[cfg(target_arch = "x86_64")]
        // Re-derive through feature detection rather than constructing the
        // variant directly, keeping `try_avx2` the only `Avx2` source.
        2 => match Backend::try_avx2() {
            Some(b) => b,
            None => Backend::Scalar,
        },
        _ => *DEFAULT.get_or_init(default_backend),
    }
}

/// Forces every subsequent [`active`] call (on every thread) to the given
/// backend, or restores normal selection with `None`. A test/diagnostic
/// hook: cross-backend parity tests run the same fit once forced to
/// [`Backend::Scalar`] and once under normal selection and require byte
/// -identical artifacts. Takes effect immediately; it is process-global, so
/// concurrent tests relying on *different* forced backends would race —
/// which is harmless precisely because backends are bit-identical.
pub fn force_backend(b: Option<Backend>) {
    let code = match b {
        None => 0,
        Some(Backend::Scalar) => 1,
        #[cfg(target_arch = "x86_64")]
        Some(Backend::Avx2) => 2,
    };
    FORCED.store(code, Ordering::Relaxed);
}

impl Kernel for Backend {
    fn name(&self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => "avx2",
        }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dot length mismatch");
        match self {
            Backend::Scalar => scalar::dot(a, b),
            // SAFETY: `Backend::Avx2` is only ever constructed by
            // `Backend::try_avx2` after `is_x86_feature_detected!("avx2")`
            // confirmed the running CPU executes AVX2 instructions, which is
            // the sole precondition of `avx2::dot`.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::dot(a, b) },
        }
    }

    fn axpy(&self, a: f32, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), y.len(), "axpy length mismatch");
        match self {
            Backend::Scalar => scalar::axpy(a, x, y),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::axpy`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::axpy(a, x, y) },
        }
    }

    fn add(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert!(
            a.len() == b.len() && b.len() == out.len(),
            "add length mismatch"
        );
        match self {
            Backend::Scalar => scalar::add(a, b, out),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::add`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::add(a, b, out) },
        }
    }

    fn sub(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert!(
            a.len() == b.len() && b.len() == out.len(),
            "sub length mismatch"
        );
        match self {
            Backend::Scalar => scalar::sub(a, b, out),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::sub`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::sub(a, b, out) },
        }
    }

    fn mul(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        debug_assert!(
            a.len() == b.len() && b.len() == out.len(),
            "mul length mismatch"
        );
        match self {
            Backend::Scalar => scalar::mul(a, b, out),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::mul`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::mul(a, b, out) },
        }
    }

    fn scale(&self, x: &mut [f32], s: f32) {
        match self {
            Backend::Scalar => scalar::scale(x, s),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::scale`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::scale(x, s) },
        }
    }

    fn sigmoid(&self, a: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), out.len(), "sigmoid length mismatch");
        // Transcendental-only kernel: every backend runs the same scalar
        // libm loop, because no vector `exp` is bit-identical to libm.
        scalar::sigmoid(a, out);
    }

    fn tanh(&self, a: &[f32], out: &mut [f32]) {
        debug_assert_eq!(a.len(), out.len(), "tanh length mismatch");
        // Transcendental-only kernel: scalar libm in every backend.
        scalar::tanh(a, out);
    }

    fn sigmoid_gate(&self, pre: &[f32], bias: &[f32], out: &mut [f32]) {
        debug_assert!(
            pre.len() == bias.len() && bias.len() == out.len(),
            "sigmoid_gate length mismatch"
        );
        match self {
            Backend::Scalar => scalar::sigmoid_gate(pre, bias, out),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::sigmoid_gate`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::sigmoid_gate(pre, bias, out) },
        }
    }

    fn tanh_gate(&self, pre: &[f32], bias: &[f32], out: &mut [f32]) {
        debug_assert!(
            pre.len() == bias.len() && bias.len() == out.len(),
            "tanh_gate length mismatch"
        );
        match self {
            Backend::Scalar => scalar::tanh_gate(pre, bias, out),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::tanh_gate`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::tanh_gate(pre, bias, out) },
        }
    }

    fn sigmoid_bwd(&self, g: &[f32], y: &[f32], out: &mut [f32]) {
        debug_assert!(
            g.len() == y.len() && y.len() == out.len(),
            "sigmoid_bwd length mismatch"
        );
        match self {
            Backend::Scalar => scalar::sigmoid_bwd(g, y, out),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::sigmoid_bwd`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::sigmoid_bwd(g, y, out) },
        }
    }

    fn tanh_bwd(&self, g: &[f32], y: &[f32], out: &mut [f32]) {
        debug_assert!(
            g.len() == y.len() && y.len() == out.len(),
            "tanh_bwd length mismatch"
        );
        match self {
            Backend::Scalar => scalar::tanh_bwd(g, y, out),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::tanh_bwd`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::tanh_bwd(g, y, out) },
        }
    }

    fn matmul_acc(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert!(
            a.len() == m * k && b.len() == k * n && out.len() == m * n,
            "matmul_acc dimension mismatch"
        );
        match self {
            Backend::Scalar => scalar::matmul_acc(a, b, out, m, k, n),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::matmul_acc`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::matmul_acc(a, b, out, m, k, n) },
        }
    }

    fn adam_update(&self, p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], c: &AdamCoeffs) {
        debug_assert!(
            p.len() == g.len() && g.len() == m.len() && m.len() == v.len(),
            "adam_update length mismatch"
        );
        match self {
            Backend::Scalar => scalar::adam_update(p, g, m, v, c),
            // SAFETY: `Backend::Avx2` exists only after `try_avx2`'s
            // feature detection — `avx2::adam_update`'s sole precondition.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::adam_update(p, g, m, v, c) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_dot_matches_naive_on_exact_inputs() {
        // Powers of two: every evaluation order is exact, so the blocked
        // reference must equal the naive sum bit-for-bit.
        let a: Vec<f32> = (0..19).map(|i| (i % 8) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..19).map(|i| (i % 4) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(Backend::Scalar.dot(&a, &b).to_bits(), naive.to_bits());
    }

    #[test]
    fn dot_of_empty_slices_is_zero() {
        assert_eq!(Backend::Scalar.dot(&[], &[]).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "dot length mismatch")]
    fn mismatched_dot_lengths_are_a_debug_panic() {
        // Regression test for the silent common-prefix truncation `dot`
        // used to perform: mismatched operands are a caller bug, caught in
        // debug builds. Release builds keep the deterministic common-prefix
        // behaviour documented on the module (not reachable from this
        // workspace's callers, which all pass equal lengths).
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0];
        let _ = Backend::Scalar.dot(&a, &b);
    }

    #[test]
    fn select_returns_an_available_backend() {
        let selected = Backend::select();
        assert!(Backend::available().contains(&selected));
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
    }

    #[test]
    fn force_backend_overrides_active_selection() {
        force_backend(Some(Backend::Scalar));
        assert_eq!(active(), Backend::Scalar);
        force_backend(None);
        assert!(Backend::available().contains(&active()));
    }

    #[test]
    fn elementwise_kernels_match_plain_loops_on_scalar() {
        let a = [1.5f32, -2.0, 0.25, 3.0, -0.5, 8.0, 1.0, -1.0, 0.125];
        let b = [0.5f32, 4.0, -2.0, 1.0, 0.75, -0.25, 2.0, 3.0, -8.0];
        let k = Backend::Scalar;
        let mut out = [0.0f32; 9];
        k.add(&a, &b, &mut out);
        assert_eq!(out, [2.0, 2.0, -1.75, 4.0, 0.25, 7.75, 3.0, 2.0, -7.875]);
        k.sub(&a, &b, &mut out);
        assert_eq!(out, [1.0, -6.0, 2.25, 2.0, -1.25, 8.25, -1.0, -4.0, 8.125]);
        k.mul(&a, &b, &mut out);
        assert_eq!(out, [0.75, -8.0, -0.5, 3.0, -0.375, -2.0, 2.0, -3.0, -1.0]);
        let mut y = b;
        k.axpy(2.0, &a, &mut y);
        assert_eq!(y, [3.5, 0.0, -1.5, 7.0, -0.25, 15.75, 4.0, 1.0, -7.75]);
        let mut x = a;
        k.scale(&mut x, -2.0);
        assert_eq!(x, [-3.0, 4.0, -0.5, -6.0, 1.0, -16.0, -2.0, 2.0, -0.25]);
    }

    #[test]
    fn matmul_acc_matches_naive_product_on_exact_inputs() {
        // 2×3 × 3×2 with integer-valued entries: exact in f32 whatever the
        // evaluation order.
        let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [7.0f32, 8.0, 9.0, 10.0, 11.0, 12.0];
        let mut out = [0.0f32; 4];
        Backend::Scalar.matmul_acc(&a, &b, &mut out, 2, 3, 2);
        assert_eq!(out, [58.0, 64.0, 139.0, 154.0]);
        // Accumulates rather than overwrites.
        Backend::Scalar.matmul_acc(&a, &b, &mut out, 2, 3, 2);
        assert_eq!(out, [116.0, 128.0, 278.0, 308.0]);
    }

    #[test]
    fn gates_match_composed_reference() {
        let pre = [0.5f32, -1.0, 2.0, 0.0, -0.25];
        let bias = [0.25f32, 1.0, -2.0, 0.0, 0.25];
        let k = Backend::Scalar;
        let mut got = [0.0f32; 5];
        k.sigmoid_gate(&pre, &bias, &mut got);
        for ((&g, &p), &b) in got.iter().zip(&pre).zip(&bias) {
            let z = p + b;
            assert_eq!(g.to_bits(), (1.0 / (1.0 + (-z).exp())).to_bits());
        }
        k.tanh_gate(&pre, &bias, &mut got);
        for ((&g, &p), &b) in got.iter().zip(&pre).zip(&bias) {
            assert_eq!(g.to_bits(), (p + b).tanh().to_bits());
        }
    }

    #[test]
    fn adam_update_matches_reference_formula() {
        let c = AdamCoeffs {
            beta1: 0.9,
            beta2: 0.999,
            bc1: 1.0 - 0.9f32.powi(1),
            bc2: 1.0 - 0.999f32.powi(1),
            lr: 0.01,
            eps: 1e-8,
            weight_decay: 0.0,
        };
        let mut p = [0.0f32];
        let g = [123.0f32];
        let (mut m, mut v) = ([0.0f32], [0.0f32]);
        Backend::Scalar.adam_update(&mut p, &g, &mut m, &mut v, &c);
        // First bias-corrected step has magnitude ≈ lr regardless of
        // gradient scale.
        let first = p.first().copied().unwrap_or(f32::NAN);
        assert!((first.abs() - c.lr).abs() < 1e-4, "step {first}");
    }
}
