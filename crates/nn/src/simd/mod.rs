//! Runtime-dispatched SIMD kernels with a bit-identity contract.
//!
//! This is the workspace's only sanctioned-unsafe module (lint rule R10):
//! the crate root re-opens `unsafe_code` for `simd` alone, and every
//! `unsafe` site below carries a `// SAFETY:` justification that the lint
//! gate verifies mechanically.
//!
//! # Determinism contract
//!
//! Every backend must return **bit-identical** results to [`scalar`], the
//! safe reference implementation, on every input — not merely close. The
//! reference therefore fixes the floating-point evaluation order that
//! vector units natively produce: [`LANES`]-wide blocked accumulation over
//! full chunks, a fixed-order sequential reduction of the lane
//! accumulators, then a sequential tail. The AVX2 backend mirrors that
//! order exactly, using separate multiply and add instructions (never FMA,
//! which would change rounding). `tests/simd_parity.rs` pins the contract
//! with `f32::to_bits` comparisons across backends.
//!
//! # Dispatch
//!
//! [`Backend::select`] probes the CPU once at runtime and picks the widest
//! backend available; callers never name a concrete backend unless they are
//! testing parity. All dispatch is safe: the unsafe `target_feature` entry
//! points are private to their backend modules, and the only way to obtain
//! [`Backend::Avx2`] is through feature detection.

mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

/// The blocked accumulation width shared by every backend (f32 lanes in a
/// 256-bit vector). Part of the bit-identity contract: changing it changes
/// the summation order, hence the results.
pub const LANES: usize = 8;

/// A dot-product kernel backend.
///
/// Implementations promise bit-identical output to the scalar reference on
/// every input (see the module docs for the fixed evaluation order).
pub trait Kernel {
    /// A stable, human-readable backend name for logs and fingerprints.
    fn name(&self) -> &'static str;

    /// The dot product over the common prefix of `a` and `b` (trailing
    /// elements of the longer slice are ignored; empty input yields `0.0`).
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;
}

/// An available kernel backend, selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The safe scalar reference implementation (always available).
    Scalar,
    /// 256-bit AVX2 (x86-64 only; constructed only after feature detection).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Backend {
    /// Picks the widest backend the running CPU supports. Deterministic for
    /// a given machine; the result is bit-identical across backends either
    /// way, so selection never changes observable output.
    pub fn select() -> Backend {
        match Backend::try_avx2() {
            Some(b) => b,
            None => Backend::Scalar,
        }
    }

    /// The AVX2 backend, when the running CPU supports it. `None` on other
    /// architectures or older x86-64 parts; this constructor is the only
    /// source of [`Backend::Avx2`], which is what makes dispatch safe.
    pub fn try_avx2() -> Option<Backend> {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Some(Backend::Avx2);
        }
        None
    }

    /// Every backend available on the running CPU, scalar first. Parity
    /// tests iterate this to compare all implementations pairwise.
    pub fn available() -> Vec<Backend> {
        let mut out = vec![Backend::Scalar];
        if let Some(b) = Backend::try_avx2() {
            out.push(b);
        }
        out
    }
}

impl Kernel for Backend {
    fn name(&self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => "avx2",
        }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Backend::Scalar => scalar::dot(a, b),
            // SAFETY: `Backend::Avx2` is only ever constructed by
            // `Backend::try_avx2` after `is_x86_feature_detected!("avx2")`
            // confirmed the running CPU executes AVX2 instructions, which is
            // the sole precondition of `avx2::dot`.
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::dot(a, b) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_dot_matches_naive_on_exact_inputs() {
        // Powers of two: every evaluation order is exact, so the blocked
        // reference must equal the naive sum bit-for-bit.
        let a: Vec<f32> = (0..19).map(|i| (i % 8) as f32 * 0.5).collect();
        let b: Vec<f32> = (0..19).map(|i| (i % 4) as f32 * 0.25).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(Backend::Scalar.dot(&a, &b).to_bits(), naive.to_bits());
    }

    #[test]
    fn dot_handles_empty_and_mismatched_lengths() {
        assert_eq!(Backend::Scalar.dot(&[], &[]).to_bits(), 0.0f32.to_bits());
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0];
        // Common prefix only: 1*4 + 2*5.
        assert_eq!(Backend::Scalar.dot(&a, &b).to_bits(), 14.0f32.to_bits());
    }

    #[test]
    fn select_returns_an_available_backend() {
        let selected = Backend::select();
        assert!(Backend::available().contains(&selected));
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(Backend::Scalar.name(), "scalar");
    }
}
