//! The 256-bit AVX2 backend (x86-64 only).
//!
//! Bit-identity with [`super::scalar`] holds by construction, kernel by
//! kernel:
//!
//! - [`dot`] performs the same per-lane `mul` + `add` pair on the same
//!   [`LANES`]-wide chunks (separate `_mm256_mul_ps`/`_mm256_add_ps` — never
//!   FMA, whose single rounding would diverge from the reference), folds the
//!   stored accumulator in the same ascending lane order, and runs the same
//!   sequential scalar tail.
//! - The elementwise kernels ([`axpy`], [`add`], [`sub`], [`mul`],
//!   [`scale`], [`sigmoid_bwd`], [`tanh_bwd`], [`adam_update`]) have no
//!   cross-element data flow; each vector instruction applies the scalar
//!   reference's exact operation sequence to eight elements at once, and
//!   every individual operation used (`add`, `sub`, `mul`, `div`, `sqrt`)
//!   is IEEE correctly rounded, so each element's bits are unchanged.
//! - The gate kernels ([`sigmoid_gate`], [`tanh_gate`]) vectorise only the
//!   exactly-rounded bias add; the transcendental activation is the same
//!   scalar libm call the reference makes, element by element.
//! - Every kernel delegates its sub-chunk tail to the scalar reference
//!   itself, so tails are identical by definition rather than by imitation.
//!
//! All unsafety is confined to this file and justified per site; the safe
//! dispatch wrapper in [`super`] only reaches it after feature detection.

#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_div_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_sqrt_ps, _mm256_storeu_ps, _mm256_sub_ps,
};

use super::{scalar, AdamCoeffs, LANES};

/// Loads one LANES-wide chunk produced by `chunks_exact(LANES)`.
///
/// # Safety
///
/// The caller must be in an AVX2 `target_feature` context, and `k` must be
/// exactly `LANES` elements long (guaranteed by `chunks_exact(LANES)`).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// callers uphold the AVX2 context and the exact-LANES length above.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn load(k: &[f32]) -> __m256 {
    debug_assert_eq!(k.len(), LANES);
    // SAFETY: `k` points at exactly LANES = 8 initialised, readable `f32`s —
    // the full 256-bit span `_mm256_loadu_ps` reads. `loadu` permits
    // unaligned addresses, so slice alignment is sufficient.
    unsafe { _mm256_loadu_ps(k.as_ptr()) }
}

/// Stores a 256-bit vector into one LANES-wide mutable chunk.
///
/// # Safety
///
/// The caller must be in an AVX2 `target_feature` context, and `k` must be
/// exactly `LANES` elements long (guaranteed by `chunks_exact_mut(LANES)`).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// callers uphold the AVX2 context and the exact-LANES length above.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn store(k: &mut [f32], v: __m256) {
    debug_assert_eq!(k.len(), LANES);
    // SAFETY: `k` points at exactly LANES = 8 writable `f32`s — the full
    // 256-bit span `_mm256_storeu_ps` writes; `storeu` permits unaligned
    // addresses, so slice alignment is sufficient.
    unsafe { _mm256_storeu_ps(k.as_mut_ptr(), v) }
}

/// Dot product over the common prefix of `a` and `b`, matching the scalar
/// reference bit-for-bit.
///
/// # Safety
///
/// The running CPU must support AVX2. The only caller is the `Backend`
/// dispatcher, which guards this with `is_x86_feature_detected!("avx2")`.
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// executing it on a CPU without AVX2 would be undefined behaviour, so the
// precondition above is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = _mm256_setzero_ps();
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        // SAFETY: in an AVX2 context (this fn's own target_feature), and
        // `ka`/`kb` come from `chunks_exact(LANES)`.
        let (va, vb) = unsafe { (load(ka), load(kb)) };
        // Separate mul + add (never FMA) keeps rounding identical to the
        // scalar reference.
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
    }
    let mut lanes = [0.0f32; LANES];
    // SAFETY: in an AVX2 context; `lanes` is a LANES = 8 element array.
    unsafe { store(&mut lanes, acc) };
    // Identical fixed-order reduction and tail to `scalar::dot`.
    let mut out = 0.0f32;
    for &lane in &lanes {
        out += lane;
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        out += x * y;
    }
    out
}

/// `y += a * x` (separate mul + add per lane, tail delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len().min(y.len());
    let (x, y) = (&x[..n], &mut y[..n]);
    let va = _mm256_set1_ps(a);
    let mut cx = x.chunks_exact(LANES);
    let mut cy = y.chunks_exact_mut(LANES);
    for (kx, ky) in cx.by_ref().zip(cy.by_ref()) {
        // SAFETY: in an AVX2 context; chunks are exactly LANES long.
        let (vx, vy) = unsafe { (load(kx), load(ky)) };
        let r = _mm256_add_ps(vy, _mm256_mul_ps(va, vx));
        // SAFETY: in an AVX2 context; `ky` is exactly LANES long.
        unsafe { store(ky, r) };
    }
    scalar::axpy(a, cx.remainder(), cy.into_remainder());
}

/// `out = a + b` elementwise (tail delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    let (a, b, out) = (&a[..n], &b[..n], &mut out[..n]);
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut co = out.chunks_exact_mut(LANES);
    for ((ka, kb), ko) in ca.by_ref().zip(cb.by_ref()).zip(co.by_ref()) {
        // SAFETY: in an AVX2 context; chunks are exactly LANES long.
        let r = unsafe { _mm256_add_ps(load(ka), load(kb)) };
        // SAFETY: in an AVX2 context; `ko` is exactly LANES long.
        unsafe { store(ko, r) };
    }
    scalar::add(ca.remainder(), cb.remainder(), co.into_remainder());
}

/// `out = a - b` elementwise (tail delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    let (a, b, out) = (&a[..n], &b[..n], &mut out[..n]);
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut co = out.chunks_exact_mut(LANES);
    for ((ka, kb), ko) in ca.by_ref().zip(cb.by_ref()).zip(co.by_ref()) {
        // SAFETY: in an AVX2 context; chunks are exactly LANES long.
        let r = unsafe { _mm256_sub_ps(load(ka), load(kb)) };
        // SAFETY: in an AVX2 context; `ko` is exactly LANES long.
        unsafe { store(ko, r) };
    }
    scalar::sub(ca.remainder(), cb.remainder(), co.into_remainder());
}

/// `out = a * b` elementwise (tail delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    let (a, b, out) = (&a[..n], &b[..n], &mut out[..n]);
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    let mut co = out.chunks_exact_mut(LANES);
    for ((ka, kb), ko) in ca.by_ref().zip(cb.by_ref()).zip(co.by_ref()) {
        // SAFETY: in an AVX2 context; chunks are exactly LANES long.
        let r = unsafe { _mm256_mul_ps(load(ka), load(kb)) };
        // SAFETY: in an AVX2 context; `ko` is exactly LANES long.
        unsafe { store(ko, r) };
    }
    scalar::mul(ca.remainder(), cb.remainder(), co.into_remainder());
}

/// `x *= s` in place (tail delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn scale(x: &mut [f32], s: f32) {
    let vs = _mm256_set1_ps(s);
    let mut cx = x.chunks_exact_mut(LANES);
    for kx in cx.by_ref() {
        // SAFETY: in an AVX2 context; `kx` is exactly LANES long.
        let r = unsafe { _mm256_mul_ps(load(kx), vs) };
        // SAFETY: in an AVX2 context; `kx` is exactly LANES long.
        unsafe { store(kx, r) };
    }
    scalar::scale(cx.into_remainder(), s);
}

/// Fused gate `out = sigmoid(pre + bias)`: the bias add is vectorised (an
/// exactly rounded operation), then the activation applies the same scalar
/// libm `exp` as the reference, element by element — vectorised
/// transcendental approximations would break bit-identity.
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn sigmoid_gate(pre: &[f32], bias: &[f32], out: &mut [f32]) {
    let n = pre.len().min(bias.len()).min(out.len());
    // SAFETY: in an AVX2 context; operands truncated to a common length.
    unsafe { add(&pre[..n], &bias[..n], &mut out[..n]) };
    scalar::sigmoid_in_place(&mut out[..n]);
}

/// Fused gate `out = tanh(pre + bias)`; see [`sigmoid_gate`] for the split
/// between the vectorised add and the scalar activation.
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn tanh_gate(pre: &[f32], bias: &[f32], out: &mut [f32]) {
    let n = pre.len().min(bias.len()).min(out.len());
    // SAFETY: in an AVX2 context; operands truncated to a common length.
    unsafe { add(&pre[..n], &bias[..n], &mut out[..n]) };
    scalar::tanh_in_place(&mut out[..n]);
}

/// Sigmoid backward `out = g * y * (1 - y)`, left-associated exactly like
/// the scalar reference (tail delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn sigmoid_bwd(g: &[f32], y: &[f32], out: &mut [f32]) {
    let n = g.len().min(y.len()).min(out.len());
    let (g, y, out) = (&g[..n], &y[..n], &mut out[..n]);
    let one = _mm256_set1_ps(1.0);
    let mut cg = g.chunks_exact(LANES);
    let mut cy = y.chunks_exact(LANES);
    let mut co = out.chunks_exact_mut(LANES);
    for ((kg, ky), ko) in cg.by_ref().zip(cy.by_ref()).zip(co.by_ref()) {
        // SAFETY: in an AVX2 context; chunks are exactly LANES long.
        let (vg, vy) = unsafe { (load(kg), load(ky)) };
        // (g * y) * (1 - y): same association as the scalar reference.
        let r = _mm256_mul_ps(_mm256_mul_ps(vg, vy), _mm256_sub_ps(one, vy));
        // SAFETY: in an AVX2 context; `ko` is exactly LANES long.
        unsafe { store(ko, r) };
    }
    scalar::sigmoid_bwd(cg.remainder(), cy.remainder(), co.into_remainder());
}

/// Tanh backward `out = g * (1 - y * y)` (tail delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn tanh_bwd(g: &[f32], y: &[f32], out: &mut [f32]) {
    let n = g.len().min(y.len()).min(out.len());
    let (g, y, out) = (&g[..n], &y[..n], &mut out[..n]);
    let one = _mm256_set1_ps(1.0);
    let mut cg = g.chunks_exact(LANES);
    let mut cy = y.chunks_exact(LANES);
    let mut co = out.chunks_exact_mut(LANES);
    for ((kg, ky), ko) in cg.by_ref().zip(cy.by_ref()).zip(co.by_ref()) {
        // SAFETY: in an AVX2 context; chunks are exactly LANES long.
        let (vg, vy) = unsafe { (load(kg), load(ky)) };
        let r = _mm256_mul_ps(vg, _mm256_sub_ps(one, _mm256_mul_ps(vy, vy)));
        // SAFETY: in an AVX2 context; `ko` is exactly LANES long.
        unsafe { store(ko, r) };
    }
    scalar::tanh_bwd(cg.remainder(), cy.remainder(), co.into_remainder());
}

/// Blocked `out += a × b` in the same i-k-j / axpy loop nest as the scalar
/// reference, including the exact-zero sparsity skip.
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn matmul_acc(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            // lint: allow(float-eq): exact-zero sparsity skip; a tolerance would change results
            if aik == 0.0 {
                continue;
            }
            // SAFETY: in an AVX2 context (this fn's own target_feature).
            unsafe { axpy(aik, &b[kk * n..(kk + 1) * n], out_row) };
        }
    }
}

/// One Adam/AdamW update, vectorised end to end: every operation the scalar
/// reference performs (`mul`, `add`, `sub`, `div`, `sqrt`) is IEEE exactly
/// rounded, so the vector forms produce identical bits per element (tail
/// delegated to scalar).
///
/// # Safety
///
/// The running CPU must support AVX2 (guarded by the `Backend` dispatcher).
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// the feature-detection precondition is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn adam_update(
    p: &mut [f32],
    g: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    c: &AdamCoeffs,
) {
    let n = p.len().min(g.len()).min(m.len()).min(v.len());
    let (p, g, m, v) = (&mut p[..n], &g[..n], &mut m[..n], &mut v[..n]);
    let b1 = _mm256_set1_ps(c.beta1);
    let b2 = _mm256_set1_ps(c.beta2);
    let om1 = _mm256_set1_ps(1.0 - c.beta1);
    let om2 = _mm256_set1_ps(1.0 - c.beta2);
    let bc1 = _mm256_set1_ps(c.bc1);
    let bc2 = _mm256_set1_ps(c.bc2);
    let lr = _mm256_set1_ps(c.lr);
    let eps = _mm256_set1_ps(c.eps);
    let wd = _mm256_set1_ps(c.weight_decay);
    let mut cp = p.chunks_exact_mut(LANES);
    let mut cg = g.chunks_exact(LANES);
    let mut cm = m.chunks_exact_mut(LANES);
    let mut cv = v.chunks_exact_mut(LANES);
    for (((kp, kg), km), kv) in cp
        .by_ref()
        .zip(cg.by_ref())
        .zip(cm.by_ref())
        .zip(cv.by_ref())
    {
        // SAFETY: in an AVX2 context; chunks are exactly LANES long.
        let (vp, vg, vm, vv) = unsafe { (load(kp), load(kg), load(km), load(kv)) };
        // mn = beta1*m + (1-beta1)*g — two muls and an add, like scalar.
        let mn = _mm256_add_ps(_mm256_mul_ps(b1, vm), _mm256_mul_ps(om1, vg));
        // vn = beta2*v + ((1-beta2)*g)*g — same left association as scalar.
        let vn = _mm256_add_ps(
            _mm256_mul_ps(b2, vv),
            _mm256_mul_ps(_mm256_mul_ps(om2, vg), vg),
        );
        // SAFETY: in an AVX2 context; `km`/`kv` are exactly LANES long.
        unsafe {
            store(km, mn);
            store(kv, vn);
        }
        let mhat = _mm256_div_ps(mn, bc1);
        let vhat = _mm256_div_ps(vn, bc2);
        let den = _mm256_add_ps(_mm256_sqrt_ps(vhat), eps);
        let update = _mm256_add_ps(_mm256_div_ps(mhat, den), _mm256_mul_ps(wd, vp));
        let r = _mm256_sub_ps(vp, _mm256_mul_ps(lr, update));
        // SAFETY: in an AVX2 context; `kp` is exactly LANES long.
        unsafe { store(kp, r) };
    }
    scalar::adam_update(
        cp.into_remainder(),
        cg.remainder(),
        cm.into_remainder(),
        cv.into_remainder(),
        c,
    );
}
