//! The 256-bit AVX2 backend (x86-64 only).
//!
//! Bit-identity with [`super::scalar`] holds by construction: the vector
//! accumulator performs the same per-lane `mul` + `add` pair on the same
//! [`LANES`]-wide chunks (separate `_mm256_mul_ps`/`_mm256_add_ps` — never
//! FMA, whose single rounding would diverge from the reference), the lane
//! reduction folds the stored accumulator in the same ascending lane
//! order, and the tail runs the same sequential scalar loop.
//!
//! All unsafety is confined to this file and justified per site; the safe
//! dispatch wrapper in [`super`] only reaches it after feature detection.

#![deny(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::{
    _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_setzero_ps, _mm256_storeu_ps,
};

use super::LANES;

/// Dot product over the common prefix of `a` and `b`, matching the scalar
/// reference bit-for-bit.
///
/// # Safety
///
/// The running CPU must support AVX2. The only caller is the `Backend`
/// dispatcher, which guards this with `is_x86_feature_detected!("avx2")`.
// SAFETY: `target_feature(enable = "avx2")` makes this fn unsafe-to-call;
// executing it on a CPU without AVX2 would be undefined behaviour, so the
// precondition above is the entire soundness argument.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    // Register-only intrinsics (`setzero`, `mul`, `add`) are safe fns in a
    // `target_feature(avx2)` context; only the memory-touching loads and
    // stores below need unsafe.
    let mut acc = _mm256_setzero_ps();
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        // SAFETY: `ka` and `kb` come from `chunks_exact(LANES)`, so each
        // points at exactly LANES = 8 initialised, readable `f32`s — the
        // full 256-bit span `_mm256_loadu_ps` reads. `loadu` permits
        // unaligned addresses, so slice alignment is sufficient.
        let (va, vb) = unsafe { (_mm256_loadu_ps(ka.as_ptr()), _mm256_loadu_ps(kb.as_ptr())) };
        // Separate mul + add (never FMA) keeps rounding identical to the
        // scalar reference.
        acc = _mm256_add_ps(acc, _mm256_mul_ps(va, vb));
    }
    let mut lanes = [0.0f32; LANES];
    // SAFETY: `lanes` is a LANES = 8 element `f32` array, exactly the
    // 256 bits `_mm256_storeu_ps` writes; `storeu` permits unaligned
    // addresses, so the array's natural alignment is sufficient.
    unsafe { _mm256_storeu_ps(lanes.as_mut_ptr(), acc) };
    // Identical fixed-order reduction and tail to `scalar::dot`.
    let mut out = 0.0f32;
    for &lane in &lanes {
        out += lane;
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        out += x * y;
    }
    out
}
