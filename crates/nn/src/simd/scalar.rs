//! The safe scalar reference backend.
//!
//! This implementation *defines* the bit-identity contract: it evaluates
//! the dot product in exactly the order a [`LANES`]-wide vector unit does —
//! blocked per-lane accumulation over full chunks, a fixed-order sequential
//! reduction of the lane accumulators, then a sequential tail — so SIMD
//! backends can match it bit-for-bit without emulating scalar order.

use super::LANES;

/// Dot product over the common prefix of `a` and `b` in the canonical
/// blocked evaluation order. Safe, dependency-free, and allocation-free;
/// always available as the dispatch fallback and the parity oracle.
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        for ((lane, &x), &y) in lanes.iter_mut().zip(ka).zip(kb) {
            // Separate multiply and add, mirroring the vector backends'
            // mul+add instruction pair (no fused multiply-add anywhere).
            *lane += x * y;
        }
    }
    // Lane reduction in ascending lane order — the order every backend
    // must reproduce when folding its vector accumulator.
    let mut acc = 0.0f32;
    for &lane in &lanes {
        acc += lane;
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}
