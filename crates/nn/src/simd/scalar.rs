//! The safe scalar reference backend.
//!
//! These implementations *define* the bit-identity contract for every kernel
//! in the surface:
//!
//! - **Reduction kernels** ([`dot`]) evaluate in exactly the order a
//!   [`LANES`]-wide vector unit does — blocked per-lane accumulation over
//!   full chunks, a fixed-order sequential reduction of the lane
//!   accumulators, then a sequential tail — so SIMD backends can match them
//!   bit-for-bit without emulating scalar order.
//! - **Elementwise kernels** ([`axpy`], [`add`], [`sub`], [`mul`], [`scale`],
//!   the gate and backward kernels, [`adam_update`]) have no cross-element
//!   data flow, so their contract is the exact per-element instruction
//!   sequence written here: separate multiply and add (never a fused
//!   multiply-add), division and square root (both IEEE correctly rounded,
//!   hence vectorisable bit-identically), and transcendentals (`exp`,
//!   `tanh`) evaluated by the same scalar libm call in every backend.
//! - **Composite kernels** ([`matmul_acc`]) are defined as a fixed loop nest
//!   over the primitive kernels above, including the exact-zero sparsity
//!   skip, so their bit pattern follows from the primitives'.
//!
//! Everything here is safe, dependency-free, and allocation-free; this
//! backend is always available as the dispatch fallback and the parity
//! oracle.

use super::{AdamCoeffs, LANES};

/// Dot product over the common prefix of `a` and `b` in the canonical
/// blocked evaluation order.
pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        for ((lane, &x), &y) in lanes.iter_mut().zip(ka).zip(kb) {
            // Separate multiply and add, mirroring the vector backends'
            // mul+add instruction pair (no fused multiply-add anywhere).
            *lane += x * y;
        }
    }
    // Lane reduction in ascending lane order — the order every backend
    // must reproduce when folding its vector accumulator.
    let mut acc = 0.0f32;
    for &lane in &lanes {
        acc += lane;
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += x * y;
    }
    acc
}

/// `y[i] += a * x[i]` over the common prefix of `x` and `y`.
pub(super) fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len().min(y.len());
    for (yi, &xi) in y[..n].iter_mut().zip(&x[..n]) {
        // Separate mul + add; per-element, so no blocking is needed.
        *yi += a * xi;
    }
}

/// `out[i] = a[i] + b[i]` over the common prefix of all three slices.
pub(super) fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    for ((o, &x), &y) in out[..n].iter_mut().zip(&a[..n]).zip(&b[..n]) {
        *o = x + y;
    }
}

/// `out[i] = a[i] - b[i]` over the common prefix of all three slices.
pub(super) fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    for ((o, &x), &y) in out[..n].iter_mut().zip(&a[..n]).zip(&b[..n]) {
        *o = x - y;
    }
}

/// `out[i] = a[i] * b[i]` over the common prefix of all three slices.
pub(super) fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len().min(b.len()).min(out.len());
    for ((o, &x), &y) in out[..n].iter_mut().zip(&a[..n]).zip(&b[..n]) {
        *o = x * y;
    }
}

/// `x[i] *= s` in place.
pub(super) fn scale(x: &mut [f32], s: f32) {
    for xi in x.iter_mut() {
        *xi *= s;
    }
}

/// The logistic sigmoid as every backend must evaluate it: one scalar libm
/// `exp` per element. Vectorised `exp` approximations would break the
/// bit-identity contract, so there is exactly one definition.
#[inline]
fn sigmoid_one(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

/// `out[i] = sigmoid(a[i])` over the common prefix.
pub(super) fn sigmoid(a: &[f32], out: &mut [f32]) {
    let n = a.len().min(out.len());
    for (o, &z) in out[..n].iter_mut().zip(&a[..n]) {
        *o = sigmoid_one(z);
    }
}

/// `out[i] = tanh(a[i])` over the common prefix.
pub(super) fn tanh(a: &[f32], out: &mut [f32]) {
    let n = a.len().min(out.len());
    for (o, &z) in out[..n].iter_mut().zip(&a[..n]) {
        *o = z.tanh();
    }
}

/// Applies the sigmoid in place — the activation half of the gate kernels,
/// reused by vector backends after their exactly-rounded affine part.
pub(super) fn sigmoid_in_place(x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi = sigmoid_one(*xi);
    }
}

/// Applies `tanh` in place; see [`sigmoid_in_place`].
pub(super) fn tanh_in_place(x: &mut [f32]) {
    for xi in x.iter_mut() {
        *xi = (*xi).tanh();
    }
}

/// Fused gate: `out[i] = sigmoid(pre[i] + bias[i])` over the common prefix.
pub(super) fn sigmoid_gate(pre: &[f32], bias: &[f32], out: &mut [f32]) {
    let n = pre.len().min(bias.len()).min(out.len());
    for ((o, &p), &b) in out[..n].iter_mut().zip(&pre[..n]).zip(&bias[..n]) {
        *o = sigmoid_one(p + b);
    }
}

/// Fused gate: `out[i] = tanh(pre[i] + bias[i])` over the common prefix.
pub(super) fn tanh_gate(pre: &[f32], bias: &[f32], out: &mut [f32]) {
    let n = pre.len().min(bias.len()).min(out.len());
    for ((o, &p), &b) in out[..n].iter_mut().zip(&pre[..n]).zip(&bias[..n]) {
        *o = (p + b).tanh();
    }
}

/// Sigmoid backward: `out[i] = g[i] * y[i] * (1 - y[i])` (left-associated,
/// as the tape has always evaluated it) over the common prefix.
pub(super) fn sigmoid_bwd(g: &[f32], y: &[f32], out: &mut [f32]) {
    let n = g.len().min(y.len()).min(out.len());
    for ((o, &gi), &yi) in out[..n].iter_mut().zip(&g[..n]).zip(&y[..n]) {
        *o = gi * yi * (1.0 - yi);
    }
}

/// Tanh backward: `out[i] = g[i] * (1 - y[i] * y[i])` over the common prefix.
pub(super) fn tanh_bwd(g: &[f32], y: &[f32], out: &mut [f32]) {
    let n = g.len().min(y.len()).min(out.len());
    for ((o, &gi), &yi) in out[..n].iter_mut().zip(&g[..n]).zip(&y[..n]) {
        *o = gi * (1.0 - yi * yi);
    }
}

/// Blocked matrix-multiply accumulate: `out[m×n] += a[m×k] × b[k×n]`, all
/// row-major, in the i-k-j loop order with an [`axpy`] inner loop.
///
/// The exact-zero skip on `a`'s entries is part of the contract: gradients
/// are genuinely sparse after slicing/concat backward passes, and skipping
/// an entire axpy whose coefficient is `±0.0` never changes stored bits
/// (`out + 0.0 * b` only differs for `out = -0.0`, which the skip
/// *preserves* rather than rewrites — the historical behaviour this
/// reference inherited and every backend must keep).
pub(super) fn matmul_acc(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &aik) in a_row.iter().enumerate() {
            // lint: allow(float-eq): exact-zero sparsity skip; a tolerance would change results
            if aik == 0.0 {
                continue;
            }
            axpy(aik, &b[kk * n..(kk + 1) * n], out_row);
        }
    }
}

/// One Adam/AdamW update over the common prefix of the four buffers:
/// moment updates, bias correction, and the decoupled-weight-decay step, in
/// the exact per-element order `optim::Adam` has always used. Division and
/// `sqrt` are IEEE correctly rounded, so vector backends reproduce this
/// bit-for-bit with `div`/`sqrt` instructions.
pub(super) fn adam_update(p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], c: &AdamCoeffs) {
    let n = p.len().min(g.len()).min(m.len()).min(v.len());
    let om1 = 1.0 - c.beta1;
    let om2 = 1.0 - c.beta2;
    let (p, m, v) = (&mut p[..n], &mut m[..n], &mut v[..n]);
    for (((pi, &gi), mi), vi) in p
        .iter_mut()
        .zip(&g[..n])
        .zip(m.iter_mut())
        .zip(v.iter_mut())
    {
        let mn = c.beta1 * *mi + om1 * gi;
        let vn = c.beta2 * *vi + om2 * gi * gi;
        *mi = mn;
        *vi = vn;
        let mhat = mn / c.bc1;
        let vhat = vn / c.bc2;
        let cur = *pi;
        *pi = cur - c.lr * (mhat / (vhat.sqrt() + c.eps) + c.weight_decay * cur);
    }
}
