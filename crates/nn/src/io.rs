//! Lossless text serialisation of parameter sets.
//!
//! Trained LEAD models must survive process restarts (the offline stage runs
//! once; the online stage runs for months), so parameters round-trip through
//! a simple line-oriented format. Values are stored as hexadecimal `f32`
//! bit patterns — exact round-trips, no decimal parsing ambiguity:
//!
//! ```text
//! leadnn-params v1
//! param det.out.w 64 1
//! 3f800000 bf000000 …
//! end
//! ```

use crate::matrix::Matrix;
use crate::params::{ParamId, ParamSet};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while reading a parameter stream.
#[derive(Debug)]
pub enum ReadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not in the expected format.
    Format(String),
    /// A parameter in the stream does not match the receiving set.
    Mismatch(String),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
            ReadError::Format(m) => write!(f, "format error: {m}"),
            ReadError::Mismatch(m) => write!(f, "parameter mismatch: {m}"),
        }
    }
}

impl std::error::Error for ReadError {}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Writes every parameter of `params` to `w`.
///
/// # Errors
/// Propagates any I/O error from the underlying writer.
pub fn write_params<W: Write>(params: &ParamSet, w: &mut W) -> std::io::Result<()> {
    writeln!(w, "leadnn-params v1")?;
    for (id, value) in params.iter() {
        writeln!(
            w,
            "param {} {} {}",
            params.name(id),
            value.rows(),
            value.cols()
        )?;
        let mut line = String::with_capacity(value.len() * 9);
        for (i, v) in value.data().iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            line.push_str(&format!("{:08x}", v.to_bits()));
        }
        writeln!(w, "{line}")?;
    }
    writeln!(w, "end")?;
    Ok(())
}

/// Reads a parameter stream written by [`write_params`] into `params`.
///
/// The receiving set must already contain every parameter in the stream with
/// the same name and shape (build the model architecture first, then load);
/// extra parameters in the set are an error, as are missing ones.
///
/// # Errors
/// Returns [`ReadError::Io`] when the reader fails and
/// [`ReadError::Format`] when the stream does not match the receiving set
/// (bad header, unknown or missing parameters, or shape mismatches).
pub fn read_params<R: BufRead>(params: &mut ParamSet, r: &mut R) -> Result<(), ReadError> {
    let mut lines = r.lines();
    let header = lines
        .next()
        .ok_or_else(|| ReadError::Format("empty stream".into()))??;
    if header.trim() != "leadnn-params v1" {
        return Err(ReadError::Format(format!("unexpected header `{header}`")));
    }

    // BTreeMap so lookup/removal order is deterministic (lint R1: no hash
    // iteration order in result-affecting crates).
    let mut by_name: std::collections::BTreeMap<String, ParamId> = params
        .iter()
        .map(|(id, _)| (params.name(id).to_string(), id))
        .collect();

    loop {
        let line = lines
            .next()
            .ok_or_else(|| ReadError::Format("missing `end`".into()))??;
        let line = line.trim();
        if line == "end" {
            break;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("param") => {}
            other => {
                return Err(ReadError::Format(format!(
                    "expected `param`, got {other:?}"
                )))
            }
        }
        let name = parts
            .next()
            .ok_or_else(|| ReadError::Format("param without name".into()))?
            .to_string();
        let rows: usize = parse_dim(parts.next(), "rows")?;
        let cols: usize = parse_dim(parts.next(), "cols")?;
        let id = by_name.remove(&name).ok_or_else(|| {
            ReadError::Mismatch(format!("unknown or duplicate parameter `{name}`"))
        })?;
        let expect = params.value(id).shape();
        if expect != (rows, cols) {
            return Err(ReadError::Mismatch(format!(
                "`{name}`: stream says {rows}x{cols}, model has {}x{}",
                expect.0, expect.1
            )));
        }
        let data_line = lines
            .next()
            .ok_or_else(|| ReadError::Format(format!("`{name}`: missing data line")))??;
        let mut data = Vec::with_capacity(rows * cols);
        for tok in data_line.split_whitespace() {
            let bits = u32::from_str_radix(tok, 16)
                .map_err(|e| ReadError::Format(format!("`{name}`: bad value `{tok}`: {e}")))?;
            data.push(f32::from_bits(bits));
        }
        if data.len() != rows * cols {
            return Err(ReadError::Format(format!(
                "`{name}`: expected {} values, found {}",
                rows * cols,
                data.len()
            )));
        }
        *params.value_mut(id) = Matrix::from_vec(rows, cols, data);
    }

    if !by_name.is_empty() {
        let mut missing: Vec<String> = by_name.into_keys().collect();
        missing.sort();
        return Err(ReadError::Mismatch(format!(
            "stream is missing parameters: {}",
            missing.join(", ")
        )));
    }
    Ok(())
}

fn parse_dim(tok: Option<&str>, what: &str) -> Result<usize, ReadError> {
    tok.ok_or_else(|| ReadError::Format(format!("param without {what}")))?
        .parse()
        .map_err(|e| ReadError::Format(format!("bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_params(seed: u64) -> ParamSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        ps.register("a.w", crate::init::xavier_uniform(&mut rng, 3, 4));
        ps.register("a.b", Matrix::zeros(1, 4));
        ps.register("b.w", crate::init::xavier_uniform(&mut rng, 2, 2));
        ps
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let src = sample_params(1);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();

        let mut dst = sample_params(2); // different values, same structure
        read_params(&mut dst, &mut buf.as_slice()).unwrap();
        for (id, value) in src.iter() {
            assert_eq!(value.data(), dst.value(id).data(), "{}", src.name(id));
        }
    }

    #[test]
    fn special_values_survive() {
        let mut ps = ParamSet::new();
        let id = ps.register(
            "w",
            Matrix::from_vec(1, 4, vec![0.0, -0.0, f32::MIN_POSITIVE, 1e-38]),
        );
        let mut buf = Vec::new();
        write_params(&ps, &mut buf).unwrap();
        let mut dst = ParamSet::new();
        dst.register("w", Matrix::zeros(1, 4));
        read_params(&mut dst, &mut buf.as_slice()).unwrap();
        assert_eq!(
            ps.value(id)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            dst.value(id)
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let src = sample_params(1);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = ParamSet::new();
        dst.register("a.w", Matrix::zeros(4, 3)); // transposed shape
        dst.register("a.b", Matrix::zeros(1, 4));
        dst.register("b.w", Matrix::zeros(2, 2));
        let err = read_params(&mut dst, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadError::Mismatch(_)), "{err}");
    }

    #[test]
    fn missing_parameter_is_rejected() {
        let src = sample_params(1);
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();
        let mut dst = sample_params(1);
        dst.register("extra.w", Matrix::zeros(1, 1));
        let err = read_params(&mut dst, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, ReadError::Mismatch(_)), "{err}");
    }

    #[test]
    fn garbage_header_is_rejected() {
        let mut dst = sample_params(1);
        let err = read_params(&mut dst, &mut "not a header\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadError::Format(_)), "{err}");
    }
}
