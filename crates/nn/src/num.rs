//! Guarded numeric conversions.
//!
//! The lint gate's `float-cast` rule (R4, see `DESIGN.md`) bans raw `as`
//! casts in numeric kernels because `as` narrows and truncates silently:
//! `f64 -> f32` rounds out-of-range values to infinity, `f32 -> i32` maps
//! NaN to zero, and `usize -> f32` loses integer exactness above 2^24.
//! Result-affecting code funnels such conversions through this module so
//! each one states its contract and checks it in debug builds. The raw
//! casts live here, each under a single justified waiver.

/// Narrows an `f64` to `f32`, asserting finiteness in debug builds.
///
/// Use for statistics (means, variances, norms) accumulated in `f64` whose
/// magnitude is known to fit `f32` comfortably. Overflow to infinity in a
/// release build would silently poison downstream kernels; the debug assert
/// catches the regression where it happens.
#[inline]
pub fn narrow_f64(x: f64) -> f32 {
    debug_assert!(x.is_finite(), "narrow_f64: non-finite input {x}");
    let y = x as f32; // lint: allow(float-cast): the one audited f64->f32 narrowing site; finiteness asserted above
    debug_assert!(y.is_finite(), "narrow_f64: {x} overflowed f32 to {y}");
    y
}

/// Converts a `usize` count to `f32`, asserting exactness in debug builds.
///
/// `f32` represents integers exactly only up to 2^24 (~16.7M). Counts in
/// this codebase (points per day, stay points, training steps) are far
/// below that; the assert documents and enforces the assumption.
#[inline]
pub fn exact_usize_f32(n: usize) -> f32 {
    debug_assert!(
        n <= (1usize << 24),
        "exact_usize_f32: {n} exceeds f32's exact-integer range"
    );
    n as f32 // lint: allow(float-cast): exactness range asserted above
}

/// Converts a `u32` count to `f32`, asserting exactness in debug builds.
///
/// Same contract as [`exact_usize_f32`] for `u32` sources (e.g. POI
/// category counts).
#[inline]
pub fn exact_u32_f32(n: u32) -> f32 {
    debug_assert!(
        n <= (1u32 << 24),
        "exact_u32_f32: {n} exceeds f32's exact-integer range"
    );
    n as f32 // lint: allow(float-cast): exactness range asserted above
}

/// Converts an `i64` to `f32`, asserting exactness in debug builds.
///
/// Same contract as [`exact_usize_f32`] for signed values (e.g. seconds of
/// day, grid offsets): `|n|` must stay within `f32`'s exact-integer range.
#[inline]
pub fn exact_i64_f32(n: i64) -> f32 {
    debug_assert!(
        n.unsigned_abs() <= (1u64 << 24),
        "exact_i64_f32: {n} exceeds f32's exact-integer range"
    );
    n as f32 // lint: allow(float-cast): exactness range asserted above
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_preserves_ordinary_values() {
        assert_eq!(narrow_f64(1.5), 1.5f32);
        assert_eq!(narrow_f64(-0.25), -0.25f32);
        assert_eq!(narrow_f64(0.0), 0.0f32);
    }

    #[test]
    fn exact_counts_round_trip() {
        assert_eq!(exact_usize_f32(0), 0.0);
        assert_eq!(exact_usize_f32(16_777_216), 16_777_216.0);
        assert_eq!(exact_i64_f32(-86_400), -86_400.0);
        assert_eq!(exact_i64_f32(12_345), 12_345.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    #[cfg(debug_assertions)]
    fn narrow_rejects_nan_in_debug() {
        let _ = narrow_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "exact-integer range")]
    #[cfg(debug_assertions)]
    fn exact_rejects_large_counts_in_debug() {
        let _ = exact_usize_f32(1 << 25);
    }
}
