//! Property-based tests of the matrix kernels and the autodiff tape.

use lead_nn::{Graph, Matrix, ParamSet};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    -2.0..2.0f32
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(small_f32(), rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matmul_identity_left_and_right(m in matrix(3, 3)) {
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let left = m.matmul(&id);
        let right = id.matmul(&m);
        prop_assert_eq!(left.data(), m.data());
        prop_assert_eq!(right.data(), m.data());
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(2, 3), b in matrix(2, 3), c in matrix(3, 2)) {
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_is_involutive(m in matrix(4, 3)) {
        let tt = m.transpose().transpose();
        prop_assert_eq!(tt.data(), m.data());
    }

    #[test]
    fn transpose_swaps_matmul(a in matrix(2, 3), b in matrix(3, 4)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_is_a_distribution(m in matrix(3, 5)) {
        let s = m.softmax_rows();
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(m in matrix(1, 6), shift in -5.0..5.0f32) {
        let a = m.softmax_rows();
        let b = m.map(|v| v + shift).softmax_rows();
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn concat_slice_roundtrip(a in matrix(2, 3), b in matrix(2, 4)) {
        let c = Matrix::concat_cols(&[&a, &b]);
        let (c0, c1) = (c.slice_cols(0, 3), c.slice_cols(3, 7));
        prop_assert_eq!(c0.data(), a.data());
        prop_assert_eq!(c1.data(), b.data());
        let r = Matrix::concat_rows(&[&a, &a]);
        let (r0, r1) = (r.slice_rows(0, 2), r.slice_rows(2, 4));
        prop_assert_eq!(r0.data(), a.data());
        prop_assert_eq!(r1.data(), a.data());
    }

    #[test]
    fn tape_matches_hand_computed_chain(
        x in matrix(1, 3),
        w in matrix(3, 2),
    ) {
        // loss = sum(tanh(x·W)) computed by the tape equals the hand version.
        let mut ps = ParamSet::new();
        let wid = ps.register("w", w.clone());
        let mut g = Graph::new(&ps);
        let xv = g.constant(x.clone());
        let wv = g.param(wid);
        let y = g.matmul(xv, wv);
        let t = g.tanh(y);
        let loss = g.sum_all(t);
        let expect: f32 = x.matmul(&w).data().iter().map(|v| v.tanh()).sum();
        prop_assert!((g.scalar(loss) - expect).abs() < 1e-4);
    }

    #[test]
    fn tape_gradient_matches_finite_differences_on_random_graph(
        w0 in prop::collection::vec(-0.9..0.9f32, 6),
    ) {
        // A fixed op chain with random parameter values: gradcheck must pass.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(2, 3, w0));
        lead_nn::testing::gradcheck(&mut ps, w, 1e-2, 5e-2, |g| {
            let wv = g.param(w);
            let t = g.tanh(wv);
            let s = g.sigmoid(wv);
            let prod = g.mul(t, s);
            let sm = g.softmax_rows(prod);
            let c = g.constant(Matrix::from_fn(2, 3, |r, cc| (r + cc) as f32 * 0.5));
            let weighted = g.mul(sm, c);
            g.mean_all(weighted)
        });
    }

    #[test]
    fn kld_is_nonnegative(logits in prop::collection::vec(-3.0..3.0f32, 5)) {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let l = g.constant(Matrix::row_vector(logits));
        let q = g.softmax_rows(l);
        // A smoothed one-hot p.
        let eps = 1e-5f32;
        let mut p = vec![eps; 5];
        p[2] = 1.0 - 4.0 * eps;
        let loss = g.kld_loss(q, &Matrix::row_vector(p));
        prop_assert!(g.scalar(loss) >= -1e-6);
    }

    #[test]
    fn mse_is_zero_iff_equal(m in matrix(2, 3)) {
        let ps = ParamSet::new();
        let mut g = Graph::new(&ps);
        let a = g.constant(m.clone());
        let loss = g.mse_loss(a, &m);
        prop_assert_eq!(g.scalar(loss), 0.0);
        let shifted = m.map(|v| v + 0.5);
        let mut g2 = Graph::new(&ps);
        let a2 = g2.constant(m.clone());
        let loss2 = g2.mse_loss(a2, &shifted);
        prop_assert!((g2.scalar(loss2) - 0.25).abs() < 1e-5);
    }

    #[test]
    fn gradients_accumulate_linearly(v in small_f32()) {
        // d(a·w + b·w)/dw = a + b for scalars.
        let mut ps = ParamSet::new();
        let w = ps.register("w", Matrix::from_vec(1, 1, vec![v]));
        let mut g = Graph::new(&ps);
        let wv = g.param(w);
        let s1 = g.scale(wv, 2.0);
        let s2 = g.scale(wv, 3.0);
        let sum = g.add(s1, s2);
        let loss = g.sum_all(sum);
        let grads = g.backward(loss);
        prop_assert!((grads.get(w).at(0, 0) - 5.0).abs() < 1e-6);
    }
}

proptest! {
    #[test]
    fn param_io_roundtrip_random_values(
        vals in prop::collection::vec(prop::num::f32::NORMAL | prop::num::f32::ZERO, 12),
    ) {
        use lead_nn::io::{read_params, write_params};
        let mut src = ParamSet::new();
        src.register("a", Matrix::from_vec(3, 2, vals[..6].to_vec()));
        src.register("b", Matrix::from_vec(2, 3, vals[6..].to_vec()));
        let mut buf = Vec::new();
        write_params(&src, &mut buf).unwrap();

        let mut dst = ParamSet::new();
        dst.register("a", Matrix::zeros(3, 2));
        dst.register("b", Matrix::zeros(2, 3));
        read_params(&mut dst, &mut buf.as_slice()).unwrap();
        for (id, value) in src.iter() {
            let got: Vec<u32> = dst.value(id).data().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u32> = value.data().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(got, want);
        }
    }
}
