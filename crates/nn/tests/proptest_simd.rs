//! Property-based bit-identity battery for the full `lead_nn::simd` kernel
//! surface.
//!
//! Three layers of defence, per the determinism contract:
//!
//! 1. **Cross-backend parity** (property tests): every kernel × every
//!    [`Backend::available`] over random lengths 0..=257 (empty, sub-chunk,
//!    exact-chunk, long tails) and inputs drawn from the full IEEE value
//!    zoo — denormals, ±0.0, and normals across the whole magnitude range —
//!    asserting `to_bits` equality against the scalar reference.
//! 2. **Pinned fingerprints**: an FNV-1a hash of each kernel's output bits
//!    over a fixed deterministic sweep, so a rounding change in the *scalar
//!    reference itself* fails loudly even on machines with no second
//!    backend.
//! 3. **A planted divergence**: a deliberately FMA'd fixture kernel must be
//!    caught by the same harness the real backends pass, proving the
//!    battery can actually detect a contraction-rounding bug.

use lead_nn::simd::{AdamCoeffs, Backend, Kernel, LANES};
use proptest::prelude::*;

/// Deterministic pseudo-random f32s in roughly [-2, 2) (xorshift64*, exact
/// power-of-two quantisation) — the same generator `simd_parity` uses.
fn test_vector(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let q = (bits >> 44) as i64 - (1 << 19);
        out.push(q as f32 / (1 << 18) as f32);
    }
    out
}

/// Lengths covering empty, sub-chunk, exact multiples of LANES, and tails.
fn lengths() -> Vec<usize> {
    vec![
        0,
        1,
        7,
        LANES - 1,
        LANES,
        LANES + 1,
        2 * LANES,
        2 * LANES + 3,
        31,
        4 * LANES + 5,
        257,
    ]
}

/// FNV-1a over the `to_bits` of each result.
fn fingerprint(bits: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bits {
        for byte in b.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn bits_of(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Inputs from the whole IEEE f32 zoo the kernels must stay bit-identical
/// on: full-magnitude-range normals, subnormals, and both signed zeros.
fn wild_f32() -> impl Strategy<Value = f32> {
    prop::num::f32::NORMAL | prop::num::f32::ZERO | prop::num::f32::SUBNORMAL
}

/// `base^n` by sequential multiplication. `powi` is avoided on purpose: its
/// release-mode constant folding and debug-mode runtime lowering can round
/// differently, which would make the pinned fingerprints build-mode
/// dependent. A straight-line IEEE multiply chain folds to the same bits it
/// computes.
fn pow_seq(base: f32, n: u32) -> f32 {
    let mut acc = 1.0f32;
    for _ in 0..n {
        acc *= base;
    }
    acc
}

/// Adam coefficients used by the parity harness (one plain, one AdamW).
fn adam_coeff_sets() -> [AdamCoeffs; 2] {
    [
        AdamCoeffs {
            beta1: 0.9,
            beta2: 0.999,
            bc1: 1.0 - pow_seq(0.9, 3),
            bc2: 1.0 - pow_seq(0.999, 3),
            lr: 1e-4,
            eps: 1e-8,
            weight_decay: 0.0,
        },
        AdamCoeffs {
            beta1: 0.9,
            beta2: 0.999,
            bc1: 1.0 - pow_seq(0.9, 40),
            bc2: 1.0 - pow_seq(0.999, 40),
            lr: 0.01,
            eps: 1e-8,
            weight_decay: 0.02,
        },
    ]
}

/// Runs every same-length kernel on inputs derived from `a`/`b` (equal
/// lengths) against the scalar reference and returns the first kernel whose
/// output differs bitwise — `None` means full parity. This single harness
/// serves both the real backends (must return `None`) and the planted FMA
/// fixture (must not).
fn first_divergence(k: &dyn Kernel, a: &[f32], b: &[f32], coef: f32) -> Option<&'static str> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let scalar = Backend::Scalar;

    if k.dot(a, b).to_bits() != scalar.dot(a, b).to_bits() {
        return Some("dot");
    }
    {
        let mut got = b.to_vec();
        let mut want = b.to_vec();
        k.axpy(coef, a, &mut got);
        scalar.axpy(coef, a, &mut want);
        if bits_of(&got) != bits_of(&want) {
            return Some("axpy");
        }
    }
    let binary: [(&'static str, fn(&dyn Kernel, &[f32], &[f32], &mut [f32])); 7] = [
        ("add", |k, a, b, o| k.add(a, b, o)),
        ("sub", |k, a, b, o| k.sub(a, b, o)),
        ("mul", |k, a, b, o| k.mul(a, b, o)),
        ("sigmoid_gate", |k, a, b, o| k.sigmoid_gate(a, b, o)),
        ("tanh_gate", |k, a, b, o| k.tanh_gate(a, b, o)),
        ("sigmoid_bwd", |k, a, b, o| k.sigmoid_bwd(a, b, o)),
        ("tanh_bwd", |k, a, b, o| k.tanh_bwd(a, b, o)),
    ];
    for (name, run) in binary {
        let mut got = vec![0.0f32; n];
        let mut want = vec![0.0f32; n];
        run(k, a, b, &mut got);
        run(&scalar, a, b, &mut want);
        if bits_of(&got) != bits_of(&want) {
            return Some(name);
        }
    }
    {
        let mut got = a.to_vec();
        let mut want = a.to_vec();
        k.scale(&mut got, coef);
        scalar.scale(&mut want, coef);
        if bits_of(&got) != bits_of(&want) {
            return Some("scale");
        }
    }
    let unary: [(&'static str, fn(&dyn Kernel, &[f32], &mut [f32])); 2] = [
        ("sigmoid", |k, a, o| k.sigmoid(a, o)),
        ("tanh", |k, a, o| k.tanh(a, o)),
    ];
    for (name, run) in unary {
        let mut got = vec![0.0f32; n];
        let mut want = vec![0.0f32; n];
        run(k, a, &mut got);
        run(&scalar, a, &mut want);
        if bits_of(&got) != bits_of(&want) {
            return Some(name);
        }
    }
    // adam_update: second moments must be non-negative, so square `b`.
    let mut vsq = vec![0.0f32; n];
    scalar.mul(b, b, &mut vsq);
    for c in &adam_coeff_sets() {
        let (mut p1, mut m1, mut v1) = (a.to_vec(), b.to_vec(), vsq.clone());
        let (mut p2, mut m2, mut v2) = (a.to_vec(), b.to_vec(), vsq.clone());
        k.adam_update(&mut p1, b, &mut m1, &mut v1, c);
        scalar.adam_update(&mut p2, b, &mut m2, &mut v2, c);
        if bits_of(&p1) != bits_of(&p2)
            || bits_of(&m1) != bits_of(&m2)
            || bits_of(&v1) != bits_of(&v2)
        {
            return Some("adam_update");
        }
    }
    None
}

/// `matmul_acc` parity for one `(m, k, n)` shape, accumulating into a
/// non-zero destination.
fn matmul_diverges(
    k: &dyn Kernel,
    a: &[f32],
    b: &[f32],
    init: &[f32],
    m: usize,
    kk: usize,
    n: usize,
) -> bool {
    let mut got = init[..m * n].to_vec();
    let mut want = init[..m * n].to_vec();
    k.matmul_acc(&a[..m * kk], &b[..kk * n], &mut got, m, kk, n);
    Backend::Scalar.matmul_acc(&a[..m * kk], &b[..kk * n], &mut want, m, kk, n);
    bits_of(&got) != bits_of(&want)
}

proptest! {
    #[test]
    fn every_kernel_is_bit_identical_to_scalar_on_every_backend(
        raw_a in prop::collection::vec(wild_f32(), 0..258),
        raw_b in prop::collection::vec(wild_f32(), 0..258),
        coef in -4.0..4.0f32,
    ) {
        let n = raw_a.len().min(raw_b.len());
        let (a, b) = (&raw_a[..n], &raw_b[..n]);
        for backend in Backend::available() {
            let diverged = first_divergence(&backend, a, b, coef);
            prop_assert!(
                diverged.is_none(),
                "backend `{}` diverged from scalar in `{}` at len {}",
                backend.name(),
                diverged.unwrap_or("?"),
                n
            );
        }
    }

    #[test]
    fn matmul_acc_is_bit_identical_to_scalar_on_every_backend(
        dims in (0..6usize, 0..6usize, 0..37usize),
        a in prop::collection::vec(wild_f32(), 30),
        b in prop::collection::vec(wild_f32(), 216),
        init in prop::collection::vec(wild_f32(), 216),
    ) {
        let (m, kk, n) = dims;
        for backend in Backend::available() {
            prop_assert!(
                !matmul_diverges(&backend, &a, &b, &init, m, kk, n),
                "backend `{}` diverged from scalar at {}x{}x{}",
                backend.name(), m, kk, n
            );
        }
    }

    #[test]
    fn kernels_preserve_signed_zero_and_denormals(
        zeros in prop::collection::vec(prop::num::f32::ZERO, 1..64),
        denorms in prop::collection::vec(prop::num::f32::SUBNORMAL, 1..64),
    ) {
        // tanh/sigmoid-gate of ±0.0 inputs and elementwise ops over pure
        // denormal input must agree bitwise everywhere — the classic places
        // a vectorised implementation with flush-to-zero or a fused add
        // would slip.
        let n = zeros.len().min(denorms.len());
        for backend in Backend::available() {
            let d = first_divergence(&backend, &zeros[..n], &denorms[..n], 0.5);
            prop_assert!(d.is_none(), "backend `{}` diverged in `{}`",
                backend.name(), d.unwrap_or("?"));
        }
    }
}

// ---- pinned per-kernel fingerprints ---------------------------------------

/// The scalar reference's output bits for one kernel over the deterministic
/// sweep. Covers every length in [`lengths`], both Adam coefficient sets,
/// and a fixed shape set for `matmul_acc`.
fn kernel_sweep_bits(kernel_name: &str) -> Vec<u32> {
    let k = Backend::Scalar;
    let mut bits = Vec::new();
    for (case, &n) in lengths().iter().enumerate() {
        let a = test_vector(0xa5a5_0001 + case as u64, n);
        let b = test_vector(0x5a5a_0002 + case as u64, n);
        match kernel_name {
            "dot" => bits.push(k.dot(&a, &b).to_bits()),
            "axpy" => {
                let mut y = b.clone();
                k.axpy(0.3, &a, &mut y);
                bits.extend(bits_of(&y));
            }
            "add" | "sub" | "mul" | "sigmoid_gate" | "tanh_gate" | "sigmoid_bwd" | "tanh_bwd" => {
                let mut out = vec![0.0f32; n];
                match kernel_name {
                    "add" => k.add(&a, &b, &mut out),
                    "sub" => k.sub(&a, &b, &mut out),
                    "mul" => k.mul(&a, &b, &mut out),
                    "sigmoid_gate" => k.sigmoid_gate(&a, &b, &mut out),
                    "tanh_gate" => k.tanh_gate(&a, &b, &mut out),
                    "sigmoid_bwd" => k.sigmoid_bwd(&a, &b, &mut out),
                    _ => k.tanh_bwd(&a, &b, &mut out),
                }
                bits.extend(bits_of(&out));
            }
            "scale" => {
                let mut x = a.clone();
                k.scale(&mut x, -0.7);
                bits.extend(bits_of(&x));
            }
            "sigmoid" | "tanh" => {
                let mut out = vec![0.0f32; n];
                if kernel_name == "sigmoid" {
                    k.sigmoid(&a, &mut out);
                } else {
                    k.tanh(&a, &mut out);
                }
                bits.extend(bits_of(&out));
            }
            "adam_update" => {
                let mut vsq = vec![0.0f32; n];
                k.mul(&b, &b, &mut vsq);
                for c in &adam_coeff_sets() {
                    let (mut p, mut m, mut v) = (a.clone(), b.clone(), vsq.clone());
                    k.adam_update(&mut p, &b, &mut m, &mut v, c);
                    bits.extend(bits_of(&p));
                    bits.extend(bits_of(&m));
                    bits.extend(bits_of(&v));
                }
            }
            "matmul_acc" => {} // handled by fixed shapes below
            other => panic!("unknown kernel `{other}` in sweep"),
        }
    }
    if kernel_name == "matmul_acc" {
        for (case, &(m, kk, n)) in [
            (0, 0, 0),
            (1, 1, 1),
            (2, 3, 4),
            (5, 8, 7),
            (8, 8, 8),
            (3, 17, 9),
        ]
        .iter()
        .enumerate()
        {
            let a = test_vector(0x3333_0003 + case as u64, m * kk);
            let b = test_vector(0x4444_0004 + case as u64, kk * n);
            let mut out = test_vector(0x5555_0005 + case as u64, m * n);
            k.matmul_acc(&a, &b, &mut out, m, kk, n);
            bits.extend(bits_of(&out));
        }
    }
    bits
}

#[test]
fn scalar_kernel_fingerprints_are_pinned() {
    // Pins the reference semantics of every kernel. If one of these fails,
    // the determinism contract changed and every stored model downstream is
    // suspect — audit the change, do not just update the constant.
    let pinned: [(&str, u64); 14] = [
        ("dot", 0xa584_0c6d_458d_3b66),
        ("axpy", 0xb155_7dfd_b33c_0adf),
        ("add", 0xd7d4_bbc7_56b7_e6e0),
        ("sub", 0xd5f8_b59a_0bcd_a958),
        ("mul", 0x76f0_51cb_3613_cad7),
        ("scale", 0x7c45_11d8_693b_6784),
        ("sigmoid", 0x6f50_f067_de64_bfe0),
        ("tanh", 0x3178_8c39_a6ea_7fbf),
        ("sigmoid_gate", 0x109f_8bc2_267b_da30),
        ("tanh_gate", 0x3ac0_952e_c331_2ff7),
        ("sigmoid_bwd", 0xeb27_3653_2968_7e2c),
        ("tanh_bwd", 0x7ef7_65bc_47f1_6e93),
        ("matmul_acc", 0x03ef_3218_63e0_9da2),
        ("adam_update", 0xdaa8_8743_87ef_597a),
    ];
    let mut failures = Vec::new();
    for (name, want) in pinned {
        let got = fingerprint(&kernel_sweep_bits(name));
        if got != want {
            failures.push(format!("{name}: got {got:#018x}, pinned {want:#018x}"));
        }
    }
    assert!(
        failures.is_empty(),
        "fingerprint drift:\n{}",
        failures.join("\n")
    );
}

// ---- planted divergence ----------------------------------------------------

/// A deliberately broken backend: `dot` and `axpy` use fused multiply-add,
/// the exact class of bug (contraction changing rounding) the parity battery
/// exists to catch. Everything else delegates to the scalar reference.
struct FmaKernel;

impl Kernel for FmaKernel {
    fn name(&self) -> &'static str {
        "fma-fixture"
    }
    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let mut acc = 0.0f32;
        for (&x, &y) in a[..n].iter().zip(&b[..n]) {
            acc = x.mul_add(y, acc);
        }
        acc
    }
    fn axpy(&self, a: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len().min(y.len());
        for (yi, &xi) in y[..n].iter_mut().zip(&x[..n]) {
            *yi = a.mul_add(xi, *yi);
        }
    }
    fn add(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        Backend::Scalar.add(a, b, out);
    }
    fn sub(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        Backend::Scalar.sub(a, b, out);
    }
    fn mul(&self, a: &[f32], b: &[f32], out: &mut [f32]) {
        Backend::Scalar.mul(a, b, out);
    }
    fn scale(&self, x: &mut [f32], s: f32) {
        Backend::Scalar.scale(x, s);
    }
    fn sigmoid(&self, a: &[f32], out: &mut [f32]) {
        Backend::Scalar.sigmoid(a, out);
    }
    fn tanh(&self, a: &[f32], out: &mut [f32]) {
        Backend::Scalar.tanh(a, out);
    }
    fn sigmoid_gate(&self, pre: &[f32], bias: &[f32], out: &mut [f32]) {
        Backend::Scalar.sigmoid_gate(pre, bias, out);
    }
    fn tanh_gate(&self, pre: &[f32], bias: &[f32], out: &mut [f32]) {
        Backend::Scalar.tanh_gate(pre, bias, out);
    }
    fn sigmoid_bwd(&self, g: &[f32], y: &[f32], out: &mut [f32]) {
        Backend::Scalar.sigmoid_bwd(g, y, out);
    }
    fn tanh_bwd(&self, g: &[f32], y: &[f32], out: &mut [f32]) {
        Backend::Scalar.tanh_bwd(g, y, out);
    }
    fn matmul_acc(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        Backend::Scalar.matmul_acc(a, b, out, m, k, n);
    }
    fn adam_update(&self, p: &mut [f32], g: &[f32], m: &mut [f32], v: &mut [f32], c: &AdamCoeffs) {
        Backend::Scalar.adam_update(p, g, m, v, c);
    }
}

#[test]
fn planted_fma_kernel_is_caught_by_the_battery() {
    // The same harness the real backends pass must flag the FMA'd fixture —
    // otherwise the battery proves nothing. The quantised test vectors make
    // products inexact, so contraction necessarily changes rounding.
    let a = test_vector(0xdead_0001, 257);
    let b = test_vector(0xbeef_0002, 257);
    assert_eq!(
        first_divergence(&FmaKernel, &a, &b, 0.3),
        Some("dot"),
        "the planted FMA dot kernel was NOT detected — the parity harness is blind"
    );
    // And the axpy plant is caught independently of dot.
    let mut got = b.clone();
    let mut want = b.clone();
    FmaKernel.axpy(0.3, &a, &mut got);
    Backend::Scalar.axpy(0.3, &a, &mut want);
    assert_ne!(
        bits_of(&got),
        bits_of(&want),
        "planted FMA axpy not detected"
    );
}

#[test]
fn real_backends_pass_the_planted_divergence_inputs() {
    // Sanity: on the very inputs that catch the fixture, real backends agree.
    let a = test_vector(0xdead_0001, 257);
    let b = test_vector(0xbeef_0002, 257);
    for backend in Backend::available() {
        assert_eq!(first_divergence(&backend, &a, &b, 0.3), None);
    }
}
