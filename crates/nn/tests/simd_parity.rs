//! Bit-identity parity suite for `lead_nn::simd`.
//!
//! Every available backend (and whatever `Backend::select` picks) must
//! return results *bit-identical* to the safe scalar reference — not
//! approximately equal — across lengths that exercise empty input, partial
//! chunks, exact chunk multiples, and long tails. A fingerprint over the
//! whole sweep pins the reference itself, so a change to the evaluation
//! order fails loudly even on a scalar-only machine.

use lead_nn::simd::{Backend, Kernel, LANES};

/// Deterministic pseudo-random f32s in roughly [-2, 2), from a fixed seed:
/// xorshift64* so the suite never depends on a RNG crate or the clock.
fn test_vector(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let bits = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Map the top 20 bits to [-2, 2) with an exact power-of-two scale.
        let q = (bits >> 44) as i64 - (1 << 19);
        out.push(q as f32 / (1 << 18) as f32);
    }
    out
}

/// Lengths covering empty, sub-chunk, exact multiples of LANES, and tails.
fn lengths() -> Vec<usize> {
    vec![
        0,
        1,
        7,
        LANES - 1,
        LANES,
        LANES + 1,
        2 * LANES,
        2 * LANES + 3,
        31,
        4 * LANES + 5,
        257,
    ]
}

/// FNV-1a over the to_bits of each result, for a stable sweep fingerprint.
fn fingerprint(bits: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bits {
        for byte in b.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[test]
fn every_backend_is_bit_identical_to_scalar() {
    let backends = Backend::available();
    assert!(backends.contains(&Backend::Scalar));
    for (case, &n) in lengths().iter().enumerate() {
        let a = test_vector(0x5eed_0001 + case as u64, n);
        let b = test_vector(0xc0ff_ee02 + case as u64, n);
        let reference = Backend::Scalar.dot(&a, &b);
        for backend in &backends {
            let got = backend.dot(&a, &b);
            assert_eq!(
                got.to_bits(),
                reference.to_bits(),
                "backend `{}` diverged from scalar at len {n}: {got:?} vs {reference:?}",
                backend.name(),
            );
        }
    }
}

#[test]
fn selected_backend_is_bit_identical_to_scalar() {
    let selected = Backend::select();
    for &n in &lengths() {
        let a = test_vector(0xabcd_ef01 ^ n as u64, n);
        let b = test_vector(0x1234_5678 ^ n as u64, n);
        assert_eq!(
            selected.dot(&a, &b).to_bits(),
            Backend::Scalar.dot(&a, &b).to_bits(),
            "selected backend `{}` diverged at len {n}",
            selected.name(),
        );
    }
}

#[test]
#[cfg(debug_assertions)]
#[should_panic(expected = "dot length mismatch")]
fn mismatched_lengths_panic_in_debug_builds() {
    // Regression test: `dot` used to silently truncate mismatched operands
    // to their common prefix. That is now a caller bug caught by
    // `debug_assert!`; release builds keep the deterministic common-prefix
    // fallback documented on `lead_nn::simd`.
    let a = test_vector(0x0a, 3 * LANES + 2);
    let b = test_vector(0x0b, LANES + 5);
    let _ = Backend::Scalar.dot(&a, &b);
}

#[test]
#[cfg(not(debug_assertions))]
fn mismatched_lengths_use_the_common_prefix_in_release_builds() {
    let a = test_vector(0x0a, 3 * LANES + 2);
    let b = test_vector(0x0b, LANES + 5);
    let n = a.len().min(b.len());
    let reference = Backend::Scalar.dot(&a[..n], &b[..n]);
    for backend in Backend::available() {
        assert_eq!(backend.dot(&a, &b).to_bits(), reference.to_bits());
    }
}

#[test]
fn scalar_sweep_fingerprint_is_pinned() {
    // Pins the reference evaluation order itself (blocked LANES-wide
    // accumulation, ascending-lane reduction, sequential tail). If this
    // fails, the determinism contract changed — every stored model score
    // downstream is suspect. Do not just update the constant: audit why.
    let mut bits = Vec::new();
    for (case, &n) in lengths().iter().enumerate() {
        let a = test_vector(0x5eed_0001 + case as u64, n);
        let b = test_vector(0xc0ff_ee02 + case as u64, n);
        bits.push(Backend::Scalar.dot(&a, &b).to_bits());
    }
    assert_eq!(
        fingerprint(&bits),
        0xcb7a_a5a0_51f1_b699,
        "bits: {bits:08x?}"
    );
}
