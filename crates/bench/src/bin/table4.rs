//! Regenerates **Table IV**: accuracy of LEAD and its six ablation variants
//! (`-NoPoi`, `-NoSel`, `-NoHie`, `-NoGro`, `-NoFor`, `-NoBac`) per
//! stay-point bucket on the test split.
//!
//! Usage: `cargo run -p lead-bench --release --bin table4 [tiny|quick|full]`

use lead_baselines::SpRnnConfig;
use lead_bench::{write_result, Scale};
use lead_eval::report::{accuracy_csv, accuracy_table};
use lead_eval::{train_and_evaluate, Method};
use lead_synth::generate_dataset;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let synth = scale.synth_config();
    let lead_cfg = scale.lead_config();
    let rnn_cfg = SpRnnConfig::paper();

    println!("Table IV reproduction — scale `{}`", scale.name());
    let ds = generate_dataset(&synth);
    println!(
        "dataset: {} train / {} val / {} test samples",
        ds.train.len(),
        ds.val.len(),
        ds.test.len()
    );

    let mut outcomes = Vec::new();
    for method in Method::table4() {
        let t = Instant::now();
        let out = train_and_evaluate(method, &ds, &lead_cfg, &rnn_cfg).expect("eval");
        println!(
            "{:<12} trained+evaluated in {:.1}s",
            out.name,
            t.elapsed().as_secs_f64()
        );
        outcomes.push(out);
    }

    let table = accuracy_table(
        "Table IV: Accuracy of LEAD and LEAD-Variants on the Test Set",
        &outcomes,
    );
    println!("\n{table}");
    write_result(&format!("table4_{}.txt", scale.name()), &table);
    write_result(
        &format!("table4_{}.csv", scale.name()),
        &accuracy_csv(&outcomes),
    );
}
