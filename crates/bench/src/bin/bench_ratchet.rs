//! The perf-ratchet gate: runs the calibrated bench suite over a fixed
//! synthetic fleet and compares medians against the checked-in
//! `bench.baseline` (DESIGN.md §12).
//!
//! Usage:
//!
//! ```text
//! bench_ratchet [--write PATH] [--baseline PATH] [--update-baseline PATH] [--self-test]
//! ```
//!
//! - `--write PATH` — run the suite and write the canonical
//!   `bench-ratchet/v1` JSON (CI writes `results/BENCH_9.json`).
//! - `--baseline PATH` — compare the run against a baseline file; exit 1
//!   when any fingerprint-matched bench exceeds the headroom ratio. Stale
//!   and new entries are reported but do not fail the gate.
//! - `--update-baseline PATH` — run the suite and (re)write the baseline.
//! - `--self-test` — no benches: verify on synthetic records that the
//!   ratchet detects a regression, flags stale fingerprints, and round-trips
//!   its serialisation. Exits non-zero if the ratchet machinery itself is
//!   broken.
//!
//! Environment: `BENCH_RATCHET_SAMPLE_MS` (per-bench budget, default 150),
//! `BENCH_RATCHET_MAX_RATIO` (headroom, default 3.0 — generous because CI
//! machines vary; the ratchet exists to catch order-of-magnitude
//! regressions like an O(n) path going O(n²), not 10 % noise).

use lead_bench::ratchet::{
    compare, fingerprint, measure, parse_json, render_json, BenchRecord, SCHEMA,
};
use lead_core::config::LeadConfig;
use lead_core::detection::{build_groups, GroupDetector};
use lead_core::encoding::{Autoencoder, EncoderKind};
use lead_core::features::{TrajectoryFeatures, FEATURE_DIM};
use lead_core::processing::{enumerate_candidates, ProcessedTrajectory};
use lead_core::streaming::IncrementalStayExtractor;
use lead_data::records::{TrajectoryReader, TrajectoryWriter};
use lead_geo::GpsPoint;
use lead_nn::Matrix;
use lead_synth::{generate_dataset, SynthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Writes a deterministic synthetic lint corpus (NOT the real tree, whose
/// size changes every PR and would churn the ratchet) under the OS temp
/// directory and returns its root: two classified crates, 24 files, a mix
/// of functions, literals, comments, loops, and seeded violations.
fn lint_corpus() -> std::path::PathBuf {
    let root = std::env::temp_dir().join("lead-bench-lint-corpus-v1");
    if root.exists() {
        std::fs::remove_dir_all(&root).expect("clear stale lint corpus");
    }
    let write = |rel: &str, content: &str| {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().expect("corpus path has a parent"))
            .expect("mkdir corpus");
        std::fs::write(path, content).expect("write corpus file");
    };
    write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    for (c, name) in [("crates/alpha", "alpha"), ("crates/beta", "beta")] {
        write(
            &format!("{c}/Cargo.toml"),
            &format!("[package]\nname = \"{name}\"\n\n[package.metadata.lead]\nclass = \"lib\"\nkernel = \"hot\"\n"),
        );
        write(
            &format!("{c}/src/lib.rs"),
            "//! Corpus crate.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n",
        );
        for f in 0..11 {
            let mut src = String::from("//! Synthetic corpus file.\n\n");
            for i in 0..40 {
                let seed = f * 13 + i;
                match (seed * 7) % 5 {
                    0 => src.push_str(&format!(
                        "fn f{f}_{i}(x: u32) -> u32 {{\n    // widen then clamp\n    x + {i}\n}}\n"
                    )),
                    1 => src.push_str(&format!(
                        "fn s{f}_{i}() -> &'static str {{\n    \"literal with // tricks and {{braces}}\"\n}}\n"
                    )),
                    2 => src.push_str(&format!(
                        "fn l{f}_{i}(v: &[u32]) -> u32 {{\n    let mut acc = 0;\n    for &x in v {{\n        acc += x;\n    }}\n    acc\n}}\n"
                    )),
                    3 => src.push_str(&format!(
                        "fn o{f}_{i}(o: Option<u32>) -> u32 {{\n    o.unwrap()\n}}\n"
                    )),
                    _ => src.push_str(&format!(
                        "/* block {f} {i} */\nfn b{f}_{i}() {{}}\n"
                    )),
                }
            }
            write(&format!("{c}/src/mod_{f}.rs"), &src);
        }
    }
    root
}

/// Generates an in-memory interprocedural corpus resolved purely on the
/// static crate table (no manifests): per file, a `pub` entry feeding a
/// 20-deep call chain inside `crates/core` that ends in a qualified
/// cross-crate hop into `crates/geo`.
fn callgraph_corpus() -> Vec<(String, String)> {
    let mut files = Vec::new();
    for f in 0..8 {
        let mut core = String::from("//! Gen.\n\n");
        core.push_str(&format!(
            "/// Entry.\npub fn entry_{f}(x: u32) -> u32 {{\n    step_{f}_0(x)\n}}\n\n"
        ));
        for i in 0..20 {
            let next = if i + 1 < 20 {
                format!("step_{f}_{}(x)", i + 1)
            } else {
                format!("lead_geo::leaf_{f}(x)")
            };
            core.push_str(&format!(
                "fn step_{f}_{i}(x: u32) -> u32 {{\n    {next}\n}}\n\n"
            ));
        }
        files.push((format!("crates/core/src/gen_{f}.rs"), core));
        files.push((
            format!("crates/geo/src/gen_{f}.rs"),
            format!("//! Gen.\n\n/// Leaf.\npub fn leaf_{f}(x: u32) -> u32 {{\n    x.wrapping_add({f})\n}}\n"),
        ));
    }
    files
}

/// Runs the calibrated suite: processing, encoding, detection, streaming,
/// lint scanning, and SIMD dispatch.
fn run_suite(sample_ms: u64) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    let mut push = |name: &str, fp_desc: String, median_iters: (u64, u64)| {
        println!(
            "[bench] {name:<40} median {:>12} ns over {} iters",
            median_iters.0, median_iters.1
        );
        records.push(BenchRecord {
            name: name.to_string(),
            median_ns: median_iters.0,
            iters: median_iters.1,
            fingerprint: fingerprint(&fp_desc),
        });
    };

    // ---- fixed fleet -------------------------------------------------------
    let mut synth = SynthConfig::tiny();
    synth.num_trucks = 12;
    synth.days_per_truck = 2;
    let cfg = LeadConfig::paper();
    let ds = generate_dataset(&synth);
    let raws: Vec<_> = ds
        .train
        .iter()
        .chain(&ds.val)
        .chain(&ds.test)
        .map(|s| s.raw.clone())
        .collect();

    // ---- processing: noise filter + stay extraction + candidates ----------
    push(
        "processing/pipeline_24_days",
        format!(
            "seed={} trucks={} days={} d_max={} t_min={}",
            synth.seed, synth.num_trucks, synth.days_per_truck, cfg.d_max_m, cfg.t_min_s
        ),
        measure(sample_ms, || {
            for raw in &raws {
                std::hint::black_box(ProcessedTrajectory::from_raw(raw, &cfg));
            }
        }),
    );

    // ---- encoding: shared-phase-1 cache over all 28 candidates of n=8 ------
    let mut rng = StdRng::seed_from_u64(9);
    let hier = Autoencoder::new(&cfg, EncoderKind::Hierarchical, true, &mut rng);
    let mk = |rows: usize, salt: usize| {
        Matrix::from_fn(rows, FEATURE_DIM, |r, c| {
            (((salt * 31 + r * 7 + c) as f32) * 0.13).sin() * 0.5
        })
    };
    let tf = TrajectoryFeatures {
        sp_seqs: (0..8).map(|k| mk(10, k)).collect(),
        mp_seqs: (0..7).map(|k| mk(14, 100 + k)).collect(),
    };
    let cands = enumerate_candidates(8);
    push(
        "encoding/encode_all_28_candidates",
        format!(
            "n=8 len_sp=10 len_mp=14 dim={FEATURE_DIM} cands={} rng=9",
            cands.len()
        ),
        measure(sample_ms, || {
            std::hint::black_box(hier.encode_all(&tf, &cands, 1));
        }),
    );

    // ---- detection: grouped stacked-BiLSTM inference at n=14 ---------------
    let dim = cfg.c_vec_dim();
    let mut rng = StdRng::seed_from_u64(21);
    let det = GroupDetector::new(&cfg, dim, &mut rng);
    let groups = build_groups(14);
    let cvecs: Vec<Vec<Matrix>> = groups
        .forward
        .iter()
        .map(|sub| {
            sub.iter()
                .map(|cand| {
                    Matrix::from_fn(1, dim, |_, k| {
                        ((((cand.start_sp * 31 + cand.end_sp) * 13 + k) as f32) * 0.21).sin() * 0.5
                    })
                })
                .collect()
        })
        .collect();
    push(
        "detection/stacked_bilstm_n14",
        format!("n=14 dim={dim} rng=21"),
        measure(sample_ms, || {
            let refs: Vec<Vec<&Matrix>> = cvecs.iter().map(|s| s.iter().collect()).collect();
            std::hint::black_box(det.probabilities(&refs));
        }),
    );

    // ---- streaming: incremental extraction through a 5,000-point dwell -----
    // The workload that regressed to O(n²) once: a long dwell keeps the
    // anchor fixed while points pile up, so any per-point rescan of the
    // buffered suffix explodes quadratically.
    let dwell: Vec<GpsPoint> = (0..5_000)
        .map(|i| {
            let wobble = f64::from(i % 7) * 2.0e-6;
            GpsPoint::new(32.0 + wobble, 120.9, i64::from(i) * 15)
        })
        .collect();
    push(
        "streaming/long_dwell_5000_points",
        format!(
            "points=5000 interval=15 d_max={} t_min={}",
            cfg.d_max_m, cfg.t_min_s
        ),
        measure(sample_ms, || {
            let mut ex = IncrementalStayExtractor::new(cfg.d_max_m, cfg.t_min_s);
            for i in 0..dwell.len() {
                std::hint::black_box(ex.on_point_appended(&dwell[..=i]));
            }
            std::hint::black_box(ex.finish(&dwell));
        }),
    );

    // ---- data: binary container decode of a 10k-point fleet ----------------
    // Grid-aligned coordinates engage the fixed-point (delta-varint) mode —
    // the production shape for GPS feeds on the 1e-7° grid.
    let fleet: Vec<(u32, lead_geo::Trajectory)> = (0..10u32)
        .map(|truck| {
            let base_lat = 310_000_000 + i64::from(truck) * 300_000;
            let base_lng = 1_210_000_000 + i64::from(truck) * 500_000;
            let points = (0..1_000)
                .map(|i| {
                    GpsPoint::new(
                        (base_lat + i * 900) as f64 / 1e7,
                        (base_lng + i * 1_300) as f64 / 1e7,
                        i64::from(truck) * 100_000 + i * 20,
                    )
                })
                .collect();
            (truck, lead_geo::Trajectory::new(points))
        })
        .collect();
    let bin_bytes = {
        let mut w = TrajectoryWriter::new(std::io::Cursor::new(Vec::new()))
            .expect("in-memory container header");
        for (id, tr) in &fleet {
            w.write(*id, tr).expect("encode bench trajectory");
        }
        w.finish().expect("finish bench container").into_inner()
    };
    push(
        "data/read_binary_10k",
        format!(
            "trucks=10 points_per=1000 mode=fixed bytes={}",
            bin_bytes.len()
        ),
        measure(sample_ms, || {
            let mut r = TrajectoryReader::new(std::io::Cursor::new(&bin_bytes))
                .expect("open bench container");
            while let Some(item) = r.next_record().expect("decode bench record") {
                std::hint::black_box(item);
            }
        }),
    );

    // ---- data: CSV parse + binary encode of the same fleet -----------------
    let csv_text = {
        let refs: Vec<(u32, &lead_geo::Trajectory)> =
            fleet.iter().map(|(id, t)| (*id, t)).collect();
        let mut buf = Vec::new();
        lead_geo::csv::write_trajectories(&refs, &mut buf).expect("render bench CSV");
        String::from_utf8(buf).expect("CSV is UTF-8")
    };
    push(
        "data/convert_csv_10k",
        format!("trucks=10 points_per=1000 csv_bytes={}", csv_text.len()),
        measure(sample_ms, || {
            let reader =
                lead_geo::csv::CsvReader::new(csv_text.as_bytes()).expect("open bench CSV");
            let mut w = TrajectoryWriter::new(std::io::Cursor::new(Vec::new()))
                .expect("in-memory container header");
            for item in reader {
                let (id, tr) = item.expect("parse bench CSV row");
                w.write(id, &tr).expect("encode bench trajectory");
            }
            std::hint::black_box(w.finish().expect("finish bench container").into_inner());
        }),
    );

    // ---- lint: full workspace scan over a fixed synthetic corpus ----------
    // Exercises the whole analyzer stack per file: lossless tokenize, block
    // IR construction, per-line rules, R10/R11, manifests, workspace checks.
    let corpus = lint_corpus();
    push(
        "lint/scan_workspace_24_files",
        "crates=2 files_per=11 lines_per=~160 corpus=v1".to_string(),
        measure(sample_ms, || {
            std::hint::black_box(lead_lint::scan_workspace(&corpus).expect("corpus scan succeeds"));
        }),
    );

    // ---- lint: interprocedural call-graph analysis -------------------------
    // Isolates callgraph::analyze (fn inventory, call extraction and
    // resolution, R12/R13 propagation) from the per-line scan above.
    let cg_sources = callgraph_corpus();
    let cg_views: Vec<(&str, &str, lead_lint::scan::FileView)> = cg_sources
        .iter()
        .map(|(rel, src)| {
            (
                rel.as_str(),
                src.as_str(),
                lead_lint::scan::preprocess_file(src),
            )
        })
        .collect();
    push(
        "lint/callgraph_workspace",
        "crates=2 files_per=8 chain=20 corpus=v1".to_string(),
        measure(sample_ms, || {
            let files: Vec<lead_lint::callgraph::SourceFile<'_>> = cg_views
                .iter()
                .map(|(rel, source, view)| lead_lint::callgraph::SourceFile { rel, source, view })
                .collect();
            let analysis = lead_lint::callgraph::analyze(&files, &[]);
            std::hint::black_box(analysis.diags.len());
        }),
    );

    // ---- simd: runtime-dispatched dot product ------------------------------
    // The fingerprint is backend-independent on purpose: results are
    // bit-identical across backends, so only the workload shape pins it.
    let backend = lead_nn::simd::Backend::select();
    let xs: Vec<f32> = (0..16_384).map(|i| (i as f32 * 0.37).sin()).collect();
    let ys: Vec<f32> = (0..16_384).map(|i| (i as f32 * 0.53).cos()).collect();
    push(
        "simd/dot_16384_dispatch",
        "len=16384 lanes=8 blocked-mul-add".to_string(),
        measure(sample_ms, || {
            use lead_nn::simd::Kernel;
            std::hint::black_box(backend.dot(&xs, &ys));
        }),
    );

    // ---- simd: dispatched blocked matmul (the layers' product shape) -------
    let a64: Vec<f32> = (0..64 * 64)
        .map(|i| (i as f32 * 0.29).sin() * 0.5)
        .collect();
    let b64: Vec<f32> = (0..64 * 64)
        .map(|i| (i as f32 * 0.41).cos() * 0.5)
        .collect();
    let mut out64 = vec![0.0f32; 64 * 64];
    push(
        "simd/matmul_64x64x64_dispatch",
        "m=64 k=64 n=64 i-k-j axpy zero-skip".to_string(),
        measure(sample_ms, || {
            use lead_nn::simd::Kernel;
            out64.fill(0.0);
            backend.matmul_acc(&a64, &b64, &mut out64, 64, 64, 64);
            std::hint::black_box(&out64);
        }),
    );

    // ---- simd: fused gate row (LSTM/GRU hot loop shape) --------------------
    let pre: Vec<f32> = (0..4_096).map(|i| (i as f32 * 0.23).sin() * 2.0).collect();
    let bias: Vec<f32> = (0..4_096).map(|i| (i as f32 * 0.11).cos() * 0.5).collect();
    let mut gate_out = vec![0.0f32; 4_096];
    push(
        "simd/gate_row_4096_dispatch",
        "len=4096 sigmoid-gate vec-add scalar-exp".to_string(),
        measure(sample_ms, || {
            use lead_nn::simd::Kernel;
            backend.sigmoid_gate(&pre, &bias, &mut gate_out);
            std::hint::black_box(&gate_out);
        }),
    );

    records
}

/// Verifies the ratchet machinery on synthetic records: a regression is
/// caught, a changed fingerprint goes stale instead of regressing, new and
/// removed benches are reported, and the serialisation round-trips.
fn self_test(max_ratio: f64) -> Result<(), String> {
    let rec = |name: &str, median_ns: u64, fp: &str| BenchRecord {
        name: name.to_string(),
        median_ns,
        iters: 20,
        fingerprint: fp.to_string(),
    };
    let baseline = vec![
        rec("a/slow_path", 1_000_000, "fp-a"),
        rec("b/stable", 500_000, "fp-b"),
        rec("c/reworked", 400_000, "fp-c-old"),
        rec("d/removed", 300_000, "fp-d"),
    ];
    // `a` regresses far beyond the ratio, `b` drifts but stays inside it,
    // `c` changed workload (fingerprint), `e` is new, `d` disappeared.
    let current = vec![
        rec(
            "a/slow_path",
            (1_000_000.0 * max_ratio * 4.0) as u64,
            "fp-a",
        ),
        rec("b/stable", (500_000.0 * max_ratio * 0.9) as u64, "fp-b"),
        rec("c/reworked", 40_000_000, "fp-c-new"),
        rec("e/brand_new", 100_000, "fp-e"),
    ];

    let report = compare(&current, &baseline, max_ratio);
    if report.passed() {
        return Err("synthetic regression was NOT detected".into());
    }
    if report.regressions.len() != 1 || report.regressions[0].name != "a/slow_path" {
        return Err(format!(
            "expected exactly the a/slow_path regression, got {:?}",
            report.regressions
        ));
    }
    let mut stale = report.stale.clone();
    stale.sort();
    if stale != ["c/reworked", "d/removed"] {
        return Err(format!("wrong stale set: {stale:?}"));
    }
    if report.missing_baseline != ["e/brand_new"] {
        return Err(format!("wrong new set: {:?}", report.missing_baseline));
    }

    // Round-trip: parse(render(x)) == x, and rendering is order-insensitive.
    let rendered = render_json(&baseline);
    let reparsed = parse_json(&rendered).map_err(|e| format!("round-trip parse failed: {e}"))?;
    let mut sorted_baseline = baseline.clone();
    sorted_baseline.sort_by(|a, b| a.name.cmp(&b.name));
    if reparsed != sorted_baseline {
        return Err("round-trip changed the records".into());
    }
    let mut shuffled = baseline;
    shuffled.reverse();
    if render_json(&shuffled) != rendered {
        return Err("rendering is input-order dependent".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let sample_ms = env_u64("BENCH_RATCHET_SAMPLE_MS", 150);
    let max_ratio = env_f64("BENCH_RATCHET_MAX_RATIO", 3.0);

    if args.iter().any(|a| a == "--self-test") {
        return match self_test(max_ratio) {
            Ok(()) => {
                println!("ratchet self-test passed (synthetic regression detected)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ratchet self-test FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let write_path = flag_value("--write");
    let baseline_path = flag_value("--baseline");
    let update_path = flag_value("--update-baseline");
    if write_path.is_none() && baseline_path.is_none() && update_path.is_none() {
        eprintln!(
            "usage: bench_ratchet [--write PATH] [--baseline PATH] [--update-baseline PATH] [--self-test]"
        );
        return ExitCode::FAILURE;
    }

    println!("{SCHEMA}: sample budget {sample_ms} ms/bench, headroom {max_ratio:.2}x");
    let records = run_suite(sample_ms);
    let rendered = render_json(&records);

    for path in [&write_path, &update_path].into_iter().flatten() {
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create output directory");
            }
        }
        std::fs::write(path, &rendered).expect("write bench results");
        println!("[written] {path}");
    }

    if let Some(path) = baseline_path {
        let baseline_raw = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_json(&baseline_raw) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot parse baseline `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = compare(&records, &baseline, max_ratio);
        print!("{}", report.render(max_ratio));
        if !report.passed() {
            eprintln!("bench-ratchet gate FAILED");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
