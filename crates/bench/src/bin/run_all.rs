//! Runs every experiment of the paper's evaluation section back to back:
//! Table III, Table IV, Figure 8, Figure 9, Figure 10.
//!
//! Usage: `cargo run -p lead-bench --release --bin run_all [tiny|quick|full]`
//!
//! This is a thin sequential driver over the per-artefact binaries' logic;
//! the shared dataset is generated once. Table III and Figure 8 come from a
//! single train+evaluate pass (the four methods are trained once and both
//! accuracy and timing are recorded).

use lead_baselines::SpRnnConfig;
use lead_bench::{write_result, Scale};
use lead_eval::report::{accuracy_csv, accuracy_table, curve_csv, iou_table, timing_table};
use lead_eval::{train_and_evaluate, Method};
use lead_synth::generate_dataset;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let synth = scale.synth_config();
    let lead_cfg = scale.lead_config();
    let rnn_cfg = SpRnnConfig::paper();
    let suite_start = Instant::now();

    println!("LEAD full experiment suite — scale `{}`", scale.name());
    let ds = generate_dataset(&synth);
    println!(
        "dataset: {} train / {} val / {} test samples, {} POIs",
        ds.train.len(),
        ds.val.len(),
        ds.test.len(),
        ds.city.poi_db.len()
    );

    // ---- Table III + Figure 8 (one pass) ---------------------------------
    let mut t3 = Vec::new();
    for method in Method::table3() {
        let t = Instant::now();
        let out = train_and_evaluate(method, &ds, &lead_cfg, &rnn_cfg).expect("eval");
        println!(
            "[table3/fig8] {:<10} {:.1}s",
            out.name,
            t.elapsed().as_secs_f64()
        );
        t3.push(out);
    }
    let table3 = accuracy_table(
        "Table III: Accuracy of Baselines and Ours (LEAD) on the Test Set",
        &t3,
    );
    let fig8 = timing_table(
        "Figure 8: Mean Inference Time (ms) of Baselines and Ours (LEAD) on the Test Set",
        &t3,
    );
    let soft = iou_table(
        "Soft accuracy: mean temporal IoU of detected vs true loaded intervals",
        &t3,
    );
    println!("\n{table3}\n{fig8}\n{soft}");
    write_result(&format!("table3_{}.txt", scale.name()), &table3);
    write_result(&format!("table3_{}.csv", scale.name()), &accuracy_csv(&t3));
    write_result(&format!("fig8_{}.txt", scale.name()), &fig8);
    write_result(&format!("iou_{}.txt", scale.name()), &soft);

    // Figure 10 curves come from the full-LEAD run of the Table III pass.
    let lead_outcome = t3.last().expect("table3 ran");
    let mut fig10_csv = String::from("series,epoch,loss\n");
    for (name, curve) in [
        ("Forward Detector", &lead_outcome.report.forward_kld_curve),
        ("Backward Detector", &lead_outcome.report.backward_kld_curve),
    ] {
        for line in curve_csv(name, curve).lines().skip(1) {
            fig10_csv.push_str(line);
            fig10_csv.push('\n');
        }
    }
    write_result(&format!("fig10_{}.csv", scale.name()), &fig10_csv);

    // ---- Table IV + Figure 9 --------------------------------------------------
    let mut t4 = Vec::new();
    let mut fig9_csv = String::from("series,epoch,loss\n");
    for method in Method::table4() {
        // Reuse the LEAD outcome from the Table III pass for the final row.
        let out = if method == Method::Lead(lead_core::pipeline::LeadOptions::full()) {
            lead_outcome.clone()
        } else {
            let t = Instant::now();
            let out = train_and_evaluate(method, &ds, &lead_cfg, &rnn_cfg).expect("eval");
            println!(
                "[table4] {:<12} {:.1}s",
                out.name,
                t.elapsed().as_secs_f64()
            );
            out
        };
        // Figure 9 series: the AE curves of LEAD / -NoSel / -NoHie.
        let fig9_name = match out.name {
            "LEAD" => Some("HA in LEAD"),
            "LEAD-NoSel" => Some("HA in LEAD-NoSel"),
            "LEAD-NoHie" => Some("HA in LEAD-NoHie"),
            _ => None,
        };
        if let Some(name) = fig9_name {
            for line in curve_csv(name, &out.report.ae_curve).lines().skip(1) {
                fig9_csv.push_str(line);
                fig9_csv.push('\n');
            }
        }
        t4.push(out);
    }
    let table4 = accuracy_table(
        "Table IV: Accuracy of LEAD and LEAD-Variants on the Test Set",
        &t4,
    );
    println!("\n{table4}");
    write_result(&format!("table4_{}.txt", scale.name()), &table4);
    write_result(&format!("table4_{}.csv", scale.name()), &accuracy_csv(&t4));
    write_result(&format!("fig9_{}.csv", scale.name()), &fig9_csv);

    println!(
        "\nsuite finished in {:.1} minutes",
        suite_start.elapsed().as_secs_f64() / 60.0
    );
}
