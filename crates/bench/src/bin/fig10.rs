//! Regenerates **Figure 10**: training KLD curves of the forward and
//! backward detectors of full LEAD.
//!
//! Usage: `cargo run -p lead-bench --release --bin fig10 [tiny|quick|full]`

use lead_bench::{write_result, Scale};
use lead_core::pipeline::{Lead, LeadOptions};
use lead_eval::report::curve_csv;
use lead_eval::runner::to_train_samples;
use lead_synth::generate_dataset;

fn main() {
    let scale = Scale::from_args();
    let synth = scale.synth_config();
    let cfg = scale.lead_config();

    println!("Figure 10 reproduction — scale `{}`", scale.name());
    let ds = generate_dataset(&synth);
    let train = to_train_samples(&ds.train);
    let (_lead, report) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");

    let mut csv = String::from("series,epoch,loss\n");
    for (name, curve) in [
        ("Forward Detector", &report.forward_kld_curve),
        ("Backward Detector", &report.backward_kld_curve),
    ] {
        let min = curve.iter().cloned().fold(f32::INFINITY, f32::min);
        let argmin = curve
            .iter()
            .position(|&l| l == min)
            .map(|i| i + 1)
            .unwrap_or(0);
        println!("{name:<18} min KLD {min:.4} at epoch {argmin}; curve: {curve:?}");
        for line in curve_csv(name, curve).lines().skip(1) {
            csv.push_str(line);
            csv.push('\n');
        }
    }
    write_result(&format!("fig10_{}.csv", scale.name()), &csv);
}
