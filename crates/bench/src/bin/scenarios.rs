//! Regenerates the **per-scenario robustness table**: accuracy and IoU of
//! SP-R and LEAD under every named GPS pathology (tunnel dropouts, clock
//! skew, spoofed runs, mixed sampling rates, multi-leg days), with the clean
//! baseline as the control row.
//!
//! Each model trains once on the clean world and sweeps every scenario's
//! test split — see `lead_eval::scenarios` for the protocol.
//!
//! Usage: `cargo run -p lead-bench --release --bin scenarios [tiny|quick|full]`

use lead_baselines::SpRnnConfig;
use lead_bench::{write_result, Scale};
use lead_core::pipeline::LeadOptions;
use lead_eval::report::{scenario_csv, scenario_table};
use lead_eval::{evaluate_scenarios, Method};
use std::time::Instant;

/// Seed of every scenario's injection RNG stream (independent of the world
/// seed; changing it re-rolls the pathologies, not the city or the fleet).
const SCENARIO_SEED: u64 = 6;

fn main() {
    let scale = Scale::from_args();
    let synth = scale.synth_config();
    let lead_cfg = scale.lead_config();
    let rnn_cfg = SpRnnConfig::paper();

    println!("Scenario robustness suite — scale `{}`", scale.name());
    let mut tables = String::new();
    let mut csv = String::new();
    for method in [Method::SpR, Method::Lead(LeadOptions::full())] {
        let t = Instant::now();
        let rows = evaluate_scenarios(
            method,
            &synth,
            SCENARIO_SEED,
            &lead_cfg,
            &rnn_cfg,
            &lead_obs::probe::NOOP,
        )
        .expect("scenario suite");
        println!(
            "{:<10} trained + swept {} scenarios in {:.1}s",
            method.name(),
            rows.len(),
            t.elapsed().as_secs_f64()
        );
        let table = scenario_table(
            &format!(
                "Robustness of {} per recording scenario (accuracy / IoU on the test split)",
                method.name()
            ),
            &rows,
        );
        println!("\n{table}");
        tables.push_str(&table);
        tables.push('\n');
        let method_csv = scenario_csv(&rows);
        if csv.is_empty() {
            csv.push_str(&method_csv);
        } else {
            // Drop the duplicate header when concatenating methods.
            let mut lines = method_csv.lines();
            let _header = lines.next();
            for line in lines {
                csv.push_str(line);
                csv.push('\n');
            }
        }
    }
    write_result(&format!("scenarios_{}.txt", scale.name()), &tables);
    write_result(&format!("scenarios_{}.csv", scale.name()), &csv);
}
