//! Regenerates **Figure 9**: training MSE curves of the hierarchical
//! autoencoder inside LEAD, LEAD-NoSel (no self-attention), and LEAD-NoHie
//! (flat, no hierarchy).
//!
//! Usage: `cargo run -p lead-bench --release --bin fig9 [tiny|quick|full]`

use lead_bench::{write_result, Scale};
use lead_core::encoding::{Autoencoder, EncoderKind};
use lead_core::features::{FeatureExtractor, Normalizer};
use lead_core::processing::ProcessedTrajectory;
use lead_eval::report::curve_csv;
use lead_synth::generate_dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let scale = Scale::from_args();
    let synth = scale.synth_config();
    let cfg = scale.lead_config();

    println!("Figure 9 reproduction — scale `{}`", scale.name());
    let ds = generate_dataset(&synth);

    // Shared preprocessing: processed trajectories, normaliser, AE samples.
    let processed: Vec<ProcessedTrajectory> = ds
        .train
        .iter()
        .map(|s| ProcessedTrajectory::from_raw(&s.raw, &cfg))
        .filter(|p| p.num_stay_points() >= 2)
        .collect();
    let mut fx = FeatureExtractor::new(&ds.city.poi_db, &cfg, true);
    let mut rows = Vec::new();
    for proc in &processed {
        for p in proc.cleaned.points() {
            rows.push(fx.raw_features(p));
        }
    }
    fx.set_normalizer(Normalizer::fit(&rows));
    drop(rows);

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut samples = Vec::new();
    for proc in &processed {
        let tf = fx.trajectory_features(proc);
        let mut cands = proc.candidates.clone();
        cands.shuffle(&mut rng);
        for c in cands.into_iter().take(cfg.ae_samples_per_trajectory) {
            samples.push(tf.candidate(c));
        }
    }
    println!(
        "{} candidate feature sequences for AE training",
        samples.len()
    );

    let variants: [(&str, EncoderKind, bool); 3] = [
        ("HA in LEAD", EncoderKind::Hierarchical, true),
        ("HA in LEAD-NoSel", EncoderKind::Hierarchical, false),
        ("HA in LEAD-NoHie", EncoderKind::Flat, true),
    ];

    let mut csv = String::from("series,epoch,loss\n");
    for (name, kind, attention) in variants {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ae = Autoencoder::new(&cfg, kind, attention, &mut rng);
        let curve = ae.train(&samples, &cfg, &mut rng);
        let min = curve.iter().cloned().fold(f32::INFINITY, f32::min);
        let argmin = curve
            .iter()
            .position(|&l| l == min)
            .map(|i| i + 1)
            .unwrap_or(0);
        println!("{name:<18} min MSE {min:.4} at epoch {argmin}; curve: {curve:?}");
        for line in curve_csv(name, &curve).lines().skip(1) {
            csv.push_str(line);
            csv.push('\n');
        }
    }
    write_result(&format!("fig9_{}.csv", scale.name()), &csv);
}
