//! Reproduces the paper's hyper-parameter tuning claim (Section VI-A): "we
//! tune the number of BiLSTM layers L from 1 to 10 and find the highest
//! detection accuracy when L = 4 on the validation set".
//!
//! Trains full LEAD once per `L` and reports validation accuracy. Expensive
//! (trains `max_layers` models); run at `tiny`/`quick` scale.
//!
//! Usage: `cargo run -p lead-bench --release --bin sweep_layers [tiny|quick|full] [max_layers]`

use lead_bench::{write_result, Scale};
use lead_core::pipeline::{Lead, LeadOptions};
use lead_eval::runner::{test_case, to_train_samples};
use lead_synth::generate_dataset;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let max_layers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    println!(
        "BiLSTM layer sweep (L = 1..={max_layers}) — scale `{}`",
        scale.name()
    );
    let ds = generate_dataset(&scale.synth_config());
    let train = to_train_samples(&ds.train);
    let val = to_train_samples(&ds.val);

    let mut csv = String::from("layers,val_accuracy_pct,train_seconds\n");
    for layers in 1..=max_layers {
        let mut cfg = scale.lead_config();
        cfg.detector_layers = layers;
        let t = Instant::now();
        let (model, _) =
            Lead::fit_with_val(&train, &val, &ds.city.poi_db, &cfg, LeadOptions::full())
                .expect("training failed");
        let secs = t.elapsed().as_secs_f64();

        let mut hits = 0;
        let mut total = 0;
        for s in &ds.val {
            let Some((_, truth)) = test_case(s, &cfg) else {
                continue;
            };
            if let Some(r) = model.detect(&s.raw, &ds.city.poi_db) {
                hits += (r.detected == truth) as usize;
            }
            total += 1;
        }
        let acc = hits as f64 / total.max(1) as f64 * 100.0;
        println!("L = {layers}: val accuracy {acc:.1}% ({hits}/{total}) in {secs:.0}s");
        csv.push_str(&format!("{layers},{acc:.2},{secs:.1}\n"));
    }
    write_result(&format!("sweep_layers_{}.csv", scale.name()), &csv);
}
