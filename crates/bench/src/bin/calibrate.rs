//! Calibration probe: measures the wall-clock of every pipeline stage on the
//! current machine so experiment scales can be chosen deliberately.
//!
//! Usage: `cargo run -p lead-bench --release --bin calibrate [n_trucks]`

use lead_core::config::LeadConfig;
use lead_core::pipeline::{Lead, LeadOptions};
use lead_eval::runner::to_train_samples;
use lead_synth::{generate_dataset, SynthConfig};
use std::time::Instant;

fn main() {
    let n_trucks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);

    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = n_trucks;
    synth.days_per_truck = 2;

    let t = Instant::now();
    let ds = generate_dataset(&synth);
    println!(
        "dataset: {} samples ({} train / {} val / {} test), {} POIs in {:.2}s",
        ds.len(),
        ds.train.len(),
        ds.val.len(),
        ds.test.len(),
        ds.city.poi_db.len(),
        t.elapsed().as_secs_f64()
    );
    let avg_pts: f64 =
        ds.train.iter().map(|s| s.raw.len() as f64).sum::<f64>() / ds.train.len() as f64;
    println!("avg GPS points per trajectory: {avg_pts:.0}");

    let mut cfg = LeadConfig::paper();
    cfg.ae_max_epochs = 2;
    cfg.detector_max_epochs = 2;
    let train = to_train_samples(&ds.train);

    let t = Instant::now();
    let (lead, report) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");
    let fit_s = t.elapsed().as_secs_f64();
    println!(
        "LEAD fit (2+2 epochs): {fit_s:.1}s  used={} skipped={} ae_curve={:?}",
        report.used_samples, report.skipped_samples, report.ae_curve
    );

    let t = Instant::now();
    let mut detections = 0;
    for s in &ds.test {
        if lead.detect(&s.raw, &ds.city.poi_db).is_some() {
            detections += 1;
        }
    }
    println!(
        "inference: {detections} detections in {:.2}s ({:.1} ms each)",
        t.elapsed().as_secs_f64(),
        t.elapsed().as_secs_f64() * 1_000.0 / detections.max(1) as f64
    );
}
