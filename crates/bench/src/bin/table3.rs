//! Regenerates **Table III**: detection accuracy of SP-R / SP-GRU / SP-LSTM /
//! LEAD per stay-point bucket on the test split.
//!
//! Usage: `cargo run -p lead-bench --release --bin table3 [tiny|quick|full]`

use lead_baselines::SpRnnConfig;
use lead_bench::{write_result, Scale};
use lead_eval::report::{accuracy_csv, accuracy_table, iou_table};
use lead_eval::{train_and_evaluate, Method};
use lead_synth::generate_dataset;
use std::time::Instant;

fn main() {
    let scale = Scale::from_args();
    let synth = scale.synth_config();
    let lead_cfg = scale.lead_config();
    let rnn_cfg = SpRnnConfig::paper();

    println!("Table III reproduction — scale `{}`", scale.name());
    let t = Instant::now();
    let ds = generate_dataset(&synth);
    println!(
        "dataset: {} train / {} val / {} test samples in {:.1}s",
        ds.train.len(),
        ds.val.len(),
        ds.test.len(),
        t.elapsed().as_secs_f64()
    );

    let mut outcomes = Vec::new();
    for method in Method::table3() {
        let t = Instant::now();
        let out = train_and_evaluate(method, &ds, &lead_cfg, &rnn_cfg).expect("eval");
        println!(
            "{:<10} trained+evaluated in {:.1}s (excluded {} test samples)",
            out.name,
            t.elapsed().as_secs_f64(),
            out.excluded_test_samples
        );
        outcomes.push(out);
    }

    let table = accuracy_table(
        "Table III: Accuracy of Baselines and Ours (LEAD) on the Test Set",
        &outcomes,
    );
    let soft = iou_table(
        "Soft accuracy: mean temporal IoU of detected vs true loaded intervals",
        &outcomes,
    );
    println!("\n{table}\n{soft}");
    write_result(&format!("table3_{}.txt", scale.name()), &table);
    write_result(
        &format!("table3_{}.csv", scale.name()),
        &accuracy_csv(&outcomes),
    );
    write_result(&format!("iou_{}.txt", scale.name()), &soft);
}
