//! Regenerates **Figure 8**: mean inference time per raw trajectory of SP-R /
//! SP-GRU / SP-LSTM / LEAD, per stay-point bucket on the test split.
//!
//! Absolute times are not comparable with the paper's (Python + Tesla V100
//! there; single-core Rust here); EXPERIMENTS.md discusses which *relative*
//! claims survive the substitution.
//!
//! Usage: `cargo run -p lead-bench --release --bin fig8 [tiny|quick|full]`

use lead_baselines::SpRnnConfig;
use lead_bench::{write_result, Scale};
use lead_eval::report::timing_table;
use lead_eval::{train_and_evaluate, Method};
use lead_synth::generate_dataset;

fn main() {
    let scale = Scale::from_args();
    let synth = scale.synth_config();
    let lead_cfg = scale.lead_config();
    let rnn_cfg = SpRnnConfig::paper();

    println!("Figure 8 reproduction — scale `{}`", scale.name());
    let ds = generate_dataset(&synth);

    let mut outcomes = Vec::new();
    for method in Method::table3() {
        let out = train_and_evaluate(method, &ds, &lead_cfg, &rnn_cfg).expect("eval");
        println!("{:<10} measured", out.name);
        outcomes.push(out);
    }

    let table = timing_table(
        "Figure 8: Mean Inference Time (ms) of Baselines and Ours (LEAD) on the Test Set",
        &outcomes,
    );
    println!("\n{table}");
    write_result(&format!("fig8_{}.txt", scale.name()), &table);
}
