//! Diagnostic probe: trains LEAD at a configurable scale and dumps loss
//! curves plus detected-vs-truth pairs for the test split.
//!
//! Usage: `cargo run -p lead-bench --release --bin probe [n_trucks] [ae_epochs] [det_epochs]`

use lead_core::config::LeadConfig;
use lead_core::pipeline::{Lead, LeadOptions};
use lead_eval::runner::{test_case, to_train_samples};
use lead_synth::{generate_dataset, SynthConfig};
use std::time::Instant;

fn main() {
    let arg = |i: usize, d: usize| -> usize {
        std::env::args()
            .nth(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(d)
    };
    let n_trucks = arg(1, 60);
    let ae_epochs = arg(2, 12);
    let det_epochs = arg(3, 18);

    let mut synth = SynthConfig::paper_scaled();
    synth.num_trucks = n_trucks;
    synth.days_per_truck = 2;
    let mut cfg = LeadConfig::experiment();
    cfg.ae_max_epochs = ae_epochs;
    cfg.detector_max_epochs = det_epochs;

    let ds = generate_dataset(&synth);
    println!("dataset: {} train / {} test", ds.train.len(), ds.test.len());

    let train = to_train_samples(&ds.train);
    let val = to_train_samples(&ds.val);
    let t = Instant::now();
    let (lead, report) =
        Lead::fit_with_val(&train, &val, &ds.city.poi_db, &cfg, LeadOptions::full())
            .expect("training failed");
    println!(
        "fit in {:.1}s; used={} skipped={}",
        t.elapsed().as_secs_f64(),
        report.used_samples,
        report.skipped_samples
    );
    println!("AE curve:  {:?}", report.ae_curve);
    println!("FWD curve: {:?}", report.forward_kld_curve);
    println!("FWD val:   {:?}", report.forward_val_kld_curve);
    println!("BWD curve: {:?}", report.backward_kld_curve);
    println!("BWD val:   {:?}", report.backward_val_kld_curve);

    // Train-split accuracy (fit quality) before test accuracy.
    let mut tr_hits = 0;
    let mut tr_total = 0;
    for s in ds.train.iter().take(40) {
        let Some((_proc, truth)) = test_case(s, &cfg) else {
            continue;
        };
        if let Some(det) = lead.detect(&s.raw, &ds.city.poi_db) {
            tr_hits += (det.detected == truth) as usize;
            tr_total += 1;
        }
    }
    println!("train accuracy (first 40): {tr_hits}/{tr_total}");

    let mut hits = 0;
    let mut total = 0;
    let mut breakdown = lead_eval::ErrorBreakdown::new();
    for s in ds.test.iter().chain(&ds.val) {
        let Some((proc, truth)) = test_case(s, &cfg) else {
            continue;
        };
        let det = lead.detect(&s.raw, &ds.city.poi_db).unwrap();
        let hit = det.detected == truth;
        breakdown.record(det.detected, truth);
        hits += hit as usize;
        total += 1;
        println!(
            "n={:>2} truth=({},{}) detected=({},{}) {} p_max={:.3}",
            proc.num_stay_points(),
            truth.start_sp,
            truth.end_sp,
            det.detected.start_sp,
            det.detected.end_sp,
            if hit { "HIT " } else { "MISS" },
            det.probabilities.iter().cloned().fold(0.0f32, f32::max),
        );
    }
    println!("accuracy: {hits}/{total}");
    println!("{}", breakdown.summary());
}
