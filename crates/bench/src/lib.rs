//! Shared scaffolding for the experiment binaries and Criterion benchmarks.
//!
//! Every table and figure of the paper has a binary here (see DESIGN.md §4):
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Table III (accuracy vs baselines) | `table3` |
//! | Table IV (ablation accuracy)      | `table4` |
//! | Figure 8 (inference time)         | `fig8`   |
//! | Figure 9 (autoencoder MSE curves) | `fig9`   |
//! | Figure 10 (detector KLD curves)   | `fig10`  |
//! | everything                        | `run_all` |
//! | the L = 1..10 layer tuning claim  | `sweep_layers` |
//!
//! Beyond the paper, `scenarios` reports per-scenario robustness (accuracy
//! and IoU under each named GPS pathology of `lead_synth::scenario`), and
//! `bench_ratchet` runs the calibrated perf suite against `bench.baseline`.
//!
//! Two diagnostic binaries support development: `calibrate` (stage-by-stage
//! wall-clock on the current machine) and `probe` (loss curves and
//! detected-vs-truth dumps at an arbitrary scale).
//!
//! Binaries accept a scale argument (`tiny` / `quick` / `full`, default
//! `quick`) and write both stdout tables and CSV files under `results/`.

use lead_core::config::LeadConfig;
use lead_synth::SynthConfig;
use std::path::PathBuf;

pub mod ratchet;

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (seconds; numbers are noisy).
    Tiny,
    /// Default scale: stable orderings, minutes per method.
    Quick,
    /// Closest to the paper's data volume this hardware affords.
    Full,
}

impl Scale {
    /// Parses the first CLI argument, defaulting to `Quick`.
    ///
    /// # Panics
    /// Panics on an unrecognised scale name.
    pub fn from_args() -> Scale {
        match std::env::args().nth(1).as_deref() {
            None => Scale::Quick,
            Some("tiny") => Scale::Tiny,
            Some("quick") => Scale::Quick,
            Some("full") => Scale::Full,
            Some(other) => panic!("unknown scale `{other}` (expected tiny|quick|full)"),
        }
    }

    /// The synthetic-world configuration for this scale.
    pub fn synth_config(self) -> SynthConfig {
        let mut c = SynthConfig::paper_scaled();
        match self {
            Scale::Tiny => {
                c.num_trucks = 30;
                c.days_per_truck = 2;
            }
            Scale::Quick => {
                c.num_trucks = 150;
                c.days_per_truck = 2;
            }
            Scale::Full => {
                c.num_trucks = 250;
                c.days_per_truck = 2;
            }
        }
        c
    }

    /// The LEAD configuration for this scale.
    pub fn lead_config(self) -> LeadConfig {
        let mut c = LeadConfig::experiment();
        if self == Scale::Tiny {
            c.ae_max_epochs = 4;
            c.detector_max_epochs = 6;
        }
        c
    }

    /// The scale's name (used in output paths).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

/// Writes `contents` under `results/<name>` (creating the directory) and
/// echoes the path.
pub fn write_result(name: &str, contents: &str) {
    let dir = PathBuf::from("results");
    std::fs::create_dir_all(&dir).expect("create results/");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write result file");
    println!("[written] {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_produce_valid_configs() {
        for s in [Scale::Tiny, Scale::Quick, Scale::Full] {
            s.synth_config().validate();
            assert!(s.lead_config().validate().is_ok());
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(
            Scale::Tiny.synth_config().total_samples()
                < Scale::Quick.synth_config().total_samples()
        );
        assert!(
            Scale::Quick.synth_config().total_samples()
                < Scale::Full.synth_config().total_samples()
        );
    }
}
