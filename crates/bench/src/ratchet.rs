//! The performance ratchet: calibrated micro-benchmarks compared against a
//! checked-in baseline, so perf regressions fail CI the same way lint
//! regressions do (DESIGN.md §12).
//!
//! The moving parts:
//!
//! - [`measure`] — a self-calibrating timer: runs a workload until a wall
//!   budget is spent and reports the median per-iteration time (medians are
//!   robust to scheduler noise; means are not).
//! - [`BenchRecord`] — one bench's result: name, median, iteration count,
//!   and a *fingerprint* of the workload parameters. When the workload
//!   changes, the fingerprint changes, and the stale baseline entry is
//!   flagged for refresh instead of being compared against a different
//!   workload.
//! - [`render_json`] / [`parse_json`] — the canonical `bench-ratchet/v1`
//!   serialisation: sorted by bench name, fixed key order, fixed
//!   indentation, trailing newline. The schema (not the timings) is
//!   byte-stable and pinned by a golden test.
//! - [`compare`] — the ratchet itself: current vs baseline with a calibrated
//!   headroom ratio. Only fingerprint-matched entries can regress; new,
//!   removed, and refingerprinted benches are reported separately.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The schema tag of the canonical serialisation.
pub const SCHEMA: &str = "bench-ratchet/v1";

/// Regressions smaller than this many nanoseconds never fail the ratchet,
/// whatever the ratio: sub-microsecond benches flap on cache noise alone.
pub const MIN_REGRESSION_DELTA_NS: u64 = 10_000;

/// One bench's measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Stable bench name (`component/workload` by convention).
    pub name: String,
    /// Median per-iteration wall time, nanoseconds.
    pub median_ns: u64,
    /// Number of timed iterations behind the median.
    pub iters: u64,
    /// FNV-1a hash of the workload parameters (see [`fingerprint`]).
    pub fingerprint: String,
}

/// Hashes a workload description into the fingerprint hex string stored in
/// [`BenchRecord`]. Include every parameter that shapes the work (dataset
/// seed, sizes, thresholds) so a changed workload never silently compares
/// against an old baseline.
pub fn fingerprint(workload_desc: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in workload_desc.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Runs `f` repeatedly for about `sample_ms` milliseconds (after one warmup
/// call) and returns `(median_ns, iters)`.
pub fn measure<F: FnMut()>(sample_ms: u64, mut f: F) -> (u64, u64) {
    f(); // warmup: touch caches, fault pages, JIT nothing — we are AOT.
    let budget = Duration::from_millis(sample_ms);
    let start = Instant::now();
    let mut times_ns: Vec<u64> = Vec::new();
    loop {
        let t = Instant::now();
        f();
        times_ns.push(t.elapsed().as_nanos() as u64);
        if (start.elapsed() >= budget && times_ns.len() >= 9) || times_ns.len() >= 100_000 {
            break;
        }
    }
    times_ns.sort_unstable();
    (times_ns[times_ns.len() / 2], times_ns.len() as u64)
}

/// Renders records in the canonical `bench-ratchet/v1` form: sorted by name,
/// fixed key order, two-space indent, trailing newline.
pub fn render_json(records: &[BenchRecord]) -> String {
    let sorted: BTreeMap<&str, &BenchRecord> =
        records.iter().map(|r| (r.name.as_str(), r)).collect();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
    s.push_str("  \"benches\": {\n");
    let n = sorted.len();
    for (i, (name, r)) in sorted.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let _ = writeln!(
            s,
            "    \"{name}\": {{ \"median_ns\": {}, \"iters\": {}, \"fingerprint\": \"{}\" }}{comma}",
            r.median_ns, r.iters, r.fingerprint
        );
    }
    s.push_str("  }\n}\n");
    s
}

/// Parses the canonical form produced by [`render_json`].
///
/// This is deliberately *not* a general JSON parser: the ratchet only ever
/// reads files it (or a past run of it) wrote, and the golden test pins the
/// canonical shape. Anything else is a loud error.
pub fn parse_json(s: &str) -> Result<Vec<BenchRecord>, String> {
    if !s.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(format!("not a {SCHEMA} file"));
    }
    let mut out = Vec::new();
    for line in s.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        if rest.starts_with("schema") || rest.starts_with("benches") {
            continue;
        }
        let (name, fields) = rest
            .split_once('"')
            .ok_or_else(|| format!("unterminated bench name in `{line}`"))?;
        out.push(BenchRecord {
            name: name.to_string(),
            median_ns: field_u64(fields, "median_ns")?,
            iters: field_u64(fields, "iters")?,
            fingerprint: field_str(fields, "fingerprint")?,
        });
    }
    if out.is_empty() {
        return Err("no bench entries found".into());
    }
    Ok(out)
}

fn field_u64(fields: &str, key: &str) -> Result<u64, String> {
    let tag = format!("\"{key}\": ");
    let start = fields
        .find(&tag)
        .ok_or_else(|| format!("missing field `{key}`"))?
        + tag.len();
    let digits: String = fields[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|e| format!("bad `{key}` value: {e}"))
}

fn field_str(fields: &str, key: &str) -> Result<String, String> {
    let tag = format!("\"{key}\": \"");
    let start = fields
        .find(&tag)
        .ok_or_else(|| format!("missing field `{key}`"))?
        + tag.len();
    fields[start..]
        .split('"')
        .next()
        .map(str::to_string)
        .ok_or_else(|| format!("unterminated `{key}` value"))
}

/// One bench that got slower than the baseline allows.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The bench's name.
    pub name: String,
    /// Current median, nanoseconds.
    pub current_ns: u64,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// `current_ns / baseline_ns`.
    pub ratio: f64,
}

/// The outcome of one ratchet comparison.
#[derive(Debug, Clone, Default)]
pub struct RatchetReport {
    /// Benches slower than `baseline × max_ratio` (plus the absolute floor).
    pub regressions: Vec<Regression>,
    /// Baseline entries that no longer match the current suite: the bench
    /// disappeared, or its workload fingerprint changed. Stale entries do
    /// not fail the gate but must be refreshed with `--update-baseline`.
    pub stale: Vec<String>,
    /// Current benches with no baseline entry yet (new benches).
    pub missing_baseline: Vec<String>,
}

impl RatchetReport {
    /// Whether the gate passes (stale and missing entries are warnings).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn render(&self, max_ratio: f64) -> String {
        let mut s = String::new();
        for r in &self.regressions {
            let _ = writeln!(
                s,
                "REGRESSION {}: {} ns vs baseline {} ns ({:.2}x > {max_ratio:.2}x allowed)",
                r.name, r.current_ns, r.baseline_ns, r.ratio
            );
        }
        for name in &self.stale {
            let _ = writeln!(
                s,
                "STALE      {name}: baseline entry no longer matches the suite (refresh with --update-baseline)"
            );
        }
        for name in &self.missing_baseline {
            let _ = writeln!(
                s,
                "NEW        {name}: no baseline entry yet (record with --update-baseline)"
            );
        }
        if s.is_empty() {
            s.push_str("all benches within baseline headroom\n");
        }
        s
    }
}

/// Compares `current` against `baseline`: a fingerprint-matched bench
/// regresses when its median exceeds `baseline × max_ratio` and the absolute
/// slowdown exceeds [`MIN_REGRESSION_DELTA_NS`]. Fingerprint mismatches and
/// removed benches are stale; unknown benches are missing from the baseline.
pub fn compare(current: &[BenchRecord], baseline: &[BenchRecord], max_ratio: f64) -> RatchetReport {
    let base: BTreeMap<&str, &BenchRecord> =
        baseline.iter().map(|r| (r.name.as_str(), r)).collect();
    let cur: BTreeMap<&str, &BenchRecord> = current.iter().map(|r| (r.name.as_str(), r)).collect();

    let mut report = RatchetReport::default();
    for (name, c) in &cur {
        match base.get(name) {
            None => report.missing_baseline.push((*name).to_string()),
            Some(b) if b.fingerprint != c.fingerprint => report.stale.push((*name).to_string()),
            Some(b) => {
                let ratio = c.median_ns as f64 / (b.median_ns.max(1)) as f64;
                if ratio > max_ratio
                    && c.median_ns.saturating_sub(b.median_ns) > MIN_REGRESSION_DELTA_NS
                {
                    report.regressions.push(Regression {
                        name: (*name).to_string(),
                        current_ns: c.median_ns,
                        baseline_ns: b.median_ns,
                        ratio,
                    });
                }
            }
        }
    }
    for name in base.keys() {
        if !cur.contains_key(name) {
            report.stale.push((*name).to_string());
        }
    }
    report
}
