//! Benchmarks of the incremental stay-point extractor against the batch
//! extractor it mirrors, on the adversarial shape for streaming: one long
//! dwell, where every appended fix lands inside the open stay window and a
//! naive extractor rescans the whole buffered suffix per point (O(n²)).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lead_core::config::LeadConfig;
use lead_core::processing::extract_stay_points;
use lead_core::streaming::IncrementalStayExtractor;
use lead_geo::{GpsPoint, Trajectory};

/// A single dwell: the truck parks and its GPS wobbles a few metres.
fn long_dwell(points: usize) -> Vec<GpsPoint> {
    (0..points)
        .map(|i| {
            let wobble = (i % 7) as f64 * 2.0e-6;
            GpsPoint::new(32.0 + wobble, 120.9, i as i64 * 15)
        })
        .collect()
}

fn bench_streaming(c: &mut Criterion) {
    let cfg = LeadConfig::paper();

    let mut g = c.benchmark_group("streaming_long_dwell");
    for n in [500usize, 2_000, 5_000] {
        let dwell = long_dwell(n);

        g.bench_with_input(BenchmarkId::new("incremental", n), &dwell, |b, dwell| {
            b.iter(|| {
                let mut ex = IncrementalStayExtractor::new(cfg.d_max_m, cfg.t_min_s);
                for i in 0..dwell.len() {
                    black_box(ex.on_point_appended(&dwell[..=i]));
                }
                black_box(ex.finish(dwell));
            })
        });

        let trajectory = Trajectory::new(dwell.clone());
        g.bench_with_input(BenchmarkId::new("batch", n), &trajectory, |b, tr| {
            b.iter(|| black_box(extract_stay_points(tr, cfg.d_max_m, cfg.t_min_s as f64)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
