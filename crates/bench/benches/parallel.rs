//! Scaling benchmarks of the data-parallel hot paths: 1 worker thread vs.
//! all available cores on candidate encoding, detector training, and batch
//! detection. On a multi-core machine the N-thread rows should approach a
//! cores-fold speedup; on one core both rows match (the 1-thread row takes
//! the exact serial code path). Results are bit-identical either way — the
//! parallel layer reduces in a fixed order (see `lead_nn::par`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lead_core::config::LeadConfig;
use lead_core::detection::{build_groups, forward_flat_order, smoothed_label, GroupDetector};
use lead_core::encoding::{Autoencoder, EncoderKind};
use lead_core::features::{TrajectoryFeatures, FEATURE_DIM};
use lead_core::label::TruthLabel;
use lead_core::pipeline::{Lead, LeadOptions, TrainSample};
use lead_core::poi::PoiDatabase;
use lead_core::processing::enumerate_candidates;
use lead_geo::distance::meters_to_lng_deg;
use lead_geo::{GpsPoint, Trajectory};
use lead_nn::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn all_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Thread counts under comparison: serial and every core.
fn thread_counts() -> Vec<usize> {
    let n = all_cores();
    if n > 1 {
        vec![1, n]
    } else {
        vec![1]
    }
}

fn features(n: usize, len_sp: usize, len_mp: usize) -> TrajectoryFeatures {
    let mk = |rows: usize, salt: usize| {
        Matrix::from_fn(rows, FEATURE_DIM, |r, c| {
            (((salt * 31 + r * 7 + c) as f32) * 0.13).sin() * 0.5
        })
    };
    TrajectoryFeatures {
        sp_seqs: (0..n).map(|k| mk(len_sp, k)).collect(),
        mp_seqs: (0..n - 1).map(|k| mk(len_mp, 100 + k)).collect(),
    }
}

fn bench_parallel_encoding(c: &mut Criterion) {
    let cfg = LeadConfig::paper();
    let mut rng = StdRng::seed_from_u64(9);
    let hier = Autoencoder::new(&cfg, EncoderKind::Hierarchical, true, &mut rng);
    let tf = features(8, 10, 14);
    let cands = enumerate_candidates(8);

    let mut g = c.benchmark_group("parallel_encode_all_28_candidates");
    g.sample_size(10);
    for threads in thread_counts() {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(hier.encode_all(&tf, &cands, t)))
        });
    }
    g.finish();
}

fn bench_parallel_detector_training(c: &mut Criterion) {
    let n = 6;
    let mut cfg = LeadConfig::fast_test();
    cfg.detector_max_epochs = 1;
    let c_dim = cfg.c_vec_dim();
    let groups = build_groups(n);
    let order = forward_flat_order(n);
    let cvec = |salt: usize| {
        Matrix::from_fn(1, c_dim, |_, k| {
            (((salt * 13 + k) as f32) * 0.21).sin() * 0.4
        })
    };
    let items: Vec<(Vec<Vec<Matrix>>, Matrix)> = (0..8)
        .map(|s| {
            let group: Vec<Vec<Matrix>> = groups
                .forward
                .iter()
                .map(|sub| {
                    sub.iter()
                        .map(|c| cvec(s * 100 + c.start_sp * 10 + c.end_sp))
                        .collect()
                })
                .collect();
            let truth = order[s % order.len()];
            (group, smoothed_label(&order, truth, cfg.label_epsilon))
        })
        .collect();

    let mut g = c.benchmark_group("parallel_detector_train_epoch");
    g.sample_size(10);
    for threads in thread_counts() {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let mut cfg = cfg.clone();
            cfg.num_threads = t;
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut det = GroupDetector::new(&cfg, c_dim, &mut rng);
                black_box(det.train_with_validation(&items, None, &cfg, &mut rng))
            })
        });
    }
    g.finish();
}

/// One synthetic working day with `blocks` dwells (see the parity tests).
fn synthetic_day(blocks: usize, variant: u64) -> (Trajectory, Vec<(i64, i64)>) {
    let per_km = meters_to_lng_deg(1_000.0, 32.0);
    let mut pts = Vec::new();
    let mut dwells = Vec::new();
    let mut t = 0i64;
    for block in 0..blocks {
        let wobble = ((variant.wrapping_mul(block as u64 + 1) % 7) as f64 - 3.0) * 0.3;
        let lng = 120.9 + (block as f64 * 5.0 + wobble) * per_km;
        let start = t;
        for _ in 0..10 {
            pts.push(GpsPoint::new(32.0, lng, t));
            t += 120;
        }
        dwells.push((start, t - 120));
        for k in 1..=3 {
            pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
            t += 120;
        }
    }
    (Trajectory::new(pts), dwells)
}

fn labelled_sample(blocks: usize, variant: u64, load: usize, unload: usize) -> TrainSample {
    let (raw, dwells) = synthetic_day(blocks, variant);
    let truth = TruthLabel {
        load_start_s: dwells[load].0,
        load_end_s: dwells[load].1,
        unload_start_s: dwells[unload].0,
        unload_end_s: dwells[unload].1,
    };
    TrainSample { raw, truth }
}

fn bench_parallel_batch_detection(c: &mut Criterion) {
    let db = PoiDatabase::new(vec![]);
    let train = vec![
        labelled_sample(4, 1, 0, 2),
        labelled_sample(4, 2, 1, 3),
        labelled_sample(3, 3, 0, 2),
    ];
    let batch: Vec<Trajectory> = (0..16).map(|v| synthetic_day(4, 20 + v).0).collect();

    let mut g = c.benchmark_group("parallel_detect_batch_16_days");
    g.sample_size(10);
    for threads in thread_counts() {
        // `detect_batch` reads `config.num_threads`, fixed at fit time; the
        // seed is fixed too, so both models carry identical weights.
        let mut cfg = LeadConfig::fast_test();
        cfg.num_threads = threads;
        let (model, _) =
            Lead::fit(&train, &db, &cfg, LeadOptions::full()).expect("training failed");
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| black_box(model.detect_batch(&batch, &db)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_parallel_encoding,
    bench_parallel_detector_training,
    bench_parallel_batch_detection
);
criterion_main!(benches);
