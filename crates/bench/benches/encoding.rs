//! Benchmarks of the candidate trajectory encoding component (Section IV):
//! hierarchical vs. flat compression, attention vs. last-hidden aggregation,
//! and the shared-phase-1 `encode_all` cache vs. naive per-candidate
//! encoding.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lead_core::config::LeadConfig;
use lead_core::encoding::{Autoencoder, EncoderKind};
use lead_core::features::{CandidateFeatures, TrajectoryFeatures, FEATURE_DIM};
use lead_core::processing::enumerate_candidates;
use lead_nn::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A synthetic trajectory-features bundle: `n` stays of `len_sp` points and
/// `n − 1` moves of `len_mp` points.
fn features(n: usize, len_sp: usize, len_mp: usize) -> TrajectoryFeatures {
    let mk = |rows: usize, salt: usize| {
        Matrix::from_fn(rows, FEATURE_DIM, |r, c| {
            (((salt * 31 + r * 7 + c) as f32) * 0.13).sin() * 0.5
        })
    };
    TrajectoryFeatures {
        sp_seqs: (0..n).map(|k| mk(len_sp, k)).collect(),
        mp_seqs: (0..n - 1).map(|k| mk(len_mp, 100 + k)).collect(),
    }
}

fn bench_encoding(c: &mut Criterion) {
    let cfg = LeadConfig::paper();
    let mut rng = StdRng::seed_from_u64(9);
    let hier = Autoencoder::new(&cfg, EncoderKind::Hierarchical, true, &mut rng);
    let hier_nosel = Autoencoder::new(&cfg, EncoderKind::Hierarchical, false, &mut rng);
    let flat = Autoencoder::new(&cfg, EncoderKind::Flat, true, &mut rng);

    let tf = features(8, 10, 14);
    let cands = enumerate_candidates(8);
    let one: CandidateFeatures = tf.candidate(cands[cands.len() / 2]);

    let mut g = c.benchmark_group("encode_one_candidate");
    g.sample_size(20);
    g.bench_function("hierarchical_attention", |b| {
        b.iter(|| black_box(hier.encode_value(&one)))
    });
    g.bench_function("hierarchical_last_hidden", |b| {
        b.iter(|| black_box(hier_nosel.encode_value(&one)))
    });
    g.bench_function("flat", |b| b.iter(|| black_box(flat.encode_value(&one))));
    g.finish();

    let mut g = c.benchmark_group("encode_all_28_candidates");
    g.sample_size(10);
    g.bench_function("shared_phase1_cache", |b| {
        b.iter(|| black_box(hier.encode_all(&tf, &cands, 1)))
    });
    g.bench_function("per_candidate_naive", |b| {
        b.iter(|| {
            let out: Vec<Matrix> = cands
                .iter()
                .map(|&cand| hier.encode_value(&tf.candidate(cand)))
                .collect();
            black_box(out)
        })
    });
    g.finish();

    let samples = vec![one.clone()];
    let mut g = c.benchmark_group("reconstruction_loss");
    g.sample_size(10);
    g.bench_function("hierarchical", |b| {
        b.iter(|| black_box(hier.evaluate(&samples)))
    });
    g.bench_function("flat", |b| b.iter(|| black_box(flat.evaluate(&samples))));
    g.finish();
}

criterion_group!(benches, bench_encoding);
criterion_main!(benches);
