//! Ablation bench (DESIGN.md §5): grid-indexed radius queries vs. linear
//! scans, for both the POI feature extraction (100 m counts) and the SP-R
//! whitelist search (500 m membership).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lead_baselines::Whitelist;
use lead_synth::{generate_dataset, City, SynthConfig};

fn world() -> City {
    let mut cfg = SynthConfig::tiny();
    cfg.num_background_pois = 3_000;
    generate_dataset(&cfg).city
}

fn bench_poi_queries(c: &mut Criterion) {
    let city = world();
    let queries: Vec<(f64, f64)> = (0..256)
        .map(|i| {
            let f = i as f64;
            (
                32.0 + (f * 0.17).sin() * 0.15,
                120.9 + (f * 0.31).cos() * 0.15,
            )
        })
        .collect();

    let mut g = c.benchmark_group("poi_counts_256_queries");
    g.bench_function("grid_index", |b| {
        b.iter(|| {
            for &(lat, lng) in &queries {
                black_box(city.poi_db.category_counts_within(lat, lng, 100.0));
            }
        })
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            for &(lat, lng) in &queries {
                black_box(city.poi_db.category_counts_within_scan(lat, lng, 100.0));
            }
        })
    });
    g.finish();

    // Whitelist membership at SP-R's 500 m radius.
    let locations: Vec<(f64, f64)> = city
        .loading_sites
        .iter()
        .chain(&city.unloading_sites)
        .map(|s| (s.lat, s.lng))
        .collect();
    let wl = Whitelist::from_locations(locations);
    let mut g = c.benchmark_group("whitelist_256_queries");
    g.bench_function("linear_scan_paper", |b| {
        b.iter(|| {
            for &(lat, lng) in &queries {
                black_box(wl.contains_near_scan(lat, lng, 500.0));
            }
        })
    });
    g.bench_function("grid_index", |b| {
        b.iter(|| {
            for &(lat, lng) in &queries {
                black_box(wl.contains_near_indexed(lat, lng, 500.0));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_poi_queries);
criterion_main!(benches);
