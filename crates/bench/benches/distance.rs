//! Ablation bench: haversine vs. the equirectangular fast path (DESIGN.md §5).
//!
//! Stay-point extraction and grid filtering call a distance function in their
//! innermost loops; this quantifies what the approximate path buys.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lead_geo::distance::{equirectangular_m, haversine_m};

fn bench_distance(c: &mut Criterion) {
    let pairs: Vec<(f64, f64, f64, f64)> = (0..1024)
        .map(|i| {
            let f = i as f64;
            (
                32.0 + (f * 0.37).sin() * 0.2,
                120.9 + (f * 0.73).cos() * 0.2,
                32.0 + (f * 0.11).cos() * 0.2,
                120.9 + (f * 0.29).sin() * 0.2,
            )
        })
        .collect();

    let mut g = c.benchmark_group("distance_1024_pairs");
    g.bench_function("haversine", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(a, bb, cc, d) in &pairs {
                acc += haversine_m(black_box(a), black_box(bb), black_box(cc), black_box(d));
            }
            acc
        })
    });
    g.bench_function("equirectangular", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(a, bb, cc, d) in &pairs {
                acc += equirectangular_m(black_box(a), black_box(bb), black_box(cc), black_box(d));
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
