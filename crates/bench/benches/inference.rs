//! End-to-end online-stage benchmark (the microbenchmark behind Figure 8):
//! `Lead::detect` on raw trajectories grouped by stay-point bucket, plus the
//! SP-R baseline for the relative comparison.
//!
//! Training in the setup uses the fast-test configuration — inference cost
//! depends on architecture sizes, not trained weights, so the paper-size
//! architecture is kept while epochs are minimal.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lead_baselines::SpR;
use lead_core::config::LeadConfig;
use lead_core::pipeline::{Lead, LeadOptions};
use lead_core::processing::ProcessedTrajectory;
use lead_eval::runner::to_train_samples;
use lead_eval::Bucket;
use lead_synth::{generate_dataset, SynthConfig};

fn bench_inference(c: &mut Criterion) {
    let mut synth = SynthConfig::tiny();
    synth.num_trucks = 20;
    let ds = generate_dataset(&synth);

    // Paper-size architecture, minimal training (inference cost only).
    let mut cfg = LeadConfig::paper();
    cfg.ae_max_epochs = 1;
    cfg.detector_max_epochs = 1;
    cfg.ae_samples_per_trajectory = 2;
    let train = to_train_samples(&ds.train);
    let (lead, _) =
        Lead::fit(&train, &ds.city.poi_db, &cfg, LeadOptions::full()).expect("training failed");
    let spr = SpR::fit(&train, &cfg);

    // One representative test trajectory per bucket.
    let mut per_bucket: [Option<&lead_synth::Sample>; 4] = [None; 4];
    for s in ds.test.iter().chain(&ds.val).chain(&ds.train) {
        let proc = ProcessedTrajectory::from_raw(&s.raw, &cfg);
        let b = Bucket::of(proc.num_stay_points()).index();
        if per_bucket[b].is_none() {
            per_bucket[b] = Some(s);
        }
    }

    let mut g = c.benchmark_group("detect_one_trajectory");
    g.sample_size(10);
    for (i, sample) in per_bucket.iter().enumerate() {
        let Some(sample) = sample else { continue };
        let label = Bucket::ALL[i].label();
        g.bench_with_input(BenchmarkId::new("lead", label), sample, |b, s| {
            b.iter(|| black_box(lead.detect(&s.raw, &ds.city.poi_db)))
        });
        g.bench_with_input(BenchmarkId::new("sp_r", label), sample, |b, s| {
            b.iter(|| black_box(spr.detect(&s.raw)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
