//! Benchmarks of the raw trajectory processing component (Section III):
//! noise filtering, stay-point extraction (including a `D_max`/`T_min`
//! parameter sweep — DESIGN.md §5), and candidate generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lead_core::config::LeadConfig;
use lead_core::processing::{
    enumerate_candidates, extract_stay_points, filter_noise, ProcessedTrajectory,
};
use lead_geo::Trajectory;
use lead_synth::{generate_dataset, SynthConfig};

fn sample_trajectories() -> Vec<Trajectory> {
    let mut cfg = SynthConfig::tiny();
    cfg.num_trucks = 12;
    cfg.days_per_truck = 2;
    let ds = generate_dataset(&cfg);
    ds.train.into_iter().map(|s| s.raw).collect()
}

fn bench_processing(c: &mut Criterion) {
    let trajectories = sample_trajectories();
    let cleaned: Vec<Trajectory> = trajectories
        .iter()
        .map(|t| filter_noise(t, 130.0))
        .collect();
    let cfg = LeadConfig::paper();

    c.bench_function("noise_filter/24_trajectories", |b| {
        b.iter(|| {
            for t in &trajectories {
                black_box(filter_noise(t, black_box(130.0)));
            }
        })
    });

    let mut g = c.benchmark_group("stay_point_extraction");
    for (d_max, t_min) in [
        (200.0, 900.0),
        (500.0, 900.0),
        (500.0, 1800.0),
        (1000.0, 900.0),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d{d_max}_t{t_min}")),
            &(d_max, t_min),
            |b, &(d, t)| {
                b.iter(|| {
                    for tr in &cleaned {
                        black_box(extract_stay_points(tr, d, t));
                    }
                })
            },
        );
    }
    g.finish();

    c.bench_function("candidate_enumeration/n14", |b| {
        b.iter(|| black_box(enumerate_candidates(black_box(14))))
    });

    c.bench_function("full_processing/24_trajectories", |b| {
        b.iter(|| {
            for t in &trajectories {
                black_box(ProcessedTrajectory::from_raw(t, &cfg));
            }
        })
    });
}

criterion_group!(benches, bench_processing);
criterion_main!(benches);
