//! Benchmarks of the detection component (Section V): grouped stacked-BiLSTM
//! detector inference as the stay-point count grows, against the NoGro MLP.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lead_core::config::LeadConfig;
use lead_core::detection::{build_groups, GroupDetector, MlpDetector};
use lead_nn::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cvec(dim: usize, salt: usize) -> Matrix {
    Matrix::from_fn(1, dim, |_, k| (((salt * 13 + k) as f32) * 0.21).sin() * 0.5)
}

fn bench_detection(c: &mut Criterion) {
    let cfg = LeadConfig::paper();
    let dim = cfg.c_vec_dim();
    let mut rng = StdRng::seed_from_u64(21);
    let det = GroupDetector::new(&cfg, dim, &mut rng);
    let mlp = MlpDetector::new(dim, &mut rng);

    let mut g = c.benchmark_group("detector_inference_by_stay_points");
    g.sample_size(10);
    for n in [5usize, 8, 11, 14] {
        let groups = build_groups(n);
        let cvecs: Vec<Vec<Matrix>> = groups
            .forward
            .iter()
            .map(|sub| {
                sub.iter()
                    .map(|cand| cvec(dim, cand.start_sp * 31 + cand.end_sp))
                    .collect()
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("stacked_bilstm", n), &n, |b, _| {
            b.iter(|| {
                let refs: Vec<Vec<&Matrix>> = cvecs.iter().map(|s| s.iter().collect()).collect();
                black_box(det.probabilities(&refs))
            })
        });
        let flat: Vec<Matrix> = cvecs.iter().flatten().cloned().collect();
        g.bench_with_input(BenchmarkId::new("mlp_nogro", n), &n, |b, _| {
            b.iter(|| black_box(mlp.probabilities(&flat)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detection);
criterion_main!(benches);
