//! Integration tests for the bench-ratchet: a golden test pinning the
//! `bench-ratchet/v1` serialisation byte-for-byte, round-trip and comparison
//! semantics, and the fingerprint contract.
//!
//! The golden test is the schema's change detector: if the rendering ever
//! shifts, every checked-in `bench.baseline` becomes unreadable, so the
//! bytes below may only change together with a schema version bump.

use lead_bench::ratchet::{
    compare, fingerprint, measure, parse_json, render_json, BenchRecord, MIN_REGRESSION_DELTA_NS,
    SCHEMA,
};

fn rec(name: &str, median_ns: u64, iters: u64, fp: &str) -> BenchRecord {
    BenchRecord {
        name: name.to_string(),
        median_ns,
        iters,
        fingerprint: fp.to_string(),
    }
}

#[test]
fn golden_render_is_byte_stable() {
    // Deliberately unsorted input: the renderer must sort by name.
    let records = vec![
        rec("streaming/long_dwell", 987, 1500, "ebc82d6b23f510d0"),
        rec("processing/pipeline", 123456, 42, "4ef570f2c2a53211"),
    ];
    let expected = "{\n\
        \x20 \"schema\": \"bench-ratchet/v1\",\n\
        \x20 \"benches\": {\n\
        \x20   \"processing/pipeline\": { \"median_ns\": 123456, \"iters\": 42, \"fingerprint\": \"4ef570f2c2a53211\" },\n\
        \x20   \"streaming/long_dwell\": { \"median_ns\": 987, \"iters\": 1500, \"fingerprint\": \"ebc82d6b23f510d0\" }\n\
        \x20 }\n\
        }\n";
    assert_eq!(render_json(&records), expected);
    assert_eq!(SCHEMA, "bench-ratchet/v1");
}

#[test]
fn render_parse_roundtrip_preserves_records() {
    let records = vec![
        rec("b/two", 2_000_000, 10, "aaaa"),
        rec("a/one", 1, 100_000, "bbbb"),
    ];
    let parsed = parse_json(&render_json(&records)).expect("canonical form parses");
    // Parse returns name-sorted records (the canonical order).
    assert_eq!(parsed, vec![records[1].clone(), records[0].clone()]);
}

#[test]
fn parse_rejects_foreign_files() {
    assert!(parse_json("{}").is_err());
    assert!(parse_json("{ \"schema\": \"bench-ratchet/v999\" }").is_err());
    // Right schema tag but no entries is still an error, not an empty pass.
    let empty = "{\n  \"schema\": \"bench-ratchet/v1\",\n  \"benches\": {\n  }\n}\n";
    assert!(parse_json(empty).is_err());
}

#[test]
fn compare_flags_regressions_stale_and_new() {
    let baseline = vec![
        rec("a", 1_000_000, 10, "fp-a"),
        rec("b", 1_000_000, 10, "fp-b"),
        rec("gone", 1_000_000, 10, "fp-gone"),
    ];
    let current = vec![
        rec("a", 5_000_000, 10, "fp-a"),     // 5x slower: regression
        rec("b", 5_000_000, 10, "fp-b2"),    // refingerprinted: stale, not regression
        rec("fresh", 1_000, 10, "fp-fresh"), // no baseline yet
    ];
    let report = compare(&current, &baseline, 3.0);
    assert!(!report.passed());
    assert_eq!(report.regressions.len(), 1);
    assert_eq!(report.regressions[0].name, "a");
    assert!((report.regressions[0].ratio - 5.0).abs() < 1e-9);
    let mut stale = report.stale.clone();
    stale.sort();
    assert_eq!(stale, ["b", "gone"]);
    assert_eq!(report.missing_baseline, ["fresh"]);
    let rendered = report.render(3.0);
    assert!(rendered.contains("REGRESSION a"));
    assert!(rendered.contains("STALE"));
    assert!(rendered.contains("NEW"));
}

#[test]
fn tiny_absolute_slowdowns_never_regress() {
    // 100 ns -> 900 ns is a 9x ratio but far under the absolute floor:
    // sub-microsecond benches flap on cache noise and must not fail CI.
    let baseline = vec![rec("t", 100, 10, "fp")];
    let current = vec![rec("t", 900, 10, "fp")];
    assert!(compare(&current, &baseline, 3.0).passed());
    // Just past the floor with the same ratio, it does regress.
    let baseline = vec![rec("t", MIN_REGRESSION_DELTA_NS, 10, "fp")];
    let current = vec![rec("t", MIN_REGRESSION_DELTA_NS * 9, 10, "fp")];
    assert!(!compare(&current, &baseline, 3.0).passed());
}

#[test]
fn fingerprints_separate_workloads() {
    let a = fingerprint("n=14 dim=64 seed=9");
    let b = fingerprint("n=14 dim=64 seed=10");
    assert_ne!(a, b);
    assert_eq!(a, fingerprint("n=14 dim=64 seed=9"));
    assert_eq!(a.len(), 16);
    assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
}

#[test]
fn measure_reports_sane_medians() {
    let mut counter = 0u64;
    let (median_ns, iters) = measure(5, || {
        counter = counter.wrapping_add(1);
        std::hint::black_box(counter);
    });
    assert!(iters >= 9, "at least the minimum iteration count");
    assert!(median_ns < 1_000_000_000, "a no-op cannot take a second");
}
