//! Streaming/in-RAM fit equivalence.
//!
//! [`Lead::fit_streaming`] generalises only *ingestion*: per-shard
//! `par_map` concatenation equals one whole-dataset `par_map`, so for the
//! same seed every downstream stage — normaliser, autoencoder sampling,
//! detector training, every RNG draw — must be **bit-identical** to
//! [`Lead::fit_with_val`], at any shard size, from any source (in-RAM
//! slices or binary shard files). These tests pin that contract on
//! serialized model bytes, training curves, and detections, and pin the
//! constant-memory claim itself on a high-water-mark counting source.

use lead_core::config::LeadConfig;
use lead_core::pipeline::{DetectionResult, FitOptions, Lead, LeadOptions, TrainSample};
use lead_core::poi::{Poi, PoiCategory, PoiDatabase};
use lead_core::source::{
    write_sample_shards, BinarySampleShards, SampleSource, SliceSamples, SourceError,
};
use lead_core::LeadError;
use lead_geo::distance::meters_to_lng_deg;
use lead_geo::{GpsPoint, Trajectory};

/// One synthetic working day (same generator as `parallel_parity.rs`).
fn synthetic_day(blocks: usize, variant: u64) -> (Trajectory, Vec<(i64, i64)>) {
    let per_km = meters_to_lng_deg(1_000.0, 32.0);
    let mut pts = Vec::new();
    let mut dwells = Vec::new();
    let mut t = 0i64;
    for block in 0..blocks {
        let wobble = ((variant.wrapping_mul(block as u64 + 1) % 7) as f64 - 3.0) * 0.3;
        let lng = 120.9 + (block as f64 * 5.0 + wobble) * per_km;
        let start = t;
        for _ in 0..10 {
            pts.push(GpsPoint::new(32.0, lng, t));
            t += 120;
        }
        dwells.push((start, t - 120));
        for k in 1..=3 {
            pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
            t += 120;
        }
    }
    (Trajectory::new(pts), dwells)
}

fn labelled_sample(blocks: usize, variant: u64, load: usize, unload: usize) -> TrainSample {
    let (raw, dwells) = synthetic_day(blocks, variant);
    let truth = lead_core::label::TruthLabel {
        load_start_s: dwells[load].0,
        load_end_s: dwells[load].1,
        unload_start_s: dwells[unload].0,
        unload_end_s: dwells[unload].1,
    };
    truth.validate();
    TrainSample { raw, truth }
}

fn poi_db() -> PoiDatabase {
    let per_km = meters_to_lng_deg(1_000.0, 32.0);
    PoiDatabase::new(vec![
        Poi {
            lat: 32.0,
            lng: 120.9,
            category: PoiCategory::ChemicalFactory,
        },
        Poi {
            lat: 32.0,
            lng: 120.9 + 5.0 * per_km,
            category: PoiCategory::FuelingStation,
        },
        Poi {
            lat: 32.0,
            lng: 120.9 + 10.0 * per_km,
            category: PoiCategory::Port,
        },
    ])
}

fn train_val_sets() -> (Vec<TrainSample>, Vec<TrainSample>) {
    let train = vec![
        labelled_sample(4, 1, 0, 2),
        labelled_sample(4, 2, 1, 3),
        labelled_sample(3, 3, 0, 2),
        labelled_sample(4, 4, 0, 3),
        labelled_sample(4, 7, 1, 2),
    ];
    let val = vec![labelled_sample(4, 5, 1, 2), labelled_sample(3, 6, 0, 1)];
    (train, val)
}

fn config() -> LeadConfig {
    let mut config = LeadConfig::fast_test();
    config.num_threads = 2;
    config
}

fn bits(curve: &[f32]) -> Vec<u32> {
    curve.iter().map(|v| v.to_bits()).collect()
}

fn detection_fingerprint(r: &Option<DetectionResult>) -> Option<(Vec<u32>, usize, usize)> {
    r.as_ref().map(|d| {
        (
            bits(&d.probabilities),
            d.detected.start_sp,
            d.detected.end_sp,
        )
    })
}

/// Serialized model bytes + curves + held-out detection: the complete
/// observable footprint of a fit.
fn footprint(model: &Lead, report: &lead_core::pipeline::TrainingReport) -> (Vec<u8>, Vec<u32>) {
    let mut bytes = Vec::new();
    model
        .write_to(&mut bytes)
        .expect("serializing to memory cannot fail");
    let mut curves = Vec::new();
    curves.extend(bits(&report.ae_curve));
    curves.extend(bits(&report.ae_val_curve));
    curves.extend(bits(&report.forward_kld_curve));
    curves.extend(bits(&report.forward_val_kld_curve));
    curves.extend(bits(&report.backward_kld_curve));
    curves.extend(bits(&report.backward_val_kld_curve));
    (bytes, curves)
}

#[test]
fn streaming_fit_is_bit_identical_to_in_ram_fit_at_any_shard_size() {
    let db = poi_db();
    let (train, val) = train_val_sets();
    let cfg = config();
    let (held_out, _) = synthetic_day(4, 9);

    let (ref_model, ref_report) =
        Lead::fit_with_val(&train, &val, &db, &cfg, LeadOptions::full()).expect("in-RAM fit");
    let ref_fp = footprint(&ref_model, &ref_report);
    let ref_det = detection_fingerprint(&ref_model.detect(&held_out, &db));
    assert!(ref_det.is_some(), "held-out day must be detectable");

    for shard_size in [1, 2, 3, train.len()] {
        let mut src = SliceSamples::with_shard_size(&train, shard_size);
        let mut val_src = SliceSamples::new(&val);
        let (model, report) = Lead::fit_streaming(
            &mut src,
            Some(&mut val_src),
            &db,
            &cfg,
            LeadOptions::full(),
            &FitOptions::new(),
        )
        .expect("streaming fit");
        let fp = footprint(&model, &report);
        assert_eq!(
            fp, ref_fp,
            "shard_size={shard_size}: streaming fit diverged from in-RAM fit"
        );
        assert_eq!(report.used_samples, ref_report.used_samples);
        assert_eq!(report.skipped_samples, ref_report.skipped_samples);
        let det = detection_fingerprint(&model.detect(&held_out, &db));
        assert_eq!(det, ref_det, "shard_size={shard_size}");
    }
}

#[test]
fn binary_shard_fit_is_bit_identical_to_in_ram_fit() {
    let db = poi_db();
    let (train, val) = train_val_sets();
    let cfg = config();

    let (ref_model, ref_report) =
        Lead::fit_with_val(&train, &val, &db, &cfg, LeadOptions::full()).expect("in-RAM fit");
    let ref_fp = footprint(&ref_model, &ref_report);

    let dir = std::env::temp_dir().join("lead-core-streaming-parity");
    for shard_size in [1, 2, train.len()] {
        let train_paths =
            write_sample_shards(&train, &dir, &format!("train-{shard_size}"), shard_size)
                .expect("write train shards");
        let val_paths = write_sample_shards(&val, &dir, &format!("val-{shard_size}"), val.len())
            .expect("write val shards");
        let mut src = BinarySampleShards::open(&train_paths).expect("open train shards");
        assert_eq!(src.len_hint(), Some(train.len() as u64));
        assert_eq!(src.num_shards(), train.len().div_ceil(shard_size));
        let mut val_src = BinarySampleShards::open(&val_paths).expect("open val shards");
        let (model, report) = Lead::fit_streaming(
            &mut src,
            Some(&mut val_src),
            &db,
            &cfg,
            LeadOptions::full(),
            &FitOptions::new(),
        )
        .expect("streaming fit over binary shards");
        let fp = footprint(&model, &report);
        assert_eq!(
            fp, ref_fp,
            "shard_size={shard_size}: binary-shard fit diverged from in-RAM fit"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn val_fraction_split_matches_explicit_tail_split() {
    let db = poi_db();
    let (train, val) = train_val_sets();
    // The carved-split semantics: the last floor(n·f) raw samples become
    // the validation set. Build the equivalent explicit split and compare.
    let mut all = train.clone();
    all.extend(val.iter().cloned());
    let f = 2.0 / 7.0 + 1e-9; // carves exactly the 2 val samples off 7
    let n_val = ((all.len() as f64) * f).floor() as usize;
    assert_eq!(n_val, 2);
    let cfg = config();

    let (ref_model, ref_report) = Lead::fit_with_val(
        &all[..all.len() - n_val],
        &all[all.len() - n_val..],
        &db,
        &cfg,
        LeadOptions::full(),
    )
    .expect("explicit split fit");
    let ref_fp = footprint(&ref_model, &ref_report);

    let mut src = SliceSamples::with_shard_size(&all, 3);
    let (model, report) = Lead::fit_streaming(
        &mut src,
        None,
        &db,
        &cfg,
        LeadOptions::full(),
        &FitOptions::new().with_val_fraction(f),
    )
    .expect("val-fraction fit");
    assert_eq!(footprint(&model, &report), ref_fp);
}

#[test]
fn fit_options_validation_is_typed() {
    let db = poi_db();
    let (train, val) = train_val_sets();
    let cfg = config();

    let mut src = SliceSamples::new(&train);
    match Lead::fit_streaming(
        &mut src,
        None,
        &db,
        &cfg,
        LeadOptions::full(),
        &FitOptions::new().with_val_fraction(1.0),
    ) {
        Err(LeadError::Config(e)) => assert_eq!(e.field, "val_fraction"),
        Err(other) => panic!("wanted Config error for val_fraction=1.0, got {other:?}"),
        Ok(_) => panic!("val_fraction=1.0 fit unexpectedly succeeded"),
    }

    let mut src = SliceSamples::new(&train);
    let mut val_src = SliceSamples::new(&val);
    match Lead::fit_streaming(
        &mut src,
        Some(&mut val_src),
        &db,
        &cfg,
        LeadOptions::full(),
        &FitOptions::new().with_val_fraction(0.2),
    ) {
        Err(LeadError::Config(e)) => assert_eq!(e.field, "val_fraction"),
        Err(other) => panic!("wanted Config error for fraction+explicit val, got {other:?}"),
        Ok(_) => panic!("fraction+explicit val fit unexpectedly succeeded"),
    }
}

#[test]
fn source_errors_surface_through_fit_streaming() {
    let db = poi_db();
    let cfg = config();

    /// A source whose second shard always fails.
    struct FailingSource {
        good: Vec<TrainSample>,
    }
    impl SampleSource for FailingSource {
        fn len_hint(&self) -> Option<u64> {
            None
        }
        fn num_shards(&self) -> usize {
            2
        }
        fn read_shard(
            &mut self,
            shard: usize,
            sink: &mut dyn FnMut(TrainSample),
        ) -> Result<(), SourceError> {
            if shard == 0 {
                for s in &self.good {
                    sink(s.clone());
                }
                Ok(())
            } else {
                Err(SourceError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "shard store went away",
                )))
            }
        }
    }

    let mut src = FailingSource {
        good: vec![labelled_sample(4, 1, 0, 2)],
    };
    match Lead::fit_streaming(
        &mut src,
        None,
        &db,
        &cfg,
        LeadOptions::full(),
        &FitOptions::new(),
    ) {
        Err(LeadError::Source(SourceError::Io(_))) => {}
        Err(other) => panic!("wanted Source(Io) error, got {other:?}"),
        Ok(_) => panic!("fit over a failing source unexpectedly succeeded"),
    }
}

/// A source that tracks the high-water mark of samples handed out per
/// shard read, pinning the constant-memory claim: training must never ask
/// for more than one shard's samples at a time.
struct CountingSource<'a> {
    inner: SliceSamples<'a>,
    max_batch: usize,
}

impl SampleSource for CountingSource<'_> {
    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
    fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }
    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(TrainSample),
    ) -> Result<(), SourceError> {
        let mut in_this_shard = 0usize;
        let result = self.inner.read_shard(shard, &mut |s| {
            in_this_shard += 1;
            sink(s);
        });
        self.max_batch = self.max_batch.max(in_this_shard);
        result
    }
}

#[test]
fn streaming_ingestion_is_bounded_by_the_shard_size() {
    let db = poi_db();
    let (train, val) = train_val_sets();
    let cfg = config();

    let shard_size = 2;
    let mut src = CountingSource {
        inner: SliceSamples::with_shard_size(&train, shard_size),
        max_batch: 0,
    };
    let mut val_src = SliceSamples::new(&val);
    Lead::fit_streaming(
        &mut src,
        Some(&mut val_src),
        &db,
        &cfg,
        LeadOptions::full(),
        &FitOptions::new(),
    )
    .expect("streaming fit");
    assert!(src.max_batch > 0, "the source was never read");
    assert!(
        src.max_batch <= shard_size,
        "ingestion pulled {} samples at once (shard size {shard_size})",
        src.max_batch
    );
}
