//! Serial/parallel equivalence of the data-parallel hot paths.
//!
//! The determinism contract (see `lead_nn::par`) promises bit-identical
//! results for every `num_threads` at a fixed seed: training reduces
//! gradients in item order, encoding/detection map candidates in index
//! order. These tests pin that contract end to end — training curves,
//! detection probabilities, and detected candidates must match the serial
//! path exactly, not approximately.

use lead_core::config::LeadConfig;
use lead_core::pipeline::{DetectOptions, DetectionResult, Lead, LeadOptions, TrainSample};
use lead_core::poi::{Poi, PoiCategory, PoiDatabase};
use lead_geo::distance::meters_to_lng_deg;
use lead_geo::{GpsPoint, Trajectory};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One synthetic working day: `blocks` dwells separated by short drives,
/// geometry perturbed by `variant` so trajectories differ. Returns the raw
/// trajectory plus the dwell time intervals in order.
fn synthetic_day(blocks: usize, variant: u64) -> (Trajectory, Vec<(i64, i64)>) {
    let per_km = meters_to_lng_deg(1_000.0, 32.0);
    let mut pts = Vec::new();
    let mut dwells = Vec::new();
    let mut t = 0i64;
    for block in 0..blocks {
        let wobble = ((variant.wrapping_mul(block as u64 + 1) % 7) as f64 - 3.0) * 0.3;
        let lng = 120.9 + (block as f64 * 5.0 + wobble) * per_km;
        let start = t;
        for _ in 0..10 {
            pts.push(GpsPoint::new(32.0, lng, t));
            t += 120;
        }
        dwells.push((start, t - 120));
        for k in 1..=3 {
            pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
            t += 120;
        }
    }
    (Trajectory::new(pts), dwells)
}

/// A labelled sample whose truth is the `load`→`unload` dwell pair.
fn labelled_sample(blocks: usize, variant: u64, load: usize, unload: usize) -> TrainSample {
    let (raw, dwells) = synthetic_day(blocks, variant);
    let truth = lead_core::label::TruthLabel {
        load_start_s: dwells[load].0,
        load_end_s: dwells[load].1,
        unload_start_s: dwells[unload].0,
        unload_end_s: dwells[unload].1,
    };
    truth.validate();
    TrainSample { raw, truth }
}

fn poi_db() -> PoiDatabase {
    let per_km = meters_to_lng_deg(1_000.0, 32.0);
    PoiDatabase::new(vec![
        Poi {
            lat: 32.0,
            lng: 120.9,
            category: PoiCategory::ChemicalFactory,
        },
        Poi {
            lat: 32.0,
            lng: 120.9 + 5.0 * per_km,
            category: PoiCategory::FuelingStation,
        },
        Poi {
            lat: 32.0,
            lng: 120.9 + 10.0 * per_km,
            category: PoiCategory::Port,
        },
    ])
}

fn train_val_sets() -> (Vec<TrainSample>, Vec<TrainSample>) {
    let train = vec![
        labelled_sample(4, 1, 0, 2),
        labelled_sample(4, 2, 1, 3),
        labelled_sample(3, 3, 0, 2),
        labelled_sample(4, 4, 0, 3),
    ];
    let val = vec![labelled_sample(4, 5, 1, 2), labelled_sample(3, 6, 0, 1)];
    (train, val)
}

fn fit_with_threads(num_threads: usize) -> (Lead, lead_core::pipeline::TrainingReport) {
    let (train, val) = train_val_sets();
    let mut config = LeadConfig::fast_test();
    config.num_threads = num_threads;
    Lead::fit_with_val(&train, &val, &poi_db(), &config, LeadOptions::full()).expect("fit")
}

fn bits(curve: &[f32]) -> Vec<u32> {
    curve.iter().map(|v| v.to_bits()).collect()
}

fn detection_fingerprint(r: &Option<DetectionResult>) -> Option<(Vec<u32>, usize, usize)> {
    r.as_ref().map(|d| {
        (
            bits(&d.probabilities),
            d.detected.start_sp,
            d.detected.end_sp,
        )
    })
}

#[test]
fn fit_and_detect_are_bit_identical_across_thread_counts() {
    let db = poi_db();
    let (held_out, _) = synthetic_day(4, 9);
    let (ref_model, ref_report) = fit_with_threads(1);
    let ref_detection = detection_fingerprint(&ref_model.detect(&held_out, &db));
    assert!(ref_detection.is_some(), "held-out day must be detectable");
    for threads in [2, 4] {
        let (model, report) = fit_with_threads(threads);
        assert_eq!(
            bits(&report.ae_curve),
            bits(&ref_report.ae_curve),
            "threads={threads}"
        );
        assert_eq!(
            bits(&report.ae_val_curve),
            bits(&ref_report.ae_val_curve),
            "threads={threads}"
        );
        assert_eq!(
            bits(&report.forward_kld_curve),
            bits(&ref_report.forward_kld_curve),
            "threads={threads}"
        );
        assert_eq!(
            bits(&report.backward_kld_curve),
            bits(&ref_report.backward_kld_curve),
            "threads={threads}"
        );
        assert_eq!(
            bits(&report.forward_val_kld_curve),
            bits(&ref_report.forward_val_kld_curve),
            "threads={threads}"
        );
        assert_eq!(report.used_samples, ref_report.used_samples);
        assert_eq!(report.skipped_samples, ref_report.skipped_samples);
        let detection = detection_fingerprint(&model.detect(&held_out, &db));
        assert_eq!(detection, ref_detection, "threads={threads}");
    }
}

#[test]
fn detect_batch_matches_individual_detects() {
    let db = poi_db();
    let (model, _) = fit_with_threads(2);
    let raws: Vec<Trajectory> = vec![
        synthetic_day(4, 9).0,
        synthetic_day(3, 10).0,
        // Degenerate day: a single dwell, no candidate — must map to None.
        synthetic_day(1, 11).0,
        synthetic_day(4, 12).0,
    ];
    let batch = model.detect_batch(&raws, &db);
    assert_eq!(batch.len(), raws.len());
    assert!(batch[2].is_none(), "one stay point admits no candidate");
    for (raw, got) in raws.iter().zip(&batch) {
        let individual = model.detect(raw, &db);
        assert_eq!(
            detection_fingerprint(got),
            detection_fingerprint(&individual)
        );
    }
}

/// Cross-run determinism: two *fresh* trainings from the same seed must be
/// byte-identical, end to end. This is stronger than thread-count parity —
/// it would catch any nondeterministic iteration order (e.g. a `HashMap`
/// sneaking into a result-affecting path, lint rule R1) or ambient state
/// leaking into training, because both runs rebuild every model from
/// scratch and compare the serialized weights byte for byte.
#[test]
fn fresh_runs_from_the_same_seed_are_byte_identical() {
    let db = poi_db();
    let (held_out, _) = synthetic_day(4, 9);

    let run = || {
        let (model, report) = fit_with_threads(2);
        let mut bytes = Vec::new();
        model
            .write_to(&mut bytes)
            .expect("serializing to memory cannot fail");
        let detection = detection_fingerprint(&model.detect(&held_out, &db));
        (bytes, bits(&report.ae_curve), detection)
    };

    let (bytes_a, curve_a, det_a) = run();
    let (bytes_b, curve_b, det_b) = run();
    assert_eq!(curve_a, curve_b, "training curves diverged across runs");
    assert_eq!(det_a, det_b, "detections diverged across runs");
    assert!(det_a.is_some(), "held-out day must be detectable");
    assert_eq!(
        bytes_a, bytes_b,
        "serialized models diverged across fresh same-seed runs"
    );
}

/// Restores runtime backend selection even if the test panics, so a failure
/// here cannot leak a forced backend into other tests in this binary.
struct BackendGuard;

impl Drop for BackendGuard {
    fn drop(&mut self) {
        lead_nn::simd::force_backend(None);
    }
}

/// The cross-backend determinism contract: a fit forced onto the scalar
/// reference backend and a fit on the runtime-selected backend (AVX2 where
/// the CPU has it) must produce byte-identical serialized models, training
/// curves, and detections. This is the end-to-end closure of the per-kernel
/// `to_bits` parity pinned in `lead_nn`'s `simd_parity`/`proptest_simd`
/// suites: if any hot path bypassed the dispatched kernels or a kernel
/// rounded differently, the persisted byte streams would diverge here.
#[test]
fn fit_is_bit_identical_across_simd_backends() {
    let db = poi_db();
    let (held_out, _) = synthetic_day(4, 9);
    let _guard = BackendGuard;

    lead_nn::simd::force_backend(Some(lead_nn::simd::Backend::Scalar));
    let (scalar_model, scalar_report) = fit_with_threads(2);
    let mut scalar_bytes = Vec::new();
    scalar_model
        .write_to(&mut scalar_bytes)
        .expect("serializing to memory cannot fail");
    let scalar_det = detection_fingerprint(&scalar_model.detect(&held_out, &db));

    lead_nn::simd::force_backend(None);
    let (auto_model, auto_report) = fit_with_threads(2);
    let mut auto_bytes = Vec::new();
    auto_model
        .write_to(&mut auto_bytes)
        .expect("serializing to memory cannot fail");
    let auto_det = detection_fingerprint(&auto_model.detect(&held_out, &db));

    assert_eq!(
        bits(&scalar_report.ae_curve),
        bits(&auto_report.ae_curve),
        "autoencoder curves diverged across SIMD backends"
    );
    assert_eq!(
        bits(&scalar_report.forward_kld_curve),
        bits(&auto_report.forward_kld_curve),
        "forward detector curves diverged across SIMD backends"
    );
    assert_eq!(
        scalar_det, auto_det,
        "detections diverged across SIMD backends"
    );
    assert!(scalar_det.is_some(), "held-out day must be detectable");
    assert_eq!(
        scalar_bytes, auto_bytes,
        "serialized models diverged across SIMD backends"
    );
}

fn shared_model() -> &'static (Lead, PoiDatabase) {
    static MODEL: OnceLock<(Lead, PoiDatabase)> = OnceLock::new();
    MODEL.get_or_init(|| (fit_with_threads(1).0, poi_db()))
}

proptest! {
    #[test]
    fn detection_is_thread_count_invariant(
        blocks in 1usize..5,
        variant in any::<u64>(),
        threads in 2usize..5,
    ) {
        let (model, db) = shared_model();
        let (raw, _) = synthetic_day(blocks, variant);
        let serial = model.detect_opts(&raw, db, &DetectOptions::new().with_threads(1));
        let parallel = model.detect_opts(&raw, db, &DetectOptions::new().with_threads(threads));
        prop_assert_eq!(detection_fingerprint(&serial), detection_fingerprint(&parallel));
        if blocks < 2 {
            prop_assert!(serial.is_none(), "fewer than two stays admit no candidate");
        }
    }
}
