//! Property-based tests of the LEAD core: processing invariants, grouping
//! combinatorics, label distributions, and probability merging.

use lead_core::detection::{
    backward_flat_order, build_groups, forward_flat_order, merge_probabilities, smoothed_label,
};
use lead_core::features::Normalizer;
use lead_core::processing::{enumerate_candidates, extract_stay_points, filter_noise, Candidate};
use lead_geo::{GpsPoint, Trajectory};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random chronological city-scale trajectories.
fn trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((31.8..32.2f64, 120.7..121.1f64, 30i64..300), 2..120).prop_map(|steps| {
        let mut t = 0;
        let pts = steps
            .into_iter()
            .map(|(lat, lng, dt)| {
                t += dt;
                GpsPoint::new(lat, lng, t)
            })
            .collect();
        Trajectory::new(pts)
    })
}

/// Trajectories built from the scenario suite's pathological segments:
/// `0` = a dwell (metre-scale wobble at second-scale intervals, the shape
/// that makes a naive incremental extractor quadratic), `1` = a tunnel-style
/// dropout (multi-minute silence), `2` = a sparse cruise (up to 120 s
/// between fixes, kilometres apart).
fn pathological_trajectory() -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((0u8..3, 2usize..40), 1..8).prop_map(|segments| {
        let mut t = 0i64;
        let (mut lat, mut lng) = (32.0f64, 120.9f64);
        let mut pts = Vec::new();
        for (i, (kind, len)) in segments.into_iter().enumerate() {
            match kind {
                0 => {
                    for k in 0..len * 8 {
                        t += 15;
                        pts.push(GpsPoint::new(lat + (k % 7) as f64 * 2.0e-6, lng, t));
                    }
                }
                1 => {
                    t += 300 + (i as i64 * 97) % 1200;
                    pts.push(GpsPoint::new(lat, lng, t));
                }
                _ => {
                    for k in 0..len {
                        t += 5 + ((i + k) as i64 * 31) % 116;
                        lat += 2.0e-3;
                        lng += 1.5e-3;
                        pts.push(GpsPoint::new(lat, lng, t));
                    }
                }
            }
            lat += 1.0e-3;
        }
        if pts.is_empty() {
            pts.push(GpsPoint::new(lat, lng, 1));
        }
        Trajectory::new(pts)
    })
}

proptest! {
    #[test]
    fn noise_filter_output_is_subsequence_and_speed_bounded(tr in trajectory()) {
        let out = filter_noise(&tr, 130.0);
        prop_assert!(out.len() <= tr.len());
        prop_assert!(!out.is_empty());
        // Chronological subsequence of the input.
        let input_ts: Vec<i64> = tr.points().iter().map(|p| p.t).collect();
        let mut cursor = 0;
        for p in out.points() {
            let pos = input_ts[cursor..].iter().position(|&t| t == p.t);
            prop_assert!(pos.is_some(), "filter invented a point");
            cursor += pos.unwrap() + 1;
        }
        // No residual super-threshold speed.
        for w in out.points().windows(2) {
            prop_assert!(w[0].speed_to_mps(&w[1]) * 3.6 <= 130.0 + 1e-9);
        }
    }

    #[test]
    fn stay_points_satisfy_their_definition(tr in trajectory()) {
        let d_max = 500.0;
        let t_min = 900.0;
        let stays = extract_stay_points(&tr, d_max, t_min);
        let pts = tr.points();
        for sp in &stays {
            prop_assert!(sp.start < sp.end);
            prop_assert!((pts[sp.end].t - pts[sp.start].t) as f64 >= t_min);
            for k in sp.start..=sp.end {
                prop_assert!(pts[sp.start].distance_m(&pts[k]) <= d_max + 1e-9);
            }
            if sp.end + 1 < pts.len() {
                prop_assert!(pts[sp.start].distance_m(&pts[sp.end + 1]) > d_max);
            }
        }
        for w in stays.windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
    }

    #[test]
    fn candidate_enumeration_counts_and_uniqueness(n in 0usize..25) {
        let c = enumerate_candidates(n);
        prop_assert_eq!(c.len(), n * n.saturating_sub(1) / 2);
        let set: HashSet<Candidate> = c.iter().copied().collect();
        prop_assert_eq!(set.len(), c.len());
        for cand in &c {
            prop_assert!(cand.start_sp < cand.end_sp && cand.end_sp < n);
        }
    }

    #[test]
    fn groups_cover_candidates_exactly_once(n in 2usize..15) {
        let g = build_groups(n);
        let all: HashSet<Candidate> = enumerate_candidates(n).into_iter().collect();
        let fwd: Vec<Candidate> = g.forward.iter().flatten().copied().collect();
        let bwd: Vec<Candidate> = g.backward.iter().flatten().copied().collect();
        prop_assert_eq!(fwd.len(), all.len());
        prop_assert_eq!(bwd.len(), all.len());
        prop_assert_eq!(fwd.into_iter().collect::<HashSet<_>>(), all.clone());
        prop_assert_eq!(bwd.into_iter().collect::<HashSet<_>>(), all);
    }

    #[test]
    fn smoothed_labels_are_distributions(n in 2usize..15, seed in 0usize..100) {
        let order = forward_flat_order(n);
        let truth = order[seed % order.len()];
        let label = smoothed_label(&order, truth, 1e-5);
        let sum: f32 = label.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(label.data().iter().all(|&p| p > 0.0));
        // The argmax is the truth.
        let (_, col) = label.argmax().unwrap();
        prop_assert_eq!(order[col], truth);
    }

    #[test]
    fn merge_is_argmax_consistent_with_raw_sum(
        n in 2usize..10,
        seed in any::<u64>(),
    ) {
        // Random positive distributions in both orders.
        let m = n * (n - 1) / 2;
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / u32::MAX as f32).max(1e-6)
        };
        let fwd: Vec<f32> = (0..m).map(|_| next()).collect();
        let bwd: Vec<f32> = (0..m).map(|_| next()).collect();
        let merged = merge_probabilities(n, &fwd, &bwd);
        prop_assert_eq!(merged.len(), m);
        prop_assert!(merged.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));

        // Recompute raw sums by candidate identity and compare argmaxes.
        let forder = forward_flat_order(n);
        let border = backward_flat_order(n);
        let mut raw = vec![0.0f32; m];
        for (i, c) in forder.iter().enumerate() {
            let bpos = border.iter().position(|x| x == c).unwrap();
            raw[i] = fwd[i] + bwd[bpos];
        }
        let am_raw = raw
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let am_merged = merged
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assert_eq!(am_raw, am_merged);
    }

    /// Like [`incremental_extraction_matches_batch`] but over the GPS
    /// pathology shapes of the scenario suite: long dwells (the extractor's
    /// adversarial case), tunnel-style dropout gaps, and sparse sampling
    /// rates, interleaved at random.
    #[test]
    fn incremental_extraction_matches_batch_on_pathological_shapes(
        tr in pathological_trajectory(),
    ) {
        use lead_core::streaming::IncrementalStayExtractor;
        let d_max = 500.0;
        let t_min = 900i64;
        let batch = extract_stay_points(&tr, d_max, t_min as f64);

        let mut ex = IncrementalStayExtractor::new(d_max, t_min);
        let mut buffer = Vec::new();
        let mut streamed = Vec::new();
        for &p in tr.points() {
            buffer.push(p);
            streamed.extend(ex.on_point_appended(&buffer));
        }
        streamed.extend(ex.finish(&buffer));
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn incremental_extraction_matches_batch(tr in trajectory()) {
        use lead_core::streaming::IncrementalStayExtractor;
        let d_max = 500.0;
        let t_min = 900i64;
        let batch = extract_stay_points(&tr, d_max, t_min as f64);

        let mut ex = IncrementalStayExtractor::new(d_max, t_min);
        let mut buffer = Vec::new();
        let mut streamed = Vec::new();
        for &p in tr.points() {
            buffer.push(p);
            streamed.extend(ex.on_point_appended(&buffer));
        }
        streamed.extend(ex.finish(&buffer));
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn normalizer_output_is_bounded_and_centered(
        rows in prop::collection::vec(prop::collection::vec(-1e4..1e4f32, 5), 2..40),
    ) {
        let n = Normalizer::fit(&rows);
        let mut sums = vec![0.0f64; 5];
        for r in &rows {
            let mut r = r.clone();
            n.normalize(&mut r);
            for (v, s) in r.iter().zip(sums.iter_mut()) {
                prop_assert!(v.abs() <= 1.0, "unbounded normalised value {}", v);
                *s += *v as f64;
            }
        }
        // Means near zero unless clamping bit hard (clamp only moves values
        // toward zero symmetrically for roughly symmetric data, so allow a
        // loose bound).
        for s in sums {
            prop_assert!((s / rows.len() as f64).abs() < 0.5);
        }
    }
}
