//! The observability determinism contract: probes are write-only.
//!
//! Attaching a recording probe to training or detection must not change a
//! single bit of the result — the trained weights (compared through the
//! persisted byte stream), the training curves, and every detection
//! probability must be identical with and without a probe. The same file
//! pins the fallible public API: invalid configurations and empty training
//! sets surface as typed [`LeadError`]s, never panics.

use lead_core::config::LeadConfig;
use lead_core::pipeline::{DetectOptions, Lead, LeadOptions, TrainSample};
use lead_core::poi::{Poi, PoiCategory, PoiDatabase};
use lead_core::LeadError;
use lead_geo::distance::meters_to_lng_deg;
use lead_geo::{GpsPoint, Trajectory};
use lead_obs::Recorder;

/// A minimal trainable world (mirrors the persistence tests' fixture).
fn tiny_world() -> (Vec<TrainSample>, PoiDatabase) {
    let per_km = meters_to_lng_deg(1_000.0, 32.0);
    let mk_raw = |offset: f64| {
        let mut pts = Vec::new();
        let mut t = 0;
        for block in 0..3 {
            let lng = 120.9 + offset + block as f64 * 5.0 * per_km;
            for _ in 0..10 {
                pts.push(GpsPoint::new(32.0, lng, t));
                t += 120;
            }
            for k in 1..=3 {
                pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
                t += 120;
            }
        }
        Trajectory::new(pts)
    };
    let truth = lead_core::TruthLabel {
        load_start_s: 0,
        load_end_s: 1_080,
        unload_start_s: 1_560,
        unload_end_s: 2_640,
    };
    let samples = (0..3)
        .map(|i| TrainSample {
            raw: mk_raw(i as f64 * 0.0001),
            truth,
        })
        .collect();
    let pois = vec![
        Poi {
            lat: 32.0,
            lng: 120.9,
            category: PoiCategory::ChemicalFactory,
        },
        Poi {
            lat: 32.0,
            lng: 120.9 + 5.0 * per_km,
            category: PoiCategory::Factory,
        },
        Poi {
            lat: 32.0,
            lng: 120.9 + 10.0 * per_km,
            category: PoiCategory::Restaurant,
        },
    ];
    (samples, PoiDatabase::new(pois))
}

fn model_bytes(lead: &Lead) -> Vec<u8> {
    let mut buf = Vec::new();
    lead.write_to(&mut buf).expect("serialize");
    buf
}

#[test]
fn probed_fit_and_detect_are_bit_identical() {
    let (samples, db) = tiny_world();
    let cfg = LeadConfig::fast_test();

    let (plain, plain_report) =
        Lead::fit(&samples, &db, &cfg, LeadOptions::full()).expect("plain fit");

    let recorder = Recorder::new();
    let (probed, probed_report) =
        Lead::fit_opts(&samples, &[], &db, &cfg, LeadOptions::full(), &recorder)
            .expect("probed fit");

    // Identical weights, bit for bit, through the persisted byte stream.
    assert_eq!(model_bytes(&plain), model_bytes(&probed));
    // Identical training curves.
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&plain_report.ae_curve), bits(&probed_report.ae_curve));
    assert_eq!(
        bits(&plain_report.forward_kld_curve),
        bits(&probed_report.forward_kld_curve)
    );
    assert_eq!(
        bits(&plain_report.backward_kld_curve),
        bits(&probed_report.backward_kld_curve)
    );

    // Identical detections, probe attached or not.
    let det_recorder = Recorder::new();
    let opts = DetectOptions::new().with_probe(&det_recorder);
    for s in &samples {
        let a = plain.detect(&s.raw, &db);
        let b = probed.detect_opts(&s.raw, &db, &opts);
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.detected, b.detected);
                assert_eq!(bits(&a.probabilities), bits(&b.probabilities));
            }
            (None, None) => {}
            _ => panic!("detectability changed under a probe"),
        }
    }

    // The fit-side recorder actually saw the pipeline.
    let snap = recorder.snapshot();
    assert!(recorder.counter("processing.points_in").unwrap_or(0) > 0);
    assert!(snap.spans.iter().any(|(name, _)| name == "fit"));
    assert!(snap.spans.iter().any(|(name, _)| name == "fit.autoencoder"));
    assert!(snap
        .histograms
        .iter()
        .any(|(name, _)| name == "ae.epoch_mse"));
    assert!(snap
        .histograms
        .iter()
        .any(|(name, _)| name == "det.fwd.grad_norm"));
    // The detect-side recorder saw per-stage spans and counters.
    let det_snap = det_recorder.snapshot();
    assert!(det_recorder.counter("detect.calls").unwrap_or(0) > 0);
    assert!(det_snap
        .spans
        .iter()
        .any(|(name, _)| name == "detect.score"));
}

#[test]
fn batch_detection_records_throughput() {
    let (samples, db) = tiny_world();
    let cfg = LeadConfig::fast_test();
    let (model, _) = Lead::fit(&samples, &db, &cfg, LeadOptions::full()).expect("fit");

    let recorder = Recorder::new();
    let raws: Vec<_> = samples.iter().map(|s| s.raw.clone()).collect();
    let plain = model.detect_batch(&raws, &db);
    let probed = model.detect_batch_opts(&raws, &db, &DetectOptions::new().with_probe(&recorder));
    assert_eq!(plain.len(), probed.len());
    for (a, b) in plain.iter().zip(&probed) {
        assert_eq!(
            a.as_ref().map(|r| r.detected),
            b.as_ref().map(|r| r.detected)
        );
    }
    assert_eq!(
        recorder.counter("batch.trajectories"),
        Some(raws.len() as u64)
    );
    assert!(recorder.gauge_value("batch.throughput_per_s").is_some());
}

/// Restores runtime backend selection even if the test panics.
struct BackendGuard;

impl Drop for BackendGuard {
    fn drop(&mut self) {
        lead_nn::simd::force_backend(None);
    }
}

/// The two write-only contracts composed: a *probed* fit on the scalar
/// reference backend and a *plain* fit on the runtime-selected backend must
/// still serialize byte-identically. Neither the recorder nor the SIMD
/// backend choice is allowed to move a single bit of the trained weights.
#[test]
fn cross_backend_probed_fit_is_byte_identical() {
    let (samples, db) = tiny_world();
    let cfg = LeadConfig::fast_test();
    let _guard = BackendGuard;

    lead_nn::simd::force_backend(Some(lead_nn::simd::Backend::Scalar));
    let recorder = Recorder::new();
    let (scalar_probed, _) =
        Lead::fit_opts(&samples, &[], &db, &cfg, LeadOptions::full(), &recorder)
            .expect("probed scalar fit");

    lead_nn::simd::force_backend(None);
    let (auto_plain, _) =
        Lead::fit(&samples, &db, &cfg, LeadOptions::full()).expect("plain auto fit");

    assert_eq!(
        model_bytes(&scalar_probed),
        model_bytes(&auto_plain),
        "weights diverged across SIMD backends (with a probe attached)"
    );
    // And the detections those weights produce agree bitwise too.
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for s in &samples {
        let a = scalar_probed.detect(&s.raw, &db);
        let b = auto_plain.detect(&s.raw, &db);
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.detected, b.detected);
                assert_eq!(bits(&a.probabilities), bits(&b.probabilities));
            }
            (None, None) => {}
            _ => panic!("detectability changed across SIMD backends"),
        }
    }
}

#[test]
fn invalid_config_is_an_error_not_a_panic() {
    let (samples, db) = tiny_world();
    let mut cfg = LeadConfig::fast_test();
    cfg.d_max_m = -1.0;
    match Lead::fit(&samples, &db, &cfg, LeadOptions::full()) {
        Err(LeadError::Config(e)) => assert_eq!(e.field, "d_max_m"),
        Err(other) => panic!("expected LeadError::Config, got {other}"),
        Ok(_) => panic!("invalid config accepted"),
    }
}

#[test]
fn unusable_training_set_is_an_error_not_a_panic() {
    let (_, db) = tiny_world();
    let cfg = LeadConfig::fast_test();
    // One trajectory with a single dwell: processing yields < 2 stay points,
    // so no sample survives and training must fail with a typed error.
    let mut pts = Vec::new();
    for k in 0..10 {
        pts.push(GpsPoint::new(32.0, 120.9, k * 120));
    }
    let samples = vec![TrainSample {
        raw: Trajectory::new(pts),
        truth: lead_core::TruthLabel {
            load_start_s: 0,
            load_end_s: 600,
            unload_start_s: 700,
            unload_end_s: 1_000,
        },
    }];
    match Lead::fit(&samples, &db, &cfg, LeadOptions::full()) {
        Err(LeadError::NoTrainableSamples { skipped }) => assert_eq!(skipped, 1),
        Err(other) => panic!("expected NoTrainableSamples, got {other}"),
        Ok(_) => panic!("unusable training set accepted"),
    }
}
