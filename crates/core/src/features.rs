//! Feature extraction (Section IV-A): each GPS point becomes the
//! 32-dimensional vector `f = [lat, lng, t, poi]` with `poi` the counts of
//! the 29 POI categories within 100 m, z-score normalised.

use crate::config::LeadConfig;
use crate::poi::{PoiDatabase, NUM_POI_CATEGORIES};
use crate::processing::{Candidate, ProcessedTrajectory};
use lead_geo::GpsPoint;
use lead_nn::Matrix;

/// Width of a point feature vector: `[lat, lng, t]` + 29 POI counts.
pub const FEATURE_DIM: usize = 3 + NUM_POI_CATEGORIES;

/// Z-score normalisation statistics, fit on the training split (Cheadle et
/// al. 2003, cited by the paper for outlier robustness).
#[derive(Debug, Clone)]
pub struct Normalizer {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Normalizer {
    /// Fits per-dimension mean and standard deviation over raw feature rows.
    ///
    /// Dimensions with zero variance get `std = 1` so they normalise to 0
    /// instead of NaN (common for rare POI categories).
    ///
    /// # Panics
    /// Panics if `rows` is empty or rows disagree on width.
    pub fn fit(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normaliser on no data");
        let dim = rows.first().map_or(0, |r| r.len());
        let n = rows.len() as f64;
        let mut mean = vec![0f64; dim];
        for r in rows {
            assert_eq!(r.len(), dim, "feature width mismatch");
            for (m, &v) in mean.iter_mut().zip(r.iter()) {
                *m += v as f64;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0f64; dim];
        for r in rows {
            for ((v, &x), &m) in var.iter_mut().zip(r.iter()).zip(mean.iter()) {
                let d = x as f64 - m;
                *v += d * d;
            }
        }
        let std: Vec<f32> = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s < 1e-9 {
                    1.0
                } else {
                    lead_nn::num::narrow_f64(s)
                }
            })
            .collect();
        Self {
            mean: mean.into_iter().map(lead_nn::num::narrow_f64).collect(),
            std,
        }
    }

    /// An identity normaliser of width `dim` (testing and NoPoi padding).
    pub fn identity(dim: usize) -> Self {
        Self {
            mean: vec![0.0; dim],
            std: vec![1.0; dim],
        }
    }

    /// Rebuilds a normaliser from stored statistics (persistence).
    ///
    /// # Panics
    /// Panics if the vectors disagree in length or any std is non-positive.
    pub fn from_parts(mean: Vec<f32>, std: Vec<f32>) -> Self {
        assert_eq!(mean.len(), std.len(), "mean/std width mismatch");
        assert!(std.iter().all(|&s| s > 0.0), "std must be positive");
        Self { mean, std }
    }

    /// The per-dimension means (persistence).
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// The per-dimension standard deviations (persistence).
    pub fn std(&self) -> &[f32] {
        &self.std
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Applies `(x - mean) / std` in place, then squashes into `[-1, 1]` via
    /// `(z / 3).clamp(-1, 1)`.
    ///
    /// The squash makes the feature range match the `tanh` output range of
    /// the decompression operators — the paper states the decompressor's
    /// final `tanh` "map\[s\] to between −1 to 1, *matching the range of
    /// f-seq*", which a raw z-score does not satisfy (|z| > 1 with
    /// probability 0.32). Three standard deviations cover 99.7 % of values;
    /// the clamp absorbs the z-score's residual outliers.
    pub fn normalize(&self, row: &mut [f32]) {
        assert_eq!(row.len(), self.mean.len(), "feature width mismatch");
        for ((x, &m), &s) in row.iter_mut().zip(self.mean.iter()).zip(self.std.iter()) {
            *x = ((*x - m) / s / 3.0).clamp(-1.0, 1.0);
        }
    }
}

/// Extracts (and optionally normalises) point features against a POI
/// database.
#[derive(Debug, Clone)]
pub struct FeatureExtractor<'a> {
    poi_db: &'a PoiDatabase,
    poi_radius_m: f64,
    /// `false` reproduces the `LEAD-NoPoi` ablation: the POI block is zero
    /// padding, keeping the feature width constant.
    use_poi: bool,
    normalizer: Option<Normalizer>,
}

impl<'a> FeatureExtractor<'a> {
    /// Creates an extractor with the configured 100 m radius.
    pub fn new(poi_db: &'a PoiDatabase, config: &LeadConfig, use_poi: bool) -> Self {
        Self {
            poi_db,
            poi_radius_m: config.poi_radius_m,
            use_poi,
            normalizer: None,
        }
    }

    /// Installs normalisation statistics (fit them with [`Self::raw_features`]
    /// over the training split first).
    pub fn set_normalizer(&mut self, n: Normalizer) {
        assert_eq!(n.dim(), FEATURE_DIM, "normaliser width mismatch");
        self.normalizer = Some(n);
    }

    /// The installed normaliser, if any.
    pub fn normalizer(&self) -> Option<&Normalizer> {
        self.normalizer.as_ref()
    }

    /// The raw (unnormalised) feature vector of one GPS point.
    pub fn raw_features(&self, p: &GpsPoint) -> Vec<f32> {
        let mut f = Vec::with_capacity(FEATURE_DIM);
        f.push(lead_nn::num::narrow_f64(p.lat));
        f.push(lead_nn::num::narrow_f64(p.lng));
        // Seconds within the day: absolute epoch offsets would swamp the
        // z-score statistics without adding information for one-day samples.
        f.push(lead_nn::num::exact_i64_f32(p.t.rem_euclid(86_400)));
        if self.use_poi {
            let counts = self
                .poi_db
                .category_counts_within(p.lat, p.lng, self.poi_radius_m);
            f.extend(counts.iter().map(|&c| lead_nn::num::exact_u32_f32(c)));
        } else {
            f.extend(std::iter::repeat_n(0.0, NUM_POI_CATEGORIES));
        }
        f
    }

    /// The normalised feature vector of one GPS point.
    ///
    /// # Panics
    /// Panics if no normaliser is installed.
    pub fn features(&self, p: &GpsPoint) -> Vec<f32> {
        let mut f = self.raw_features(p);
        self.normalizer
            .as_ref()
            // lint: allow(panic, panic-path): documented # Panics precondition — the pipeline installs the normaliser before any feature call
            .expect("normaliser not fitted")
            .normalize(&mut f);
        f
    }

    /// The feature matrix (rows = points) of the inclusive point range
    /// `[a, b]` of `proc.cleaned`.
    pub fn range_features(&self, proc: &ProcessedTrajectory, a: usize, b: usize) -> Matrix {
        let pts = proc.cleaned.points();
        assert!(a <= b && b < pts.len(), "range out of bounds");
        let mut data = Vec::with_capacity((b - a + 1) * FEATURE_DIM);
        for p in &pts[a..=b] {
            data.extend(self.features(p));
        }
        Matrix::from_vec(b - a + 1, FEATURE_DIM, data)
    }

    /// The structured features of one candidate trajectory: one matrix per
    /// stay point and per move point, in interleaved order.
    pub fn candidate_features(
        &self,
        proc: &ProcessedTrajectory,
        cand: Candidate,
    ) -> CandidateFeatures {
        let mut sp_seqs = Vec::with_capacity(cand.end_sp - cand.start_sp + 1);
        let mut mp_seqs = Vec::with_capacity(cand.end_sp - cand.start_sp);
        for k in cand.start_sp..=cand.end_sp {
            let sp = &proc.stay_points[k];
            sp_seqs.push(self.range_features(proc, sp.start, sp.end));
            if k < cand.end_sp {
                let (a, b) = proc.move_point_range(k);
                mp_seqs.push(self.range_features(proc, a, b));
            }
        }
        CandidateFeatures { sp_seqs, mp_seqs }
    }

    /// The flat feature sequence of a candidate (its GPS points in order,
    /// without the boundary duplication of the structured form) — the input
    /// of the `LEAD-NoHie` flat autoencoder.
    pub fn candidate_flat_features(&self, proc: &ProcessedTrajectory, cand: Candidate) -> Matrix {
        let (a, b) = proc.candidate_point_range(cand);
        self.range_features(proc, a, b)
    }
}

/// The structured features of a whole processed trajectory: one matrix per
/// stay point (`n`) and per move point (`n − 1`).
///
/// Extracting these once per trajectory and slicing per candidate avoids
/// re-querying the POI index for every one of the `n(n−1)/2` candidates —
/// each GPS point's features are computed exactly once.
#[derive(Debug, Clone)]
pub struct TrajectoryFeatures {
    /// Per-stay-point feature matrices, indexed like
    /// [`ProcessedTrajectory::stay_points`].
    pub sp_seqs: Vec<Matrix>,
    /// Per-move-point feature matrices (`mp_k` connects stay points `k` and
    /// `k + 1`).
    pub mp_seqs: Vec<Matrix>,
}

impl TrajectoryFeatures {
    /// The candidate-level view: stay/move sequences of `cand`, cloned.
    pub fn candidate(&self, cand: Candidate) -> CandidateFeatures {
        CandidateFeatures {
            sp_seqs: self.sp_seqs[cand.start_sp..=cand.end_sp].to_vec(),
            mp_seqs: self.mp_seqs[cand.start_sp..cand.end_sp].to_vec(),
        }
    }

    /// Number of stay points.
    pub fn num_stay_points(&self) -> usize {
        self.sp_seqs.len()
    }
}

impl<'a> FeatureExtractor<'a> {
    /// Extracts the features of every stay point and move point of `proc`.
    pub fn trajectory_features(&self, proc: &ProcessedTrajectory) -> TrajectoryFeatures {
        self.trajectory_features_par(proc, 1)
    }

    /// [`Self::trajectory_features`] with the per-segment POI queries and
    /// normalisation spread over `num_threads` workers (0 = all cores).
    /// Segments are independent POI-index lookups, so the result is
    /// bit-identical for every thread count.
    pub fn trajectory_features_par(
        &self,
        proc: &ProcessedTrajectory,
        num_threads: usize,
    ) -> TrajectoryFeatures {
        let n = proc.num_stay_points();
        let sp_seqs = lead_nn::par::par_map(num_threads, &proc.stay_points, |_, sp| {
            self.range_features(proc, sp.start, sp.end)
        });
        let mp_ranges: Vec<(usize, usize)> = (0..n.saturating_sub(1))
            .map(|k| proc.move_point_range(k))
            .collect();
        let mp_seqs = lead_nn::par::par_map(num_threads, &mp_ranges, |_, &(a, b)| {
            self.range_features(proc, a, b)
        });
        TrajectoryFeatures { sp_seqs, mp_seqs }
    }

    /// [`Self::trajectory_features_par`] with an observability probe:
    /// records a `features` span and the number of extracted feature rows.
    /// Metrics are write-only — the features are identical for any probe.
    pub fn trajectory_features_probed(
        &self,
        proc: &ProcessedTrajectory,
        num_threads: usize,
        probe: &dyn lead_obs::probe::Probe,
    ) -> TrajectoryFeatures {
        let _span = lead_obs::clock::span(probe, "features");
        let tf = self.trajectory_features_par(proc, num_threads);
        if probe.enabled() {
            let rows: usize = tf
                .sp_seqs
                .iter()
                .chain(tf.mp_seqs.iter())
                .map(lead_nn::Matrix::rows)
                .sum();
            probe.count("features.rows", u64::try_from(rows).unwrap_or(u64::MAX));
        }
        tf
    }
}

/// The feature sequences of one candidate trajectory, split by hierarchy:
/// `sp_seqs.len() == mp_seqs.len() + 1`, interleaved as
/// `sp₀, mp₀, sp₁, …, mp_{k−1}, sp_k` (Section IV-B, Figure 4).
#[derive(Debug, Clone)]
pub struct CandidateFeatures {
    /// Per-stay-point feature matrices (`sp-f-seq`s).
    pub sp_seqs: Vec<Matrix>,
    /// Per-move-point feature matrices (`mp-f-seq`s).
    pub mp_seqs: Vec<Matrix>,
}

impl CandidateFeatures {
    /// Total number of feature rows across all sequences.
    pub fn total_rows(&self) -> usize {
        self.sp_seqs
            .iter()
            .chain(self.mp_seqs.iter())
            .map(Matrix::rows)
            .sum()
    }

    /// The interleaved flat feature sequence
    /// `sp₀, mp₀, sp₁, …, mp_{k−1}, sp_k` as one matrix (used by the
    /// `LEAD-NoHie` flat autoencoder, which sees no hierarchy).
    pub fn interleaved(&self) -> Matrix {
        let mut parts: Vec<&Matrix> = Vec::with_capacity(self.sp_seqs.len() + self.mp_seqs.len());
        for (k, sp) in self.sp_seqs.iter().enumerate() {
            parts.push(sp);
            if k < self.mp_seqs.len() {
                parts.push(&self.mp_seqs[k]);
            }
        }
        Matrix::concat_rows(&parts)
    }

    /// Structural sanity check.
    ///
    /// # Panics
    /// Panics if the interleaving invariant is broken.
    pub fn validate(&self) {
        assert_eq!(
            self.sp_seqs.len(),
            self.mp_seqs.len() + 1,
            "candidate must interleave k+1 stay points with k move points"
        );
        for m in self.sp_seqs.iter().chain(self.mp_seqs.iter()) {
            assert!(m.rows() > 0, "empty subsequence");
            assert_eq!(m.cols(), FEATURE_DIM, "feature width mismatch");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poi::{Poi, PoiCategory};
    use lead_geo::Trajectory;

    fn db_with_factory_at(lat: f64, lng: f64) -> PoiDatabase {
        PoiDatabase::new(vec![Poi {
            lat,
            lng,
            category: PoiCategory::ChemicalFactory,
        }])
    }

    #[test]
    fn raw_features_have_poi_counts() {
        let db = db_with_factory_at(32.0, 120.9);
        let cfg = LeadConfig::paper();
        let fx = FeatureExtractor::new(&db, &cfg, true);
        let f = fx.raw_features(&GpsPoint::new(32.0, 120.9, 3_600));
        assert_eq!(f.len(), FEATURE_DIM);
        assert_eq!(f[0], 32.0);
        assert_eq!(f[1], 120.9);
        assert_eq!(f[2], 3_600.0);
        assert_eq!(f[3 + PoiCategory::ChemicalFactory.index()], 1.0);
        assert_eq!(f[3 + PoiCategory::Restaurant.index()], 0.0);
    }

    #[test]
    fn no_poi_mode_zero_pads() {
        let db = db_with_factory_at(32.0, 120.9);
        let cfg = LeadConfig::paper();
        let fx = FeatureExtractor::new(&db, &cfg, false);
        let f = fx.raw_features(&GpsPoint::new(32.0, 120.9, 0));
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f[3..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn time_feature_wraps_at_midnight() {
        let db = db_with_factory_at(32.0, 120.9);
        let cfg = LeadConfig::paper();
        let fx = FeatureExtractor::new(&db, &cfg, true);
        let f = fx.raw_features(&GpsPoint::new(32.0, 120.9, 86_400 + 60));
        assert_eq!(f[2], 60.0);
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let rows = vec![
            vec![1.0, 10.0, 5.0],
            vec![3.0, 10.0, 7.0],
            vec![5.0, 10.0, 9.0],
        ];
        let n = Normalizer::fit(&rows);
        let mut r = rows[1].clone();
        n.normalize(&mut r);
        assert!((r[0] - 0.0).abs() < 1e-6);
        // Constant dimension: std fallback 1, normalises to 0.
        assert_eq!(r[1], 0.0);
        // Check the full set has mean 0 / std 1 per non-constant dim.
        let normed: Vec<Vec<f32>> = rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                n.normalize(&mut r);
                r
            })
            .collect();
        let mean0: f32 = normed.iter().map(|r| r[0]).sum::<f32>() / 3.0;
        let var0: f32 = normed.iter().map(|r| r[0] * r[0]).sum::<f32>() / 3.0;
        assert!(mean0.abs() < 1e-6);
        // The /3 squash makes unit-variance features variance 1/9.
        assert!((var0 - 1.0 / 9.0).abs() < 1e-5);
        assert!(normed.iter().all(|r| r.iter().all(|v| v.abs() <= 1.0)));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn fit_on_empty_rejected() {
        let _ = Normalizer::fit(&[]);
    }

    #[test]
    fn candidate_features_interleave_correctly() {
        // Two dwells with a transit; one candidate.
        let mut pts = Vec::new();
        for k in 0..10 {
            pts.push(GpsPoint::new(32.0, 120.9, k * 120));
        }
        for k in 0..4 {
            pts.push(GpsPoint::new(
                32.0,
                120.91 + 0.012 * k as f64,
                1_200 + k * 120,
            ));
        }
        for k in 0..10 {
            pts.push(GpsPoint::new(32.0, 120.96, 1_680 + (k + 1) * 120));
        }
        let cfg = LeadConfig::paper();
        let proc = ProcessedTrajectory::from_raw(&Trajectory::new(pts), &cfg);
        assert_eq!(proc.num_stay_points(), 2);

        let db = db_with_factory_at(32.0, 120.9);
        let mut fx = FeatureExtractor::new(&db, &cfg, true);
        fx.set_normalizer(Normalizer::identity(FEATURE_DIM));
        let cf = fx.candidate_features(&proc, proc.candidates[0]);
        cf.validate();
        assert_eq!(cf.sp_seqs.len(), 2);
        assert_eq!(cf.mp_seqs.len(), 1);
        assert_eq!(cf.sp_seqs[0].rows(), proc.stay_points[0].len());
        // The move point includes both boundary points.
        let (a, b) = proc.move_point_range(0);
        assert_eq!(cf.mp_seqs[0].rows(), b - a + 1);
        // Flat features have no duplicated boundary rows.
        let flat = fx.candidate_flat_features(&proc, proc.candidates[0]);
        assert_eq!(flat.rows(), cf.total_rows() - 2);
    }
}
