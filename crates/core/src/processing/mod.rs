//! Raw trajectory processing (Section III): noise filtering, stay-point
//! extraction, and candidate trajectory generation.

mod candidate;
mod noise_filter;
mod stay_point;

pub use candidate::{enumerate_candidates, Candidate};
pub use noise_filter::filter_noise;
pub use stay_point::{extract_stay_points, StayPoint};

use crate::config::LeadConfig;
use lead_geo::Trajectory;

/// The result of running the full processing component on one raw trajectory.
///
/// ```
/// use lead_core::config::LeadConfig;
/// use lead_core::processing::ProcessedTrajectory;
/// use lead_geo::{GpsPoint, Trajectory};
///
/// // Two 20-minute dwells 5.6 km apart with a fast transit between them.
/// let mut pts = Vec::new();
/// for k in 0..10 { pts.push(GpsPoint::new(32.0, 120.90, k * 120)); }
/// for k in 0..4  { pts.push(GpsPoint::new(32.0, 120.91 + 0.012 * k as f64, 1200 + k * 120)); }
/// for k in 0..10 { pts.push(GpsPoint::new(32.0, 120.96, 1800 + k * 120)); }
///
/// let proc = ProcessedTrajectory::from_raw(&Trajectory::new(pts), &LeadConfig::paper());
/// assert_eq!(proc.num_stay_points(), 2);
/// assert_eq!(proc.candidates.len(), 1); // n(n−1)/2
/// ```
#[derive(Debug, Clone)]
pub struct ProcessedTrajectory {
    /// The noise-filtered trajectory all indexes below refer to.
    pub cleaned: Trajectory,
    /// Extracted stay points, chronologically ordered, non-overlapping.
    pub stay_points: Vec<StayPoint>,
    /// All candidate trajectories (ordered stay-point pairs).
    pub candidates: Vec<Candidate>,
}

impl ProcessedTrajectory {
    /// Runs noise filtering → stay-point extraction → candidate generation.
    pub fn from_raw(raw: &Trajectory, config: &LeadConfig) -> Self {
        Self::from_raw_probed(raw, config, &lead_obs::probe::NOOP)
    }

    /// [`Self::from_raw`] with an observability probe: records a
    /// `processing` span plus per-trajectory counters (points in / filtered
    /// out) and observations (stay points, candidates). Metrics are
    /// write-only — the processed trajectory is identical for any probe.
    pub fn from_raw_probed(
        raw: &Trajectory,
        config: &LeadConfig,
        probe: &dyn lead_obs::probe::Probe,
    ) -> Self {
        let _span = lead_obs::clock::span(probe, "processing");
        let cleaned = filter_noise(raw, config.v_max_kmh);
        let stay_points = extract_stay_points(&cleaned, config.d_max_m, config.t_min_s as f64);
        let candidates = enumerate_candidates(stay_points.len());
        if probe.enabled() {
            probe.count("processing.points_in", raw.len() as u64);
            probe.count(
                "processing.points_filtered",
                raw.len().saturating_sub(cleaned.len()) as u64,
            );
            probe.observe("processing.stay_points", stay_points.len() as f64);
            probe.observe("processing.candidates", candidates.len() as f64);
        }
        Self {
            cleaned,
            stay_points,
            candidates,
        }
    }

    /// Number of stay points `n`.
    pub fn num_stay_points(&self) -> usize {
        self.stay_points.len()
    }

    /// The GPS-point index range (inclusive) of candidate `c` in `cleaned`:
    /// from the first point of its starting stay point to the last point of
    /// its ending stay point.
    pub fn candidate_point_range(&self, c: Candidate) -> (usize, usize) {
        let sp_start = &self.stay_points[c.start_sp];
        let sp_end = &self.stay_points[c.end_sp];
        (sp_start.start, sp_end.end)
    }

    /// The GPS-point index range (inclusive) of the move point `mp_k`
    /// connecting stay points `k` and `k + 1`.
    ///
    /// Boundary stay-point endpoints are included so the move point is never
    /// empty even when two stay points are back-to-back in the cleaned
    /// trajectory.
    ///
    /// # Panics
    /// Panics if `k + 1 >= stay_points.len()`.
    pub fn move_point_range(&self, k: usize) -> (usize, usize) {
        assert!(
            k + 1 < self.stay_points.len(),
            "move point index out of range"
        );
        (self.stay_points[k].end, self.stay_points[k + 1].start)
    }

    /// The candidate trajectory as a [`Trajectory`] slice of `cleaned`.
    pub fn candidate_trajectory(&self, c: Candidate) -> Trajectory {
        let (a, b) = self.candidate_point_range(c);
        self.cleaned.slice(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::GpsPoint;

    /// A trajectory with two clear stays 5 km apart.
    fn two_stay_raw() -> Trajectory {
        let mut pts = Vec::new();
        let mut t = 0;
        // Stay A: 20 min at one spot.
        for _ in 0..10 {
            pts.push(GpsPoint::new(32.0, 120.9, t));
            t += 120;
        }
        // Drive 5 km east over ~10 min.
        for i in 1..=5 {
            pts.push(GpsPoint::new(32.0, 120.9 + 0.01 * i as f64, t));
            t += 120;
        }
        // Stay B: 20 min.
        for _ in 0..10 {
            pts.push(GpsPoint::new(32.0, 120.95, t));
            t += 120;
        }
        // Leave.
        pts.push(GpsPoint::new(32.0, 121.0, t));
        Trajectory::new(pts)
    }

    #[test]
    fn from_raw_extracts_two_stays_one_candidate() {
        let p = ProcessedTrajectory::from_raw(&two_stay_raw(), &LeadConfig::paper());
        assert_eq!(p.num_stay_points(), 2);
        assert_eq!(p.candidates.len(), 1);
        let (a, b) = p.candidate_point_range(p.candidates[0]);
        assert_eq!(a, p.stay_points[0].start);
        assert_eq!(b, p.stay_points[1].end);
    }

    #[test]
    fn move_point_range_is_never_empty() {
        let p = ProcessedTrajectory::from_raw(&two_stay_raw(), &LeadConfig::paper());
        let (a, b) = p.move_point_range(0);
        assert!(b > a);
        assert_eq!(a, p.stay_points[0].end);
        assert_eq!(b, p.stay_points[1].start);
    }

    #[test]
    fn candidate_trajectory_slices_cleaned() {
        let p = ProcessedTrajectory::from_raw(&two_stay_raw(), &LeadConfig::paper());
        let tr = p.candidate_trajectory(p.candidates[0]);
        let (a, b) = p.candidate_point_range(p.candidates[0]);
        assert_eq!(tr.len(), b - a + 1);
    }
}
