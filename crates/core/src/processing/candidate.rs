//! Candidate trajectory generation (Section III, Definition 4): every ordered
//! pair of stay points.

/// A candidate trajectory `⟨sp_{start} --→ sp_{end}⟩`, identified by its
/// starting and ending stay-point indexes (`start_sp < end_sp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Candidate {
    /// Index of the starting stay point.
    pub start_sp: usize,
    /// Index of the ending stay point (strictly greater).
    pub end_sp: usize,
}

impl Candidate {
    /// Creates a candidate.
    ///
    /// # Panics
    /// Panics unless `start_sp < end_sp`.
    pub fn new(start_sp: usize, end_sp: usize) -> Self {
        assert!(
            start_sp < end_sp,
            "candidate must span at least two stay points"
        );
        Self { start_sp, end_sp }
    }
}

/// Enumerates all candidates over `n` stay points in the paper's canonical
/// (forward-flattening) order: `(0,1), (0,2), …, (0,n−1), (1,2), …, (n−2,n−1)`.
///
/// Produces `n·(n−1)/2` candidates; `n < 2` yields none.
pub fn enumerate_candidates(n: usize) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            out.push(Candidate {
                start_sp: i,
                end_sp: j,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_n_choose_2() {
        for n in 0..20 {
            assert_eq!(enumerate_candidates(n).len(), n * n.saturating_sub(1) / 2);
        }
        // The paper's extremes: 3 stay points → 3 candidates, 14 → 91.
        assert_eq!(enumerate_candidates(3).len(), 3);
        assert_eq!(enumerate_candidates(14).len(), 91);
    }

    #[test]
    fn order_is_forward_canonical() {
        let c = enumerate_candidates(4);
        let expect: Vec<(usize, usize)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        assert_eq!(
            c.iter().map(|c| (c.start_sp, c.end_sp)).collect::<Vec<_>>(),
            expect
        );
    }

    #[test]
    fn all_pairs_distinct_and_ordered() {
        let c = enumerate_candidates(10);
        let mut seen = std::collections::HashSet::new();
        for cand in &c {
            assert!(cand.start_sp < cand.end_sp);
            assert!(seen.insert(*cand), "duplicate {cand:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least two stay points")]
    fn degenerate_candidate_rejected() {
        let _ = Candidate::new(3, 3);
    }
}
