//! Rule-based stay-point extraction (Li et al. 2008; the paper's
//! Section III "Stay Point Extraction" and Definition 2).

use lead_geo::Trajectory;

/// A stay point: the inclusive index range `[start, end]` of a subtrajectory
/// during which the truck remained within `D_max` of the anchor for at least
/// `T_min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StayPoint {
    /// Index of the anchor (first) GPS point.
    pub start: usize,
    /// Index of the last GPS point within `D_max` of the anchor.
    pub end: usize,
}

impl StayPoint {
    /// Number of GPS points in the stay.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Stay points always contain at least one point.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Extracts all stay points from a (cleaned) trajectory.
///
/// The algorithm anchors at a point `i`, finds the maximal run of successors
/// within `d_max_m` of `p_i`, and emits a stay point when the run spans at
/// least `t_min_s` seconds; the anchor then jumps past the stay (stay points
/// are temporally consecutive and non-overlapping, "convenient for stay
/// points numbering"). Otherwise the anchor advances by one.
pub fn extract_stay_points(tr: &Trajectory, d_max_m: f64, t_min_s: f64) -> Vec<StayPoint> {
    assert!(
        d_max_m > 0.0 && t_min_s > 0.0,
        "thresholds must be positive"
    );
    let pts = tr.points();
    let n = pts.len();
    let mut stays = Vec::new();
    let mut i = 0;
    while i < n {
        // The maximal run of successors within d_max of the anchor.
        let mut j = i;
        while j + 1 < n && pts[i].distance_m(&pts[j + 1]) <= d_max_m {
            j += 1;
        }
        if j > i && (pts[j].t - pts[i].t) as f64 >= t_min_s {
            stays.push(StayPoint { start: i, end: j });
            i = j + 1;
        } else {
            i += 1;
        }
    }
    stays
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::distance::meters_to_lng_deg;
    use lead_geo::GpsPoint;

    const INTERVAL: i64 = 120;

    /// Builds a trajectory from (east-offset-m, minutes) waypoints at Nantong
    /// latitude.
    fn traj(points_m_t: &[(f64, i64)]) -> Trajectory {
        let per_m = meters_to_lng_deg(1.0, 32.0);
        Trajectory::new(
            points_m_t
                .iter()
                .map(|&(x, t)| GpsPoint::new(32.0, 120.9 + x * per_m, t))
                .collect(),
        )
    }

    /// `n` samples at position `x` starting at `t0`.
    fn dwell(x: f64, t0: i64, n: usize) -> Vec<(f64, i64)> {
        (0..n).map(|k| (x, t0 + k as i64 * INTERVAL)).collect()
    }

    #[test]
    fn a_long_dwell_is_a_stay_point() {
        let tr = traj(&dwell(0.0, 0, 10)); // 18 minutes at one spot
        let stays = extract_stay_points(&tr, 500.0, 900.0);
        assert_eq!(stays, vec![StayPoint { start: 0, end: 9 }]);
        assert_eq!(stays[0].len(), 10);
    }

    #[test]
    fn a_short_dwell_is_not_a_stay_point() {
        let tr = traj(&dwell(0.0, 0, 5)); // 8 minutes < T_min
        assert!(extract_stay_points(&tr, 500.0, 900.0).is_empty());
    }

    #[test]
    fn moving_track_has_no_stay_points() {
        // 1 km between consecutive samples.
        let pts: Vec<(f64, i64)> = (0..30)
            .map(|i| (i as f64 * 1_000.0, i as i64 * INTERVAL))
            .collect();
        let tr = traj(&pts);
        assert!(extract_stay_points(&tr, 500.0, 900.0).is_empty());
    }

    #[test]
    fn two_separate_dwells_give_two_stays() {
        let mut pts = dwell(0.0, 0, 10);
        // Drive 5 km away over 4 samples.
        for k in 1..=4 {
            pts.push((k as f64 * 1_250.0, 1_080 + k as i64 * INTERVAL));
        }
        let t0 = pts.last().unwrap().1 + INTERVAL;
        pts.extend(dwell(5_000.0, t0, 10));
        let tr = traj(&pts);
        let stays = extract_stay_points(&tr, 500.0, 900.0);
        assert_eq!(stays.len(), 2);
        assert_eq!(stays[0], StayPoint { start: 0, end: 9 });
        // The final transit sample sits exactly at the second dwell location,
        // so it anchors the second stay (index 13, not 14).
        assert_eq!(stays[1].start, 13);
        assert_eq!(stays[1].end, 23);
    }

    #[test]
    fn stays_are_non_overlapping_and_ordered() {
        let mut pts = Vec::new();
        let mut t = 0;
        for block in 0..4 {
            for p in dwell(block as f64 * 3_000.0, t, 9) {
                pts.push(p);
            }
            t += 9 * INTERVAL;
            // Transit: two samples covering 3 km.
            pts.push((block as f64 * 3_000.0 + 1_500.0, t));
            t += INTERVAL;
        }
        let tr = traj(&pts);
        let stays = extract_stay_points(&tr, 500.0, 900.0);
        assert!(stays.len() >= 3);
        for w in stays.windows(2) {
            assert!(w[0].end < w[1].start, "overlap: {w:?}");
        }
    }

    #[test]
    fn wander_within_d_max_still_counts_as_one_stay() {
        // Points drift up to 400 m from the anchor but never beyond D_max.
        let mut pts = Vec::new();
        for k in 0..10 {
            let x = (k % 3) as f64 * 200.0;
            pts.push((x, k as i64 * INTERVAL));
        }
        pts.push((5_000.0, 10 * INTERVAL)); // departure
        let tr = traj(&pts);
        let stays = extract_stay_points(&tr, 500.0, 900.0);
        assert_eq!(stays, vec![StayPoint { start: 0, end: 9 }]);
    }

    #[test]
    fn distance_is_measured_from_the_anchor_not_pairwise() {
        // A slow drift: consecutive points 300 m apart (within D_max of each
        // other) but the run leaves the anchor's 500 m disc quickly, so no
        // stay point forms even over a long time.
        let pts: Vec<(f64, i64)> = (0..20)
            .map(|k| (k as f64 * 300.0, k as i64 * INTERVAL))
            .collect();
        let tr = traj(&pts);
        assert!(extract_stay_points(&tr, 500.0, 900.0).is_empty());
    }

    #[test]
    fn trailing_dwell_at_end_of_trajectory_is_extracted() {
        let mut pts: Vec<(f64, i64)> = (0..5)
            .map(|k| (k as f64 * 2_000.0, k as i64 * INTERVAL))
            .collect();
        let t0 = 5 * INTERVAL;
        pts.extend(dwell(8_000.0 + 2_000.0, t0, 10));
        let tr = traj(&pts);
        let stays = extract_stay_points(&tr, 500.0, 900.0);
        assert_eq!(stays.len(), 1);
        assert_eq!(stays[0].end, tr.len() - 1);
    }

    #[test]
    fn empty_and_singleton_trajectories() {
        assert!(extract_stay_points(&Trajectory::empty(), 500.0, 900.0).is_empty());
        let one = traj(&[(0.0, 0)]);
        assert!(extract_stay_points(&one, 500.0, 900.0).is_empty());
    }

    #[test]
    fn exact_threshold_boundaries() {
        // Exactly T_min duration and exactly D_max displacement are included
        // (Definition 2 uses ≥ for time and ≤ for distance).
        let pts = vec![(0.0, 0), (499.0, 450), (0.0, 900), (5_000.0, 1_020)];
        let tr = traj(&pts);
        let stays = extract_stay_points(&tr, 500.0, 900.0);
        assert_eq!(stays, vec![StayPoint { start: 0, end: 2 }]);
    }
}
