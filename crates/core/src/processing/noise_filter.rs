//! Heuristic speed-based noise filtering (Zheng 2015, the paper's
//! Section III "Noise Filtering").

use lead_geo::{GpsPoint, Trajectory};

/// Removes outlier GPS points whose implied travel speed from their
/// (retained) precursor exceeds `v_max_kmh`.
///
/// The filter walks the trajectory once: each examined point's speed is
/// computed against the last *kept* point, so a single spike is removed and
/// the points after it are judged against the true track rather than the
/// spike (removing one outlier must not cascade into removing its valid
/// successor).
pub fn filter_noise(raw: &Trajectory, v_max_kmh: f64) -> Trajectory {
    assert!(v_max_kmh > 0.0, "speed threshold must be positive");
    let v_max_mps = v_max_kmh / 3.6;
    let Some((first, rest)) = raw.points().split_first() else {
        return raw.clone();
    };
    let mut kept: Vec<GpsPoint> = Vec::with_capacity(rest.len() + 1);
    let mut prev = *first;
    kept.push(prev);
    for &p in rest {
        if prev.speed_to_mps(&p) <= v_max_mps {
            kept.push(p);
            prev = p;
        }
    }
    Trajectory::new(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::distance::meters_to_lng_deg;

    /// A straight eastbound track at `speed_mps`, sampled every 120 s.
    fn straight(n: usize, speed_mps: f64) -> Vec<GpsPoint> {
        let step_deg = meters_to_lng_deg(speed_mps * 120.0, 32.0);
        (0..n)
            .map(|i| GpsPoint::new(32.0, 120.9 + step_deg * i as f64, i as i64 * 120))
            .collect()
    }

    #[test]
    fn clean_track_is_untouched() {
        let raw = Trajectory::new(straight(20, 20.0)); // 72 km/h
        let filtered = filter_noise(&raw, 130.0);
        assert_eq!(filtered.len(), 20);
        assert_eq!(filtered.points(), raw.points());
    }

    #[test]
    fn single_spike_is_removed() {
        let mut pts = straight(20, 20.0);
        // Displace point 10 by ~8 km north: implied speed ≈ 240 km/h.
        pts[10].lat += 0.072;
        let filtered = filter_noise(&Trajectory::new(pts.clone()), 130.0);
        assert_eq!(filtered.len(), 19);
        assert!(filtered
            .points()
            .iter()
            .all(|p| (p.lat - 32.0).abs() < 0.01));
    }

    #[test]
    fn consecutive_spikes_are_both_removed() {
        let mut pts = straight(20, 20.0);
        pts[10].lat += 0.072;
        pts[11].lat += 0.080;
        let filtered = filter_noise(&Trajectory::new(pts), 130.0);
        assert_eq!(filtered.len(), 18);
    }

    #[test]
    fn successor_of_spike_survives() {
        // After removing the spike, point 11 is compared to point 9, not to
        // the spike — it must be kept.
        let mut pts = straight(20, 20.0);
        pts[10].lat += 0.072;
        let filtered = filter_noise(&Trajectory::new(pts.clone()), 130.0);
        assert!(filtered.points().iter().any(|p| p.t == pts[11].t));
    }

    #[test]
    fn zero_dt_jump_is_removed() {
        let mut pts = straight(5, 20.0);
        // Duplicate timestamp with a displaced location: infinite speed.
        pts.insert(3, GpsPoint::new(32.05, pts[2].lng, pts[2].t));
        let filtered = filter_noise(&Trajectory::new_unchecked(pts), 130.0);
        assert_eq!(filtered.len(), 5);
    }

    #[test]
    fn short_trajectories_pass_through() {
        let one = Trajectory::new(vec![GpsPoint::new(32.0, 120.9, 0)]);
        assert_eq!(filter_noise(&one, 130.0).len(), 1);
        assert_eq!(filter_noise(&Trajectory::empty(), 130.0).len(), 0);
    }

    #[test]
    fn first_point_is_always_kept() {
        let mut pts = straight(10, 20.0);
        pts[0].lat += 0.2; // the spike is the first point
        let filtered = filter_noise(&Trajectory::new(pts.clone()), 130.0);
        // The filter has no precursor to judge p0 against, so p0 stays and p1
        // (now far from p0) is judged against it. This mirrors the reference
        // heuristic, which anchors on the first observation.
        assert_eq!(filtered.points()[0], pts[0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_threshold_rejected() {
        let _ = filter_noise(&Trajectory::empty(), 0.0);
    }
}
