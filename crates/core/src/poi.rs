//! Points of interest: the 29 typical categories of the paper (Section VI-A)
//! and a radius-queryable database.

use lead_geo::GridIndex;

/// Number of POI categories — the paper categorises Nantong's 415,639 POIs
/// into 29 typical categories, giving the 32-dimensional feature vector
/// `[lat, lng, t, poi(29)]`.
pub const NUM_POI_CATEGORIES: usize = 29;

/// The 29 POI categories.
///
/// The paper lists "company, hospital, chemical factory, etc."; the full
/// taxonomy is not disclosed, so this is a plausible reconstruction covering
/// every role the HCT domain needs: loading sites (chemical industry,
/// storage, port), unloading sites (consumers of hazardous chemicals), and
/// ordinary urban POIs where drivers take breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum PoiCategory {
    /// Chemical production plant (a canonical loading site).
    ChemicalFactory = 0,
    /// Oil / fuel depot.
    OilDepot = 1,
    /// Harbour or river port with chemical cargo berths.
    Port = 2,
    /// Bulk fuel storage facility.
    FuelStorage = 3,
    /// Licensed hazardous-chemicals warehouse.
    ChemicalWarehouse = 4,
    /// Fueling stations are deliberately ambiguous: fuel trucks load/unload
    /// here, and drivers also refuel and rest here — the paper's flagship
    /// "complex staying scenario".
    FuelingStation = 5,
    /// Hospital (oxygen and medical-gas consumer).
    Hospital = 6,
    /// General manufacturing plant.
    Factory = 7,
    /// Construction site.
    ConstructionSite = 8,
    /// Power plant.
    PowerPlant = 9,
    /// Industrial park hosting many plants.
    IndustrialPark = 10,
    /// Water treatment plant (chlorine consumer).
    WaterTreatmentPlant = 11,
    /// Steel mill.
    SteelMill = 12,
    /// Pharmaceutical plant.
    PharmaceuticalPlant = 13,
    /// Paper mill.
    PaperMill = 14,
    /// Restaurant (driver break site).
    Restaurant = 15,
    /// Highway rest area.
    RestArea = 16,
    /// Parking lot.
    ParkingLot = 17,
    /// Hotel (overnight stop).
    Hotel = 18,
    /// Truck depot / fleet yard.
    TruckDepot = 19,
    /// Vehicle repair shop.
    RepairShop = 20,
    /// Supermarket.
    Supermarket = 21,
    /// Residential area.
    Residential = 22,
    /// School.
    School = 23,
    /// Government office.
    Government = 24,
    /// Urban park.
    Park = 25,
    /// Bus station.
    BusStation = 26,
    /// Generic company premises.
    Company = 27,
    /// Logistics / distribution centre.
    LogisticsCenter = 28,
}

impl PoiCategory {
    /// All categories in index order.
    pub const ALL: [PoiCategory; NUM_POI_CATEGORIES] = [
        PoiCategory::ChemicalFactory,
        PoiCategory::OilDepot,
        PoiCategory::Port,
        PoiCategory::FuelStorage,
        PoiCategory::ChemicalWarehouse,
        PoiCategory::FuelingStation,
        PoiCategory::Hospital,
        PoiCategory::Factory,
        PoiCategory::ConstructionSite,
        PoiCategory::PowerPlant,
        PoiCategory::IndustrialPark,
        PoiCategory::WaterTreatmentPlant,
        PoiCategory::SteelMill,
        PoiCategory::PharmaceuticalPlant,
        PoiCategory::PaperMill,
        PoiCategory::Restaurant,
        PoiCategory::RestArea,
        PoiCategory::ParkingLot,
        PoiCategory::Hotel,
        PoiCategory::TruckDepot,
        PoiCategory::RepairShop,
        PoiCategory::Supermarket,
        PoiCategory::Residential,
        PoiCategory::School,
        PoiCategory::Government,
        PoiCategory::Park,
        PoiCategory::BusStation,
        PoiCategory::Company,
        PoiCategory::LogisticsCenter,
    ];

    /// The dense feature index of this category (0..29).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Category from a dense index.
    ///
    /// # Panics
    /// Panics if `idx >= NUM_POI_CATEGORIES`.
    pub fn from_index(idx: usize) -> PoiCategory {
        Self::ALL[idx]
    }

    /// The stable kebab-case name of this category (CSV interchange).
    pub fn name(self) -> &'static str {
        use PoiCategory::*;
        match self {
            ChemicalFactory => "chemical-factory",
            OilDepot => "oil-depot",
            Port => "port",
            FuelStorage => "fuel-storage",
            ChemicalWarehouse => "chemical-warehouse",
            FuelingStation => "fueling-station",
            Hospital => "hospital",
            Factory => "factory",
            ConstructionSite => "construction-site",
            PowerPlant => "power-plant",
            IndustrialPark => "industrial-park",
            WaterTreatmentPlant => "water-treatment-plant",
            SteelMill => "steel-mill",
            PharmaceuticalPlant => "pharmaceutical-plant",
            PaperMill => "paper-mill",
            Restaurant => "restaurant",
            RestArea => "rest-area",
            ParkingLot => "parking-lot",
            Hotel => "hotel",
            TruckDepot => "truck-depot",
            RepairShop => "repair-shop",
            Supermarket => "supermarket",
            Residential => "residential",
            School => "school",
            Government => "government",
            Park => "park",
            BusStation => "bus-station",
            Company => "company",
            LogisticsCenter => "logistics-center",
        }
    }

    /// Parses a name produced by [`Self::name`].
    pub fn from_name(name: &str) -> Option<PoiCategory> {
        Self::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// The HCT role this category plays.
    pub fn role(self) -> PoiRole {
        use PoiCategory::*;
        match self {
            ChemicalFactory | OilDepot | Port | FuelStorage | ChemicalWarehouse => PoiRole::Loading,
            Hospital | Factory | ConstructionSite | PowerPlant | IndustrialPark
            | WaterTreatmentPlant | SteelMill | PharmaceuticalPlant | PaperMill => {
                PoiRole::Unloading
            }
            FuelingStation => PoiRole::LoadingAndBreak,
            _ => PoiRole::Ordinary,
        }
    }
}

/// What a POI category means for an HCT process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoiRole {
    /// Hazardous chemicals are loaded here.
    Loading,
    /// Hazardous chemicals are unloaded here.
    Unloading,
    /// Both a loading site and a common break location (fueling stations).
    LoadingAndBreak,
    /// Ordinary urban POI; staying here is a break, never loading/unloading.
    Ordinary,
}

/// A single point of interest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poi {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lng: f64,
    /// Category.
    pub category: PoiCategory,
}

/// A radius-queryable POI database.
///
/// Backed by a [`GridIndex`] with 100 m cells — the radius used by LEAD's
/// POI feature extraction. Also serves the 500 m whitelist searches of the
/// SP-R baseline.
#[derive(Debug, Clone)]
pub struct PoiDatabase {
    index: GridIndex<PoiCategory>,
}

impl PoiDatabase {
    /// Builds a database over `pois`.
    pub fn new(pois: Vec<Poi>) -> Self {
        let items = pois
            .into_iter()
            .map(|p| (p.lat, p.lng, p.category))
            .collect();
        Self {
            index: GridIndex::build(items, 100.0),
        }
    }

    /// Total number of POIs.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All POIs, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Poi> + '_ {
        self.index
            .items()
            .iter()
            .map(|&(lat, lng, category)| Poi { lat, lng, category })
    }

    /// Counts POIs of each category within `radius_m` of `(lat, lng)` — the
    /// paper's 29-dimensional `poi` feature (Section IV-A).
    pub fn category_counts_within(
        &self,
        lat: f64,
        lng: f64,
        radius_m: f64,
    ) -> [u32; NUM_POI_CATEGORIES] {
        let mut counts = [0u32; NUM_POI_CATEGORIES];
        self.index
            .for_each_within(lat, lng, radius_m, |_, _, cat, _| {
                counts[cat.index()] += 1;
            });
        counts
    }

    /// The nearest POI within `radius_m` of `(lat, lng)` and its distance —
    /// used e.g. to resolve a detected loading/unloading stay point to an
    /// address when generating waybills.
    pub fn nearest_within(&self, lat: f64, lng: f64, radius_m: f64) -> Option<(Poi, f64)> {
        let mut best: Option<(Poi, f64)> = None;
        self.index
            .for_each_within(lat, lng, radius_m, |plat, plng, cat, d| {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((
                        Poi {
                            lat: plat,
                            lng: plng,
                            category: *cat,
                        },
                        d,
                    ));
                }
            });
        best
    }

    /// Counts POIs of each category within `radius_m` by scanning every POI —
    /// the unindexed reference implementation, kept for the `poi_index`
    /// ablation benchmark and correctness tests.
    pub fn category_counts_within_scan(
        &self,
        lat: f64,
        lng: f64,
        radius_m: f64,
    ) -> [u32; NUM_POI_CATEGORIES] {
        let mut counts = [0u32; NUM_POI_CATEGORIES];
        for &(plat, plng, cat) in self.index.items() {
            if lead_geo::haversine_m(lat, lng, plat, plng) <= radius_m {
                counts[cat.index()] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::distance::meters_to_lng_deg;

    #[test]
    fn category_indexes_are_dense_and_stable() {
        for (i, c) in PoiCategory::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(PoiCategory::from_index(i), *c);
        }
    }

    #[test]
    fn roles_cover_all_kinds() {
        let mut loading = 0;
        let mut unloading = 0;
        let mut ordinary = 0;
        let mut both = 0;
        for c in PoiCategory::ALL {
            match c.role() {
                PoiRole::Loading => loading += 1,
                PoiRole::Unloading => unloading += 1,
                PoiRole::Ordinary => ordinary += 1,
                PoiRole::LoadingAndBreak => both += 1,
            }
        }
        assert_eq!(loading, 5);
        assert_eq!(unloading, 9);
        assert_eq!(both, 1);
        assert_eq!(ordinary, 14);
        assert_eq!(loading + unloading + ordinary + both, NUM_POI_CATEGORIES);
    }

    #[test]
    fn counts_within_radius() {
        let dlng = meters_to_lng_deg(50.0, 32.0);
        let db = PoiDatabase::new(vec![
            Poi {
                lat: 32.0,
                lng: 120.9,
                category: PoiCategory::ChemicalFactory,
            },
            Poi {
                lat: 32.0,
                lng: 120.9 + dlng,
                category: PoiCategory::Restaurant,
            },
            Poi {
                lat: 32.0,
                lng: 120.9 + 10.0 * dlng,
                category: PoiCategory::Hospital,
            },
        ]);
        let counts = db.category_counts_within(32.0, 120.9, 100.0);
        assert_eq!(counts[PoiCategory::ChemicalFactory.index()], 1);
        assert_eq!(counts[PoiCategory::Restaurant.index()], 1);
        assert_eq!(counts[PoiCategory::Hospital.index()], 0);
    }

    #[test]
    fn indexed_and_scan_counts_agree() {
        let mut pois = Vec::new();
        for i in 0..200 {
            let lat = 32.0 + (i as f64 * 0.313) % 0.05;
            let lng = 120.9 + (i as f64 * 0.131) % 0.05;
            pois.push(Poi {
                lat,
                lng,
                category: PoiCategory::from_index(i % NUM_POI_CATEGORIES),
            });
        }
        let db = PoiDatabase::new(pois);
        for &(qlat, qlng, r) in &[
            (32.01, 120.92, 100.0),
            (32.02, 120.91, 500.0),
            (32.0, 120.9, 2000.0),
        ] {
            assert_eq!(
                db.category_counts_within(qlat, qlng, r),
                db.category_counts_within_scan(qlat, qlng, r)
            );
        }
    }

    #[test]
    fn names_roundtrip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in PoiCategory::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
            assert_eq!(PoiCategory::from_name(c.name()), Some(c));
        }
        assert_eq!(PoiCategory::from_name("nonsense"), None);
    }

    #[test]
    fn nearest_within_returns_closest_poi() {
        let dlng = meters_to_lng_deg(50.0, 32.0);
        let db = PoiDatabase::new(vec![
            Poi {
                lat: 32.0,
                lng: 120.9,
                category: PoiCategory::ChemicalFactory,
            },
            Poi {
                lat: 32.0,
                lng: 120.9 + dlng,
                category: PoiCategory::Restaurant,
            },
        ]);
        let (poi, d) = db.nearest_within(32.0, 120.9 + dlng * 0.8, 200.0).unwrap();
        assert_eq!(poi.category, PoiCategory::Restaurant);
        assert!(d < 15.0);
        assert!(db.nearest_within(33.0, 120.0, 200.0).is_none());
    }

    #[test]
    fn empty_database_counts_zero() {
        let db = PoiDatabase::new(Vec::new());
        assert!(db.is_empty());
        assert_eq!(
            db.category_counts_within(32.0, 120.9, 100.0),
            [0; NUM_POI_CATEGORIES]
        );
    }
}
