//! Online (streaming) loaded-trajectory detection.
//!
//! The paper's deployment motivation is *immediacy*: "Once an HCT truck is
//! found to violate the regulations, further actions can be taken
//! immediately" — but the batch pipeline needs the whole one-day trajectory.
//! [`StreamingDetector`] closes that gap: GPS points are pushed as they
//! arrive, noise filtering and stay-point extraction run incrementally, and
//! every time a stay point *completes* the trained model re-scores the
//! candidates seen so far, yielding a running hypothesis of the loaded
//! trajectory.
//!
//! The incremental processing is **exactly equivalent** to the batch
//! component: feeding a trajectory point-by-point and then calling
//! [`StreamingDetector::finish`] yields the same cleaned points and the same
//! stay points as [`ProcessedTrajectory::from_raw`] (a property test pins
//! this down).

use crate::pipeline::{DetectOptions, DetectionResult, Lead};
use crate::poi::PoiDatabase;
use crate::processing::{enumerate_candidates, ProcessedTrajectory, StayPoint};
use lead_geo::{GpsPoint, Trajectory};
use lead_obs::probe::{Probe, NOOP};

/// Incremental stay-point extraction over a growing point buffer — the
/// online form of [`crate::processing::extract_stay_points`], maintaining
/// the invariant that every buffered point after the anchor lies within
/// `D_max` of the anchor (an *open run*).
///
/// Feeding a buffer point-by-point emits exactly the stays the batch
/// algorithm finds, in order (the trailing open run is closed by
/// [`Self::finish`]); a property test in `tests/proptest_core.rs` pins the
/// equivalence on random trajectories.
#[derive(Debug, Clone)]
pub struct IncrementalStayExtractor {
    d_max_m: f64,
    t_min_s: i64,
    anchor: usize,
    /// Number of anchor-distance evaluations performed so far. Exposed via
    /// [`Self::distance_evals`] so tests can pin the amortized-O(1) contract.
    distance_evals: u64,
}

impl IncrementalStayExtractor {
    /// Creates an extractor with the given thresholds.
    pub fn new(d_max_m: f64, t_min_s: i64) -> Self {
        assert!(d_max_m > 0.0 && t_min_s > 0, "thresholds must be positive");
        Self {
            d_max_m,
            t_min_s,
            anchor: 0,
            distance_evals: 0,
        }
    }

    /// The current open-run anchor index.
    pub fn anchor(&self) -> usize {
        self.anchor
    }

    /// Total anchor-distance evaluations since construction.
    ///
    /// The per-point cost contract: while a run stays open only the newly
    /// appended point is checked against the anchor (one evaluation), and a
    /// full rescan happens only after re-anchoring — so a stream of `n`
    /// points whose anchor advances `a` times costs `O(n + Σ rescan)` ≤
    /// `O(n·a)` total, not the `O(n²)` of rescanning every open run on every
    /// push. Pinned by a regression test on a single long dwell.
    pub fn distance_evals(&self) -> u64 {
        self.distance_evals
    }

    fn within(&mut self, points: &[GpsPoint], anchor: usize, j: usize) -> bool {
        self.distance_evals += 1;
        points[anchor].distance_m(&points[j]) <= self.d_max_m
    }

    /// Called after one point was appended to `points`; returns every stay
    /// that completed (mirrors the batch algorithm's anchor walk).
    ///
    /// Usually zero or one stay completes per point, but re-anchoring after
    /// an emission can reveal a second qualifying run inside the buffered
    /// history (two dwell clusters both within `D_max` of the old anchor yet
    /// apart from each other), so all completions are returned in order.
    ///
    /// Cost: amortized O(1) while the run stays open — the open-run
    /// invariant (every buffered point after the anchor is within `D_max`
    /// of it) already holds for all but the new point, so only the new point
    /// is checked; the full anchor walk reruns only after a run breaks.
    pub fn on_point_appended(&mut self, points: &[GpsPoint]) -> Vec<StayPoint> {
        let end = points.len() - 1;
        if self.anchor >= end {
            return Vec::new();
        }
        // Fast path: the invariant covers points (anchor, end); the newly
        // appended point either keeps the run open (nothing to do) or is the
        // first break — the slow anchor walk below then starts at a state
        // where `end` is known to be the first break of the current anchor.
        if self.within(points, self.anchor, end) {
            return Vec::new();
        }
        let mut emitted = Vec::new();
        let mut first_break = Some(end);
        loop {
            let end = points.len() - 1;
            if self.anchor >= end {
                break;
            }
            // First point after the anchor that breaks the run: known from
            // the fast path on the first iteration, rescanned after every
            // re-anchoring.
            let brk = match first_break.take() {
                Some(j) => Some(j),
                None => {
                    let anchor = self.anchor;
                    ((anchor + 1)..=end).find(|&j| !self.within(points, anchor, j))
                }
            };
            let Some(j) = brk else {
                break; // run still open at buffer end
            };
            let run_end = j - 1;
            if run_end > self.anchor && points[run_end].t - points[self.anchor].t >= self.t_min_s {
                emitted.push(StayPoint {
                    start: self.anchor,
                    end: run_end,
                });
                self.anchor = j;
            } else {
                self.anchor += 1;
            }
        }
        emitted
    }

    /// Closes a qualifying trailing run at end-of-stream.
    pub fn finish(&self, points: &[GpsPoint]) -> Option<StayPoint> {
        let end = points.len().checked_sub(1)?;
        (self.anchor < end && points[end].t - points[self.anchor].t >= self.t_min_s).then_some(
            StayPoint {
                start: self.anchor,
                end,
            },
        )
    }
}

/// What changed after pushing one GPS point.
#[derive(Debug, Clone)]
pub struct StreamUpdate {
    /// The point was rejected by the speed-based noise filter.
    pub filtered_out: bool,
    /// Indexes of stay points that *completed* with this push (usually empty
    /// or one; see [`IncrementalStayExtractor::on_point_appended`]).
    pub completed_stays: Vec<usize>,
    /// The current best hypothesis (recomputed only when a stay completes
    /// and at least two stay points exist).
    pub hypothesis: Option<DetectionResult>,
}

/// Incremental raw-trajectory processing plus rolling detection.
pub struct StreamingDetector<'m, 'p> {
    model: &'m Lead,
    poi_db: &'p PoiDatabase,
    /// Noise-filtered points so far.
    points: Vec<GpsPoint>,
    /// Completed stay points.
    stays: Vec<StayPoint>,
    extractor: IncrementalStayExtractor,
    v_max_mps: f64,
    probe: &'p dyn Probe,
}

impl<'m, 'p> StreamingDetector<'m, 'p> {
    /// Starts a stream against a trained model.
    pub fn new(model: &'m Lead, poi_db: &'p PoiDatabase) -> Self {
        Self::with_probe(model, poi_db, &NOOP)
    }

    /// [`Self::new`] with an observability probe: records
    /// `stream.points_in` / `stream.points_filtered` /
    /// `stream.stays_completed` / `stream.rescores` counters as the stream
    /// advances. Metrics are write-only — updates and detections are
    /// identical for any probe.
    pub fn with_probe(model: &'m Lead, poi_db: &'p PoiDatabase, probe: &'p dyn Probe) -> Self {
        let v_max_mps = model.config().v_max_kmh / 3.6;
        let extractor =
            IncrementalStayExtractor::new(model.config().d_max_m, model.config().t_min_s);
        Self {
            model,
            poi_db,
            points: Vec::new(),
            stays: Vec::new(),
            extractor,
            v_max_mps,
            probe,
        }
    }

    /// Number of accepted (noise-filtered) points so far.
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Completed stay points so far.
    pub fn stay_points(&self) -> &[StayPoint] {
        &self.stays
    }

    /// Pushes one GPS point.
    ///
    /// # Panics
    /// Panics if `p` is not strictly later than the previous accepted point.
    pub fn push(&mut self, p: GpsPoint) -> StreamUpdate {
        let probing = self.probe.enabled();
        if probing {
            self.probe.count("stream.points_in", 1);
        }
        // Incremental noise filter: judge against the last kept point.
        if let Some(last) = self.points.last() {
            assert!(p.t > last.t, "stream must be chronological");
            if last.speed_to_mps(&p) > self.v_max_mps {
                if probing {
                    self.probe.count("stream.points_filtered", 1);
                }
                return StreamUpdate {
                    filtered_out: true,
                    completed_stays: Vec::new(),
                    hypothesis: None,
                };
            }
        }
        self.points.push(p);
        let mut completed_stays = Vec::new();
        for stay in self.extractor.on_point_appended(&self.points) {
            self.stays.push(stay);
            completed_stays.push(self.stays.len() - 1);
        }
        if probing && !completed_stays.is_empty() {
            self.probe
                .count("stream.stays_completed", completed_stays.len() as u64);
        }
        let hypothesis = if !completed_stays.is_empty() && self.stays.len() >= 2 {
            self.score()
        } else {
            None
        };
        StreamUpdate {
            filtered_out: false,
            completed_stays,
            hypothesis,
        }
    }

    fn current_processed(&self) -> ProcessedTrajectory {
        ProcessedTrajectory {
            cleaned: Trajectory::new(self.points.clone()),
            stay_points: self.stays.clone(),
            candidates: enumerate_candidates(self.stays.len()),
        }
    }

    fn score(&self) -> Option<DetectionResult> {
        if self.probe.enabled() {
            self.probe.count("stream.rescores", 1);
        }
        let opts = DetectOptions::new().with_probe(self.probe);
        self.model
            .detect_processed_opts(self.current_processed(), self.poi_db, &opts)
    }

    /// Ends the stream: closes a qualifying trailing run (the batch
    /// algorithm's end-of-trajectory stay) and returns the final detection.
    pub fn finish(mut self) -> Option<DetectionResult> {
        if let Some(stay) = self.extractor.finish(&self.points) {
            self.stays.push(stay);
        }
        self.score()
    }

    /// The processing state as a batch-equivalent [`ProcessedTrajectory`]
    /// (completed stays only; the trailing open run is not closed).
    pub fn snapshot(&self) -> ProcessedTrajectory {
        self.current_processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LeadConfig;
    use crate::processing::extract_stay_points;
    use lead_geo::distance::meters_to_lng_deg;

    /// Synthetic day: dwell / drive / dwell / drive / dwell.
    fn demo_points() -> Vec<GpsPoint> {
        let per_km = meters_to_lng_deg(1_000.0, 32.0);
        let mut pts = Vec::new();
        let mut t = 0;
        for block in 0..3 {
            let lng = 120.9 + block as f64 * 5.0 * per_km;
            for _ in 0..10 {
                pts.push(GpsPoint::new(32.0, lng, t));
                t += 120;
            }
            for k in 1..=3 {
                pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
                t += 120;
            }
        }
        pts
    }

    /// An untrained model is fine for testing the *processing* equivalence.
    fn dummy_model() -> (Lead, PoiDatabase) {
        use crate::features::{Normalizer, FEATURE_DIM};
        use crate::pipeline::LeadOptions;
        let cfg = LeadConfig::fast_test();
        let model =
            Lead::new_untrained(&cfg, LeadOptions::full(), Normalizer::identity(FEATURE_DIM))
                .expect("fast_test config is valid");
        let db = PoiDatabase::new(vec![]);
        (model, db)
    }

    #[test]
    fn streaming_extraction_matches_batch() {
        let (model, db) = dummy_model();
        let pts = demo_points();
        let mut stream = StreamingDetector::new(&model, &db);
        for &p in &pts {
            stream.push(p);
        }
        // Completed stays must be a prefix of the batch extraction.
        let batch = extract_stay_points(
            &Trajectory::new(pts.clone()),
            model.config().d_max_m,
            model.config().t_min_s as f64,
        );
        let streamed = stream.stay_points().to_vec();
        assert!(!streamed.is_empty());
        assert_eq!(&batch[..streamed.len()], &streamed[..]);
        // finish() closes the trailing dwell: full equality.
        let mut stream = StreamingDetector::new(&model, &db);
        for &p in &pts {
            stream.push(p);
        }
        let snapshot = {
            let mut s = stream.snapshot().stay_points;
            if let Some(stay) = stream.extractor.finish(&pts) {
                s.push(stay);
            }
            s
        };
        assert_eq!(batch, snapshot);
    }

    #[test]
    fn long_dwell_costs_amortized_constant_distance_evals_per_point() {
        // A single 5,000-point dwell: the pre-fix extractor rescanned the
        // whole open run from the anchor on every append — ~n²/2 ≈ 12.5 M
        // distance evaluations. The amortized extractor checks only the new
        // point while the run stays open, so the total stays linear.
        let n: usize = 5_000;
        let mut ex = IncrementalStayExtractor::new(500.0, 900);
        let mut buffer = Vec::new();
        for i in 0..n {
            buffer.push(GpsPoint::new(32.0, 120.9, i as i64 * 10));
            let emitted = ex.on_point_appended(&buffer);
            assert!(emitted.is_empty(), "dwell must stay open");
        }
        let evals = ex.distance_evals();
        assert!(
            evals <= 2 * n as u64,
            "expected O(n) distance evals for an open run, got {evals} for n={n}"
        );
        // The trailing dwell still closes into one batch-identical stay.
        let stay = ex.finish(&buffer).expect("qualifying trailing dwell");
        assert_eq!((stay.start, stay.end), (0, n - 1));
    }

    #[test]
    fn rescan_after_reanchoring_still_emits_interior_stays() {
        // dwell A (45 min) → 200 m hop → dwell B (45 min) → far jump.
        // Closing A re-anchors inside history; the rescan must then find B
        // intact and emit it when the far jump arrives.
        let per_km = meters_to_lng_deg(1_000.0, 32.0);
        let mut pts = Vec::new();
        let mut t = 0;
        for _ in 0..30 {
            pts.push(GpsPoint::new(32.0, 120.9, t));
            t += 90;
        }
        for _ in 0..30 {
            pts.push(GpsPoint::new(32.0, 120.9 + 0.7 * per_km, t));
            t += 90;
        }
        pts.push(GpsPoint::new(32.0, 120.9 + 6.0 * per_km, t));

        let mut ex = IncrementalStayExtractor::new(500.0, 900);
        let mut buffer = Vec::new();
        let mut streamed = Vec::new();
        for &p in &pts {
            buffer.push(p);
            streamed.extend(ex.on_point_appended(&buffer));
        }
        let batch = extract_stay_points(&Trajectory::new(pts), 500.0, 900.0);
        assert_eq!(batch.len(), 2, "two dwells expected");
        assert_eq!(streamed, batch);
    }

    #[test]
    fn noise_is_filtered_incrementally() {
        let (model, db) = dummy_model();
        let mut stream = StreamingDetector::new(&model, &db);
        assert!(!stream.push(GpsPoint::new(32.0, 120.9, 0)).filtered_out);
        // 8 km jump in 120 s ≈ 240 km/h → filtered.
        let update = stream.push(GpsPoint::new(32.072, 120.9, 120));
        assert!(update.filtered_out);
        assert_eq!(stream.num_points(), 1);
        // The next sane point is accepted (judged against the kept point).
        assert!(!stream.push(GpsPoint::new(32.001, 120.9, 240)).filtered_out);
        assert!(stream
            .push(GpsPoint::new(32.002, 120.9, 360))
            .completed_stays
            .is_empty());
    }

    #[test]
    fn hypothesis_appears_once_two_stays_complete() {
        let (model, db) = dummy_model();
        let mut stream = StreamingDetector::new(&model, &db);
        let mut first_hypothesis_at = None;
        for (i, &p) in demo_points().iter().enumerate() {
            let u = stream.push(p);
            if u.hypothesis.is_some() && first_hypothesis_at.is_none() {
                first_hypothesis_at = Some(i);
                assert!(stream.stay_points().len() >= 2);
            }
        }
        assert!(
            first_hypothesis_at.is_some(),
            "no rolling hypothesis emitted"
        );
    }

    #[test]
    fn finish_detects_with_trailing_stay() {
        let (model, db) = dummy_model();
        let mut stream = StreamingDetector::new(&model, &db);
        for &p in &demo_points() {
            stream.push(p);
        }
        let result = stream.finish().expect("three stays → detectable");
        assert!(result.processed.num_stay_points() >= 2);
        assert!(result.detected.start_sp < result.detected.end_sp);
    }

    #[test]
    fn fewer_than_two_stays_finish_none_without_panicking() {
        let (model, db) = dummy_model();
        // No points at all.
        let stream = StreamingDetector::new(&model, &db);
        assert!(stream.finish().is_none());
        // A single dwell (one stay point): still no candidate.
        let mut stream = StreamingDetector::new(&model, &db);
        let mut t = 0;
        for _ in 0..20 {
            stream.push(GpsPoint::new(32.0, 120.9, t));
            t += 120;
        }
        assert!(stream.finish().is_none());
    }

    #[test]
    #[should_panic(expected = "chronological")]
    fn non_chronological_push_panics() {
        let (model, db) = dummy_model();
        let mut stream = StreamingDetector::new(&model, &db);
        stream.push(GpsPoint::new(32.0, 120.9, 100));
        stream.push(GpsPoint::new(32.0, 120.9, 50));
    }
}
