//! Loaded trajectory detection (Section V): group generation, forward and
//! backward stacked-BiLSTM detectors, label processing, and probability
//! merging.

mod detector;
mod group;
mod labels;
mod mlp;

pub use detector::GroupDetector;
pub use group::{backward_flat_order, build_groups, forward_flat_order, Groups};
pub use labels::smoothed_label;
pub use mlp::MlpDetector;

use crate::processing::Candidate;

/// Merges the forward and backward detectors' probability distributions
/// (Section V-B "Workflow"): probabilities of the same candidate are summed,
/// then the result is min–max rescaled to `[0, 1]`.
///
/// `fwd` must follow [`forward_flat_order`], `bwd` must follow
/// [`backward_flat_order`]; the returned vector follows the forward
/// (canonical candidate) order.
///
/// # Panics
/// Panics if the lengths disagree with `n(n−1)/2` for `n` stay points.
pub fn merge_probabilities(n: usize, fwd: &[f32], bwd: &[f32]) -> Vec<f32> {
    let m = n * (n - 1) / 2;
    assert_eq!(fwd.len(), m, "forward distribution length");
    assert_eq!(bwd.len(), m, "backward distribution length");
    let fwd_order = forward_flat_order(n);
    let bwd_order = backward_flat_order(n);
    // Position of each candidate within the backward flattening.
    let mut bwd_pos = std::collections::HashMap::with_capacity(m);
    for (i, c) in bwd_order.iter().enumerate() {
        bwd_pos.insert(*c, i);
    }
    let mut merged: Vec<f32> = fwd_order
        .iter()
        .enumerate()
        .map(|(i, c)| fwd[i] + bwd[bwd_pos[c]])
        .collect();
    // Min–max rescale to [0, 1] (argmax-preserving).
    let min = merged.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = merged.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = max - min;
    if span > 0.0 {
        for v in &mut merged {
            *v = (*v - min) / span;
        }
    } else {
        merged.fill(1.0);
    }
    merged
}

/// The candidate with the maximum merged probability (Equation (13)).
///
/// `probs` follows the forward canonical order for `n` stay points.
pub fn argmax_candidate(n: usize, probs: &[f32]) -> Candidate {
    assert_eq!(probs.len(), n * (n - 1) / 2, "distribution length");
    let order = forward_flat_order(n);
    let mut best = 0;
    for (i, &p) in probs.iter().enumerate() {
        if p > probs[best] {
            best = i;
        }
    }
    order[best]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_aligns_by_candidate_identity() {
        let n = 3; // candidates fwd: (0,1),(0,2),(1,2); bwd: (0,1),(1,2),(0,2)
        let fwd = [0.5, 0.3, 0.2];
        let bwd = [0.1, 0.6, 0.3];
        let merged = merge_probabilities(n, &fwd, &bwd);
        // Raw sums in forward order: (0,1)=0.6, (0,2)=0.6, (1,2)=0.8.
        // Min-max: (0.6-0.6)/0.2=0, 0, 1.
        assert_eq!(merged.len(), 3);
        assert!((merged[2] - 1.0).abs() < 1e-6);
        assert!(merged[0].abs() < 1e-6);
    }

    #[test]
    fn merged_range_is_unit_interval() {
        let n = 5;
        let m = n * (n - 1) / 2;
        let fwd: Vec<f32> = (0..m).map(|i| (i as f32 * 0.37).sin().abs()).collect();
        let bwd: Vec<f32> = (0..m).map(|i| (i as f32 * 0.73).cos().abs()).collect();
        let merged = merge_probabilities(n, &fwd, &bwd);
        let min = merged.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = merged.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!((min - 0.0).abs() < 1e-6 && (max - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equal_probabilities_merge_to_ones() {
        let merged = merge_probabilities(3, &[0.2; 3], &[0.2; 3]);
        assert!(merged.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn argmax_candidate_selects_by_canonical_order() {
        let probs = [0.1, 0.9, 0.3];
        let c = argmax_candidate(3, &probs);
        assert_eq!((c.start_sp, c.end_sp), (0, 2));
    }

    #[test]
    #[should_panic(expected = "forward distribution length")]
    fn merge_rejects_wrong_lengths() {
        let _ = merge_probabilities(4, &[0.0; 3], &[0.0; 6]);
    }
}
