//! Loaded trajectory detection (Section V): group generation, forward and
//! backward stacked-BiLSTM detectors, label processing, and probability
//! merging.

mod detector;
mod group;
mod labels;
mod mlp;

pub use detector::GroupDetector;
pub use group::{backward_flat_order, build_groups, forward_flat_order, Groups};
pub use labels::smoothed_label;
pub use mlp::MlpDetector;

use crate::processing::Candidate;

/// Merges the forward and backward detectors' probability distributions
/// (Section V-B "Workflow"): probabilities of the same candidate are summed,
/// then the result is min–max rescaled to `[0, 1]`.
///
/// `fwd` must follow [`forward_flat_order`], `bwd` must follow
/// [`backward_flat_order`]; the returned vector follows the forward
/// (canonical candidate) order.
///
/// Fewer than two stay points admit no candidates: both inputs must then be
/// empty and the merge is the empty distribution (no `n(n−1)/2` underflow).
///
/// Detector outputs are expected to be finite (debug builds assert it). In
/// release builds non-finite entries are tolerated: the rescale range is
/// taken over the finite sums only, and any non-finite merged value
/// saturates afterwards (`+∞ → 1`, `−∞ → 0`, `NaN → 0`) so the result is
/// always a well-formed `[0, 1]` distribution.
///
/// # Panics
/// Panics if the lengths disagree with `n(n−1)/2` for `n` stay points.
pub fn merge_probabilities(n: usize, fwd: &[f32], bwd: &[f32]) -> Vec<f32> {
    let m = n * n.saturating_sub(1) / 2;
    assert_eq!(fwd.len(), m, "forward distribution length");
    assert_eq!(bwd.len(), m, "backward distribution length");
    if n < 2 {
        return Vec::new();
    }
    debug_assert!(
        fwd.iter().chain(bwd.iter()).all(|v| v.is_finite()),
        "detector distributions must be finite"
    );
    let fwd_order = forward_flat_order(n);
    let bwd_order = backward_flat_order(n);
    // Position of each candidate within the backward flattening, as a dense
    // table keyed by `start_sp * n + end_sp` — candidate pairs are unique and
    // a deterministic Vec keeps the merge free of hash iteration order.
    let mut bwd_pos = vec![usize::MAX; n * n];
    for (i, c) in bwd_order.iter().enumerate() {
        bwd_pos[c.start_sp * n + c.end_sp] = i;
    }
    let mut merged: Vec<f32> = fwd_order
        .iter()
        .enumerate()
        .map(|(i, c)| fwd[i] + bwd[bwd_pos[c.start_sp * n + c.end_sp]])
        .collect();
    // Min–max rescale to [0, 1] (argmax-preserving). The range is computed
    // over finite sums only — a single NaN would otherwise poison `min`/`max`
    // and turn the whole distribution into NaN.
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in merged.iter().filter(|v| v.is_finite()) {
        min = min.min(v);
        max = max.max(v);
    }
    if min > max {
        // No finite sum at all; saturate everything to the floor.
        merged.fill(0.0);
    } else if max > min {
        for v in &mut merged {
            *v = if v.is_nan() {
                0.0
            } else {
                ((*v - min) / (max - min)).clamp(0.0, 1.0)
            };
        }
    } else {
        // All finite sums equal; non-finite stragglers still saturate
        // (+inf joins the ceiling, -inf and NaN fall to the floor).
        for v in &mut merged {
            *v = if v.is_finite() || (v.is_infinite() && v.is_sign_positive()) {
                1.0
            } else {
                0.0
            };
        }
    }
    merged
}

/// The candidate with the maximum merged probability (Equation (13)).
///
/// `probs` follows the forward canonical order for `n` stay points. Returns
/// `None` when `n < 2` (no candidates exist, `probs` must be empty) or when
/// no probability is finite. Non-finite entries never win the argmax.
///
/// # Panics
/// Panics if `probs.len()` disagrees with `n(n−1)/2`.
pub fn argmax_candidate(n: usize, probs: &[f32]) -> Option<Candidate> {
    assert_eq!(
        probs.len(),
        n * n.saturating_sub(1) / 2,
        "distribution length"
    );
    if n < 2 {
        return None;
    }
    let order = forward_flat_order(n);
    let mut best: Option<usize> = None;
    for (i, &p) in probs.iter().enumerate() {
        if !p.is_finite() {
            continue;
        }
        match best {
            Some(b) if p <= probs[b] => {}
            _ => best = Some(i),
        }
    }
    best.map(|b| order[b])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_aligns_by_candidate_identity() {
        let n = 3; // candidates fwd: (0,1),(0,2),(1,2); bwd: (0,1),(1,2),(0,2)
        let fwd = [0.5, 0.3, 0.2];
        let bwd = [0.1, 0.6, 0.3];
        let merged = merge_probabilities(n, &fwd, &bwd);
        // Raw sums in forward order: (0,1)=0.6, (0,2)=0.6, (1,2)=0.8.
        // Min-max: (0.6-0.6)/0.2=0, 0, 1.
        assert_eq!(merged.len(), 3);
        assert!((merged[2] - 1.0).abs() < 1e-6);
        assert!(merged[0].abs() < 1e-6);
    }

    #[test]
    fn merged_range_is_unit_interval() {
        let n = 5;
        let m = n * (n - 1) / 2;
        let fwd: Vec<f32> = (0..m).map(|i| (i as f32 * 0.37).sin().abs()).collect();
        let bwd: Vec<f32> = (0..m).map(|i| (i as f32 * 0.73).cos().abs()).collect();
        let merged = merge_probabilities(n, &fwd, &bwd);
        let min = merged.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = merged.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!((min - 0.0).abs() < 1e-6 && (max - 1.0).abs() < 1e-6);
    }

    #[test]
    fn equal_probabilities_merge_to_ones() {
        let merged = merge_probabilities(3, &[0.2; 3], &[0.2; 3]);
        assert!(merged.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn argmax_candidate_selects_by_canonical_order() {
        let probs = [0.1, 0.9, 0.3];
        let c = argmax_candidate(3, &probs).expect("finite distribution");
        assert_eq!((c.start_sp, c.end_sp), (0, 2));
    }

    #[test]
    #[should_panic(expected = "forward distribution length")]
    fn merge_rejects_wrong_lengths() {
        let _ = merge_probabilities(4, &[0.0; 3], &[0.0; 6]);
    }

    #[test]
    fn merge_below_two_stay_points_is_empty() {
        assert!(merge_probabilities(0, &[], &[]).is_empty());
        assert!(merge_probabilities(1, &[], &[]).is_empty());
    }

    #[test]
    fn argmax_below_two_stay_points_is_none() {
        assert_eq!(argmax_candidate(0, &[]), None);
        assert_eq!(argmax_candidate(1, &[]), None);
    }

    #[test]
    fn argmax_ignores_non_finite_probabilities() {
        let probs = [f32::NAN, 0.4, f32::INFINITY];
        let c = argmax_candidate(3, &probs).expect("one finite entry");
        assert_eq!((c.start_sp, c.end_sp), (0, 2));
        assert_eq!(argmax_candidate(3, &[f32::NAN; 3]), None);
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "release-only saturating behaviour")]
    fn merge_saturates_non_finite_sums_in_release() {
        // NaN must neither poison the rescale range nor survive the merge.
        let merged = merge_probabilities(3, &[0.5, f32::NAN, 0.2], &[0.1, 0.6, 0.3]);
        assert!(merged.iter().all(|v| (0.0..=1.0).contains(v)), "{merged:?}");
        assert!(merged[1] == 0.0);
        // All-non-finite input degrades to the all-zero distribution.
        let merged = merge_probabilities(3, &[f32::NAN; 3], &[f32::INFINITY; 3]);
        assert!(merged.iter().all(|&v| v == 0.0));
    }
}
