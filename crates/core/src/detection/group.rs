//! Group generation (Section V-A, Table II).
//!
//! The compressed vectors of a trajectory's candidates are *disordered*; the
//! grouping organises them so a sequence model can exploit three
//! relationships:
//!
//! - **inclusion** — within a subgroup, each candidate extends the previous
//!   one by a move point and a stay point (left-to-right);
//! - **exclusion** — each candidate is the next one minus its tail
//!   (right-to-left);
//! - **analogy** — all members of a forward subgroup share the starting stay
//!   point; of a backward subgroup, the ending stay point.

use crate::processing::{enumerate_candidates, Candidate};

/// The forward and backward groups of a trajectory with `n` stay points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Groups {
    /// Number of stay points.
    pub n: usize,
    /// Forward subgroups `g_{i'}`: candidates starting at `i'`, sorted by
    /// ascending ending index. `forward[i']` is `g_{i'}` for `i' ∈ [0, n−1)`.
    pub forward: Vec<Vec<Candidate>>,
    /// Backward subgroups `ḡ_{j'}`: candidates ending at `j'`, sorted by
    /// *descending* starting index. `backward[k]` is `ḡ_{k+1}` for
    /// `k ∈ [0, n−1)`.
    pub backward: Vec<Vec<Candidate>>,
}

/// Builds both groups for `n` stay points.
///
/// # Panics
/// Panics if `n < 2` (no candidates exist).
pub fn build_groups(n: usize) -> Groups {
    assert!(n >= 2, "need at least two stay points to form candidates");
    let forward: Vec<Vec<Candidate>> = (0..n - 1)
        .map(|i| ((i + 1)..n).map(|j| Candidate::new(i, j)).collect())
        .collect();
    let backward: Vec<Vec<Candidate>> = (1..n)
        .map(|j| (0..j).rev().map(|i| Candidate::new(i, j)).collect())
        .collect();
    Groups {
        n,
        forward,
        backward,
    }
}

/// The canonical forward flattening `[p̂_1^f … p̂_{n−1}^f]`: forward subgroups
/// concatenated in starting-index order — identical to
/// [`enumerate_candidates`].
pub fn forward_flat_order(n: usize) -> Vec<Candidate> {
    enumerate_candidates(n)
}

/// The canonical backward flattening `[p̂_2^b … p̂_n^b]`: backward subgroups
/// concatenated in ending-index order.
pub fn backward_flat_order(n: usize) -> Vec<Candidate> {
    // `n * (n - 1)` would underflow for `n = 0`; saturate so the degenerate
    // inputs yield an empty order instead of a panic in release builds.
    let mut out = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for j in 1..n {
        for i in (0..j).rev() {
            out.push(Candidate::new(i, j));
        }
    }
    out
}

impl Groups {
    /// Total number of candidates across subgroups (each group covers every
    /// candidate exactly once).
    pub fn num_candidates(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn table_ii_example() {
        // The paper's Table II with 5 stay points (1-based there, 0-based
        // here): forward g_1 = ⟨(1,2),(1,3),(1,4),(1,5)⟩, …
        let g = build_groups(5);
        assert_eq!(g.forward.len(), 4);
        assert_eq!(
            g.forward[0]
                .iter()
                .map(|c| (c.start_sp + 1, c.end_sp + 1))
                .collect::<Vec<_>>(),
            vec![(1, 2), (1, 3), (1, 4), (1, 5)]
        );
        assert_eq!(g.forward[3].len(), 1);
        // Backward ḡ_5 = ⟨(4,5),(3,5),(2,5),(1,5)⟩.
        assert_eq!(
            g.backward[3]
                .iter()
                .map(|c| (c.start_sp + 1, c.end_sp + 1))
                .collect::<Vec<_>>(),
            vec![(4, 5), (3, 5), (2, 5), (1, 5)]
        );
        assert_eq!(g.num_candidates(), 10);
    }

    #[test]
    fn each_group_covers_every_candidate_once() {
        for n in 2..12 {
            let g = build_groups(n);
            let all: HashSet<Candidate> = enumerate_candidates(n).into_iter().collect();
            let fwd: Vec<Candidate> = g.forward.iter().flatten().copied().collect();
            let bwd: Vec<Candidate> = g.backward.iter().flatten().copied().collect();
            assert_eq!(fwd.len(), all.len());
            assert_eq!(bwd.len(), all.len());
            assert_eq!(fwd.iter().copied().collect::<HashSet<_>>(), all);
            assert_eq!(bwd.iter().copied().collect::<HashSet<_>>(), all);
        }
    }

    #[test]
    fn flat_orders_match_subgroup_concatenation() {
        for n in 2..10 {
            let g = build_groups(n);
            let fwd_cat: Vec<Candidate> = g.forward.iter().flatten().copied().collect();
            assert_eq!(fwd_cat, forward_flat_order(n));
            let bwd_cat: Vec<Candidate> = g.backward.iter().flatten().copied().collect();
            assert_eq!(bwd_cat, backward_flat_order(n));
        }
    }

    #[test]
    fn forward_subgroups_share_start_backward_share_end() {
        let g = build_groups(8);
        for (i, sub) in g.forward.iter().enumerate() {
            assert!(sub.iter().all(|c| c.start_sp == i));
            assert!(sub.windows(2).all(|w| w[0].end_sp < w[1].end_sp));
        }
        for (k, sub) in g.backward.iter().enumerate() {
            assert!(sub.iter().all(|c| c.end_sp == k + 1));
            assert!(sub.windows(2).all(|w| w[0].start_sp > w[1].start_sp));
        }
    }

    #[test]
    #[should_panic(expected = "at least two stay points")]
    fn one_stay_point_rejected() {
        let _ = build_groups(1);
    }

    #[test]
    fn flat_orders_are_empty_below_two_stay_points() {
        for n in 0..2 {
            assert!(forward_flat_order(n).is_empty(), "n={n}");
            assert!(backward_flat_order(n).is_empty(), "n={n}");
        }
    }
}
