//! The forward/backward detector (Section V-B, Figure 7): a stacked BiLSTM
//! over each subgroup, a shared 1-unit output layer, and a per-subgroup
//! softmax (Equation (10)).
//!
//! One `GroupDetector` instance serves as the forward detector (fed forward
//! subgroups) and another as the backward detector (fed backward subgroups);
//! the two "share the same structure" but not parameters.

use crate::config::LeadConfig;
use lead_nn::layers::{Linear, StackedBiLstm};
use lead_nn::optim::Adam;
use lead_nn::train::{AccumTrainer, EarlyStopping, EpochPlan};
use lead_nn::{Graph, Matrix, ParamSet, Var};
use rand::Rng;

/// One training item: a group's subgroup c-vec lists paired with its flat
/// ε-smoothed label distribution.
pub type GroupItem = (Vec<Vec<Matrix>>, Matrix);

/// A stacked-BiLSTM subgroup detector.
pub struct GroupDetector {
    params: ParamSet,
    stack: StackedBiLstm,
    out: Linear,
}

impl GroupDetector {
    /// Builds an untrained detector over `c_vec_dim`-wide compressed vectors
    /// with the configured `L` layers and 64 hidden units.
    pub fn new<R: Rng>(config: &LeadConfig, c_vec_dim: usize, rng: &mut R) -> Self {
        let mut ps = ParamSet::new();
        let stack = StackedBiLstm::new(
            &mut ps,
            rng,
            "det.stack",
            c_vec_dim,
            config.detector_hidden,
            config.detector_layers,
        );
        let out = Linear::new(&mut ps, rng, "det.out", config.detector_hidden, 1);
        Self {
            params: ps,
            stack,
            out,
        }
    }

    /// Number of trainable scalars (diagnostics).
    pub fn num_weights(&self) -> usize {
        self.params.num_scalars()
    }

    /// The trainable parameters (persistence).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the trainable parameters (persistence).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Records the detector on `g` over one group (list of subgroups, each a
    /// list of c-vecs); returns the flat probability node (1 × m) over all
    /// candidates, in subgroup-concatenation order.
    ///
    /// Each subgroup is processed by the stacked BiLSTM **independently**
    /// (Equation (10)'s per-subgroup calculation, preserving the analogy
    /// relationships), but the softmax is taken over the *concatenated*
    /// logits of all subgroups rather than per subgroup. A literal
    /// per-subgroup softmax degenerates for singleton subgroups — the last
    /// forward subgroup `g_{n−1}` has one member whose probability would be
    /// pinned at exactly 1.0, making it the unconditional argmax whenever a
    /// single detector is used (the `LEAD-NoFor`/`-NoBac` ablations would be
    /// meaningless). The global softmax keeps the output a proper
    /// distribution matching the label distribution of Section V-C; see
    /// DESIGN.md for the full rationale.
    ///
    /// # Panics
    /// Panics if the group or any subgroup is empty.
    pub fn forward_graph(&self, g: &mut Graph, subgroups: &[Vec<&Matrix>]) -> Var {
        forward_graph_parts(&self.stack, &self.out, g, subgroups)
    }

    /// The flat probability distribution over one group, as values.
    pub fn probabilities(&self, subgroups: &[Vec<&Matrix>]) -> Vec<f32> {
        let mut g = Graph::new(&self.params);
        let p = self.forward_graph(&mut g, subgroups);
        g.value(p).data().to_vec()
    }

    /// Trains against ε-smoothed labels with the KLD loss (Equations
    /// (11)–(12)), returning the per-epoch mean training KLD curve
    /// (Figure 10).
    ///
    /// Each training item pairs a group (subgroup c-vec lists) with its flat
    /// label distribution (matching the group's flattening order).
    pub fn train<R: Rng>(
        &mut self,
        items: &[GroupItem],
        config: &LeadConfig,
        rng: &mut R,
    ) -> Vec<f32> {
        self.train_with_validation(items, None, config, rng).0
    }

    /// Like [`Self::train`], but additionally records the per-epoch
    /// validation KLD when `val_items` is given. Early stopping observes the
    /// training loss: at this dataset scale the validation split is too
    /// small for its loss to be a reliable stopping signal (it is recorded
    /// for reporting and diagnostics). Returns `(train_curve, val_curve)`.
    pub fn train_with_validation<R: Rng>(
        &mut self,
        items: &[GroupItem],
        val_items: Option<&[GroupItem]>,
        config: &LeadConfig,
        rng: &mut R,
    ) -> (Vec<f32>, Vec<f32>) {
        self.train_probed(items, val_items, config, rng, &lead_obs::probe::NOOP, "det")
    }

    /// [`Self::train_with_validation`] with an observability probe: records a
    /// `{scope}.epoch` span plus `{scope}.epoch_kld` / `{scope}.epoch_val_kld`
    /// observations and the trainer's `{scope}.grad_norm` /
    /// `{scope}.optim_steps` (the pipeline uses scopes `det.fwd` and
    /// `det.bwd`). Metrics are write-only — the trained weights are identical
    /// for any probe.
    pub fn train_probed<R: Rng>(
        &mut self,
        items: &[GroupItem],
        val_items: Option<&[GroupItem]>,
        config: &LeadConfig,
        rng: &mut R,
        probe: &dyn lead_obs::probe::Probe,
        scope: &str,
    ) -> (Vec<f32>, Vec<f32>) {
        assert!(!items.is_empty(), "detector training needs samples");
        // Metric names are dynamic (scope-prefixed); build them once up front
        // so the per-epoch hot loop never formats when a probe is attached —
        // and not at all when it is not.
        let names = probe.enabled().then(|| {
            (
                format!("{scope}.epoch"),
                format!("{scope}.epoch_kld"),
                format!("{scope}.epoch_val_kld"),
            )
        });
        let mut trainer = AccumTrainer::new(
            Adam::new(&self.params, config.learning_rate)
                .with_weight_decay(config.detector_weight_decay),
            config.batch_accumulation,
        )
        .with_clip_norm(config.grad_clip_norm)
        .with_probe(probe, scope);
        let mut stopper = EarlyStopping::new(config.early_stopping_patience, 1e-4);
        let mut plan = EpochPlan::new(items.len());
        let mut train_curve = Vec::new();
        let mut val_curve = Vec::new();
        let stack = &self.stack;
        let out = &self.out;
        for _epoch in 0..config.detector_max_epochs {
            let _epoch_span = names
                .as_ref()
                .map(|(epoch_name, _, _)| lead_obs::clock::span(probe, epoch_name));
            plan.reshuffle(rng);
            let mut total = 0.0f64;
            for window in plan.windows(config.batch_accumulation) {
                // Augmentation: jitter the frozen compressed vectors so the
                // detector cannot memorise exact embeddings of the (small)
                // training fleet. Noise is drawn serially, in item order,
                // *before* the parallel window so the rng stream — and thus
                // the whole training trajectory — is identical to the serial
                // per-sample loop for every `num_threads`.
                let prepared: Vec<(Vec<Vec<Matrix>>, &Matrix)> = window
                    .iter()
                    .map(|&i| {
                        let (group, label) = &items[i];
                        let noisy: Vec<Vec<Matrix>> = if config.cvec_noise_std > 0.0 {
                            group
                                .iter()
                                .map(|sub| {
                                    sub.iter()
                                        .map(|m| {
                                            let mut jittered = m.clone();
                                            for v in jittered.data_mut() {
                                                *v += gauss(rng) * config.cvec_noise_std;
                                            }
                                            jittered
                                        })
                                        .collect()
                                })
                                .collect()
                        } else {
                            group.clone()
                        };
                        (noisy, label)
                    })
                    .collect();
                let losses = trainer.submit_window(
                    &mut self.params,
                    config.num_threads,
                    &prepared,
                    |_, (group, label), ps| {
                        let refs: Vec<Vec<&Matrix>> =
                            group.iter().map(|sub| sub.iter().collect()).collect();
                        let mut g = Graph::new(ps);
                        let p = forward_graph_parts(stack, out, &mut g, &refs);
                        let loss = g.kld_loss(p, label);
                        (g.scalar(loss), g.backward(loss))
                    },
                );
                for l in losses {
                    total += l as f64;
                }
            }
            trainer.flush(&mut self.params);
            let train_mean = lead_nn::num::narrow_f64(total / items.len() as f64);
            train_curve.push(train_mean);
            if let Some((_, kld_name, _)) = names.as_ref() {
                probe.observe(kld_name, f64::from(train_mean));
            }
            if let Some(v) = val_items {
                if !v.is_empty() {
                    let val_mean = self.evaluate_par(v, config.num_threads);
                    val_curve.push(val_mean);
                    if let Some((_, _, val_name)) = names.as_ref() {
                        probe.observe(val_name, f64::from(val_mean));
                    }
                }
            }
            if stopper.observe(train_mean) {
                break;
            }
        }
        (train_curve, val_curve)
    }

    /// Mean KLD over `items` without training.
    pub fn evaluate(&self, items: &[GroupItem]) -> f32 {
        self.evaluate_par(items, 1)
    }

    /// [`Self::evaluate`] on `num_threads` workers (0 = all cores). The sum
    /// over items runs in item order, so the result is bit-identical for
    /// every thread count.
    pub fn evaluate_par(&self, items: &[GroupItem], num_threads: usize) -> f32 {
        assert!(!items.is_empty(), "evaluation needs samples");
        let per_item = lead_nn::par::par_map(num_threads, items, |_, (group, label)| {
            let refs: Vec<Vec<&Matrix>> = group.iter().map(|sub| sub.iter().collect()).collect();
            let mut g = Graph::new(&self.params);
            let p = self.forward_graph(&mut g, &refs);
            let loss = g.kld_loss(p, label);
            g.scalar(loss)
        });
        let total: f64 = per_item.iter().map(|&l| l as f64).sum();
        lead_nn::num::narrow_f64(total / items.len() as f64)
    }
}

/// [`GroupDetector::forward_graph`] over the detector's layers as a free
/// function, so the parallel training windows can share the layer handles
/// while the trainer holds the mutable `ParamSet`.
fn forward_graph_parts(
    stack: &StackedBiLstm,
    out: &Linear,
    g: &mut Graph,
    subgroups: &[Vec<&Matrix>],
) -> Var {
    assert!(!subgroups.is_empty(), "empty group");
    let mut logits = Vec::with_capacity(subgroups.len());
    for sub in subgroups {
        assert!(!sub.is_empty(), "empty subgroup");
        let xs: Vec<Var> = sub.iter().map(|m| g.constant((*m).clone())).collect();
        let hs = stack.forward(g, &xs);
        let sub_logits: Vec<Var> = hs.iter().map(|&h| out.forward(g, h)).collect();
        logits.push(g.concat_cols(&sub_logits));
    }
    let row = g.concat_cols(&logits);
    g.softmax_rows(row)
}

/// Standard normal sample (Box–Muller) for the c-vec augmentation.
fn gauss<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::{build_groups, forward_flat_order, smoothed_label};
    use crate::processing::Candidate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> LeadConfig {
        LeadConfig::fast_test()
    }

    /// c-vecs keyed by candidate; deterministic pseudo-random contents with a
    /// strong signature on the "true" candidate.
    fn cvecs_for(n: usize, dim: usize, truth: Candidate) -> Vec<Vec<Matrix>> {
        let groups = build_groups(n);
        groups
            .forward
            .iter()
            .map(|sub| {
                sub.iter()
                    .map(|c| {
                        Matrix::from_fn(1, dim, |_, k| {
                            let base =
                                ((c.start_sp * 31 + c.end_sp * 17 + k) as f32 * 0.7).sin() * 0.3;
                            if *c == truth && k < 4 {
                                base + 0.9
                            } else {
                                base
                            }
                        })
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_graph_emits_a_distribution_over_all_candidates() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(11);
        let det = GroupDetector::new(&c, 8, &mut rng);
        let groups = cvecs_for(5, 8, Candidate::new(0, 2));
        let refs: Vec<Vec<&Matrix>> = groups.iter().map(|s| s.iter().collect()).collect();
        let p = det.probabilities(&refs);
        assert_eq!(p.len(), 10);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "distribution sum {s}");
        assert!(p.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn singleton_subgroup_is_not_pinned_to_one() {
        // The global softmax must not give the lone member of the last
        // forward subgroup probability 1.0 (the per-subgroup degeneracy).
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(12);
        let det = GroupDetector::new(&c, 8, &mut rng);
        let groups = cvecs_for(4, 8, Candidate::new(0, 1));
        let refs: Vec<Vec<&Matrix>> = groups.iter().map(|s| s.iter().collect()).collect();
        let p = det.probabilities(&refs);
        // Last entry corresponds to the singleton subgroup g_{n−1}.
        assert!(*p.last().unwrap() < 0.99);
    }

    #[test]
    fn training_reduces_kld_and_finds_truth() {
        let mut c = cfg();
        c.detector_max_epochs = 30;
        c.learning_rate = 3e-3;
        c.batch_accumulation = 4;
        let mut rng = StdRng::seed_from_u64(13);
        let dim = 8;
        let n = 4;
        let truth = Candidate::new(1, 3);
        let mut det = GroupDetector::new(&c, dim, &mut rng);
        // Several samples with the same signature pattern.
        let items: Vec<(Vec<Vec<Matrix>>, Matrix)> = (0..6)
            .map(|_| {
                let groups = cvecs_for(n, dim, truth);
                let label = smoothed_label(&forward_flat_order(n), truth, c.label_epsilon);
                (groups, label)
            })
            .collect();
        let curve = det.train(&items, &c, &mut rng);
        assert!(curve.last().unwrap() < &curve[0], "curve {curve:?}");

        let refs: Vec<Vec<&Matrix>> = items[0].0.iter().map(|s| s.iter().collect()).collect();
        let p = det.probabilities(&refs);
        let order = forward_flat_order(n);
        let best = order[p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0];
        assert_eq!(best, truth, "probs {p:?}");
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_rejected() {
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(17);
        let det = GroupDetector::new(&c, 4, &mut rng);
        let _ = det.probabilities(&[]);
    }
}
