//! The `LEAD-NoGro` ablation detector (Section VI-A, Variants): the group
//! generation (and with it the BiLSTM detectors) is removed; each candidate's
//! compressed vector is scored *independently* by four fully connected layers
//! (64 → 32 → 32 → 1) with a sigmoid on the last — so no inclusion,
//! exclusion, or analogy relationship can inform the score.

use crate::config::LeadConfig;
use lead_nn::layers::Linear;
use lead_nn::optim::Adam;
use lead_nn::train::{AccumTrainer, EarlyStopping, EpochPlan};
use lead_nn::{Graph, Matrix, ParamSet, Var};
use rand::Rng;

/// The per-candidate MLP scorer.
pub struct MlpDetector {
    params: ParamSet,
    l1: Linear,
    l2: Linear,
    l3: Linear,
    l4: Linear,
}

impl MlpDetector {
    /// Builds the paper's 64/32/32/1 architecture over `c_vec_dim` inputs.
    pub fn new<R: Rng>(c_vec_dim: usize, rng: &mut R) -> Self {
        let mut ps = ParamSet::new();
        let l1 = Linear::new(&mut ps, rng, "mlp.l1", c_vec_dim, 64);
        let l2 = Linear::new(&mut ps, rng, "mlp.l2", 64, 32);
        let l3 = Linear::new(&mut ps, rng, "mlp.l3", 32, 32);
        let l4 = Linear::new(&mut ps, rng, "mlp.l4", 32, 1);
        Self {
            params: ps,
            l1,
            l2,
            l3,
            l4,
        }
    }

    /// The trainable parameters (persistence).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the trainable parameters (persistence).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Records the logit of one c-vec (sigmoid is folded into the loss /
    /// applied at inference).
    fn logit(&self, g: &mut Graph, c_vec: &Matrix) -> Var {
        let x = g.constant(c_vec.clone());
        let a = self.l1.forward(g, x);
        let a = g.relu(a);
        let b = self.l2.forward(g, a);
        let b = g.relu(b);
        let c = self.l3.forward(g, b);
        let c = g.relu(c);
        self.l4.forward(g, c)
    }

    /// The sigmoid probability of a single candidate.
    pub fn probability(&self, c_vec: &Matrix) -> f32 {
        let mut g = Graph::new(&self.params);
        let z = self.logit(&mut g, c_vec);
        let p = g.sigmoid(z);
        g.value(p).at(0, 0)
    }

    /// Probabilities of a whole candidate list (still independent scores).
    pub fn probabilities(&self, c_vecs: &[Matrix]) -> Vec<f32> {
        c_vecs.iter().map(|c| self.probability(c)).collect()
    }

    /// Trains with per-candidate binary cross-entropy: the loaded candidate
    /// of each trajectory is the positive, all others negatives.
    ///
    /// `items` pairs each trajectory's candidate c-vecs with the index of the
    /// loaded one. Returns the per-epoch mean BCE curve.
    pub fn train<R: Rng>(
        &mut self,
        items: &[(Vec<Matrix>, usize)],
        config: &LeadConfig,
        rng: &mut R,
    ) -> Vec<f32> {
        self.train_with_validation(items, None, config, rng).0
    }

    /// Like [`Self::train`], but additionally records the per-epoch
    /// validation BCE when `val_items` is given (reporting only; early
    /// stopping observes the training loss). Returns
    /// `(train_curve, val_curve)`.
    pub fn train_with_validation<R: Rng>(
        &mut self,
        items: &[(Vec<Matrix>, usize)],
        val_items: Option<&[(Vec<Matrix>, usize)]>,
        config: &LeadConfig,
        rng: &mut R,
    ) -> (Vec<f32>, Vec<f32>) {
        self.train_probed(items, val_items, config, rng, &lead_obs::probe::NOOP)
    }

    /// [`Self::train_with_validation`] with an observability probe: records a
    /// `det.mlp.epoch` span plus `det.mlp.epoch_bce` / `det.mlp.epoch_val_bce`
    /// observations and the trainer's `det.mlp.grad_norm` /
    /// `det.mlp.optim_steps`. Metrics are write-only — the trained weights
    /// are identical for any probe.
    pub fn train_probed<R: Rng>(
        &mut self,
        items: &[(Vec<Matrix>, usize)],
        val_items: Option<&[(Vec<Matrix>, usize)]>,
        config: &LeadConfig,
        rng: &mut R,
        probe: &dyn lead_obs::probe::Probe,
    ) -> (Vec<f32>, Vec<f32>) {
        assert!(!items.is_empty(), "MLP training needs samples");
        let mut trainer = AccumTrainer::new(
            Adam::new(&self.params, config.learning_rate),
            config.batch_accumulation,
        )
        .with_clip_norm(config.grad_clip_norm)
        .with_probe(probe, "det.mlp");
        let mut stopper = EarlyStopping::new(config.early_stopping_patience, 1e-4);
        let mut plan = EpochPlan::new(items.len());
        let mut train_curve = Vec::new();
        let mut val_curve = Vec::new();
        for _epoch in 0..config.detector_max_epochs {
            let _epoch_span = lead_obs::clock::span(probe, "det.mlp.epoch");
            plan.reshuffle(rng);
            let mut total = 0.0f64;
            for &i in plan.order() {
                let (c_vecs, truth_idx) = &items[i];
                let mut g = Graph::new(&self.params);
                let logits: Vec<Var> = c_vecs.iter().map(|c| self.logit(&mut g, c)).collect();
                let row = g.concat_cols(&logits);
                let mut y = vec![0.0f32; c_vecs.len()];
                y[*truth_idx] = 1.0;
                let loss = g.bce_with_logits_loss(row, &Matrix::row_vector(y));
                total += g.scalar(loss) as f64;
                let grads = g.backward(loss);
                trainer.submit(&mut self.params, grads);
            }
            trainer.flush(&mut self.params);
            let train_mean = lead_nn::num::narrow_f64(total / items.len() as f64);
            train_curve.push(train_mean);
            if probe.enabled() {
                probe.observe("det.mlp.epoch_bce", f64::from(train_mean));
            }
            if let Some(v) = val_items {
                if !v.is_empty() {
                    let val_mean = self.evaluate(v);
                    val_curve.push(val_mean);
                    if probe.enabled() {
                        probe.observe("det.mlp.epoch_val_bce", f64::from(val_mean));
                    }
                }
            }
            if stopper.observe(train_mean) {
                break;
            }
        }
        (train_curve, val_curve)
    }

    /// Mean BCE over `items` without training.
    pub fn evaluate(&self, items: &[(Vec<Matrix>, usize)]) -> f32 {
        assert!(!items.is_empty(), "evaluation needs samples");
        let mut total = 0.0f64;
        for (c_vecs, truth_idx) in items {
            let mut g = Graph::new(&self.params);
            let logits: Vec<Var> = c_vecs.iter().map(|c| self.logit(&mut g, c)).collect();
            let row = g.concat_cols(&logits);
            let mut y = vec![0.0f32; c_vecs.len()];
            y[*truth_idx] = 1.0;
            let loss = g.bce_with_logits_loss(row, &Matrix::row_vector(y));
            total += g.scalar(loss) as f64;
        }
        lead_nn::num::narrow_f64(total / items.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cvec(signature: f32, dim: usize, salt: usize) -> Matrix {
        Matrix::from_fn(1, dim, |_, k| {
            ((salt * 13 + k) as f32 * 0.3).sin() * 0.2 + if k < 3 { signature } else { 0.0 }
        })
    }

    #[test]
    fn probability_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let det = MlpDetector::new(8, &mut rng);
        let p = det.probability(&cvec(0.5, 8, 1));
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn training_separates_positive_candidates() {
        let mut cfg = LeadConfig::fast_test();
        cfg.detector_max_epochs = 40;
        cfg.learning_rate = 5e-3;
        cfg.batch_accumulation = 4;
        let mut rng = StdRng::seed_from_u64(2);
        let dim = 8;
        let mut det = MlpDetector::new(dim, &mut rng);
        // Positives carry +0.8 on the first dims; negatives −0.2.
        let items: Vec<(Vec<Matrix>, usize)> = (0..10)
            .map(|s| {
                let mut cv: Vec<Matrix> = (0..5).map(|k| cvec(-0.2, dim, s * 7 + k)).collect();
                cv[2] = cvec(0.8, dim, s * 7 + 99);
                (cv, 2usize)
            })
            .collect();
        let curve = det.train(&items, &cfg, &mut rng);
        assert!(curve.last().unwrap() < &curve[0]);
        let p_pos = det.probability(&cvec(0.8, dim, 1234));
        let p_neg = det.probability(&cvec(-0.2, dim, 4321));
        assert!(p_pos > p_neg, "pos {p_pos} vs neg {p_neg}");
    }
}
