//! Label processing (Section V-C): ε-smoothed one-hot distributions over the
//! candidates, so the KL-divergence losses of Equations (11)–(12) never see a
//! zero probability.

use crate::processing::Candidate;
use lead_nn::Matrix;

/// Builds the smoothed label distribution over `flat_order` for the ground
/// truth candidate `truth`: every probability is `ε` except the truth's,
/// which is `1 − k·ε` with `k` the number of ε-entries.
///
/// # Panics
/// Panics if `truth` is not in `flat_order`.
pub fn smoothed_label(flat_order: &[Candidate], truth: Candidate, epsilon: f32) -> Matrix {
    assert!(epsilon > 0.0, "ε must be positive");
    let m = flat_order.len();
    let pos = flat_order
        .iter()
        .position(|&c| c == truth)
        // lint: allow(panic, panic-path): training-contract violation (documented # Panics) — labels are built from the same flattening
        .expect("ground-truth candidate must be in the flattening");
    let k = lead_nn::num::exact_usize_f32(m - 1);
    let mut data = vec![epsilon; m];
    data[pos] = 1.0 - k * epsilon;
    assert!(data[pos] > 0.0, "ε too large for {m} candidates");
    Matrix::row_vector(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detection::{backward_flat_order, forward_flat_order};

    #[test]
    fn label_is_a_distribution() {
        let order = forward_flat_order(6);
        let label = smoothed_label(&order, Candidate::new(1, 3), 1e-5);
        let sum: f32 = label.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(label.data().iter().all(|&p| p > 0.0));
    }

    #[test]
    fn truth_position_holds_the_mass() {
        let order = forward_flat_order(5);
        let truth = Candidate::new(0, 4);
        let label = smoothed_label(&order, truth, 1e-5);
        let pos = order.iter().position(|&c| c == truth).unwrap();
        let (argmax_r, argmax_c) = label.argmax().unwrap();
        assert_eq!((argmax_r, argmax_c), (0, pos));
        assert!((label.at(0, pos) - (1.0 - 9.0 * 1e-5)).abs() < 1e-7);
    }

    #[test]
    fn backward_order_places_truth_differently() {
        let truth = Candidate::new(0, 2);
        let f = smoothed_label(&forward_flat_order(4), truth, 1e-5);
        let b = smoothed_label(&backward_flat_order(4), truth, 1e-5);
        assert_ne!(f.argmax(), b.argmax());
    }

    #[test]
    fn works_with_a_single_candidate() {
        let order = forward_flat_order(2);
        let label = smoothed_label(&order, Candidate::new(0, 1), 1e-5);
        assert_eq!(label.len(), 1);
        assert_eq!(label.at(0, 0), 1.0); // k = 0, no smoothing needed
    }

    #[test]
    #[should_panic(expected = "must be in the flattening")]
    fn unknown_truth_rejected() {
        let order = forward_flat_order(3);
        let _ = smoothed_label(&order, Candidate::new(0, 5), 1e-5);
    }
}
