//! Ground-truth labels: the archived loaded trajectory of a raw trajectory,
//! and its projection onto extracted stay points.

use crate::processing::ProcessedTrajectory;

/// Ground truth for one raw trajectory: when the truck actually loaded and
/// unloaded, in the trajectory's time base (seconds).
///
/// This is the machine form of the paper's "archived loaded trajectory": the
/// loaded trajectory spans from the start of the loading stay to the end of
/// the unloading stay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthLabel {
    /// Arrival at the loading site.
    pub load_start_s: i64,
    /// Departure from the loading site.
    pub load_end_s: i64,
    /// Arrival at the unloading site.
    pub unload_start_s: i64,
    /// Departure from the unloading site.
    pub unload_end_s: i64,
}

impl TruthLabel {
    /// Validates interval ordering.
    ///
    /// # Panics
    /// Panics unless `load_start < load_end < unload_start < unload_end`.
    pub fn validate(&self) {
        assert!(
            self.load_start_s < self.load_end_s
                && self.load_end_s < self.unload_start_s
                && self.unload_start_s < self.unload_end_s,
            "truth intervals out of order: {self:?}"
        );
    }
}

/// Maps a [`TruthLabel`] onto the extracted stay points of a processed
/// trajectory: the loading stay point is the one whose time span overlaps the
/// loading interval the most (likewise for unloading).
///
/// Returns `None` when either interval overlaps no stay point, or both map to
/// the same stay point — in which case the sample has no well-defined loaded
/// candidate and is excluded from training/evaluation (mirroring the paper's
/// reliance on employee-verified labels).
pub fn truth_stay_indices(
    proc: &ProcessedTrajectory,
    truth: &TruthLabel,
) -> Option<(usize, usize)> {
    let load = best_overlap(proc, truth.load_start_s, truth.load_end_s)?;
    let unload = best_overlap(proc, truth.unload_start_s, truth.unload_end_s)?;
    if load < unload {
        Some((load, unload))
    } else {
        None
    }
}

/// Index of the stay point with maximal positive time overlap with `[a, b]`.
fn best_overlap(proc: &ProcessedTrajectory, a: i64, b: i64) -> Option<usize> {
    let pts = proc.cleaned.points();
    let mut best: Option<(usize, i64)> = None;
    for (idx, sp) in proc.stay_points.iter().enumerate() {
        let s = pts[sp.start].t;
        let e = pts[sp.end].t;
        let overlap = e.min(b) - s.max(a);
        if overlap > 0 {
            match best {
                Some((_, bo)) if bo >= overlap => {}
                _ => best = Some((idx, overlap)),
            }
        }
    }
    best.map(|(idx, _)| idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LeadConfig;
    use lead_geo::{GpsPoint, Trajectory};

    /// Three dwells at minutes [0,18], [30,48], [60,78], 5 km apart.
    fn three_stay_processed() -> ProcessedTrajectory {
        let mut pts = Vec::new();
        for block in 0..3 {
            let x0 = block as f64 * 0.05;
            let t0 = block as i64 * 1800;
            for k in 0..10 {
                pts.push(GpsPoint::new(32.0, 120.9 + x0, t0 + k * 120));
            }
            // Two transit samples.
            pts.push(GpsPoint::new(32.0, 120.9 + x0 + 0.02, t0 + 1200));
            pts.push(GpsPoint::new(32.0, 120.9 + x0 + 0.04, t0 + 1320));
        }
        ProcessedTrajectory::from_raw(&Trajectory::new(pts), &LeadConfig::paper())
    }

    #[test]
    fn maps_truth_to_the_overlapping_stays() {
        let proc = three_stay_processed();
        assert_eq!(proc.num_stay_points(), 3);
        let truth = TruthLabel {
            load_start_s: 0,
            load_end_s: 1_080,
            unload_start_s: 3_600,
            unload_end_s: 4_680,
        };
        truth.validate();
        assert_eq!(truth_stay_indices(&proc, &truth), Some((0, 2)));
    }

    #[test]
    fn partial_overlap_still_maps() {
        let proc = three_stay_processed();
        // Truth intervals clipped to the second half of each dwell.
        let truth = TruthLabel {
            load_start_s: 600,
            load_end_s: 1_080,
            unload_start_s: 2_300,
            unload_end_s: 2_800,
        };
        assert_eq!(truth_stay_indices(&proc, &truth), Some((0, 1)));
    }

    #[test]
    fn no_overlap_returns_none() {
        let proc = three_stay_processed();
        let truth = TruthLabel {
            load_start_s: 100_000,
            load_end_s: 101_000,
            unload_start_s: 102_000,
            unload_end_s: 103_000,
        };
        assert_eq!(truth_stay_indices(&proc, &truth), None);
    }

    #[test]
    fn same_stay_for_both_returns_none() {
        let proc = three_stay_processed();
        // Both intervals inside the first dwell.
        let truth = TruthLabel {
            load_start_s: 0,
            load_end_s: 500,
            unload_start_s: 600,
            unload_end_s: 1_000,
        };
        assert_eq!(truth_stay_indices(&proc, &truth), None);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn invalid_truth_rejected() {
        TruthLabel {
            load_start_s: 10,
            load_end_s: 5,
            unload_start_s: 20,
            unload_end_s: 30,
        }
        .validate();
    }
}
