//! The end-to-end LEAD framework: offline training ([`Lead::fit`]) and online
//! detection ([`Lead::detect`]), plus the ablation-variant switchboard
//! ([`LeadOptions`]).
//!
//! Both stages are fallible ([`crate::error::LeadError`]) and observable:
//! [`Lead::fit_opts`] and [`DetectOptions::probe`] accept a `lead_obs` probe
//! that receives per-stage spans, counters, and training curves. Metrics are
//! write-only — attaching a recording probe never changes a result bit
//! (pinned by `crates/core/tests/obs_parity.rs`).

use crate::config::{ConfigError, LeadConfig};
use crate::detection::{
    argmax_candidate, backward_flat_order, build_groups, forward_flat_order, merge_probabilities,
    smoothed_label, GroupDetector, MlpDetector,
};
use crate::encoding::{Autoencoder, EncoderKind};
use crate::error::LeadError;
use crate::features::{FeatureExtractor, Normalizer, TrajectoryFeatures};
use crate::label::{truth_stay_indices, TruthLabel};
use crate::poi::PoiDatabase;
use crate::processing::{Candidate, ProcessedTrajectory};
use crate::source::{SampleSource, SliceSamples};
use lead_nn::Matrix;
use lead_obs::clock;
use lead_obs::probe::{Probe, NOOP};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Which detector(s) score the candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorChoice {
    /// Forward + backward detectors, merged (full LEAD).
    Both,
    /// Forward detector only (`LEAD-NoBac`).
    ForwardOnly,
    /// Backward detector only (`LEAD-NoFor`).
    BackwardOnly,
    /// Per-candidate MLP, no grouping (`LEAD-NoGro`).
    Mlp,
}

/// The variant switchboard of Section VI-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeadOptions {
    /// `false` → `LEAD-NoPoi`: POI features replaced by zero padding.
    pub use_poi: bool,
    /// `false` → `LEAD-NoSel`: last hidden state instead of self-attention.
    pub use_attention: bool,
    /// `false` → `LEAD-NoHie`: one flat operator pair in the autoencoder.
    pub hierarchical: bool,
    /// Detector configuration.
    pub detector: DetectorChoice,
}

impl LeadOptions {
    /// Full LEAD.
    pub fn full() -> Self {
        Self {
            use_poi: true,
            use_attention: true,
            hierarchical: true,
            detector: DetectorChoice::Both,
        }
    }

    /// `LEAD-NoPoi`.
    pub fn no_poi() -> Self {
        Self {
            use_poi: false,
            ..Self::full()
        }
    }

    /// `LEAD-NoSel`.
    pub fn no_sel() -> Self {
        Self {
            use_attention: false,
            ..Self::full()
        }
    }

    /// `LEAD-NoHie`.
    pub fn no_hie() -> Self {
        Self {
            hierarchical: false,
            ..Self::full()
        }
    }

    /// `LEAD-NoGro`.
    pub fn no_gro() -> Self {
        Self {
            detector: DetectorChoice::Mlp,
            ..Self::full()
        }
    }

    /// `LEAD-NoFor`.
    pub fn no_for() -> Self {
        Self {
            detector: DetectorChoice::BackwardOnly,
            ..Self::full()
        }
    }

    /// `LEAD-NoBac`.
    pub fn no_bac() -> Self {
        Self {
            detector: DetectorChoice::ForwardOnly,
            ..Self::full()
        }
    }

    /// The paper's name for this variant.
    pub fn name(&self) -> &'static str {
        if !self.use_poi {
            "LEAD-NoPoi"
        } else if !self.use_attention {
            "LEAD-NoSel"
        } else if !self.hierarchical {
            "LEAD-NoHie"
        } else {
            match self.detector {
                DetectorChoice::Both => "LEAD",
                DetectorChoice::ForwardOnly => "LEAD-NoBac",
                DetectorChoice::BackwardOnly => "LEAD-NoFor",
                DetectorChoice::Mlp => "LEAD-NoGro",
            }
        }
    }
}

impl Default for LeadOptions {
    fn default() -> Self {
        Self::full()
    }
}

/// One labelled training trajectory.
#[derive(Debug, Clone)]
pub struct TrainSample {
    /// The raw GPS trajectory (one truck, one day).
    pub raw: lead_geo::Trajectory,
    /// The archived loaded trajectory's time intervals.
    pub truth: TruthLabel,
}

/// Loss curves and bookkeeping from the offline stage.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Per-epoch mean MSE of the (hierarchical) autoencoder — Figure 9.
    pub ae_curve: Vec<f32>,
    /// Per-epoch mean KLD of the forward detector — Figure 10.
    pub forward_kld_curve: Vec<f32>,
    /// Per-epoch mean KLD of the backward detector — Figure 10.
    pub backward_kld_curve: Vec<f32>,
    /// Per-epoch mean BCE of the `NoGro` MLP (empty otherwise).
    pub mlp_curve: Vec<f32>,
    /// Per-epoch validation MSE of the autoencoder (empty without a
    /// validation split).
    pub ae_val_curve: Vec<f32>,
    /// Per-epoch validation KLD of the forward detector.
    pub forward_val_kld_curve: Vec<f32>,
    /// Per-epoch validation KLD of the backward detector.
    pub backward_val_kld_curve: Vec<f32>,
    /// Trajectories used for detector training.
    pub used_samples: usize,
    /// Trajectories skipped (fewer than 2 stay points, or the ground truth
    /// did not map onto extracted stay points).
    pub skipped_samples: usize,
}

/// The result of detecting the loaded trajectory in one raw trajectory.
#[derive(Debug, Clone)]
pub struct DetectionResult {
    /// The processed trajectory all indexes refer to.
    pub processed: ProcessedTrajectory,
    /// Merged probabilities over candidates in the canonical (forward
    /// flattening) order.
    pub probabilities: Vec<f32>,
    /// The detected loaded trajectory `⟨sp_{i'} --→ sp_{j'}⟩`.
    pub detected: Candidate,
}

impl DetectionResult {
    /// The detected loaded trajectory's time span `(start_s, end_s)`.
    pub fn loaded_interval_s(&self) -> (i64, i64) {
        let pts = self.processed.cleaned.points();
        let sp_l = &self.processed.stay_points[self.detected.start_sp];
        let sp_u = &self.processed.stay_points[self.detected.end_sp];
        (pts[sp_l.start].t, pts[sp_u.end].t)
    }

    /// The detected loaded trajectory as a GPS point sequence.
    pub fn loaded_trajectory(&self) -> lead_geo::Trajectory {
        self.processed.candidate_trajectory(self.detected)
    }
}

/// A trained LEAD model.
///
/// ```no_run
/// use lead_core::config::LeadConfig;
/// use lead_core::error::LeadError;
/// use lead_core::pipeline::{Lead, LeadOptions, TrainSample};
/// use lead_core::poi::PoiDatabase;
///
/// # fn demo(train: Vec<TrainSample>, val: Vec<TrainSample>,
/// #         poi_db: PoiDatabase, raw: lead_geo::Trajectory) -> Result<(), LeadError> {
/// // Offline stage: learn from the historical archive.
/// let (model, report) =
///     Lead::fit_with_val(&train, &val, &poi_db, &LeadConfig::paper(), LeadOptions::full())?;
/// println!("autoencoder converged to MSE {:?}", report.ae_curve.last());
///
/// // Persist for the online service.
/// model.save("hct.lead")?;
///
/// // Online stage: detect the loaded trajectory of an unseen raw trajectory.
/// let model = Lead::load("hct.lead")?;
/// if let Some(result) = model.detect(&raw, &poi_db) {
///     let (start_s, end_s) = result.loaded_interval_s();
///     println!("loaded trajectory ⟨sp_{} --→ sp_{}⟩ spans {start_s}–{end_s}",
///              result.detected.start_sp, result.detected.end_sp);
/// }
/// # Ok(()) }
/// ```
pub struct Lead {
    config: LeadConfig,
    options: LeadOptions,
    normalizer: Normalizer,
    autoencoder: Autoencoder,
    forward_det: Option<GroupDetector>,
    backward_det: Option<GroupDetector>,
    mlp: Option<MlpDetector>,
}

impl Lead {
    /// Builds an untrained model with freshly initialised weights — the
    /// skeleton [`crate::persist`] fills when loading a saved model. Rejects
    /// invalid configurations (including ones read from a model file).
    pub(crate) fn new_untrained(
        config: &LeadConfig,
        options: LeadOptions,
        normalizer: Normalizer,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let kind = if options.hierarchical {
            EncoderKind::Hierarchical
        } else {
            EncoderKind::Flat
        };
        let autoencoder = Autoencoder::new(config, kind, options.use_attention, &mut rng);
        let c_dim = autoencoder.c_vec_dim();
        let (mut forward_det, mut backward_det, mut mlp) = (None, None, None);
        match options.detector {
            DetectorChoice::Both => {
                forward_det = Some(GroupDetector::new(config, c_dim, &mut rng));
                backward_det = Some(GroupDetector::new(config, c_dim, &mut rng));
            }
            DetectorChoice::ForwardOnly => {
                forward_det = Some(GroupDetector::new(config, c_dim, &mut rng));
            }
            DetectorChoice::BackwardOnly => {
                backward_det = Some(GroupDetector::new(config, c_dim, &mut rng));
            }
            DetectorChoice::Mlp => {
                mlp = Some(MlpDetector::new(c_dim, &mut rng));
            }
        }
        Ok(Lead {
            config: config.clone(),
            options,
            normalizer,
            autoencoder,
            forward_det,
            backward_det,
            mlp,
        })
    }

    pub(crate) fn normalizer_ref(&self) -> &Normalizer {
        &self.normalizer
    }

    pub(crate) fn autoencoder_ref(&self) -> &Autoencoder {
        &self.autoencoder
    }

    pub(crate) fn autoencoder_mut(&mut self) -> &mut Autoencoder {
        &mut self.autoencoder
    }

    pub(crate) fn forward_det_ref(&self) -> Option<&GroupDetector> {
        self.forward_det.as_ref()
    }

    pub(crate) fn forward_det_mut(&mut self) -> Option<&mut GroupDetector> {
        self.forward_det.as_mut()
    }

    pub(crate) fn backward_det_ref(&self) -> Option<&GroupDetector> {
        self.backward_det.as_ref()
    }

    pub(crate) fn backward_det_mut(&mut self) -> Option<&mut GroupDetector> {
        self.backward_det.as_mut()
    }

    pub(crate) fn mlp_ref(&self) -> Option<&MlpDetector> {
        self.mlp.as_ref()
    }

    pub(crate) fn mlp_mut(&mut self) -> Option<&mut MlpDetector> {
        self.mlp.as_mut()
    }

    /// The offline stage: trains the hierarchical autoencoder
    /// (self-supervised) and the detector(s) (supervised by archived loaded
    /// trajectories) on the training split. Early stopping observes the
    /// training loss; prefer [`Self::fit_with_val`] when a validation split
    /// is available (the paper's protocol).
    ///
    /// # Errors
    /// [`LeadError::Config`] on an invalid configuration;
    /// [`LeadError::NoTrainableSamples`] when no sample survives processing.
    pub fn fit(
        samples: &[TrainSample],
        poi_db: &PoiDatabase,
        config: &LeadConfig,
        options: LeadOptions,
    ) -> Result<(Self, TrainingReport), LeadError> {
        Self::fit_opts(samples, &[], poi_db, config, options, &NOOP)
    }

    /// [`Self::fit`] with a validation split: early stopping observes the
    /// validation losses and the best-validation-epoch weights are restored
    /// after each training stage (the paper's Early Stopping protocol).
    ///
    /// # Errors
    /// [`LeadError::Config`] on an invalid configuration;
    /// [`LeadError::NoTrainableSamples`] when no sample survives processing.
    pub fn fit_with_val(
        samples: &[TrainSample],
        val_samples: &[TrainSample],
        poi_db: &PoiDatabase,
        config: &LeadConfig,
        options: LeadOptions,
    ) -> Result<(Self, TrainingReport), LeadError> {
        Self::fit_opts(samples, val_samples, poi_db, config, options, &NOOP)
    }

    /// [`Self::fit_with_val`] with an observability probe. The probe
    /// receives stage spans (`fit`, `fit.features`, `fit.autoencoder`,
    /// `fit.encode`, `fit.detectors`), per-trajectory processing counters,
    /// per-epoch losses (`ae.epoch_mse`, `det.fwd.epoch_kld`, …), and
    /// gradient norms from the trainer. Metrics are write-only: the trained
    /// model and report are bit-identical for any probe.
    ///
    /// # Errors
    /// [`LeadError::Config`] on an invalid configuration;
    /// [`LeadError::NoTrainableSamples`] when no sample survives processing.
    pub fn fit_opts(
        samples: &[TrainSample],
        val_samples: &[TrainSample],
        poi_db: &PoiDatabase,
        config: &LeadConfig,
        options: LeadOptions,
        probe: &dyn Probe,
    ) -> Result<(Self, TrainingReport), LeadError> {
        let mut train = SliceSamples::new(samples);
        let mut val = SliceSamples::new(val_samples);
        Self::fit_core(
            &mut train,
            Some(&mut val),
            poi_db,
            config,
            options,
            probe,
            None,
        )
    }

    /// The offline stage over streaming [`SampleSource`]s: identical
    /// training to [`Self::fit_opts`], but raw samples are ingested one
    /// shard at a time, so peak raw-sample memory is bounded by the largest
    /// shard instead of the whole dataset. For the same seed and dataset the
    /// trained model, loss curves, and report are **bit-identical** to the
    /// in-RAM path at any shard size (pinned by
    /// `crates/core/tests/streaming_parity.rs`).
    ///
    /// When `val` is `None`, [`FitOptions::val_fraction`] can carve a
    /// validation split off the tail of the ingested training set (by raw
    /// sample count, before processing drops unusable samples).
    ///
    /// # Errors
    /// [`LeadError::Config`] on an invalid configuration or
    /// [`FitOptions::val_fraction`] outside `[0, 1)` (or combined with an
    /// explicit `val` source); [`LeadError::Source`] when a source fails to
    /// read or validate; [`LeadError::NoTrainableSamples`] when no sample
    /// survives processing.
    pub fn fit_streaming(
        train: &mut dyn SampleSource,
        val: Option<&mut dyn SampleSource>,
        poi_db: &PoiDatabase,
        config: &LeadConfig,
        options: LeadOptions,
        fit: &FitOptions<'_>,
    ) -> Result<(Self, TrainingReport), LeadError> {
        if let Some(f) = fit.val_fraction {
            if !(0.0..1.0).contains(&f) {
                return Err(LeadError::Config(ConfigError {
                    field: "val_fraction",
                    reason: "validation fraction must lie in [0, 1)",
                }));
            }
            if val.is_some() {
                return Err(LeadError::Config(ConfigError {
                    field: "val_fraction",
                    reason:
                        "cannot combine a validation fraction with an explicit validation source",
                }));
            }
        }
        let cfg_override;
        let config = if let Some(t) = fit.num_threads {
            let mut cfg = config.clone();
            cfg.num_threads = t;
            cfg_override = cfg;
            &cfg_override
        } else {
            config
        };
        Self::fit_core(
            train,
            val,
            poi_db,
            config,
            options,
            fit.probe,
            fit.val_fraction,
        )
    }

    /// The single fitting core every public `fit*` entry point delegates to.
    /// Generalises only ingestion: everything downstream of the processed
    /// sample vectors (normaliser, autoencoder, detectors, every RNG draw)
    /// is byte-for-byte the historical in-RAM path.
    fn fit_core(
        train: &mut dyn SampleSource,
        val: Option<&mut dyn SampleSource>,
        poi_db: &PoiDatabase,
        config: &LeadConfig,
        options: LeadOptions,
        probe: &dyn Probe,
        val_fraction: Option<f64>,
    ) -> Result<(Self, TrainingReport), LeadError> {
        config.validate()?;
        let _fit_span = clock::span(probe, "fit");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut report = TrainingReport::default();

        // ---- processing + truth projection -------------------------------
        // Ingestion is shard-at-a-time: only one shard's raw samples live in
        // RAM at once. `par_map` is order-preserving and per-item
        // independent, so concatenating per-shard results equals one
        // `par_map` over the whole dataset — every downstream stage (and
        // every RNG draw) is bit-identical to the in-RAM path.
        let process_source = |src: &mut dyn SampleSource| -> Result<
            Vec<Option<(ProcessedTrajectory, Candidate)>>,
            LeadError,
        > {
            let mut out = Vec::new();
            let mut batch: Vec<TrainSample> = Vec::new();
            for shard in 0..src.num_shards() {
                batch.clear();
                src.read_shard(shard, &mut |s| batch.push(s))?;
                out.extend(lead_nn::par::par_map(config.num_threads, &batch, |_, s| {
                    let proc = ProcessedTrajectory::from_raw_probed(&s.raw, config, probe);
                    match truth_stay_indices(&proc, &s.truth) {
                        Some((l, u)) if proc.num_stay_points() >= 2 => {
                            Some((proc, Candidate::new(l, u)))
                        }
                        _ => None,
                    }
                }));
            }
            Ok(out)
        };
        let mut maybe_train = process_source(train)?;
        let maybe_val = match val {
            Some(v) => process_source(v)?,
            None => {
                let n_val = val_fraction
                    .map(|f| ((maybe_train.len() as f64) * f).floor() as usize)
                    .unwrap_or(0);
                maybe_train.split_off(maybe_train.len() - n_val)
            }
        };
        let skipped = maybe_train
            .iter()
            .chain(&maybe_val)
            .filter(|o| o.is_none())
            .count();
        let processed: Vec<(ProcessedTrajectory, Candidate)> =
            maybe_train.into_iter().flatten().collect();
        let val_processed: Vec<(ProcessedTrajectory, Candidate)> =
            maybe_val.into_iter().flatten().collect();
        report.skipped_samples = skipped;
        if processed.is_empty() {
            return Err(LeadError::NoTrainableSamples { skipped });
        }
        report.used_samples = processed.len();
        if probe.enabled() {
            probe.count("fit.used_samples", processed.len() as u64);
            probe.count("fit.skipped_samples", skipped as u64);
        }

        // ---- feature normalisation ----------------------------------------
        let feature_span = clock::span(probe, "fit.features");
        let mut fx = FeatureExtractor::new(poi_db, config, options.use_poi);
        // Rows are extracted per trajectory in parallel and flattened in
        // trajectory order, so the fitted normaliser is thread-count
        // independent.
        let rows: Vec<Vec<f32>> = {
            let fx_ref = &fx;
            lead_nn::par::par_map(config.num_threads, &processed, |_, (proc, _)| {
                proc.cleaned
                    .points()
                    .iter()
                    .map(|p| fx_ref.raw_features(p))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        fx.set_normalizer(Normalizer::fit(&rows));
        drop(rows);

        // ---- per-trajectory features ---------------------------------------
        // Outer loop over trajectories is parallel; the inner extraction runs
        // serial (threads = 1) to avoid nested thread spawning.
        let fx_ref = &fx;
        let features: Vec<TrajectoryFeatures> =
            lead_nn::par::par_map(config.num_threads, &processed, |_, (proc, _)| {
                fx_ref.trajectory_features_probed(proc, 1, probe)
            });
        let val_features: Vec<TrajectoryFeatures> =
            lead_nn::par::par_map(config.num_threads, &val_processed, |_, (proc, _)| {
                fx_ref.trajectory_features_probed(proc, 1, probe)
            });
        drop(feature_span);

        // ---- autoencoder (self-supervised) ----------------------------------
        let ae_span = clock::span(probe, "fit.autoencoder");
        let kind = if options.hierarchical {
            EncoderKind::Hierarchical
        } else {
            EncoderKind::Flat
        };
        let mut autoencoder = Autoencoder::new(config, kind, options.use_attention, &mut rng);
        let sample_candidates = |set: &[(ProcessedTrajectory, Candidate)],
                                 tfs: &[TrajectoryFeatures],
                                 rng: &mut StdRng| {
            let mut out = Vec::new();
            for ((proc, _), tf) in set.iter().zip(tfs) {
                let mut cands = proc.candidates.clone();
                cands.shuffle(rng);
                for c in cands.into_iter().take(config.ae_samples_per_trajectory) {
                    out.push(tf.candidate(c));
                }
            }
            out
        };
        let ae_samples = sample_candidates(&processed, &features, &mut rng);
        let ae_val_samples = sample_candidates(&val_processed, &val_features, &mut rng);
        let val_opt = (!ae_val_samples.is_empty()).then_some(ae_val_samples.as_slice());
        let (ae_curve, ae_val_curve) =
            autoencoder.train_probed(&ae_samples, val_opt, config, &mut rng, probe);
        report.ae_curve = ae_curve;
        report.ae_val_curve = ae_val_curve;
        drop(ae_samples);
        drop(ae_val_samples);
        drop(ae_span);

        // ---- candidate encoding (compressor frozen) --------------------------
        // Parallel across trajectories; the per-trajectory encoding runs
        // serial (threads = 1) so threads are never nested.
        let encode_span = clock::span(probe, "fit.encode");
        let ae_ref = &autoencoder;
        let encoded: Vec<Vec<Matrix>> =
            lead_nn::par::par_map(config.num_threads, &features, |i, tf| {
                ae_ref.encode_all(tf, &processed[i].0.candidates, 1)
            });
        let val_encoded: Vec<Vec<Matrix>> =
            lead_nn::par::par_map(config.num_threads, &val_features, |i, tf| {
                ae_ref.encode_all(tf, &val_processed[i].0.candidates, 1)
            });
        drop(encode_span);

        // ---- detectors ---------------------------------------------------------
        let detector_span = clock::span(probe, "fit.detectors");
        let c_dim = autoencoder.c_vec_dim();
        let mut forward_det = None;
        let mut backward_det = None;
        let mut mlp = None;
        let detector_items = |set: &[(ProcessedTrajectory, Candidate)],
                              enc: &[Vec<Matrix>],
                              forward: bool|
         -> Vec<(Vec<Vec<Matrix>>, Matrix)> {
            lead_nn::par::par_map(config.num_threads, set, |idx, (proc, truth)| {
                let cvecs = &enc[idx];
                let n = proc.num_stay_points();
                let by_cand = candidate_index_map(n);
                let groups = build_groups(n);
                let side = if forward {
                    &groups.forward
                } else {
                    &groups.backward
                };
                let group: Vec<Vec<Matrix>> = side
                    .iter()
                    .map(|sub| sub.iter().map(|c| cvecs[by_cand(*c)].clone()).collect())
                    .collect();
                let order = if forward {
                    forward_flat_order(n)
                } else {
                    backward_flat_order(n)
                };
                let label = smoothed_label(&order, *truth, config.label_epsilon);
                (group, label)
            })
        };
        let train_group_detector = |forward: bool,
                                    rng: &mut StdRng|
         -> (GroupDetector, Vec<f32>, Vec<f32>) {
            let mut det = GroupDetector::new(config, c_dim, rng);
            let items = detector_items(&processed, &encoded, forward);
            let val_items = detector_items(&val_processed, &val_encoded, forward);
            let val_opt = (!val_items.is_empty()).then_some(val_items.as_slice());
            let scope = if forward { "det.fwd" } else { "det.bwd" };
            let (curve, val_curve) = det.train_probed(&items, val_opt, config, rng, probe, scope);
            (det, curve, val_curve)
        };

        match options.detector {
            DetectorChoice::Both => {
                let (d, c, v) = train_group_detector(true, &mut rng);
                forward_det = Some(d);
                report.forward_kld_curve = c;
                report.forward_val_kld_curve = v;
                let (d, c, v) = train_group_detector(false, &mut rng);
                backward_det = Some(d);
                report.backward_kld_curve = c;
                report.backward_val_kld_curve = v;
            }
            DetectorChoice::ForwardOnly => {
                let (d, c, v) = train_group_detector(true, &mut rng);
                forward_det = Some(d);
                report.forward_kld_curve = c;
                report.forward_val_kld_curve = v;
            }
            DetectorChoice::BackwardOnly => {
                let (d, c, v) = train_group_detector(false, &mut rng);
                backward_det = Some(d);
                report.backward_kld_curve = c;
                report.backward_val_kld_curve = v;
            }
            DetectorChoice::Mlp => {
                let mut det = MlpDetector::new(c_dim, &mut rng);
                let mlp_items = |set: &[(ProcessedTrajectory, Candidate)],
                                 enc: &[Vec<Matrix>]|
                 -> Vec<(Vec<Matrix>, usize)> {
                    set.iter()
                        .zip(enc)
                        .map(|((proc, truth), cvecs)| {
                            let n = proc.num_stay_points();
                            let idx = candidate_index_map(n)(*truth);
                            (cvecs.clone(), idx)
                        })
                        .collect()
                };
                let items = mlp_items(&processed, &encoded);
                let val_items = mlp_items(&val_processed, &val_encoded);
                let val_opt = (!val_items.is_empty()).then_some(val_items.as_slice());
                report.mlp_curve = det.train_probed(&items, val_opt, config, &mut rng, probe).0;
                mlp = Some(det);
            }
        }
        drop(detector_span);

        let lead = Lead {
            config: config.clone(),
            options,
            // lint: allow(panic, panic-path): construction invariant — fit() installs the normaliser before building Lead
            normalizer: fx.normalizer().expect("normaliser fitted above").clone(),
            autoencoder,
            forward_det,
            backward_det,
            mlp,
        };
        Ok((lead, report))
    }

    /// The configured variant.
    pub fn options(&self) -> LeadOptions {
        self.options
    }

    /// The framework configuration.
    pub fn config(&self) -> &LeadConfig {
        &self.config
    }

    /// The online stage: detects the loaded trajectory of an unseen raw
    /// trajectory. Returns `None` when fewer than two stay points are
    /// extracted (no candidate exists). Thin convenience for
    /// [`Self::detect_opts`] with [`DetectOptions::default`].
    pub fn detect(
        &self,
        raw: &lead_geo::Trajectory,
        poi_db: &PoiDatabase,
    ) -> Option<DetectionResult> {
        self.detect_opts(raw, poi_db, &DetectOptions::default())
    }

    /// Detects every raw trajectory of a batch, parallel across
    /// trajectories. Results keep the input order; a trajectory with fewer
    /// than two stay points yields `None`, exactly as [`Self::detect`].
    /// Thin convenience for [`Self::detect_batch_opts`].
    pub fn detect_batch(
        &self,
        raws: &[lead_geo::Trajectory],
        poi_db: &PoiDatabase,
    ) -> Vec<Option<DetectionResult>> {
        self.detect_batch_opts(raws, poi_db, &DetectOptions::default())
    }

    /// [`Self::detect`] with explicit [`DetectOptions`]: a worker-thread
    /// override and an observability probe receiving per-stage spans
    /// (`detect`, `processing`, `features`, `encode`, `detect.score`,
    /// `detect.merge`) and counters. Results are bit-identical for every
    /// thread count and probe.
    pub fn detect_opts(
        &self,
        raw: &lead_geo::Trajectory,
        poi_db: &PoiDatabase,
        opts: &DetectOptions<'_>,
    ) -> Option<DetectionResult> {
        let _span = clock::span(opts.probe, "detect");
        let proc = ProcessedTrajectory::from_raw_probed(raw, &self.config, opts.probe);
        self.detect_processed_opts(proc, poi_db, opts)
    }

    /// [`Self::detect_batch`] with explicit [`DetectOptions`]; additionally
    /// records batch counters (`batch.trajectories`, `batch.detected`) and a
    /// `batch.throughput_per_s` gauge when a recording probe is attached.
    pub fn detect_batch_opts(
        &self,
        raws: &[lead_geo::Trajectory],
        poi_db: &PoiDatabase,
        opts: &DetectOptions<'_>,
    ) -> Vec<Option<DetectionResult>> {
        let probe = opts.probe;
        let stopwatch = probe.enabled().then(clock::Stopwatch::start);
        let outer_threads = opts.num_threads.unwrap_or(self.config.num_threads);
        // Parallel across trajectories; each single detection runs serial
        // (threads = 1) so threads are never nested.
        let single = DetectOptions {
            num_threads: Some(1),
            probe,
        };
        let results = lead_nn::par::par_map(outer_threads, raws, |_, raw| {
            self.detect_opts(raw, poi_db, &single)
        });
        if let Some(sw) = stopwatch {
            probe.count("batch.trajectories", raws.len() as u64);
            probe.count("batch.detected", results.iter().flatten().count() as u64);
            let secs = sw.elapsed().as_secs_f64();
            if secs > 0.0 {
                probe.gauge("batch.throughput_per_s", raws.len() as f64 / secs);
            }
        }
        results
    }

    /// Scores an already-processed trajectory (used by [`Self::detect_opts`]
    /// and by [`crate::streaming::StreamingDetector`], which maintains its
    /// own incremental processing state).
    pub fn detect_processed_opts(
        &self,
        proc: ProcessedTrajectory,
        poi_db: &PoiDatabase,
        opts: &DetectOptions<'_>,
    ) -> Option<DetectionResult> {
        let probe = opts.probe;
        let num_threads = opts.num_threads.unwrap_or(self.config.num_threads);
        let n = proc.num_stay_points();
        if n < 2 {
            if probe.enabled() {
                probe.count("detect.no_candidates", 1);
            }
            return None;
        }
        if probe.enabled() {
            probe.count("detect.calls", 1);
            probe.observe("detect.stay_points", n as f64);
        }
        let mut fx = FeatureExtractor::new(poi_db, &self.config, self.options.use_poi);
        fx.set_normalizer(self.normalizer.clone());
        let tf = fx.trajectory_features_probed(&proc, num_threads, probe);
        let cvecs = {
            let _span = clock::span(probe, "encode");
            self.autoencoder
                .encode_all(&tf, &proc.candidates, num_threads)
        };
        let by_cand = candidate_index_map(n);

        let score_span = clock::span(probe, "detect.score");
        let probabilities = match self.options.detector {
            DetectorChoice::Mlp => {
                // lint: allow(panic, panic-path): construction invariant — fit() trains the detector selected by `options.detector`
                let det = self.mlp.as_ref().expect("MLP detector trained");
                det.probabilities(&cvecs)
            }
            choice => {
                let groups = build_groups(n);
                let run = |det: &GroupDetector, side: &[Vec<Candidate>]| -> Vec<f32> {
                    let refs: Vec<Vec<&Matrix>> = side
                        .iter()
                        .map(|sub| sub.iter().map(|c| &cvecs[by_cand(*c)]).collect())
                        .collect();
                    det.probabilities(&refs)
                };
                match choice {
                    DetectorChoice::Both => {
                        let f = run(
                            // lint: allow(panic, panic-path): construction invariant — fit() trains both detectors for Both
                            self.forward_det.as_ref().expect("forward detector trained"),
                            &groups.forward,
                        );
                        let b = run(
                            self.backward_det
                                .as_ref()
                                // lint: allow(panic, panic-path): construction invariant — fit() trains both detectors for Both
                                .expect("backward detector trained"),
                            &groups.backward,
                        );
                        let _merge_span = clock::span(probe, "detect.merge");
                        merge_probabilities(n, &f, &b)
                    }
                    DetectorChoice::ForwardOnly => run(
                        // lint: allow(panic, panic-path): construction invariant — fit() trains the forward detector for ForwardOnly
                        self.forward_det.as_ref().expect("forward detector trained"),
                        &groups.forward,
                    ),
                    DetectorChoice::BackwardOnly => {
                        // Backward probabilities come in backward flattening;
                        // re-order to canonical.
                        let b = run(
                            self.backward_det
                                .as_ref()
                                // lint: allow(panic, panic-path): construction invariant — fit() trains the backward detector for BackwardOnly
                                .expect("backward detector trained"),
                            &groups.backward,
                        );
                        reorder_backward_to_canonical(n, &b)
                    }
                    // lint: allow(panic, panic-path): Mlp is matched by the outer arm; this arm only completes the nested match
                    DetectorChoice::Mlp => unreachable!("handled above"),
                }
            }
        };
        drop(score_span);

        let detected = argmax_candidate(n, &probabilities)?;
        Some(DetectionResult {
            processed: proc,
            probabilities,
            detected,
        })
    }
}

/// Options for one detection call ([`Lead::detect_opts`],
/// [`Lead::detect_batch_opts`], [`Lead::detect_processed_opts`]).
///
/// The `Default` instance reproduces [`Lead::detect`] exactly: the model's
/// configured thread count and no instrumentation.
#[derive(Clone, Copy)]
pub struct DetectOptions<'p> {
    /// Worker threads for the candidate-parallel stages; `None` uses the
    /// model's `config.num_threads`. Callers that already parallelise across
    /// trajectories (an evaluation sweep, [`Lead::detect_batch_opts`])
    /// should pass `Some(1)` so thread pools are never nested. Every value
    /// yields bit-identical results (the `lead_nn::par` contract).
    pub num_threads: Option<usize>,
    /// Observability sink receiving per-stage spans and counters. Metric
    /// values never feed back into computation: detection results are
    /// bit-identical whether or not a recording probe is attached.
    pub probe: &'p dyn Probe,
}

impl Default for DetectOptions<'_> {
    fn default() -> Self {
        DetectOptions {
            num_threads: None,
            probe: &NOOP,
        }
    }
}

impl<'p> DetectOptions<'p> {
    /// Default options: model thread count, no probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the worker-thread count for this call.
    #[must_use]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Attaches an observability probe for this call.
    #[must_use]
    pub fn with_probe<'q>(self, probe: &'q dyn Probe) -> DetectOptions<'q> {
        DetectOptions {
            num_threads: self.num_threads,
            probe,
        }
    }
}

/// Options for one streaming fit ([`Lead::fit_streaming`]).
///
/// The `Default` instance reproduces [`Lead::fit_with_val`] exactly: the
/// configuration's thread count, no instrumentation, no carved validation
/// split.
#[derive(Clone, Copy)]
pub struct FitOptions<'p> {
    /// Worker threads for the sample-parallel stages; `None` uses
    /// `config.num_threads`. Every value yields bit-identical results (the
    /// `lead_nn::par` contract).
    pub num_threads: Option<usize>,
    /// Observability sink receiving the same spans, counters, and curves as
    /// [`Lead::fit_opts`]. Metrics are write-only: the trained model is
    /// bit-identical for any probe.
    pub probe: &'p dyn Probe,
    /// When no explicit validation source is given, carve this fraction
    /// (`[0, 1)`) off the tail of the ingested training set — by raw sample
    /// count, before processing drops unusable samples — and use it as the
    /// validation split. `None` (or `Some(0.0)`) trains without validation.
    pub val_fraction: Option<f64>,
}

impl Default for FitOptions<'_> {
    fn default() -> Self {
        FitOptions {
            num_threads: None,
            probe: &NOOP,
            val_fraction: None,
        }
    }
}

impl<'p> FitOptions<'p> {
    /// Default options: configured thread count, no probe, no carved split.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the worker-thread count for this fit.
    #[must_use]
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Attaches an observability probe for this fit.
    #[must_use]
    pub fn with_probe<'q>(self, probe: &'q dyn Probe) -> FitOptions<'q> {
        FitOptions {
            num_threads: self.num_threads,
            probe,
            val_fraction: self.val_fraction,
        }
    }

    /// Carves a validation split off the ingested training set.
    #[must_use]
    pub fn with_val_fraction(mut self, fraction: f64) -> Self {
        self.val_fraction = Some(fraction);
        self
    }
}

/// Maps a candidate to its position in the canonical (forward) flattening of
/// `n` stay points: `(i, j) → i·n − i(i+1)/2 + (j − i − 1)`.
fn candidate_index_map(n: usize) -> impl Fn(Candidate) -> usize {
    move |c: Candidate| {
        debug_assert!(c.end_sp < n);
        c.start_sp * n - c.start_sp * (c.start_sp + 1) / 2 + (c.end_sp - c.start_sp - 1)
    }
}

/// Re-orders a backward-flattened distribution into the canonical order.
fn reorder_backward_to_canonical(n: usize, bwd: &[f32]) -> Vec<f32> {
    let by_cand = candidate_index_map(n);
    let mut out = vec![0.0; bwd.len()];
    for (pos, c) in backward_flat_order(n).into_iter().enumerate() {
        out[by_cand(c)] = bwd[pos];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processing::enumerate_candidates;

    #[test]
    fn candidate_index_map_matches_enumeration() {
        for n in 2..12 {
            let f = candidate_index_map(n);
            for (i, c) in enumerate_candidates(n).into_iter().enumerate() {
                assert_eq!(f(c), i, "n={n} c={c:?}");
            }
        }
    }

    #[test]
    fn reorder_backward_roundtrips() {
        let n = 5;
        let m = n * (n - 1) / 2;
        // Distribution whose value encodes the candidate identity.
        let order = backward_flat_order(n);
        let bwd: Vec<f32> = order
            .iter()
            .map(|c| (c.start_sp * 10 + c.end_sp) as f32)
            .collect();
        let canonical = reorder_backward_to_canonical(n, &bwd);
        for (i, c) in enumerate_candidates(n).into_iter().enumerate() {
            assert_eq!(canonical[i], (c.start_sp * 10 + c.end_sp) as f32);
        }
        assert_eq!(canonical.len(), m);
    }

    #[test]
    fn options_names_match_paper() {
        assert_eq!(LeadOptions::full().name(), "LEAD");
        assert_eq!(LeadOptions::no_poi().name(), "LEAD-NoPoi");
        assert_eq!(LeadOptions::no_sel().name(), "LEAD-NoSel");
        assert_eq!(LeadOptions::no_hie().name(), "LEAD-NoHie");
        assert_eq!(LeadOptions::no_gro().name(), "LEAD-NoGro");
        assert_eq!(LeadOptions::no_for().name(), "LEAD-NoFor");
        assert_eq!(LeadOptions::no_bac().name(), "LEAD-NoBac");
    }
}
