//! Compression and decompression operators (Section IV-B).
//!
//! A **compression operator** is an LSTM whose hidden states are aggregated by
//! a self-attention mechanism (Equations (2)–(4)): the last hidden state
//! forms the query, every step a key, and the attention-weighted sum passes
//! through two fully connected layers with a final `tanh`. Without attention
//! (the `LEAD-NoSel` ablation) the last hidden state is used directly.
//!
//! A **decompression operator** is an LSTM fed the *same* input vector at
//! every step (Equation (5)); the stacked hidden states pass through two
//! fully connected layers with a final `tanh` (Equation (6)), recovering a
//! sequence of the requested length.

use lead_nn::layers::{Linear, Lstm, SelfAttention};
use lead_nn::{Graph, Matrix, ParamSet, Var};
use rand::Rng;

/// LSTM + (optional) self-attention + 2 FC + `tanh`: sequence → vector.
#[derive(Debug, Clone)]
pub struct CompressionOperator {
    lstm: Lstm,
    attention: Option<SelfAttention>,
    fc1: Linear,
    fc2: Linear,
}

impl CompressionOperator {
    /// Registers an operator compressing `in_dim`-wide sequences into
    /// `hidden`-wide vectors. `use_attention = false` reproduces
    /// `LEAD-NoSel`.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
        use_attention: bool,
    ) -> Self {
        Self {
            lstm: Lstm::new(ps, rng, &format!("{name}.lstm"), in_dim, hidden),
            attention: use_attention
                .then(|| SelfAttention::new(ps, rng, &format!("{name}.att"), hidden, hidden)),
            fc1: Linear::new(ps, rng, &format!("{name}.fc1"), hidden, hidden),
            fc2: Linear::new(ps, rng, &format!("{name}.fc2"), hidden, hidden),
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.lstm.hidden()
    }

    /// Whether the attention aggregation is enabled.
    pub fn has_attention(&self) -> bool {
        self.attention.is_some()
    }

    /// Compresses a sequence of 1×in_dim nodes into a 1×hidden vector.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn compress_vars(&self, g: &mut Graph, xs: &[Var]) -> Var {
        assert!(!xs.is_empty(), "compression of an empty sequence");
        let hs = self.lstm.forward(g, xs);
        let h = match &self.attention {
            Some(att) => att.aggregate(g, &hs),
            // lint: allow(panic, panic-path): xs non-empty is asserted at entry, and the LSTM preserves length
            None => *hs.last().expect("non-empty"),
        };
        let a = self.fc1.forward(g, h);
        let b = self.fc2.forward(g, a);
        g.tanh(b)
    }

    /// Compresses a (T × in_dim) feature matrix (recorded as a constant).
    pub fn compress_matrix(&self, g: &mut Graph, seq: &Matrix) -> Var {
        assert!(seq.rows() > 0, "compression of an empty sequence");
        let input = g.constant(seq.clone());
        let xs: Vec<Var> = (0..seq.rows()).map(|r| g.row(input, r)).collect();
        self.compress_vars(g, &xs)
    }
}

/// Input-repeating LSTM + 2 FC + `tanh`: vector → sequence.
#[derive(Debug, Clone)]
pub struct DecompressionOperator {
    lstm: Lstm,
    fc1: Linear,
    fc2: Linear,
}

impl DecompressionOperator {
    /// Registers an operator expanding `in_dim`-wide vectors into sequences
    /// of `out_dim`-wide rows through a `hidden`-unit LSTM.
    pub fn new<R: Rng>(
        ps: &mut ParamSet,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
    ) -> Self {
        Self {
            lstm: Lstm::new(ps, rng, &format!("{name}.lstm"), in_dim, hidden),
            fc1: Linear::new(ps, rng, &format!("{name}.fc1"), hidden, hidden),
            fc2: Linear::new(ps, rng, &format!("{name}.fc2"), hidden, out_dim),
        }
    }

    /// Output row width.
    pub fn out_dim(&self) -> usize {
        self.fc2.out_dim()
    }

    /// Decompresses `v` (1×in_dim) into a (steps × out_dim) node.
    ///
    /// # Panics
    /// Panics if `steps == 0`.
    pub fn decompress(&self, g: &mut Graph, v: Var, steps: usize) -> Var {
        let hs = self.lstm.forward_repeated(g, v, steps);
        let h_mat = g.concat_rows(&hs);
        let a = self.fc1.forward(g, h_mat);
        let b = self.fc2.forward(g, a);
        g.tanh(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn seq_matrix(t: usize, d: usize) -> Matrix {
        Matrix::from_fn(t, d, |r, c| ((r * d + c) as f32 * 0.17).sin() * 0.5)
    }

    #[test]
    fn compression_output_shape_and_range() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(101);
        let op = CompressionOperator::new(&mut ps, &mut rng, "c", 6, 4, true);
        let mut g = Graph::new(&ps);
        let v = op.compress_matrix(&mut g, &seq_matrix(9, 6));
        let m = g.value(v);
        assert_eq!(m.shape(), (1, 4));
        assert!(m.data().iter().all(|x| x.abs() <= 1.0)); // tanh range
        assert!(op.has_attention());
    }

    #[test]
    fn no_attention_variant_differs_from_attention() {
        let mut rng = StdRng::seed_from_u64(103);
        let mut ps = ParamSet::new();
        let with = CompressionOperator::new(&mut ps, &mut rng, "a", 4, 4, true);
        // Same LSTM/FC weights cannot be shared easily, so just check the two
        // modes run and produce tanh-bounded outputs of the same shape.
        let mut ps2 = ParamSet::new();
        let without = CompressionOperator::new(&mut ps2, &mut rng, "b", 4, 4, false);
        assert!(!without.has_attention());
        let mut g1 = Graph::new(&ps);
        let v1 = with.compress_matrix(&mut g1, &seq_matrix(5, 4));
        let mut g2 = Graph::new(&ps2);
        let v2 = without.compress_matrix(&mut g2, &seq_matrix(5, 4));
        assert_eq!(g1.value(v1).shape(), g2.value(v2).shape());
    }

    #[test]
    fn decompression_output_shape_and_range() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(107);
        let op = DecompressionOperator::new(&mut ps, &mut rng, "d", 4, 5, 7);
        let mut g = Graph::new(&ps);
        let v = g.constant(Matrix::full(1, 4, 0.3));
        let out = op.decompress(&mut g, v, 6);
        let m = g.value(out);
        assert_eq!(m.shape(), (6, 7));
        assert!(m.data().iter().all(|x| x.abs() <= 1.0));
        assert_eq!(op.out_dim(), 7);
    }

    #[test]
    fn roundtrip_is_trainable() {
        // One gradient step on compress→decompress must reduce the MSE:
        // verifies gradients flow through the whole operator pair.
        use lead_nn::optim::Adam;
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(109);
        let comp = CompressionOperator::new(&mut ps, &mut rng, "c", 3, 4, true);
        let dec = DecompressionOperator::new(&mut ps, &mut rng, "d", 4, 4, 3);
        let target = seq_matrix(5, 3);
        let loss_of = |ps: &ParamSet| {
            let mut g = Graph::new(ps);
            let v = comp.compress_matrix(&mut g, &target);
            let rec = dec.decompress(&mut g, v, 5);
            let loss = g.mse_loss(rec, &target);
            (g.scalar(loss), g.backward(loss))
        };
        let (l0, grads) = loss_of(&ps);
        let mut opt = Adam::new(&ps, 0.01);
        opt.step(&mut ps, &grads);
        for _ in 0..30 {
            let (_, grads) = loss_of(&ps);
            opt.step(&mut ps, &grads);
        }
        let (l1, _) = loss_of(&ps);
        assert!(l1 < l0 * 0.9, "loss did not drop: {l0} → {l1}");
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_compression_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(113);
        let op = CompressionOperator::new(&mut ps, &mut rng, "c", 3, 4, true);
        let mut g = Graph::new(&ps);
        let _ = op.compress_vars(&mut g, &[]);
    }
}
