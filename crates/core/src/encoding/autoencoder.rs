//! The hierarchical autoencoder (Section IV-B, Figure 5).
//!
//! **Compressor** (two phases): phase 1 compresses each `sp-f-seq` and
//! `mp-f-seq` with two dedicated operators; phase 2 compresses the resulting
//! `SP-c-vec-seq` and `MP-c-vec-seq` with two more operators; the `c-vec` is
//! the concatenation `[SP-c-vec | MP-c-vec]` (2 × 32 = 64 wide).
//!
//! **Decompressor** (symmetric): phase 1 expands each half of the `c-vec`
//! back into per-stay/per-move vectors; phase 2 expands each of those into a
//! feature sequence of the original length. Training minimises the MSE
//! between the input feature sequences and their reconstructions
//! (Equation (8)), self-supervised over the candidate trajectories of the
//! historical archive.
//!
//! The `LEAD-NoHie` ablation ([`EncoderKind::Flat`]) removes both the
//! stay/move separation and the hierarchy: a single operator pair processes
//! the interleaved flat feature sequence. Its hidden width is doubled so the
//! `c-vec` keeps the 64-dimensional budget — the comparison isolates the
//! *structure*, not capacity.

use crate::config::LeadConfig;
use crate::features::{CandidateFeatures, TrajectoryFeatures, FEATURE_DIM};
use crate::processing::Candidate;
use lead_nn::optim::Adam;
use lead_nn::train::{AccumTrainer, EarlyStopping, EpochPlan};
use lead_nn::{Graph, Matrix, ParamSet, Var};
use rand::Rng;

/// Which encoder architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncoderKind {
    /// The paper's hierarchical, stay/move-separated autoencoder.
    Hierarchical,
    /// The `LEAD-NoHie` ablation: one flat operator pair.
    Flat,
}

use super::operator::{CompressionOperator, DecompressionOperator};

// The flat variant is rare (one ablation) and the enum is instantiated once
// per model, so the size difference between variants is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Arch {
    Hierarchical {
        comp_sp1: CompressionOperator,
        comp_mp1: CompressionOperator,
        comp_sp2: CompressionOperator,
        comp_mp2: CompressionOperator,
        dec_sp1: DecompressionOperator,
        dec_mp1: DecompressionOperator,
        dec_sp2: DecompressionOperator,
        dec_mp2: DecompressionOperator,
    },
    Flat {
        comp: CompressionOperator,
        dec: DecompressionOperator,
    },
}

/// The candidate-trajectory autoencoder; after training, its compressor maps
/// any candidate to a `c-vec`.
pub struct Autoencoder {
    params: ParamSet,
    arch: Arch,
    hidden: usize,
}

/// [`Autoencoder::encode`] as a free function over the architecture, so the
/// parallel training windows can share `&Arch` while the trainer holds the
/// mutable `ParamSet`.
fn encode_arch(arch: &Arch, g: &mut Graph, input: &CandidateFeatures) -> Var {
    input.validate();
    match arch {
        Arch::Hierarchical {
            comp_sp1,
            comp_mp1,
            comp_sp2,
            comp_mp2,
            ..
        } => {
            let sp_vecs: Vec<Var> = input
                .sp_seqs
                .iter()
                .map(|m| comp_sp1.compress_matrix(g, m))
                .collect();
            let mp_vecs: Vec<Var> = input
                .mp_seqs
                .iter()
                .map(|m| comp_mp1.compress_matrix(g, m))
                .collect();
            let sp_c = comp_sp2.compress_vars(g, &sp_vecs);
            let mp_c = comp_mp2.compress_vars(g, &mp_vecs);
            g.concat_cols(&[sp_c, mp_c])
        }
        Arch::Flat { comp, .. } => comp.compress_matrix(g, &input.interleaved()),
    }
}

/// [`Autoencoder::reconstruction_loss`] as a free function (see
/// [`encode_arch`] for why).
fn reconstruction_loss_arch(
    arch: &Arch,
    hidden: usize,
    g: &mut Graph,
    input: &CandidateFeatures,
) -> Var {
    let c_vec = encode_arch(arch, g, input);
    match arch {
        Arch::Hierarchical {
            dec_sp1,
            dec_mp1,
            dec_sp2,
            dec_mp2,
            ..
        } => {
            let h = hidden;
            let v_sp = g.slice_cols(c_vec, 0, h);
            let v_mp = g.slice_cols(c_vec, h, 2 * h);
            // Phase 1: c-vec halves → per-stay / per-move vectors.
            let sp_cvec_seq = dec_sp1.decompress(g, v_sp, input.sp_seqs.len());
            let mp_cvec_seq = dec_mp1.decompress(g, v_mp, input.mp_seqs.len());
            // Phase 2: each vector → its feature sequence.
            let mut recs: Vec<Var> = Vec::with_capacity(input.sp_seqs.len() + input.mp_seqs.len());
            for (k, target) in input.sp_seqs.iter().enumerate() {
                let v = g.row(sp_cvec_seq, k);
                recs.push(dec_sp2.decompress(g, v, target.rows()));
            }
            for (k, target) in input.mp_seqs.iter().enumerate() {
                let v = g.row(mp_cvec_seq, k);
                recs.push(dec_mp2.decompress(g, v, target.rows()));
            }
            let rec_all = g.concat_rows(&recs);
            let target_refs: Vec<&Matrix> =
                input.sp_seqs.iter().chain(input.mp_seqs.iter()).collect();
            let target_all = Matrix::concat_rows(&target_refs);
            g.mse_loss(rec_all, &target_all)
        }
        Arch::Flat { dec, .. } => {
            let target = input.interleaved();
            let rec = dec.decompress(g, c_vec, target.rows());
            g.mse_loss(rec, &target)
        }
    }
}

impl Autoencoder {
    /// Builds an untrained autoencoder.
    ///
    /// `use_attention = false` reproduces `LEAD-NoSel`.
    pub fn new<R: Rng>(
        config: &LeadConfig,
        kind: EncoderKind,
        use_attention: bool,
        rng: &mut R,
    ) -> Self {
        let h = config.ae_hidden;
        let mut ps = ParamSet::new();
        let arch = match kind {
            EncoderKind::Hierarchical => Arch::Hierarchical {
                comp_sp1: CompressionOperator::new(
                    &mut ps,
                    rng,
                    "ae.comp_sp1",
                    FEATURE_DIM,
                    h,
                    use_attention,
                ),
                comp_mp1: CompressionOperator::new(
                    &mut ps,
                    rng,
                    "ae.comp_mp1",
                    FEATURE_DIM,
                    h,
                    use_attention,
                ),
                comp_sp2: CompressionOperator::new(
                    &mut ps,
                    rng,
                    "ae.comp_sp2",
                    h,
                    h,
                    use_attention,
                ),
                comp_mp2: CompressionOperator::new(
                    &mut ps,
                    rng,
                    "ae.comp_mp2",
                    h,
                    h,
                    use_attention,
                ),
                dec_sp1: DecompressionOperator::new(&mut ps, rng, "ae.dec_sp1", h, h, h),
                dec_mp1: DecompressionOperator::new(&mut ps, rng, "ae.dec_mp1", h, h, h),
                dec_sp2: DecompressionOperator::new(&mut ps, rng, "ae.dec_sp2", h, h, FEATURE_DIM),
                dec_mp2: DecompressionOperator::new(&mut ps, rng, "ae.dec_mp2", h, h, FEATURE_DIM),
            },
            EncoderKind::Flat => Arch::Flat {
                comp: CompressionOperator::new(
                    &mut ps,
                    rng,
                    "ae.comp",
                    FEATURE_DIM,
                    2 * h,
                    use_attention,
                ),
                dec: DecompressionOperator::new(&mut ps, rng, "ae.dec", 2 * h, 2 * h, FEATURE_DIM),
            },
        };
        Self {
            params: ps,
            arch,
            hidden: h,
        }
    }

    /// Width of the compressed vector (64 at paper settings, for both kinds).
    pub fn c_vec_dim(&self) -> usize {
        2 * self.hidden
    }

    /// The architecture kind.
    pub fn kind(&self) -> EncoderKind {
        match self.arch {
            Arch::Hierarchical { .. } => EncoderKind::Hierarchical,
            Arch::Flat { .. } => EncoderKind::Flat,
        }
    }

    /// Number of trainable scalars (diagnostics).
    pub fn num_weights(&self) -> usize {
        self.params.num_scalars()
    }

    /// The trainable parameters (persistence).
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the trainable parameters (persistence: load trained
    /// weights into a freshly constructed architecture).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    /// Records the compressor on `g`, returning the 1×c_vec node of `input`.
    pub fn encode(&self, g: &mut Graph, input: &CandidateFeatures) -> Var {
        encode_arch(&self.arch, g, input)
    }

    /// Records compressor + decompressor + MSE reconstruction loss on `g`.
    pub fn reconstruction_loss(&self, g: &mut Graph, input: &CandidateFeatures) -> Var {
        reconstruction_loss_arch(&self.arch, self.hidden, g, input)
    }

    /// Trains the autoencoder self-supervised on the given candidate feature
    /// sequences (pre-shuffled order is re-shuffled each epoch), returning
    /// the per-epoch mean MSE curve (Figure 9).
    pub fn train<R: Rng>(
        &mut self,
        samples: &[CandidateFeatures],
        config: &LeadConfig,
        rng: &mut R,
    ) -> Vec<f32> {
        self.train_with_validation(samples, None, config, rng).0
    }

    /// Like [`Self::train`], but additionally records the per-epoch
    /// validation MSE when `val_samples` is given (reporting only; early
    /// stopping observes the training loss). Returns
    /// `(train_curve, val_curve)`.
    pub fn train_with_validation<R: Rng>(
        &mut self,
        samples: &[CandidateFeatures],
        val_samples: Option<&[CandidateFeatures]>,
        config: &LeadConfig,
        rng: &mut R,
    ) -> (Vec<f32>, Vec<f32>) {
        self.train_probed(samples, val_samples, config, rng, &lead_obs::probe::NOOP)
    }

    /// [`Self::train_with_validation`] with an observability probe: records
    /// an `ae.epoch` span plus `ae.epoch_mse` / `ae.epoch_val_mse`
    /// observations and the trainer's `ae.grad_norm` / `ae.optim_steps`.
    /// Metrics are write-only — the trained weights are identical for any
    /// probe.
    pub fn train_probed<R: Rng>(
        &mut self,
        samples: &[CandidateFeatures],
        val_samples: Option<&[CandidateFeatures]>,
        config: &LeadConfig,
        rng: &mut R,
        probe: &dyn lead_obs::probe::Probe,
    ) -> (Vec<f32>, Vec<f32>) {
        assert!(!samples.is_empty(), "autoencoder training needs samples");
        let mut trainer = AccumTrainer::new(
            Adam::new(&self.params, config.learning_rate),
            config.batch_accumulation,
        )
        .with_clip_norm(config.grad_clip_norm)
        .with_probe(probe, "ae");
        let mut stopper = EarlyStopping::new(config.early_stopping_patience, 1e-4);
        let mut plan = EpochPlan::new(samples.len());
        let mut train_curve = Vec::new();
        let mut val_curve = Vec::new();
        let arch = &self.arch;
        let hidden = self.hidden;
        for _epoch in 0..config.ae_max_epochs {
            let _epoch_span = lead_obs::clock::span(probe, "ae.epoch");
            plan.reshuffle(rng);
            let mut total = 0.0f64;
            // Each accumulation window's forward/backward passes run
            // data-parallel against the parameter snapshot; gradients are
            // submitted in item order, so every `num_threads` value yields
            // the exact optimiser trajectory of the serial per-sample loop.
            for window in plan.windows(config.batch_accumulation) {
                let losses = trainer.submit_window(
                    &mut self.params,
                    config.num_threads,
                    window,
                    |_, &i, ps| {
                        let mut g = Graph::new(ps);
                        let loss = reconstruction_loss_arch(arch, hidden, &mut g, &samples[i]);
                        (g.scalar(loss), g.backward(loss))
                    },
                );
                for l in losses {
                    total += l as f64;
                }
            }
            trainer.flush(&mut self.params);
            let train_mean = lead_nn::num::narrow_f64(total / samples.len() as f64);
            train_curve.push(train_mean);
            if probe.enabled() {
                probe.observe("ae.epoch_mse", f64::from(train_mean));
            }
            if let Some(v) = val_samples {
                if !v.is_empty() {
                    let val_mean = self.evaluate_par(v, config.num_threads);
                    val_curve.push(val_mean);
                    if probe.enabled() {
                        probe.observe("ae.epoch_val_mse", f64::from(val_mean));
                    }
                }
            }
            if stopper.observe(train_mean) {
                break;
            }
        }
        (train_curve, val_curve)
    }

    /// Computes the loss of every sample without training (validation).
    pub fn evaluate(&self, samples: &[CandidateFeatures]) -> f32 {
        self.evaluate_par(samples, 1)
    }

    /// [`Self::evaluate`] on `num_threads` workers (0 = all cores). The sum
    /// over samples runs in item order, so the result is bit-identical for
    /// every thread count.
    pub fn evaluate_par(&self, samples: &[CandidateFeatures], num_threads: usize) -> f32 {
        assert!(!samples.is_empty(), "evaluation needs samples");
        let per_sample = lead_nn::par::par_map(num_threads, samples, |_, s| {
            let mut g = Graph::new(&self.params);
            let loss = self.reconstruction_loss(&mut g, s);
            g.scalar(loss)
        });
        let total: f64 = per_sample.iter().map(|&l| l as f64).sum();
        lead_nn::num::narrow_f64(total / samples.len() as f64)
    }

    /// Encodes a single candidate into its `c-vec` value (no gradients kept).
    pub fn encode_value(&self, input: &CandidateFeatures) -> Matrix {
        let mut g = Graph::new(&self.params);
        let v = self.encode(&mut g, input);
        g.value(v).clone()
    }

    /// Encodes every candidate of a trajectory, sharing the phase-1
    /// compression of each stay/move point across candidates.
    ///
    /// The hierarchy makes this exact: a candidate's `c-vec` depends on its
    /// stay/move points only through their phase-1 vectors, which are
    /// identical across candidates. The flat variant has no such structure
    /// and falls back to per-candidate encoding.
    ///
    /// Phase 1 runs once; the per-candidate phase-2 passes run on
    /// `num_threads` workers (0 = all cores). Results are returned in
    /// candidate order and are bit-identical for every thread count.
    pub fn encode_all(
        &self,
        tf: &TrajectoryFeatures,
        candidates: &[Candidate],
        num_threads: usize,
    ) -> Vec<Matrix> {
        match &self.arch {
            Arch::Hierarchical {
                comp_sp1,
                comp_mp1,
                comp_sp2,
                comp_mp2,
                ..
            } => {
                // Phase 1 once, keeping only the values: candidates need the
                // phase-1 vectors, not their tape nodes.
                let mut g = Graph::new(&self.params);
                let sp_vals: Vec<Matrix> = tf
                    .sp_seqs
                    .iter()
                    .map(|m| {
                        let v = comp_sp1.compress_matrix(&mut g, m);
                        g.value(v).clone()
                    })
                    .collect();
                let mp_vals: Vec<Matrix> = tf
                    .mp_seqs
                    .iter()
                    .map(|m| {
                        let v = comp_mp1.compress_matrix(&mut g, m);
                        g.value(v).clone()
                    })
                    .collect();
                drop(g);
                lead_nn::par::par_map(num_threads, candidates, |_, c| {
                    let mut g = Graph::new(&self.params);
                    let sp_vecs: Vec<Var> = sp_vals[c.start_sp..=c.end_sp]
                        .iter()
                        .map(|m| g.constant(m.clone()))
                        .collect();
                    let mp_vecs: Vec<Var> = mp_vals[c.start_sp..c.end_sp]
                        .iter()
                        .map(|m| g.constant(m.clone()))
                        .collect();
                    let sp_c = comp_sp2.compress_vars(&mut g, &sp_vecs);
                    let mp_c = comp_mp2.compress_vars(&mut g, &mp_vecs);
                    let v = g.concat_cols(&[sp_c, mp_c]);
                    g.value(v).clone()
                })
            }
            Arch::Flat { .. } => lead_nn::par::par_map(num_threads, candidates, |_, &c| {
                self.encode_value(&tf.candidate(c))
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_candidate(seed: u64, n_sp: usize) -> CandidateFeatures {
        let mut v = seed as f32 * 0.01;
        let mut next = || {
            v = (v * 1.7 + 0.31).sin() * 0.8;
            v
        };
        let sp_seqs = (0..n_sp)
            .map(|_| Matrix::from_fn(4, FEATURE_DIM, |_, _| next()))
            .collect();
        let mp_seqs = (0..n_sp - 1)
            .map(|_| Matrix::from_fn(3, FEATURE_DIM, |_, _| next()))
            .collect();
        CandidateFeatures { sp_seqs, mp_seqs }
    }

    fn small_cfg() -> LeadConfig {
        LeadConfig::fast_test()
    }

    #[test]
    fn encode_shapes_for_both_kinds() {
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [EncoderKind::Hierarchical, EncoderKind::Flat] {
            let ae = Autoencoder::new(&cfg, kind, true, &mut rng);
            assert_eq!(ae.kind(), kind);
            let c = ae.encode_value(&toy_candidate(3, 3));
            assert_eq!(c.shape(), (1, ae.c_vec_dim()));
            assert_eq!(ae.c_vec_dim(), 2 * cfg.ae_hidden);
            assert!(c.data().iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn reconstruction_loss_is_finite_and_positive() {
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(2);
        let ae = Autoencoder::new(&cfg, EncoderKind::Hierarchical, true, &mut rng);
        let mut g = Graph::new(&ae.params);
        let loss = ae.reconstruction_loss(&mut g, &toy_candidate(5, 4));
        let l = g.scalar(loss);
        assert!(l.is_finite() && l > 0.0);
    }

    #[test]
    fn training_reduces_reconstruction_loss() {
        let mut cfg = small_cfg();
        cfg.ae_max_epochs = 8;
        cfg.learning_rate = 3e-3;
        cfg.batch_accumulation = 4;
        let mut rng = StdRng::seed_from_u64(3);
        let mut ae = Autoencoder::new(&cfg, EncoderKind::Hierarchical, true, &mut rng);
        let samples: Vec<CandidateFeatures> = (0..8).map(|s| toy_candidate(s, 2)).collect();
        let curve = ae.train(&samples, &cfg, &mut rng);
        assert!(curve.len() >= 2);
        let first = curve[0];
        let last = *curve.last().unwrap();
        assert!(last < first, "loss should fall: {curve:?}");
    }

    #[test]
    fn encode_all_matches_per_candidate_encoding() {
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(4);
        let ae = Autoencoder::new(&cfg, EncoderKind::Hierarchical, true, &mut rng);
        let cf = toy_candidate(7, 4);
        let tf = TrajectoryFeatures {
            sp_seqs: cf.sp_seqs.clone(),
            mp_seqs: cf.mp_seqs.clone(),
        };
        let candidates = crate::processing::enumerate_candidates(4);
        let cached = ae.encode_all(&tf, &candidates, 1);
        for threads in [2, 4] {
            let par = ae.encode_all(&tf, &candidates, threads);
            for (a, b) in cached.iter().zip(par.iter()) {
                assert_eq!(a.data(), b.data(), "threads={threads}");
            }
        }
        for (c, cv) in candidates.iter().zip(cached.iter()) {
            let direct = ae.encode_value(&tf.candidate(*c));
            for (a, b) in cv.data().iter().zip(direct.data().iter()) {
                assert!((a - b).abs() < 1e-5, "cache mismatch for {c:?}");
            }
        }
    }

    #[test]
    fn flat_kind_keeps_c_vec_width() {
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(5);
        let ae = Autoencoder::new(&cfg, EncoderKind::Flat, false, &mut rng);
        let c = ae.encode_value(&toy_candidate(9, 2));
        assert_eq!(c.cols(), 2 * cfg.ae_hidden);
    }

    #[test]
    fn evaluate_is_deterministic() {
        let cfg = small_cfg();
        let mut rng = StdRng::seed_from_u64(6);
        let ae = Autoencoder::new(&cfg, EncoderKind::Hierarchical, true, &mut rng);
        let samples = vec![toy_candidate(1, 3), toy_candidate(2, 2)];
        assert_eq!(ae.evaluate(&samples), ae.evaluate(&samples));
    }
}
