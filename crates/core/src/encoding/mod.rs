//! Candidate trajectory encoding (Section IV): compression/decompression
//! operators and the hierarchical autoencoder.

mod autoencoder;
mod operator;

pub use autoencoder::{Autoencoder, EncoderKind};
pub use operator::{CompressionOperator, DecompressionOperator};
