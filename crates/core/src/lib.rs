//! # LEAD — the loaded-trajectory detection framework
//!
//! Rust implementation of *Detecting Loaded Trajectories for Hazardous
//! Chemicals Transportation* (ICDE 2022). Given a one-day raw GPS trajectory
//! of an HCT truck, LEAD detects the **loaded trajectory**: the subtrajectory
//! from the loading stay point to the unloading stay point.
//!
//! The three components of the paper map onto three module trees:
//!
//! 1. [`processing`] — noise filtering, stay-point extraction, candidate
//!    trajectory generation (Section III);
//! 2. [`encoding`] — feature extraction ([`features`]) and the hierarchical
//!    autoencoder producing a compressed vector per candidate (Section IV);
//! 3. [`detection`] — forward/backward group generation, stacked-BiLSTM
//!    detectors, label processing, probability merging (Section V).
//!
//! [`pipeline::Lead`] ties them together: [`pipeline::Lead::fit`] is the
//! offline stage, [`pipeline::Lead::detect`] the online stage.
//! [`pipeline::LeadOptions`] switches the ablation variants of Section VI
//! (`LEAD-NoPoi`, `-NoSel`, `-NoHie`, `-NoGro`, `-NoFor`, `-NoBac`).
//!
//! Supporting modules: [`poi`] (the 29-category POI database backing the
//! 32-dimensional point features), [`label`] (ground-truth handling),
//! [`config`] (every hyper-parameter of Section VI-A, at its paper value),
//! [`persist`] (save/load of trained models), [`error`] (the unified
//! [`LeadError`] surface of the fallible public API), [`source`]
//! (shardable [`SampleSource`] ingestion backing
//! [`pipeline::Lead::fit_streaming`], plus bridges to the `lead-data`
//! binary container format), and [`streaming`]
//! (online detection over live GPS feeds — an extension beyond the paper's
//! batch pipeline). Hot paths accept a `lead_obs` probe
//! ([`pipeline::DetectOptions`], [`pipeline::Lead::fit_opts`]) for
//! per-stage spans and counters; metrics are write-only and never change
//! results.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod detection;
pub mod encoding;
pub mod error;
pub mod features;
pub mod label;
pub mod persist;
pub mod pipeline;
pub mod poi;
pub mod processing;
pub mod source;
pub mod streaming;

pub use config::{ConfigError, LeadConfig};
pub use error::LeadError;
pub use label::TruthLabel;
pub use pipeline::{DetectOptions, DetectionResult, FitOptions, Lead, LeadOptions, TrainingReport};
pub use poi::{Poi, PoiCategory, PoiDatabase, PoiRole, NUM_POI_CATEGORIES};
pub use processing::{Candidate, ProcessedTrajectory, StayPoint};
pub use source::{BinarySampleShards, SampleSource, SliceSamples, SourceError, VecSamples};
