//! Streaming training-sample sources and binary-format bridges.
//!
//! [`SampleSource`] is the ingestion side of the constant-memory training
//! loop ([`crate::pipeline::Lead::fit_streaming`]): a shardable, rewindable
//! stream of [`TrainSample`]s, implemented here for in-RAM slices/vectors
//! and for `lead-data` binary shard files. The module also bridges the other
//! `lead-data` record kinds into core types: POI batches ↔ [`PoiDatabase`]
//! and tensors ↔ [`Matrix`].

use crate::label::TruthLabel;
use crate::pipeline::TrainSample;
use crate::poi::{Poi, PoiCategory, PoiDatabase, NUM_POI_CATEGORIES};
use lead_data::records::{LabeledSampleReader, LabeledSampleRecord, LabeledSampleWriter};
use lead_data::{DataError, PoiRecord, TensorRecord};
use lead_nn::Matrix;
use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Seek, Write};
use std::path::{Path, PathBuf};

/// Errors surfaced by sample sources and format bridges.
#[derive(Debug)]
#[non_exhaustive]
pub enum SourceError {
    /// A binary container failed to read or validate.
    Data(DataError),
    /// An underlying I/O failure outside the container layer.
    Io(std::io::Error),
    /// A stored POI declares a category index outside the taxonomy.
    BadPoiCategory {
        /// Zero-based index of the POI within its batch.
        poi: u64,
        /// The category index found.
        category: u16,
    },
    /// A matrix is too large to represent as a tensor record.
    TensorShape {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A source was asked for a shard index it does not have.
    NoSuchShard {
        /// The requested shard index.
        shard: usize,
        /// How many shards the source has.
        shards: usize,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Data(e) => write!(f, "data format error: {e}"),
            SourceError::Io(e) => write!(f, "i/o error: {e}"),
            SourceError::BadPoiCategory { poi, category } => write!(
                f,
                "poi {poi} declares category {category} (taxonomy has {NUM_POI_CATEGORIES})"
            ),
            SourceError::TensorShape { rows, cols } => {
                write!(f, "matrix {rows}x{cols} exceeds tensor-record shape limits")
            }
            SourceError::NoSuchShard { shard, shards } => {
                write!(f, "no such shard {shard} (source has {shards})")
            }
        }
    }
}

impl std::error::Error for SourceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SourceError::Data(e) => Some(e),
            SourceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for SourceError {
    fn from(e: DataError) -> Self {
        SourceError::Data(e)
    }
}

impl From<std::io::Error> for SourceError {
    fn from(e: std::io::Error) -> Self {
        SourceError::Io(e)
    }
}

/// A shardable, rewindable stream of labelled training samples.
///
/// Contract (mirrors `lead_data::TrajectorySource`): shards partition the
/// dataset; `read_shard(i)` delivers shard `i`'s samples in a fixed order
/// every time it is invoked; concatenating shards `0..num_shards()` yields
/// the whole dataset in its canonical order. Training consumes one shard's
/// samples at a time, so peak raw-sample memory is bounded by the largest
/// shard.
pub trait SampleSource {
    /// Total sample count across all shards, when cheaply known.
    fn len_hint(&self) -> Option<u64>;

    /// Number of shards (at least 1, even for empty sources).
    fn num_shards(&self) -> usize;

    /// Streams shard `shard`'s samples into `sink`, in canonical order.
    ///
    /// # Errors
    ///
    /// [`SourceError::NoSuchShard`] for an out-of-range index; I/O or
    /// format errors from the backing store.
    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(TrainSample),
    ) -> Result<(), SourceError>;
}

/// How many shards a `len`-item in-RAM source with the given shard size has.
fn slice_shards(len: usize, shard_size: usize) -> usize {
    len.div_ceil(shard_size).max(1)
}

/// The in-RAM path: a borrowed slice exposed through the source API,
/// optionally split into fixed-size shards.
#[derive(Debug)]
pub struct SliceSamples<'a> {
    samples: &'a [TrainSample],
    shard_size: usize,
}

impl<'a> SliceSamples<'a> {
    /// Wraps `samples` as a single-shard source.
    pub fn new(samples: &'a [TrainSample]) -> Self {
        Self {
            samples,
            shard_size: samples.len().max(1),
        }
    }

    /// Wraps `samples` split into shards of at most `shard_size` samples
    /// (clamped to at least 1).
    pub fn with_shard_size(samples: &'a [TrainSample], shard_size: usize) -> Self {
        Self {
            samples,
            shard_size: shard_size.max(1),
        }
    }
}

impl SampleSource for SliceSamples<'_> {
    fn len_hint(&self) -> Option<u64> {
        Some(self.samples.len() as u64)
    }

    fn num_shards(&self) -> usize {
        slice_shards(self.samples.len(), self.shard_size)
    }

    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(TrainSample),
    ) -> Result<(), SourceError> {
        let shards = self.num_shards();
        if shard >= shards {
            return Err(SourceError::NoSuchShard { shard, shards });
        }
        let start = shard * self.shard_size;
        let end = (start + self.shard_size).min(self.samples.len());
        for s in self.samples.iter().skip(start).take(end - start) {
            sink(s.clone());
        }
        Ok(())
    }
}

/// Owned-`Vec` variant of [`SliceSamples`].
#[derive(Debug)]
pub struct VecSamples {
    samples: Vec<TrainSample>,
    shard_size: usize,
}

impl VecSamples {
    /// Wraps `samples` as a single-shard source.
    pub fn new(samples: Vec<TrainSample>) -> Self {
        let shard_size = samples.len().max(1);
        Self {
            samples,
            shard_size,
        }
    }

    /// Wraps `samples` split into shards of at most `shard_size` samples
    /// (clamped to at least 1).
    pub fn with_shard_size(samples: Vec<TrainSample>, shard_size: usize) -> Self {
        Self {
            samples,
            shard_size: shard_size.max(1),
        }
    }
}

impl SampleSource for VecSamples {
    fn len_hint(&self) -> Option<u64> {
        Some(self.samples.len() as u64)
    }

    fn num_shards(&self) -> usize {
        slice_shards(self.samples.len(), self.shard_size)
    }

    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(TrainSample),
    ) -> Result<(), SourceError> {
        SliceSamples::with_shard_size(&self.samples, self.shard_size).read_shard(shard, sink)
    }
}

/// Converts a decoded labelled record into the core training-sample form
/// (`day`/`planned_stays` metadata is not needed for training).
fn record_to_sample(rec: LabeledSampleRecord) -> TrainSample {
    let [load_start_s, load_end_s, unload_start_s, unload_end_s] = rec.truth_s;
    TrainSample {
        raw: rec.trajectory,
        truth: TruthLabel {
            load_start_s,
            load_end_s,
            unload_start_s,
            unload_end_s,
        },
    }
}

/// A set of binary labelled-sample container files, one shard per file.
///
/// Construction opens every file once to validate its header and sum the
/// declared counts, so `len_hint` is exact; each `read_shard` re-opens and
/// re-decodes its file, keeping only one shard's samples in RAM at a time.
#[derive(Debug)]
pub struct BinarySampleShards {
    paths: Vec<PathBuf>,
    total: u64,
}

impl BinarySampleShards {
    /// Opens a shard set, validating each file's header.
    ///
    /// # Errors
    ///
    /// Any header-validation or I/O error from the shard files.
    pub fn open<P: AsRef<Path>>(paths: &[P]) -> Result<Self, SourceError> {
        let mut total = 0u64;
        let mut owned = Vec::with_capacity(paths.len());
        for p in paths {
            let file = File::open(p.as_ref()).map_err(SourceError::Io)?;
            let reader = LabeledSampleReader::new(BufReader::new(file))?;
            total += reader.count();
            owned.push(p.as_ref().to_path_buf());
        }
        Ok(Self {
            paths: owned,
            total,
        })
    }
}

impl SampleSource for BinarySampleShards {
    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }

    fn num_shards(&self) -> usize {
        self.paths.len().max(1)
    }

    fn read_shard(
        &mut self,
        shard: usize,
        sink: &mut dyn FnMut(TrainSample),
    ) -> Result<(), SourceError> {
        let shards = self.num_shards();
        let Some(path) = self.paths.get(shard) else {
            return Err(SourceError::NoSuchShard { shard, shards });
        };
        let file = File::open(path).map_err(SourceError::Io)?;
        let mut reader = LabeledSampleReader::new(BufReader::new(file))?;
        while let Some(rec) = reader.next_record()? {
            sink(record_to_sample(rec));
        }
        Ok(())
    }
}

/// Writes training samples as one labelled-sample container (`day` and
/// `planned_stays` are recorded as 0 — the core form carries neither).
///
/// # Errors
///
/// Any container-write or I/O error.
pub fn write_samples<W: Write + Seek>(samples: &[TrainSample], w: W) -> Result<W, SourceError> {
    let mut writer = LabeledSampleWriter::new(w)?;
    for s in samples {
        writer.write(&LabeledSampleRecord {
            truck_id: 0,
            day: 0,
            planned_stays: 0,
            truth_s: [
                s.truth.load_start_s,
                s.truth.load_end_s,
                s.truth.unload_start_s,
                s.truth.unload_end_s,
            ],
            trajectory: s.raw.clone(),
        })?;
    }
    Ok(writer.finish()?)
}

/// Writes training samples as binary shard files `STEM-00000.leadbin`,
/// `STEM-00001.leadbin`, … under `dir`, at most `shard_size` samples per
/// file, returning the paths in shard order.
///
/// # Errors
///
/// Any container-write or I/O error.
pub fn write_sample_shards(
    samples: &[TrainSample],
    dir: &Path,
    stem: &str,
    shard_size: usize,
) -> Result<Vec<PathBuf>, SourceError> {
    std::fs::create_dir_all(dir).map_err(SourceError::Io)?;
    let shard_size = shard_size.max(1);
    let mut paths = Vec::new();
    for (i, chunk) in samples.chunks(shard_size).enumerate() {
        let path = dir.join(format!("{stem}-{i:05}.leadbin"));
        let file = File::create(&path).map_err(SourceError::Io)?;
        write_samples(chunk, BufWriter::new(file))?;
        paths.push(path);
    }
    if paths.is_empty() {
        // An empty dataset still produces one (empty) shard so readers have
        // a valid container to open.
        let path = dir.join(format!("{stem}-00000.leadbin"));
        let file = File::create(&path).map_err(SourceError::Io)?;
        write_samples(&[], BufWriter::new(file))?;
        paths.push(path);
    }
    Ok(paths)
}

/// Converts a POI database into the batch form of `lead-data` POI records
/// (insertion order preserved).
pub fn poi_db_to_batch(db: &PoiDatabase) -> Vec<PoiRecord> {
    db.iter()
        .map(|p| PoiRecord {
            category: p.category.index() as u16,
            lat: p.lat,
            lng: p.lng,
        })
        .collect()
}

/// Rebuilds a POI database from a decoded batch, validating category
/// indexes against the taxonomy.
///
/// # Errors
///
/// [`SourceError::BadPoiCategory`] when a record's category index is outside
/// the [`NUM_POI_CATEGORIES`]-entry taxonomy.
pub fn poi_db_from_batch(batch: &[PoiRecord]) -> Result<PoiDatabase, SourceError> {
    let mut pois = Vec::with_capacity(batch.len());
    for (i, rec) in batch.iter().enumerate() {
        if usize::from(rec.category) >= NUM_POI_CATEGORIES {
            return Err(SourceError::BadPoiCategory {
                poi: i as u64,
                category: rec.category,
            });
        }
        pois.push(Poi {
            lat: rec.lat,
            lng: rec.lng,
            category: PoiCategory::from_index(usize::from(rec.category)),
        });
    }
    Ok(PoiDatabase::new(pois))
}

/// Converts a matrix into a tensor record.
///
/// # Errors
///
/// [`SourceError::TensorShape`] when either dimension exceeds `u32`.
pub fn matrix_to_tensor(m: &Matrix) -> Result<TensorRecord, SourceError> {
    let (Ok(rows), Ok(cols)) = (u32::try_from(m.rows()), u32::try_from(m.cols())) else {
        return Err(SourceError::TensorShape {
            rows: m.rows(),
            cols: m.cols(),
        });
    };
    Ok(TensorRecord {
        rows,
        cols,
        data: m.data().to_vec(),
    })
}

/// Rebuilds a matrix from a decoded tensor record (shape already validated
/// by the decoder).
pub fn tensor_to_matrix(t: &TensorRecord) -> Matrix {
    Matrix::from_vec(t.rows as usize, t.cols as usize, t.data.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_geo::{GpsPoint, Trajectory};

    fn sample(i: i64) -> TrainSample {
        TrainSample {
            raw: Trajectory::new(vec![
                GpsPoint::new(31.0, 121.0, i * 10_000),
                GpsPoint::new(31.1, 121.1, i * 10_000 + 600),
            ]),
            truth: TruthLabel {
                load_start_s: i * 10_000,
                load_end_s: i * 10_000 + 100,
                unload_start_s: i * 10_000 + 300,
                unload_end_s: i * 10_000 + 500,
            },
        }
    }

    fn drain(src: &mut dyn SampleSource) -> Vec<TrainSample> {
        let mut out = Vec::new();
        for s in 0..src.num_shards() {
            src.read_shard(s, &mut |item| out.push(item)).unwrap();
        }
        out
    }

    fn same(a: &[TrainSample], b: &[TrainSample]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.raw == y.raw && x.truth == y.truth)
    }

    #[test]
    fn slice_source_partitions_in_order_at_any_shard_size() {
        let data: Vec<TrainSample> = (0..7).map(sample).collect();
        for shard_size in 1..=8 {
            let mut src = SliceSamples::with_shard_size(&data, shard_size);
            assert!(same(&drain(&mut src), &data), "shard_size {shard_size}");
        }
    }

    #[test]
    fn binary_shards_round_trip_samples() {
        let data: Vec<TrainSample> = (0..5).map(sample).collect();
        let dir = std::env::temp_dir().join("lead-core-source-test");
        let paths = write_sample_shards(&data, &dir, "t", 2).unwrap();
        assert_eq!(paths.len(), 3);
        let mut src = BinarySampleShards::open(&paths).unwrap();
        assert_eq!(src.len_hint(), Some(5));
        assert_eq!(src.num_shards(), 3);
        assert!(same(&drain(&mut src), &data));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn poi_batch_round_trips_and_validates_categories() {
        let db = PoiDatabase::new(vec![
            Poi {
                lat: 31.0,
                lng: 121.0,
                category: PoiCategory::from_index(0),
            },
            Poi {
                lat: 31.5,
                lng: 121.5,
                category: PoiCategory::from_index(NUM_POI_CATEGORIES - 1),
            },
        ]);
        let batch = poi_db_to_batch(&db);
        let back = poi_db_from_batch(&batch).unwrap();
        let orig: Vec<Poi> = db.iter().collect();
        let got: Vec<Poi> = back.iter().collect();
        assert_eq!(orig.len(), got.len());
        for (a, b) in orig.iter().zip(&got) {
            assert_eq!(a.category, b.category);
            assert_eq!(a.lat.to_bits(), b.lat.to_bits());
            assert_eq!(a.lng.to_bits(), b.lng.to_bits());
        }

        let bad = [PoiRecord {
            category: NUM_POI_CATEGORIES as u16,
            lat: 0.0,
            lng: 0.0,
        }];
        match poi_db_from_batch(&bad) {
            Err(SourceError::BadPoiCategory { poi: 0, .. }) => {}
            other => panic!("expected BadPoiCategory, got {other:?}"),
        }
    }

    #[test]
    fn matrix_tensor_round_trips_bitwise() {
        let m = Matrix::from_vec(2, 3, vec![1.0, -2.0, 0.5, f32::EPSILON, 1e-30, 9.0]);
        let t = matrix_to_tensor(&m).unwrap();
        let back = tensor_to_matrix(&t);
        assert_eq!(back.rows(), 2);
        assert_eq!(back.cols(), 3);
        let bits = |xs: &[f32]| xs.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(back.data()), bits(m.data()));
    }
}
