//! The workspace-level error surface.
//!
//! [`LeadError`] unifies configuration, persistence, and I/O failures so
//! [`crate::pipeline::Lead::fit`], [`crate::pipeline::Lead::save`], and
//! [`crate::pipeline::Lead::load`] share one fallible API: nothing reachable
//! through the public `Lead` surface panics on bad input — it all lands
//! here, with `Display` and `Error::source` wired through to the cause.

use crate::config::ConfigError;
use crate::persist::LoadError;
use crate::source::SourceError;

/// Any failure surfaced by the public [`crate::pipeline::Lead`] API.
#[derive(Debug)]
#[non_exhaustive]
pub enum LeadError {
    /// The configuration violates a documented constraint.
    Config(ConfigError),
    /// A saved model could not be parsed or rebuilt.
    Load(LoadError),
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A streaming sample source failed to read or validate.
    Source(SourceError),
    /// Every training sample was dropped during processing — fewer than two
    /// stay points, or the ground truth did not map onto extracted stays.
    NoTrainableSamples {
        /// How many samples were skipped.
        skipped: usize,
    },
}

impl std::fmt::Display for LeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeadError::Config(e) => write!(f, "invalid configuration: {e}"),
            LeadError::Load(e) => write!(f, "model load failed: {e}"),
            LeadError::Io(e) => write!(f, "i/o error: {e}"),
            LeadError::Source(e) => write!(f, "sample source failed: {e}"),
            LeadError::NoTrainableSamples { skipped } => write!(
                f,
                "no training sample survived processing ({skipped} skipped)"
            ),
        }
    }
}

impl std::error::Error for LeadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LeadError::Config(e) => Some(e),
            LeadError::Load(e) => Some(e),
            LeadError::Io(e) => Some(e),
            LeadError::Source(e) => Some(e),
            LeadError::NoTrainableSamples { .. } => None,
        }
    }
}

impl From<ConfigError> for LeadError {
    fn from(e: ConfigError) -> Self {
        LeadError::Config(e)
    }
}

impl From<LoadError> for LeadError {
    fn from(e: LoadError) -> Self {
        LeadError::Load(e)
    }
}

impl From<std::io::Error> for LeadError {
    fn from(e: std::io::Error) -> Self {
        LeadError::Io(e)
    }
}

impl From<SourceError> for LeadError {
    fn from(e: SourceError) -> Self {
        LeadError::Source(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_are_wired_through() {
        let cfg = ConfigError {
            field: "d_max_m",
            reason: "D_max must be positive",
        };
        let err = LeadError::from(cfg);
        assert!(err.to_string().contains("d_max_m"));
        assert!(err
            .source()
            .expect("has a source")
            .to_string()
            .contains("D_max"));

        let io = LeadError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(io.source().is_some());

        let empty = LeadError::NoTrainableSamples { skipped: 7 };
        assert!(empty.to_string().contains("7 skipped"));
        assert!(empty.source().is_none());
    }
}
