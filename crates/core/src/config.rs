//! Every hyper-parameter of the paper (Section VI-A, "Implementation
//! Details"), at its published value.

/// Configuration of the LEAD framework.
///
/// Defaults reproduce the paper exactly; the only knobs without published
/// values (epoch caps, early-stopping patience, the autoencoder sample cap)
/// are documented where they appear.
#[derive(Debug, Clone)]
pub struct LeadConfig {
    /// RNG seed for weight initialisation and training-order shuffles.
    pub seed: u64,

    // ---- raw trajectory processing (Section III) ---------------------------
    /// Noise-filter speed threshold; "the moving speed of an HCT truck rarely
    /// exceeds" 130 km/h.
    pub v_max_kmh: f64,
    /// Stay-point distance threshold `D_max` = 500 m.
    pub d_max_m: f64,
    /// Stay-point duration threshold `T_min` = 15 min.
    pub t_min_s: i64,

    // ---- candidate trajectory encoding (Section IV) ------------------------
    /// POI-count radius around each GPS point: 100 m.
    pub poi_radius_m: f64,
    /// Hidden units in every LSTM / fully connected layer of the hierarchical
    /// autoencoder: 32 (the compressed vector is then 2 × 32 = 64 wide).
    pub ae_hidden: usize,
    /// Upper bound on autoencoder training epochs (the paper trains with
    /// early stopping; curves in Figure 9 flatten well before 20).
    pub ae_max_epochs: usize,
    /// Candidate feature sequences sampled per training trajectory for the
    /// self-supervised autoencoder stage. The paper trains on all candidates
    /// of all trajectories; sampling keeps single-core wall-clock sane and
    /// does not change the learned representation measurably (the sequences
    /// are highly redundant across candidates of one trajectory).
    pub ae_samples_per_trajectory: usize,

    // ---- loaded trajectory detection (Section V) ----------------------------
    /// Hidden units in the detector LSTMs: 64.
    pub detector_hidden: usize,
    /// Stacked BiLSTM layers `L`: 4 (tuned 1–10 in the paper, best at 4).
    pub detector_layers: usize,
    /// Label-smoothing constant `ε` = 1e-5.
    pub label_epsilon: f32,
    /// Upper bound on detector training epochs (Figure 10 converges by ~12).
    pub detector_max_epochs: usize,

    // ---- optimisation (shared) ----------------------------------------------
    /// Adam learning rate: 1e-4.
    pub learning_rate: f32,
    /// Consecutive samples whose average loss forms one optimiser step
    /// (`B` = 64).
    pub batch_accumulation: usize,
    /// Early-stopping patience in epochs.
    pub early_stopping_patience: usize,
    /// Global-norm gradient clip (not in the paper; guards the rare exploding
    /// LSTM gradient at batch size 1 — disabled by setting `f32::INFINITY`).
    pub grad_clip_norm: f32,
    /// Decoupled weight decay applied while training the detectors (0 in the
    /// paper configuration; the experiment configuration uses a small value
    /// because the scaled-down fleet makes the detectors prone to memorising
    /// individual trucks).
    pub detector_weight_decay: f32,
    /// Standard deviation of Gaussian noise added to compressed vectors
    /// during detector training (augmentation; 0 = paper behaviour).
    pub cvec_noise_std: f32,

    // ---- execution ----------------------------------------------------------
    /// Worker threads for the data-parallel hot paths (training windows,
    /// candidate encoding, batch detection, feature extraction, evaluation).
    /// `0` uses all available cores; `1` takes the exact serial code path.
    /// Every value produces bit-identical results at a fixed seed — the
    /// parallel reduce is performed in a fixed order (see `lead_nn::par`).
    /// Runtime-only: not persisted with trained models.
    pub num_threads: usize,
}

impl LeadConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Self {
            seed: 2022,
            v_max_kmh: 130.0,
            d_max_m: 500.0,
            t_min_s: 15 * 60,
            poi_radius_m: 100.0,
            ae_hidden: 32,
            ae_max_epochs: 15,
            ae_samples_per_trajectory: 6,
            detector_hidden: 64,
            detector_layers: 4,
            label_epsilon: 1e-5,
            detector_max_epochs: 15,
            learning_rate: 1e-4,
            batch_accumulation: 64,
            early_stopping_patience: 3,
            grad_clip_norm: 5.0,
            detector_weight_decay: 0.0,
            cvec_noise_std: 0.0,
            num_threads: 0,
        }
    }

    /// The configuration used by this repository's experiment binaries.
    ///
    /// Identical to [`Self::paper`] except for the optimisation schedule: the
    /// synthetic dataset is ~20× smaller than Nantong's, so at the paper's
    /// `lr = 1e-4` / `B = 64` an epoch contains too few optimiser steps to
    /// converge within the Figure 9/10 epoch counts. Scaling the learning
    /// rate and accumulation keeps *steps × step-size per epoch* comparable;
    /// see EXPERIMENTS.md.
    pub fn experiment() -> Self {
        Self {
            learning_rate: 1e-3,
            batch_accumulation: 16,
            ae_max_epochs: 12,
            detector_max_epochs: 40,
            early_stopping_patience: 5,
            detector_weight_decay: 1e-4,
            cvec_noise_std: 0.03,
            ..Self::paper()
        }
    }

    /// A fast configuration for unit/integration tests: smaller nets, fewer
    /// epochs, same processing thresholds.
    pub fn fast_test() -> Self {
        Self {
            ae_hidden: 8,
            ae_max_epochs: 2,
            ae_samples_per_trajectory: 2,
            detector_hidden: 12,
            detector_layers: 2,
            detector_max_epochs: 2,
            learning_rate: 1e-3,
            batch_accumulation: 8,
            early_stopping_patience: 2,
            ..Self::paper()
        }
    }

    /// Width of the compressed vector `c-vec` produced by the hierarchical
    /// compressor (`[SP-c-vec | MP-c-vec]`).
    pub fn c_vec_dim(&self) -> usize {
        2 * self.ae_hidden
    }

    /// Validates internal consistency; returns the first violated constraint.
    ///
    /// Strict `>` comparisons double as NaN guards: a NaN threshold fails
    /// every ordering test and is rejected like any other bad value.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] naming the first field whose value violates
    /// its constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let check = |ok: bool, field: &'static str, reason: &'static str| {
            if ok {
                Ok(())
            } else {
                Err(ConfigError { field, reason })
            }
        };
        check(
            self.v_max_kmh > 0.0,
            "v_max_kmh",
            "speed threshold must be positive",
        )?;
        check(self.d_max_m > 0.0, "d_max_m", "D_max must be positive")?;
        check(self.t_min_s > 0, "t_min_s", "T_min must be positive")?;
        check(
            self.poi_radius_m > 0.0,
            "poi_radius_m",
            "POI radius must be positive",
        )?;
        check(
            self.ae_hidden > 0,
            "ae_hidden",
            "hidden sizes must be positive",
        )?;
        check(
            self.detector_hidden > 0,
            "detector_hidden",
            "hidden sizes must be positive",
        )?;
        check(
            self.detector_layers > 0,
            "detector_layers",
            "need at least one BiLSTM layer",
        )?;
        check(
            self.label_epsilon > 0.0 && self.label_epsilon < 0.01,
            "label_epsilon",
            "ε must be a small positive constant",
        )?;
        check(
            self.learning_rate > 0.0,
            "learning_rate",
            "learning rate must be positive",
        )?;
        check(
            self.batch_accumulation > 0,
            "batch_accumulation",
            "batch accumulation must be positive",
        )?;
        check(
            self.ae_max_epochs > 0,
            "ae_max_epochs",
            "need at least one epoch",
        )?;
        check(
            self.detector_max_epochs > 0,
            "detector_max_epochs",
            "need at least one epoch",
        )?;
        check(
            self.ae_samples_per_trajectory > 0,
            "ae_samples_per_trajectory",
            "the autoencoder needs at least one candidate sample per trajectory",
        )?;
        check(
            self.early_stopping_patience > 0,
            "early_stopping_patience",
            "early-stopping patience must be positive",
        )?;
        check(
            self.grad_clip_norm > 0.0,
            "grad_clip_norm",
            "gradient clip norm must be positive (use f32::INFINITY to disable)",
        )?;
        check(
            self.detector_weight_decay >= 0.0,
            "detector_weight_decay",
            "weight decay must be non-negative",
        )?;
        check(
            self.cvec_noise_std >= 0.0,
            "cvec_noise_std",
            "augmentation noise must be non-negative",
        )?;
        // num_threads needs no check: 0 = all cores, anything else is literal.
        Ok(())
    }
}

/// A violated configuration constraint (see [`LeadConfig::validate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending `LeadConfig` field.
    pub field: &'static str,
    /// Why the value is rejected.
    pub reason: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "`{}`: {}", self.field, self.reason)
    }
}

impl std::error::Error for ConfigError {}

impl Default for LeadConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_section_vi() {
        let c = LeadConfig::paper();
        assert_eq!(c.v_max_kmh, 130.0);
        assert_eq!(c.d_max_m, 500.0);
        assert_eq!(c.t_min_s, 900);
        assert_eq!(c.poi_radius_m, 100.0);
        assert_eq!(c.ae_hidden, 32);
        assert_eq!(c.c_vec_dim(), 64);
        assert_eq!(c.detector_hidden, 64);
        assert_eq!(c.detector_layers, 4);
        assert_eq!(c.label_epsilon, 1e-5);
        assert_eq!(c.learning_rate, 1e-4);
        assert_eq!(c.batch_accumulation, 64);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fast_test_config_validates() {
        assert!(LeadConfig::fast_test().validate().is_ok());
    }

    #[test]
    fn invalid_d_max_rejected() {
        let mut c = LeadConfig::paper();
        c.d_max_m = 0.0;
        let err = c.validate().unwrap_err();
        assert_eq!(err.field, "d_max_m");
        assert!(err.to_string().contains("D_max"), "{err}");
    }

    #[test]
    fn nan_thresholds_are_rejected() {
        let mut c = LeadConfig::paper();
        c.v_max_kmh = f64::NAN;
        assert_eq!(c.validate().unwrap_err().field, "v_max_kmh");
    }

    #[test]
    fn degenerate_training_knobs_are_rejected() {
        for (mutate, field) in [
            (
                (|c: &mut LeadConfig| c.ae_samples_per_trajectory = 0) as fn(&mut LeadConfig),
                "ae_samples_per_trajectory",
            ),
            (|c| c.early_stopping_patience = 0, "early_stopping_patience"),
            (|c| c.grad_clip_norm = 0.0, "grad_clip_norm"),
            (|c| c.grad_clip_norm = f32::NAN, "grad_clip_norm"),
            (|c| c.batch_accumulation = 0, "batch_accumulation"),
        ] {
            let mut c = LeadConfig::paper();
            mutate(&mut c);
            assert_eq!(c.validate().unwrap_err().field, field);
        }
        // Clipping disabled via infinity remains valid.
        let mut c = LeadConfig::paper();
        c.grad_clip_norm = f32::INFINITY;
        assert!(c.validate().is_ok());
    }
}
