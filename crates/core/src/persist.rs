//! Persistence of trained LEAD models.
//!
//! The offline stage runs once over the historical archive; the online stage
//! serves detections indefinitely. [`Lead::save`]/[`Lead::load`] round-trip a
//! trained model through a line-oriented text file: the architecture switches
//! and processing thresholds (needed to rebuild the exact network and
//! reproduce processing), the feature normaliser, and every trained weight
//! (bit-exact, via [`lead_nn::io`]).

use crate::config::LeadConfig;
use crate::features::Normalizer;
use crate::pipeline::{DetectorChoice, Lead, LeadOptions};
use lead_nn::io::{read_params, write_params, ReadError};
use std::io::{BufRead, Write};
use std::path::Path;

/// Errors produced while loading a model.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a valid model file.
    Format(String),
    /// A weight section does not match the rebuilt architecture.
    Params(ReadError),
    /// The file parsed but describes an invalid configuration.
    Config(crate::config::ConfigError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Format(m) => write!(f, "format error: {m}"),
            LoadError::Params(e) => write!(f, "weight section error: {e}"),
            LoadError::Config(e) => write!(f, "invalid stored configuration: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<ReadError> for LoadError {
    fn from(e: ReadError) -> Self {
        LoadError::Params(e)
    }
}

impl From<crate::config::ConfigError> for LoadError {
    fn from(e: crate::config::ConfigError) -> Self {
        LoadError::Config(e)
    }
}

fn detector_tag(choice: DetectorChoice) -> &'static str {
    match choice {
        DetectorChoice::Both => "both",
        DetectorChoice::ForwardOnly => "forward",
        DetectorChoice::BackwardOnly => "backward",
        DetectorChoice::Mlp => "mlp",
    }
}

fn parse_detector(tag: &str) -> Result<DetectorChoice, LoadError> {
    Ok(match tag {
        "both" => DetectorChoice::Both,
        "forward" => DetectorChoice::ForwardOnly,
        "backward" => DetectorChoice::BackwardOnly,
        "mlp" => DetectorChoice::Mlp,
        other => return Err(LoadError::Format(format!("unknown detector `{other}`"))),
    })
}

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(tok: &str) -> Result<f64, LoadError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|e| LoadError::Format(format!("bad f64 `{tok}`: {e}")))
}

fn hex_row(values: &[f32]) -> String {
    values
        .iter()
        .map(|v| format!("{:08x}", v.to_bits()))
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_hex_row(line: &str) -> Result<Vec<f32>, LoadError> {
    line.split_whitespace()
        .map(|tok| {
            u32::from_str_radix(tok, 16)
                .map(f32::from_bits)
                .map_err(|e| LoadError::Format(format!("bad f32 `{tok}`: {e}")))
        })
        .collect()
}

impl Lead {
    /// Writes the trained model to `w`.
    ///
    /// # Errors
    /// Propagates any I/O error from the underlying writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        let config = self.config();
        let options = self.options();
        writeln!(w, "lead-model v1")?;
        writeln!(
            w,
            "options {} {} {} {}",
            options.use_poi,
            options.use_attention,
            options.hierarchical,
            detector_tag(options.detector)
        )?;
        writeln!(
            w,
            "config {} {} {} {} {} {} {} {}",
            hex_f64(config.v_max_kmh),
            hex_f64(config.d_max_m),
            config.t_min_s,
            hex_f64(config.poi_radius_m),
            config.ae_hidden,
            config.detector_hidden,
            config.detector_layers,
            config.seed,
        )?;
        let n = self.normalizer_ref();
        writeln!(w, "normalizer {}", n.dim())?;
        writeln!(w, "{}", hex_row(n.mean()))?;
        writeln!(w, "{}", hex_row(n.std()))?;
        writeln!(w, "section autoencoder")?;
        write_params(self.autoencoder_ref().params(), w)?;
        if let Some(det) = self.forward_det_ref() {
            writeln!(w, "section forward_detector")?;
            write_params(det.params(), w)?;
        }
        if let Some(det) = self.backward_det_ref() {
            writeln!(w, "section backward_detector")?;
            write_params(det.params(), w)?;
        }
        if let Some(det) = self.mlp_ref() {
            writeln!(w, "section mlp_detector")?;
            write_params(det.params(), w)?;
        }
        writeln!(w, "end-model")?;
        Ok(())
    }

    /// Saves the trained model to a file.
    ///
    /// # Errors
    /// Returns [`crate::LeadError::Io`] when the file cannot be created or
    /// written.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), crate::LeadError> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut file)?;
        file.flush()?;
        Ok(())
    }

    /// Reads a model written by [`Self::write_to`].
    ///
    /// # Errors
    /// Returns [`LoadError::Io`] when the reader fails and
    /// [`LoadError::Format`] when the stream is not a valid model dump
    /// (wrong header, malformed lines, or an invalid stored configuration).
    pub fn read_from<R: BufRead>(r: &mut R) -> Result<Lead, LoadError> {
        let mut line = String::new();
        let mut next_line = |r: &mut R| -> Result<String, LoadError> {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                return Err(LoadError::Format("unexpected end of file".into()));
            }
            Ok(line.trim().to_string())
        };

        if next_line(r)? != "lead-model v1" {
            return Err(LoadError::Format("not a lead-model v1 file".into()));
        }

        // options — slice-pattern destructuring instead of literal indexing:
        // a malformed line fails the pattern and becomes a typed error.
        let opt_line = next_line(r)?;
        let toks: Vec<&str> = opt_line.split_whitespace().collect();
        let ["options", use_poi, use_attention, hierarchical, detector] = toks.as_slice() else {
            return Err(LoadError::Format(format!("bad options line `{opt_line}`")));
        };
        let parse_bool = |t: &str| -> Result<bool, LoadError> {
            t.parse()
                .map_err(|_| LoadError::Format(format!("bad bool `{t}`")))
        };
        let options = LeadOptions {
            use_poi: parse_bool(use_poi)?,
            use_attention: parse_bool(use_attention)?,
            hierarchical: parse_bool(hierarchical)?,
            detector: parse_detector(detector)?,
        };

        // config
        let cfg_line = next_line(r)?;
        let toks: Vec<&str> = cfg_line.split_whitespace().collect();
        let ["config", v_max, d_max, t_min, poi_radius, ae_hidden, det_hidden, det_layers, seed] =
            toks.as_slice()
        else {
            return Err(LoadError::Format(format!("bad config line `{cfg_line}`")));
        };
        let parse_usize = |t: &str| -> Result<usize, LoadError> {
            t.parse()
                .map_err(|_| LoadError::Format(format!("bad integer `{t}`")))
        };
        let mut config = LeadConfig::paper();
        config.v_max_kmh = parse_hex_f64(v_max)?;
        config.d_max_m = parse_hex_f64(d_max)?;
        config.t_min_s = t_min
            .parse()
            .map_err(|_| LoadError::Format(format!("bad t_min `{t_min}`")))?;
        config.poi_radius_m = parse_hex_f64(poi_radius)?;
        config.ae_hidden = parse_usize(ae_hidden)?;
        config.detector_hidden = parse_usize(det_hidden)?;
        config.detector_layers = parse_usize(det_layers)?;
        config.seed = seed
            .parse()
            .map_err(|_| LoadError::Format(format!("bad seed `{seed}`")))?;

        // normaliser
        let n_line = next_line(r)?;
        let toks: Vec<&str> = n_line.split_whitespace().collect();
        let ["normalizer", dim] = toks.as_slice() else {
            return Err(LoadError::Format(format!("bad normalizer line `{n_line}`")));
        };
        let dim = parse_usize(dim)?;
        let mean = parse_hex_row(&next_line(r)?)?;
        let std = parse_hex_row(&next_line(r)?)?;
        if mean.len() != dim || std.len() != dim {
            return Err(LoadError::Format("normalizer width mismatch".into()));
        }
        let normalizer = Normalizer::from_parts(mean, std);

        // Rebuild the architecture, then fill weights section by section. The
        // stored knobs are validated like any other configuration: a tampered
        // or hand-edited file yields a typed error, never a panic.
        let mut lead = Lead::new_untrained(&config, options, normalizer)?;
        loop {
            let section = next_line(r)?;
            if section == "end-model" {
                break;
            }
            let Some(name) = section.strip_prefix("section ") else {
                return Err(LoadError::Format(format!(
                    "expected section, got `{section}`"
                )));
            };
            match name {
                "autoencoder" => read_params(lead.autoencoder_mut().params_mut(), r)?,
                "forward_detector" => {
                    let det = lead.forward_det_mut().ok_or_else(|| {
                        LoadError::Format(
                            "forward detector section without forward detector".into(),
                        )
                    })?;
                    read_params(det.params_mut(), r)?;
                }
                "backward_detector" => {
                    let det = lead.backward_det_mut().ok_or_else(|| {
                        LoadError::Format(
                            "backward detector section without backward detector".into(),
                        )
                    })?;
                    read_params(det.params_mut(), r)?;
                }
                "mlp_detector" => {
                    let det = lead.mlp_mut().ok_or_else(|| {
                        LoadError::Format("mlp section without mlp detector".into())
                    })?;
                    read_params(det.params_mut(), r)?;
                }
                other => return Err(LoadError::Format(format!("unknown section `{other}`"))),
            }
        }
        Ok(lead)
    }

    /// Loads a model saved with [`Self::save`].
    ///
    /// # Errors
    /// Returns [`crate::LeadError::Io`] when the file cannot be opened and
    /// [`crate::LeadError::Load`] when its contents are not a valid model
    /// (malformed lines, mismatched weight sections, or an invalid stored
    /// configuration).
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Lead, crate::LeadError> {
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        Ok(Self::read_from(&mut reader)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::TruthLabel;
    use crate::pipeline::TrainSample;
    use crate::poi::{Poi, PoiCategory, PoiDatabase};
    use lead_geo::distance::meters_to_lng_deg;
    use lead_geo::{GpsPoint, Trajectory};

    /// A minimal trainable world (mirrors the baselines' test fixture).
    fn tiny_world() -> (Vec<TrainSample>, PoiDatabase) {
        let per_km = meters_to_lng_deg(1_000.0, 32.0);
        let mk_raw = |offset: f64| {
            let mut pts = Vec::new();
            let mut t = 0;
            for block in 0..3 {
                let lng = 120.9 + offset + block as f64 * 5.0 * per_km;
                for _ in 0..10 {
                    pts.push(GpsPoint::new(32.0, lng, t));
                    t += 120;
                }
                for k in 1..=3 {
                    pts.push(GpsPoint::new(32.0, lng + k as f64 * 1.25 * per_km, t));
                    t += 120;
                }
            }
            Trajectory::new(pts)
        };
        let truth = TruthLabel {
            load_start_s: 0,
            load_end_s: 1_080,
            unload_start_s: 1_560,
            unload_end_s: 2_640,
        };
        let samples = (0..3)
            .map(|i| TrainSample {
                raw: mk_raw(i as f64 * 0.0001),
                truth,
            })
            .collect();
        let pois = vec![
            Poi {
                lat: 32.0,
                lng: 120.9,
                category: PoiCategory::ChemicalFactory,
            },
            Poi {
                lat: 32.0,
                lng: 120.9 + 5.0 * per_km,
                category: PoiCategory::Factory,
            },
            Poi {
                lat: 32.0,
                lng: 120.9 + 10.0 * per_km,
                category: PoiCategory::Restaurant,
            },
        ];
        (samples, PoiDatabase::new(pois))
    }

    #[test]
    fn save_load_roundtrip_preserves_detections() {
        let (samples, db) = tiny_world();
        let cfg = LeadConfig::fast_test();
        for options in [
            LeadOptions::full(),
            LeadOptions::no_gro(),
            LeadOptions::no_bac(),
        ] {
            let (lead, _) = Lead::fit(&samples, &db, &cfg, options).expect("fit");
            let mut buf = Vec::new();
            lead.write_to(&mut buf).unwrap();
            let loaded = Lead::read_from(&mut buf.as_slice()).unwrap();
            assert_eq!(loaded.options(), options);
            for s in &samples {
                let a = lead.detect(&s.raw, &db);
                let b = loaded.detect(&s.raw, &db);
                match (a, b) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.detected, b.detected, "{}", options.name());
                        assert_eq!(a.probabilities, b.probabilities);
                    }
                    (None, None) => {}
                    _ => panic!("detectability changed after reload ({})", options.name()),
                }
            }
        }
    }

    #[test]
    fn save_and_load_through_a_file() {
        let (samples, db) = tiny_world();
        let cfg = LeadConfig::fast_test();
        let (lead, _) = Lead::fit(&samples, &db, &cfg, LeadOptions::full()).expect("fit");
        let path = std::env::temp_dir().join(format!("lead-model-{}.lead", std::process::id()));
        lead.save(&path).unwrap();
        let loaded = Lead::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let a = lead.detect(&samples[0].raw, &db).map(|r| r.detected);
        let b = loaded.detect(&samples[0].raw, &db).map(|r| r.detected);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_file_is_rejected() {
        match Lead::read_from(&mut "garbage\n".as_bytes()) {
            Err(LoadError::Format(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("garbage accepted"),
        }
    }

    #[test]
    fn truncated_file_is_rejected() {
        let (samples, db) = tiny_world();
        let cfg = LeadConfig::fast_test();
        let (lead, _) = Lead::fit(&samples, &db, &cfg, LeadOptions::full()).expect("fit");
        let mut buf = Vec::new();
        lead.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(Lead::read_from(&mut buf.as_slice()).is_err());
    }

    /// One fitted model's serialized text, shared across the corruption
    /// matrix so each damage pattern doesn't pay for its own training run.
    fn model_text() -> &'static str {
        static TEXT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
        TEXT.get_or_init(|| {
            let (samples, db) = tiny_world();
            let cfg = LeadConfig::fast_test();
            let (lead, _) = Lead::fit(&samples, &db, &cfg, LeadOptions::full()).expect("fit");
            let mut buf = Vec::new();
            lead.write_to(&mut buf).unwrap();
            String::from_utf8(buf).unwrap()
        })
    }

    #[test]
    fn truncation_at_every_line_boundary_is_a_typed_error() {
        let text = model_text();
        let lines: Vec<&str> = text.lines().collect();
        // Cut the file after every line in turn: each prefix must be
        // rejected with a typed error (unexpected EOF, a short weight
        // section, or a missing end-model marker) — never accepted, never
        // a panic.
        for cut in 0..lines.len() {
            let prefix = lines[..cut].join("\n");
            match Lead::read_from(&mut prefix.as_bytes()) {
                Err(LoadError::Format(_) | LoadError::Params(_)) => {}
                Err(other) => panic!("cut after line {cut}: unexpected error kind {other}"),
                Ok(_) => panic!("cut after line {cut}: truncated model accepted"),
            }
        }
    }

    #[test]
    fn missing_end_marker_is_a_typed_error() {
        let text = model_text().replace("end-model", "");
        match Lead::read_from(&mut text.as_bytes()) {
            Err(LoadError::Format(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("model without end marker accepted"),
        }
    }

    #[test]
    fn corrupted_weight_hex_is_a_typed_error() {
        // Damage the first weight row after the autoencoder section header:
        // hex parsing must fail with a typed params/format error.
        let text = model_text();
        let mut out = Vec::new();
        let mut damage_next = false;
        for line in text.lines() {
            if damage_next {
                out.push("zzzz not hex".to_string());
                damage_next = false;
            } else {
                if line == "section autoencoder" {
                    damage_next = true;
                }
                out.push(line.to_string());
            }
        }
        let tampered = out.join("\n");
        match Lead::read_from(&mut tampered.as_bytes()) {
            Err(LoadError::Params(_) | LoadError::Format(_)) => {}
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("model with corrupted weights accepted"),
        }
    }

    #[test]
    fn unknown_section_is_a_typed_error() {
        let text = model_text().replace("section autoencoder", "section flux_capacitor");
        match Lead::read_from(&mut text.as_bytes()) {
            Err(LoadError::Format(m)) => assert!(m.contains("flux_capacitor"), "{m}"),
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("model with unknown section accepted"),
        }
    }

    #[test]
    fn normalizer_width_mismatch_is_a_typed_error() {
        // Overstate the normaliser dimension: the mean/std rows no longer
        // match the declared width.
        let text = model_text();
        let tampered: String = text
            .lines()
            .map(|l| {
                if let Some(dim) = l.strip_prefix("normalizer ") {
                    let n: usize = dim.trim().parse().unwrap();
                    format!("normalizer {}", n + 1)
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        match Lead::read_from(&mut tampered.as_bytes()) {
            Err(LoadError::Format(m)) => assert!(m.contains("normalizer"), "{m}"),
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("model with mismatched normalizer accepted"),
        }
    }

    #[test]
    fn section_for_an_absent_detector_is_a_typed_error() {
        // A NoBac model has no backward detector; grafting a backward
        // section onto it must be rejected, not silently mis-assigned.
        let (samples, db) = tiny_world();
        let cfg = LeadConfig::fast_test();
        let (lead, _) = Lead::fit(&samples, &db, &cfg, LeadOptions::no_bac()).expect("fit");
        let mut buf = Vec::new();
        lead.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let tampered = text.replace("section forward_detector", "section backward_detector");
        match Lead::read_from(&mut tampered.as_bytes()) {
            Err(LoadError::Format(m)) => assert!(m.contains("backward"), "{m}"),
            Err(other) => panic!("unexpected error kind: {other}"),
            Ok(_) => panic!("backward section accepted by a model without one"),
        }
    }

    #[test]
    fn invalid_stored_config_is_a_typed_error() {
        let (samples, db) = tiny_world();
        let cfg = LeadConfig::fast_test();
        let (lead, _) = Lead::fit(&samples, &db, &cfg, LeadOptions::full()).expect("fit");
        let mut buf = Vec::new();
        lead.write_to(&mut buf).unwrap();
        // Tamper with the config line: zero out ae_hidden (5th field after
        // the tag), which must be rejected by validation, not panic.
        let text = String::from_utf8(buf).unwrap();
        let tampered: String = text
            .lines()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("config ") {
                    let mut toks: Vec<String> =
                        rest.split_whitespace().map(str::to_string).collect();
                    toks[4] = "0".to_string();
                    format!("config {}", toks.join(" "))
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        match Lead::read_from(&mut tampered.as_bytes()) {
            Err(LoadError::Config(e)) => assert_eq!(e.field, "ae_hidden"),
            Err(other) => panic!("expected LoadError::Config, got {other}"),
            Ok(_) => panic!("tampered model accepted"),
        }
    }
}
