//! Golden test: the JSONL emitter's exact byte output is part of the
//! contract — downstream log shippers parse it line by line.

use lead_obs::{Probe, Recorder};

#[test]
fn jsonl_output_matches_golden() {
    let r = Recorder::new();
    r.count("processing.points_in", 120);
    r.count("processing.points_in", 30);
    r.count("detect.calls", 1);
    r.gauge("batch.throughput_per_s", 12.5);
    r.observe("ae.epoch_mse", 0.25);
    r.observe("ae.epoch_mse", 0.75);
    r.span_ns("detect", 2_000_000);

    let got = r.snapshot().to_jsonl();
    let want = concat!(
        "{\"kind\":\"counter\",\"name\":\"detect.calls\",\"value\":1}\n",
        "{\"kind\":\"counter\",\"name\":\"processing.points_in\",\"value\":150}\n",
        "{\"kind\":\"gauge\",\"name\":\"batch.throughput_per_s\",\"value\":12.5}\n",
        "{\"kind\":\"histogram\",\"name\":\"ae.epoch_mse\",\"count\":2,\"sum\":1,\"min\":0.25,\"max\":0.75,\"mean\":0.5}\n",
        "{\"kind\":\"span\",\"name\":\"detect\",\"count\":1,\"sum\":2000000,\"min\":2000000,\"max\":2000000,\"mean\":2000000}\n",
    );
    assert_eq!(got, want);
}

#[test]
fn jsonl_is_stable_across_insertion_orders() {
    let a = Recorder::new();
    a.count("x", 1);
    a.count("y", 2);
    let b = Recorder::new();
    b.count("y", 2);
    b.count("x", 1);
    assert_eq!(a.snapshot().to_jsonl(), b.snapshot().to_jsonl());
}
