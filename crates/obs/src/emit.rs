//! Deterministic emitters: JSON Lines (one metric per line) and an aligned
//! text table. Hand-rolled — the workspace builds offline with no
//! dependencies — and hardened against non-finite values, which JSON cannot
//! represent (emitted as `null`).

use crate::recorder::{MetricsSnapshot, Summary};

/// Renders a snapshot as JSON Lines: one object per metric, name-sorted
/// within each kind, kinds in the fixed order counter → gauge → histogram →
/// span. The exact byte output is part of the contract (golden test in
/// `crates/obs/tests/`).
pub fn jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!(
            "{{\"kind\":\"counter\",\"name\":\"{}\",\"value\":{v}}}\n",
            escape(name)
        ));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!(
            "{{\"kind\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
            escape(name),
            json_f64(*v)
        ));
    }
    for (name, s) in &snap.histograms {
        out.push_str(&summary_line("histogram", name, s));
    }
    for (name, s) in &snap.spans {
        out.push_str(&summary_line("span", name, s));
    }
    out
}

/// Renders a snapshot as an aligned text table with KIND / NAME / VALUE
/// columns; span times are shown in milliseconds.
pub fn table(snap: &MetricsSnapshot) -> String {
    let mut rows: Vec<(&'static str, String, String)> = Vec::new();
    for (name, v) in &snap.counters {
        rows.push(("counter", name.clone(), v.to_string()));
    }
    for (name, v) in &snap.gauges {
        rows.push(("gauge", name.clone(), fmt_compact(*v)));
    }
    for (name, s) in &snap.histograms {
        rows.push((
            "histogram",
            name.clone(),
            format!(
                "n={} mean={} min={} max={}",
                s.count,
                fmt_compact(s.mean()),
                fmt_compact(s.min),
                fmt_compact(s.max)
            ),
        ));
    }
    for (name, s) in &snap.spans {
        rows.push((
            "span",
            name.clone(),
            format!(
                "n={} total={} mean={}",
                s.count,
                fmt_ms(s.sum),
                fmt_ms(s.mean())
            ),
        ));
    }
    if rows.is_empty() {
        return "(no metrics recorded)\n".to_string();
    }
    let name_w = rows
        .iter()
        .map(|(_, n, _)| n.len())
        .max()
        .unwrap_or(4)
        .max(4);
    let mut out = format!("{:<9}  {:<name_w$}  VALUE\n", "KIND", "NAME");
    for (kind, name, value) in &rows {
        out.push_str(&format!("{kind:<9}  {name:<name_w$}  {value}\n"));
    }
    out
}

fn summary_line(kind: &str, name: &str, s: &Summary) -> String {
    format!(
        "{{\"kind\":\"{kind}\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{}}}\n",
        escape(name),
        s.count,
        json_f64(s.sum),
        json_f64(s.min),
        json_f64(s.max),
        json_f64(s.mean()),
    )
}

/// JSON string-escapes a metric name.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON cannot represent NaN/∞ — emit `null` for them.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A short decimal rendering: up to six fractional digits, trailing zeros
/// trimmed.
fn fmt_compact(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let s = format!("{v:.6}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() || trimmed == "-" {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

fn fmt_ms(nanos: f64) -> String {
    format!("{}ms", fmt_compact(nanos / 1.0e6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Probe;
    use crate::recorder::Recorder;

    #[test]
    fn names_are_json_escaped() {
        let r = Recorder::new();
        r.count("weird\"name\\with\ncontrol", 1);
        let line = jsonl(&r.snapshot());
        assert!(line.contains("weird\\\"name\\\\with\\ncontrol"));
    }

    #[test]
    fn non_finite_values_become_null() {
        let r = Recorder::new();
        r.gauge("bad", f64::NAN);
        assert!(jsonl(&r.snapshot()).contains("\"value\":null"));
    }

    #[test]
    fn empty_table_has_a_placeholder() {
        let r = Recorder::new();
        assert_eq!(table(&r.snapshot()), "(no metrics recorded)\n");
    }

    #[test]
    fn table_lists_every_kind() {
        let r = Recorder::new();
        r.count("c", 1);
        r.gauge("g", 0.5);
        r.observe("h", 2.0);
        r.span_ns("s", 1_000_000);
        let t = table(&r.snapshot());
        for kind in ["counter", "gauge", "histogram", "span"] {
            assert!(t.contains(kind), "missing {kind} in:\n{t}");
        }
        assert!(t.contains("1ms"), "{t}");
    }

    #[test]
    fn compact_float_trims_trailing_zeros() {
        assert_eq!(fmt_compact(1.0), "1");
        assert_eq!(fmt_compact(0.5), "0.5");
        assert_eq!(fmt_compact(0.0), "0");
        assert_eq!(fmt_compact(-2.25), "-2.25");
    }
}
