//! The [`Probe`] sink trait and its zero-cost no-op implementation.

/// A write-only sink for metrics emitted by instrumented code paths.
///
/// All recording methods default to no-ops, so implementations only override
/// what they care about. Implementations must be `Sync`: a single probe is
/// shared by reference across the data-parallel workers of `lead_nn::par`.
///
/// Instrumented code may call [`Probe::enabled`] to skip preparatory work
/// (metric-name allocation, clock reads) when nothing is listening, but must
/// never branch its *computation* on it — results have to be bit-identical
/// with and without a recording probe attached.
pub trait Probe: Sync {
    /// Whether this probe records anything. Disabled probes let callers skip
    /// clock reads and name formatting entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Adds `delta` to the named monotonic counter.
    fn count(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    fn gauge(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Folds one observation into the named histogram summary.
    fn observe(&self, name: &str, value: f64) {
        let _ = (name, value);
    }

    /// Records one span duration, in nanoseconds, under `name`.
    fn span_ns(&self, name: &str, nanos: u64) {
        let _ = (name, nanos);
    }
}

/// The probe that records nothing; [`Probe::enabled`] returns `false` so
/// instrumented code skips clock reads and allocations on this path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    fn enabled(&self) -> bool {
        false
    }
}

/// A shared [`NoopProbe`] instance, the default sink everywhere a probe is
/// optional (e.g. `DetectOptions::default()` in `lead-core`).
pub static NOOP: NoopProbe = NoopProbe;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_probe_is_disabled_and_inert() {
        assert!(!NOOP.enabled());
        // All sink methods are callable and do nothing.
        NOOP.count("c", 1);
        NOOP.gauge("g", 1.0);
        NOOP.observe("h", 1.0);
        NOOP.span_ns("s", 1);
    }

    #[test]
    fn default_methods_make_enabled_probes_inert_too() {
        struct OnlyCounts(std::sync::atomic::AtomicU64);
        impl Probe for OnlyCounts {
            fn count(&self, _name: &str, delta: u64) {
                self.0
                    .fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let p = OnlyCounts(std::sync::atomic::AtomicU64::new(0));
        assert!(p.enabled());
        p.count("c", 2);
        p.gauge("g", 1.0); // default no-op
        assert_eq!(p.0.load(std::sync::atomic::Ordering::Relaxed), 2);
    }
}
