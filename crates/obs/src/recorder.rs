//! The recording [`Probe`]: a thread-safe, in-memory metrics store with
//! deterministic (name-sorted) snapshots.

use crate::probe::Probe;
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A running `count`/`sum`/`min`/`max` summary of an observation stream
/// (used for both histograms and span durations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation (`+∞` while empty).
    pub min: f64,
    /// Largest observation (`-∞` while empty).
    pub max: f64,
}

impl Summary {
    /// An empty summary, ready to fold observations into.
    pub fn empty() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation in.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// The arithmetic mean, or `0.0` while empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::empty()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Summary>,
    spans: BTreeMap<String, Summary>,
}

/// A [`Probe`] that records everything into four name-keyed maps. Shared by
/// reference across threads; every method takes `&self`.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    // A panicked holder can only have been another probe method; the maps
    // are valid after any interrupted insert, so poisoning is ignored.
    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current value of a counter, or `None` if it was never bumped.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.locked().counters.get(name).copied()
    }

    /// The current value of a gauge, or `None` if it was never set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.locked().gauges.get(name).copied()
    }

    /// An immutable, name-sorted snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.locked();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            spans: inner.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }
}

impl Probe for Recorder {
    fn count(&self, name: &str, delta: u64) {
        let mut inner = self.locked();
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn gauge(&self, name: &str, value: f64) {
        self.locked().gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &str, value: f64) {
        self.locked()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn span_ns(&self, name: &str, nanos: u64) {
        self.locked()
            .spans
            .entry(name.to_string())
            .or_default()
            .record(nanos as f64);
    }
}

/// A point-in-time copy of a [`Recorder`]'s contents, name-sorted within
/// each kind, ready for the [`crate::emit`] emitters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, f64)>,
    /// `(name, summary)` histograms.
    pub histograms: Vec<(String, Summary)>,
    /// `(name, summary)` spans; summaries are in nanoseconds.
    pub spans: Vec<(String, Summary)>,
}

impl MetricsSnapshot {
    /// `true` when nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Renders as JSON Lines (see [`crate::emit::jsonl`]).
    pub fn to_jsonl(&self) -> String {
        crate::emit::jsonl(self)
    }

    /// Renders as an aligned text table (see [`crate::emit::table`]).
    pub fn to_table(&self) -> String {
        crate::emit::table(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshots_sort_by_name() {
        let r = Recorder::new();
        r.count("z.late", 1);
        r.count("a.early", 2);
        r.count("a.early", 3);
        assert_eq!(r.counter("a.early"), Some(5));
        assert_eq!(r.counter("missing"), None);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.early", "z.late"]);
    }

    #[test]
    fn gauges_overwrite_histograms_summarise() {
        let r = Recorder::new();
        r.gauge("g", 1.0);
        r.gauge("g", 2.5);
        assert_eq!(r.gauge_value("g"), Some(2.5));
        r.observe("h", 1.0);
        r.observe("h", 3.0);
        let snap = r.snapshot();
        let (_, s) = &snap.histograms[0];
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 4.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        let r = Recorder::new();
        assert!(r.snapshot().is_empty());
        r.span_ns("s", 10);
        assert!(!r.snapshot().is_empty());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        r.count("n", 1);
                    }
                });
            }
        });
        assert_eq!(r.counter("n"), Some(400));
    }
}
