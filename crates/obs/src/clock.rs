//! The observability layer's only wall-clock home.
//!
//! Alongside `lead_eval::timing`, this module is the only place in
//! result-affecting code allowed to read the wall clock (`lead-lint` rule
//! R5). Durations measured here flow *into* probes and never back into
//! computation, so instrumented runs stay bit-identical to uninstrumented
//! ones.

use crate::probe::Probe;
use std::time::{Duration, Instant};

/// A started wall-clock timer (mirrors `lead_eval::timing::Stopwatch`).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// An RAII span timer created by [`span`]: records the elapsed nanoseconds
/// into its probe when dropped. When the probe is disabled the clock is
/// never read at all.
pub struct Span<'a> {
    probe: &'a dyn Probe,
    name: &'a str,
    started: Option<Instant>,
}

/// Starts a span: the time until the returned guard drops is recorded as
/// `probe.span_ns(name, …)`. Disabled probes skip the clock read entirely,
/// making this free on the no-op path.
pub fn span<'a>(probe: &'a dyn Probe, name: &'a str) -> Span<'a> {
    let started = probe.enabled().then(Instant::now);
    Span {
        probe,
        name,
        started,
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.started {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.probe.span_ns(self.name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::NOOP;
    use crate::recorder::Recorder;

    #[test]
    fn span_records_into_an_enabled_probe() {
        let r = Recorder::new();
        {
            let _guard = span(&r, "work");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans.len(), 1);
        let (name, summary) = &snap.spans[0];
        assert_eq!(name, "work");
        assert_eq!(summary.count, 1);
    }

    #[test]
    fn span_on_a_disabled_probe_never_reads_the_clock() {
        let guard = span(&NOOP, "skipped");
        assert!(guard.started.is_none());
    }

    #[test]
    fn stopwatch_elapsed_is_monotonic() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed() <= sw.elapsed() + Duration::from_nanos(1));
    }
}
