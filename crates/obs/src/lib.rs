//! Deterministic, dependency-free observability for the LEAD workspace.
//!
//! Counters, gauges, histogram summaries, and span timers live behind the
//! [`probe::Probe`] trait: instrumented code emits into a `&dyn Probe` and
//! never reads anything back. The default sink is the zero-cost
//! [`probe::NoopProbe`]; attach a [`recorder::Recorder`] to capture metrics
//! and render them with the [`emit`] JSONL / text-table emitters.
//!
//! # Determinism contract
//!
//! Metric values must never feed back into computation: a run with a
//! recording probe attached is bit-identical to a run without one (pinned by
//! `crates/core/tests/obs_parity.rs`). Every wall-clock read behind this
//! layer happens in [`clock`] — alongside `lead_eval::timing`, the only
//! sanctioned clock home under `lead-lint` rule R5.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod clock;
pub mod emit;
pub mod probe;
pub mod recorder;

pub use probe::{NoopProbe, Probe, NOOP};
pub use recorder::{MetricsSnapshot, Recorder, Summary};
