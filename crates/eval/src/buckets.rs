//! The paper's stay-point-count buckets (Table III header).

/// A stay-point-count bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// 3–5 stay points (22 % of the paper's test set).
    B3to5,
    /// 6–8 stay points (34 %).
    B6to8,
    /// 9–11 stay points (25 %).
    B9to11,
    /// 12–14 stay points (19 %).
    B12to14,
}

impl Bucket {
    /// All buckets in order.
    pub const ALL: [Bucket; 4] = [
        Bucket::B3to5,
        Bucket::B6to8,
        Bucket::B9to11,
        Bucket::B12to14,
    ];

    /// The bucket of a trajectory with `n` extracted stay points.
    ///
    /// Counts outside 3–14 are clamped to the nearest bucket: extraction on
    /// noisy data occasionally merges or splits a stay, and the paper's
    /// buckets jointly cover its whole test set.
    pub fn of(n: usize) -> Bucket {
        match n {
            0..=5 => Bucket::B3to5,
            6..=8 => Bucket::B6to8,
            9..=11 => Bucket::B9to11,
            _ => Bucket::B12to14,
        }
    }

    /// Dense index 0..4.
    pub fn index(self) -> usize {
        match self {
            Bucket::B3to5 => 0,
            Bucket::B6to8 => 1,
            Bucket::B9to11 => 2,
            Bucket::B12to14 => 3,
        }
    }

    /// The paper's column label.
    pub fn label(self) -> &'static str {
        match self {
            Bucket::B3to5 => "3~5",
            Bucket::B6to8 => "6~8",
            Bucket::B9to11 => "9~11",
            Bucket::B12to14 => "12~14",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_the_paper() {
        assert_eq!(Bucket::of(3), Bucket::B3to5);
        assert_eq!(Bucket::of(5), Bucket::B3to5);
        assert_eq!(Bucket::of(6), Bucket::B6to8);
        assert_eq!(Bucket::of(8), Bucket::B6to8);
        assert_eq!(Bucket::of(9), Bucket::B9to11);
        assert_eq!(Bucket::of(11), Bucket::B9to11);
        assert_eq!(Bucket::of(12), Bucket::B12to14);
        assert_eq!(Bucket::of(14), Bucket::B12to14);
    }

    #[test]
    fn out_of_range_counts_clamp() {
        assert_eq!(Bucket::of(2), Bucket::B3to5);
        assert_eq!(Bucket::of(20), Bucket::B12to14);
    }

    #[test]
    fn indexes_are_dense() {
        for (i, b) in Bucket::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
    }
}
