//! Per-scenario robustness evaluation: accuracy and IoU under each named GPS
//! pathology, reported scenario by scenario and never averaged away.
//!
//! Protocol: the model trains **once** on the clean (baseline) world — real
//! deployments train on curated historical data — then sweeps the test split
//! of every [`ScenarioKind`], each generated from the same clean world with
//! one pathology injected (see [`lead_synth::scenario`]). Because the splits
//! are disjoint-truck and every injection is seeded, each scenario row is a
//! bit-reproducible measurement of *how much that pathology costs* the
//! method.

use crate::metrics::{BucketAccuracy, BucketIou};
use crate::runner::{sweep_test_split, train_method, Method};
use lead_baselines::SpRnnConfig;
use lead_core::config::LeadConfig;
use lead_core::LeadError;
use lead_obs::probe::Probe;
use lead_synth::{
    generate_dataset, generate_scenario_dataset, ScenarioConfig, ScenarioKind, SynthConfig,
};

/// One scenario row: the method's measurements on that scenario's test split.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Which pathology this row measures.
    pub scenario: ScenarioKind,
    /// The evaluated method's name.
    pub method: &'static str,
    /// Per-bucket and overall accuracy on the scenario's test split.
    pub accuracy: BucketAccuracy,
    /// Per-bucket mean temporal IoU of detected vs true loaded intervals.
    pub iou: BucketIou,
    /// Test samples whose ground truth did not survive processing under the
    /// pathology (dropped stays, unmappable labels) — itself a robustness
    /// signal, so it is reported, not hidden.
    pub excluded_test_samples: usize,
}

/// Trains `method` once on the clean world of `base` and sweeps the test
/// split of every scenario in [`ScenarioKind::ALL`] (baseline first, as the
/// control row). `scenario_seed` seeds every injection stream.
///
/// # Errors
/// Returns a [`LeadError`] when training fails (same contract as
/// [`crate::runner::train_and_evaluate`]); sweeps themselves cannot fail —
/// unmappable samples are counted in
/// [`ScenarioOutcome::excluded_test_samples`].
pub fn evaluate_scenarios(
    method: Method,
    base: &SynthConfig,
    scenario_seed: u64,
    lead_config: &LeadConfig,
    rnn_config: &SpRnnConfig,
    probe: &dyn Probe,
) -> Result<Vec<ScenarioOutcome>, LeadError> {
    let clean = generate_dataset(base);
    let (model, _report) = train_method(
        method,
        &clean.train,
        &clean.val,
        &clean.city.poi_db,
        lead_config,
        rnn_config,
        probe,
    )?;

    let mut outcomes = Vec::with_capacity(ScenarioKind::ALL.len());
    for kind in ScenarioKind::ALL {
        let sc = ScenarioConfig::new(kind, scenario_seed);
        // The baseline row reuses the already-generated clean dataset; every
        // other scenario regenerates the same world (identical seeds) with
        // its pathology injected.
        let ds;
        let test = if kind == ScenarioKind::Baseline {
            &clean.test
        } else {
            ds = generate_scenario_dataset(base, &sc);
            &ds.test
        };
        let stats = sweep_test_split(&model, test, &clean.city.poi_db, lead_config, probe);
        outcomes.push(ScenarioOutcome {
            scenario: kind,
            method: model.name,
            accuracy: stats.accuracy,
            iou: stats.iou,
            excluded_test_samples: stats.excluded_test_samples,
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_obs::probe::NOOP;

    #[test]
    fn scenario_suite_produces_one_row_per_scenario() {
        let base = SynthConfig::tiny();
        let rows = evaluate_scenarios(
            Method::SpR,
            &base,
            7,
            &LeadConfig::fast_test(),
            &SpRnnConfig::fast_test(),
            &NOOP,
        )
        .expect("suite");
        assert_eq!(rows.len(), ScenarioKind::ALL.len());
        for (row, kind) in rows.iter().zip(ScenarioKind::ALL) {
            assert_eq!(row.scenario, kind);
            assert_eq!(row.method, "SP-R");
            // Every scenario keeps enough usable samples to be scored: a
            // pathology that silently excluded the whole split would report
            // an empty row instead of failing loudly here.
            assert!(
                row.accuracy.total() + row.excluded_test_samples > 0,
                "{}: empty row",
                kind.label()
            );
        }
        let baseline = &rows[0];
        assert!(baseline.accuracy.total() > 0, "baseline row unscored");
    }
}
