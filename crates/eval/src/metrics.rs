//! The detection-accuracy metric `Acc` (Equation (14)), per bucket.

use crate::buckets::Bucket;
use std::fmt;

/// A malformed time interval handed to [`interval_iou`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalError {
    /// The detected interval ends before it starts.
    ReversedDetected {
        /// The offending `(start_s, end_s)` pair.
        interval: (i64, i64),
    },
    /// The ground-truth interval ends before it starts.
    ReversedTruth {
        /// The offending `(start_s, end_s)` pair.
        interval: (i64, i64),
    },
}

impl fmt::Display for IntervalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntervalError::ReversedDetected { interval } => {
                write!(
                    f,
                    "reversed detected interval ({}, {})",
                    interval.0, interval.1
                )
            }
            IntervalError::ReversedTruth { interval } => {
                write!(
                    f,
                    "reversed ground-truth interval ({}, {})",
                    interval.0, interval.1
                )
            }
        }
    }
}

impl std::error::Error for IntervalError {}

/// Hit/total counters per stay-point bucket plus overall.
#[derive(Debug, Clone, Default)]
pub struct BucketAccuracy {
    hits: [usize; 4],
    totals: [usize; 4],
}

impl BucketAccuracy {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one test sample with `n_stays` extracted stay points.
    pub fn record(&mut self, n_stays: usize, hit: bool) {
        let b = Bucket::of(n_stays).index();
        self.totals[b] += 1;
        if hit {
            self.hits[b] += 1;
        }
    }

    /// Accuracy (%) within one bucket; `None` for an empty bucket.
    pub fn acc(&self, bucket: Bucket) -> Option<f64> {
        let i = bucket.index();
        (self.totals[i] > 0).then(|| self.hits[i] as f64 / self.totals[i] as f64 * 100.0)
    }

    /// Overall accuracy (%) across all buckets; `None` when empty.
    pub fn overall(&self) -> Option<f64> {
        let total: usize = self.totals.iter().sum();
        let hits: usize = self.hits.iter().sum();
        (total > 0).then(|| hits as f64 / total as f64 * 100.0)
    }

    /// Number of samples in one bucket.
    pub fn count(&self, bucket: Bucket) -> usize {
        self.totals[bucket.index()]
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> usize {
        self.totals.iter().sum()
    }

    /// Share (%) of samples falling in one bucket (the paper's "Percentage"
    /// header row); `None` when nothing recorded.
    pub fn share(&self, bucket: Bucket) -> Option<f64> {
        let total = self.total();
        (total > 0).then(|| self.count(bucket) as f64 / total as f64 * 100.0)
    }
}

/// Temporal intersection-over-union between the detected and ground-truth
/// loaded intervals (seconds) — a *soft* companion to the paper's exact-hit
/// `Acc`: a detection that misses one stay point by one position can still
/// cover 90 %+ of the true loaded time span, which matters for downstream
/// uses like compliance auditing.
///
/// Returns a value in `[0, 1]`; 1 iff the (non-degenerate) intervals
/// coincide. A degenerate-but-ordered interval — a single-timestamp
/// detection or truth span, `start == end` — scores `0.0`: it covers no
/// time, so its overlap with anything is empty. This keeps a pathological
/// one-point detection from aborting a whole evaluation sweep (the R2
/// panic-freedom contract for library crates).
///
/// # Errors
/// Returns [`IntervalError`] when either interval is reversed
/// (`start > end`) — that is a caller bug, not a degenerate detection, and
/// silently scoring it would mask it.
pub fn interval_iou(detected: (i64, i64), truth: (i64, i64)) -> Result<f64, IntervalError> {
    if detected.0 > detected.1 {
        return Err(IntervalError::ReversedDetected { interval: detected });
    }
    if truth.0 > truth.1 {
        return Err(IntervalError::ReversedTruth { interval: truth });
    }
    if detected.0 == detected.1 || truth.0 == truth.1 {
        return Ok(0.0);
    }
    let inter = (detected.1.min(truth.1) - detected.0.max(truth.0)).max(0);
    let union = (detected.1.max(truth.1) - detected.0.min(truth.0)).max(1);
    Ok(inter as f64 / union as f64)
}

/// Accumulates mean temporal IoU per bucket.
#[derive(Debug, Clone, Default)]
pub struct BucketIou {
    sums: [f64; 4],
    counts: [usize; 4],
}

impl BucketIou {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one detection's interval IoU.
    pub fn record(&mut self, n_stays: usize, iou: f64) {
        debug_assert!((0.0..=1.0).contains(&iou));
        let b = Bucket::of(n_stays).index();
        self.sums[b] += iou;
        self.counts[b] += 1;
    }

    /// Mean IoU within a bucket; `None` when empty.
    pub fn mean(&self, bucket: Bucket) -> Option<f64> {
        let i = bucket.index();
        (self.counts[i] > 0).then(|| self.sums[i] / self.counts[i] as f64)
    }

    /// Overall mean IoU.
    pub fn overall(&self) -> Option<f64> {
        let n: usize = self.counts.iter().sum();
        (n > 0).then(|| self.sums.iter().sum::<f64>() / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iou_identities() {
        assert_eq!(interval_iou((0, 100), (0, 100)), Ok(1.0));
        assert_eq!(interval_iou((0, 50), (50, 100)), Ok(0.0));
        let third = interval_iou((0, 100), (50, 150)).unwrap();
        assert!((third - 1.0 / 3.0).abs() < 1e-12);
        // Containment: |inner| / |outer|.
        let half = interval_iou((25, 75), (0, 100)).unwrap();
        assert!((half - 0.5).abs() < 1e-12);
        // Symmetry.
        assert_eq!(
            interval_iou((0, 60), (30, 90)),
            interval_iou((30, 90), (0, 60))
        );
    }

    #[test]
    fn degenerate_but_ordered_intervals_score_zero() {
        // A single-timestamp detection used to panic the eval runner
        // mid-sweep; it now scores zero overlap.
        assert_eq!(interval_iou((10, 10), (0, 100)), Ok(0.0));
        assert_eq!(interval_iou((0, 100), (10, 10)), Ok(0.0));
        assert_eq!(interval_iou((10, 10), (10, 10)), Ok(0.0));
    }

    #[test]
    fn reversed_intervals_are_typed_errors() {
        assert_eq!(
            interval_iou((20, 10), (0, 100)),
            Err(IntervalError::ReversedDetected { interval: (20, 10) })
        );
        assert_eq!(
            interval_iou((0, 100), (90, 3)),
            Err(IntervalError::ReversedTruth { interval: (90, 3) })
        );
        let msg = interval_iou((20, 10), (0, 100)).unwrap_err().to_string();
        assert!(msg.contains("reversed detected interval (20, 10)"), "{msg}");
    }

    #[test]
    fn bucket_iou_means() {
        let mut b = BucketIou::new();
        b.record(4, 1.0);
        b.record(4, 0.5);
        b.record(10, 0.2);
        assert_eq!(b.mean(Bucket::B3to5), Some(0.75));
        assert_eq!(b.mean(Bucket::B9to11), Some(0.2));
        assert_eq!(b.mean(Bucket::B6to8), None);
        assert!((b.overall().unwrap() - 1.7 / 3.0).abs() < 1e-12);
        assert_eq!(BucketIou::new().overall(), None);
    }

    #[test]
    fn accuracy_per_bucket_and_overall() {
        let mut acc = BucketAccuracy::new();
        acc.record(4, true);
        acc.record(4, false);
        acc.record(7, true);
        acc.record(13, true);
        assert_eq!(acc.acc(Bucket::B3to5), Some(50.0));
        assert_eq!(acc.acc(Bucket::B6to8), Some(100.0));
        assert_eq!(acc.acc(Bucket::B9to11), None);
        assert_eq!(acc.acc(Bucket::B12to14), Some(100.0));
        assert_eq!(acc.overall(), Some(75.0));
        assert_eq!(acc.total(), 4);
        assert_eq!(acc.share(Bucket::B3to5), Some(50.0));
    }

    #[test]
    fn empty_accumulator_reports_none() {
        let acc = BucketAccuracy::new();
        assert_eq!(acc.overall(), None);
        assert_eq!(acc.acc(Bucket::B3to5), None);
        assert_eq!(acc.share(Bucket::B6to8), None);
    }
}
