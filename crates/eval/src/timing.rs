//! Per-bucket mean inference time (Figure 8).
//!
//! This module is the workspace's only sanctioned home for wall-clock reads
//! in result-affecting crates (lint rule R5): timing is a *reported metric*
//! here, never an input to detection. Everything else must take a
//! [`Stopwatch`] or a [`Duration`] instead of touching the clock.

use crate::buckets::Bucket;
use std::time::{Duration, Instant};

/// A started wall-clock timer.
///
/// The sanctioned way to measure training/inference wall-clock outside this
/// module: callers start a `Stopwatch` and read [`Self::elapsed`], keeping
/// the raw `Instant::now` calls confined to this R5-exempt file.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Time elapsed since [`Self::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// Inference-time accumulator per stay-point bucket.
#[derive(Debug, Clone, Default)]
pub struct BucketTiming {
    sums: [Duration; 4],
    counts: [usize; 4],
}

impl BucketTiming {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one detection's wall-clock duration.
    pub fn record(&mut self, n_stays: usize, elapsed: Duration) {
        let b = Bucket::of(n_stays).index();
        self.sums[b] += elapsed;
        self.counts[b] += 1;
    }

    /// Mean inference time in milliseconds for one bucket; `None` when empty.
    pub fn mean_ms(&self, bucket: Bucket) -> Option<f64> {
        let i = bucket.index();
        (self.counts[i] > 0).then(|| self.sums[i].as_secs_f64() * 1_000.0 / self.counts[i] as f64)
    }

    /// Mean inference time in milliseconds across all buckets.
    pub fn overall_mean_ms(&self) -> Option<f64> {
        let total: usize = self.counts.iter().sum();
        let sum: Duration = self.sums.iter().sum();
        (total > 0).then(|| sum.as_secs_f64() * 1_000.0 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_are_per_bucket() {
        let mut t = BucketTiming::new();
        t.record(4, Duration::from_millis(10));
        t.record(4, Duration::from_millis(30));
        t.record(10, Duration::from_millis(100));
        assert_eq!(t.mean_ms(Bucket::B3to5), Some(20.0));
        assert_eq!(t.mean_ms(Bucket::B9to11), Some(100.0));
        assert_eq!(t.mean_ms(Bucket::B6to8), None);
        assert_eq!(t.overall_mean_ms(), Some(140.0 / 3.0));
    }

    #[test]
    fn empty_reports_none() {
        assert_eq!(BucketTiming::new().overall_mean_ms(), None);
    }
}
