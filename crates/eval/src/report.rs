//! Paper-style text tables and CSV emission.

use crate::buckets::Bucket;
use crate::runner::EvalOutcome;
use crate::scenarios::ScenarioOutcome;

/// Formats outcomes as the paper's accuracy table (Tables III / IV): one row
/// per method, one column per stay-point bucket plus the overall column.
pub fn accuracy_table(title: &str, outcomes: &[EvalOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "Acc(%)", "3~5", "6~8", "9~11", "12~14", "3~14"
    ));
    if let Some(first) = outcomes.first() {
        let [s0, s1, s2, s3] = Bucket::ALL.map(|b| match first.accuracy.share(b) {
            Some(p) => format!("({p:.0}%)"),
            None => "(-)".into(),
        });
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "#Samples", s0, s1, s2, s3, "(100%)"
        ));
    }
    for o in outcomes {
        let [c0, c1, c2, c3] = Bucket::ALL.map(|b| fmt_pct(o.accuracy.acc(b)));
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            o.name,
            c0,
            c1,
            c2,
            c3,
            fmt_pct(o.accuracy.overall())
        ));
    }
    s
}

/// Formats outcomes as the paper's Figure 8 data: mean inference time (ms)
/// per bucket per method.
pub fn timing_table(title: &str, outcomes: &[EvalOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "Time(ms)", "3~5", "6~8", "9~11", "12~14", "3~14"
    ));
    for o in outcomes {
        let [c0, c1, c2, c3] = Bucket::ALL.map(|b| fmt_ms(o.timing.mean_ms(b)));
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            o.name,
            c0,
            c1,
            c2,
            c3,
            fmt_ms(o.timing.overall_mean_ms())
        ));
    }
    s
}

/// Formats outcomes as a mean temporal-IoU table (soft accuracy; not in the
/// paper, see EXPERIMENTS.md).
pub fn iou_table(title: &str, outcomes: &[EvalOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "IoU", "3~5", "6~8", "9~11", "12~14", "3~14"
    ));
    for o in outcomes {
        let [c0, c1, c2, c3] = Bucket::ALL.map(|b| match o.iou.mean(b) {
            Some(v) => format!("{v:.3}"),
            None => "-".into(),
        });
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            o.name,
            c0,
            c1,
            c2,
            c3,
            match o.iou.overall() {
                Some(v) => format!("{v:.3}"),
                None => "-".into(),
            }
        ));
    }
    s
}

/// Formats a per-epoch loss curve (Figures 9–10) as `epoch,loss` CSV lines.
pub fn curve_csv(name: &str, curve: &[f32]) -> String {
    let mut s = String::from("series,epoch,loss\n");
    for (i, l) in curve.iter().enumerate() {
        s.push_str(&format!("{name},{},{l:.6}\n", i + 1));
    }
    s
}

/// CSV rows of an accuracy table (`method,bucket,accuracy_pct`).
pub fn accuracy_csv(outcomes: &[EvalOutcome]) -> String {
    let mut s = String::from("method,bucket,accuracy_pct\n");
    for o in outcomes {
        for &b in &Bucket::ALL {
            if let Some(a) = o.accuracy.acc(b) {
                s.push_str(&format!("{},{},{a:.2}\n", o.name, b.label()));
            }
        }
        if let Some(a) = o.accuracy.overall() {
            s.push_str(&format!("{},3~14,{a:.2}\n", o.name));
        }
    }
    s
}

/// Formats scenario rows as a Table III-style robustness table: one row per
/// scenario (baseline first), per-bucket accuracy columns, overall accuracy,
/// mean IoU, and the excluded-sample count. Rows are never merged — the
/// point of the suite is that no pathology hides inside an average.
pub fn scenario_table(title: &str, rows: &[ScenarioOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    if let Some(first) = rows.first() {
        s.push_str(&format!("method: {}\n", first.method));
    }
    s.push_str(&format!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8} {:>6}\n",
        "Scenario", "#Samples", "3~5", "6~8", "9~11", "12~14", "Acc(3~14)", "IoU", "Excl"
    ));
    for r in rows {
        let [c0, c1, c2, c3] = Bucket::ALL.map(|b| fmt_pct(r.accuracy.acc(b)));
        s.push_str(&format!(
            "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8} {:>6}\n",
            r.scenario.label(),
            r.accuracy.total(),
            c0,
            c1,
            c2,
            c3,
            fmt_pct(r.accuracy.overall()),
            match r.iou.overall() {
                Some(v) => format!("{v:.3}"),
                None => "-".into(),
            },
            r.excluded_test_samples
        ));
    }
    s
}

/// CSV rows of a scenario table
/// (`method,scenario,samples,excluded,accuracy_pct,mean_iou`); accuracy and
/// IoU are the scenario-overall values, one row per scenario.
pub fn scenario_csv(rows: &[ScenarioOutcome]) -> String {
    let mut s = String::from("method,scenario,samples,excluded,accuracy_pct,mean_iou\n");
    for r in rows {
        s.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.method,
            r.scenario.label(),
            r.accuracy.total(),
            r.excluded_test_samples,
            match r.accuracy.overall() {
                Some(a) => format!("{a:.2}"),
                None => "-".into(),
            },
            match r.iou.overall() {
                Some(v) => format!("{v:.4}"),
                None => "-".into(),
            }
        ));
    }
    s
}

fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(p) => format!("{p:.1}"),
        None => "-".into(),
    }
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.2}"),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BucketAccuracy, BucketIou};
    use crate::timing::BucketTiming;
    use lead_core::pipeline::TrainingReport;
    use std::time::Duration;

    fn outcome() -> EvalOutcome {
        let mut accuracy = BucketAccuracy::new();
        accuracy.record(4, true);
        accuracy.record(7, false);
        let mut timing = BucketTiming::new();
        timing.record(4, Duration::from_millis(5));
        timing.record(7, Duration::from_millis(9));
        let mut iou = BucketIou::new();
        iou.record(4, 1.0);
        iou.record(7, 0.4);
        EvalOutcome {
            name: "LEAD",
            accuracy,
            timing,
            iou,
            report: TrainingReport::default(),
            train_seconds: 1.0,
            excluded_test_samples: 0,
        }
    }

    #[test]
    fn accuracy_table_contains_rows_and_headers() {
        let t = accuracy_table("Table III", &[outcome()]);
        assert!(t.contains("Table III"));
        assert!(t.contains("3~5"));
        assert!(t.contains("LEAD"));
        assert!(t.contains("100.0"));
        assert!(t.contains("50.0")); // overall
    }

    #[test]
    fn timing_table_contains_ms() {
        let t = timing_table("Figure 8", &[outcome()]);
        assert!(t.contains("5.00"));
        assert!(t.contains("9.00"));
    }

    #[test]
    fn iou_table_formats_means() {
        let t = iou_table("Soft accuracy", &[outcome()]);
        assert!(t.contains("1.000"));
        assert!(t.contains("0.400"));
        assert!(t.contains("0.700")); // overall mean
    }

    #[test]
    fn curve_csv_is_one_line_per_epoch() {
        let csv = curve_csv("HA in LEAD", &[0.5, 0.25]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("HA in LEAD,2,0.250000"));
    }

    #[test]
    fn accuracy_csv_has_per_bucket_rows() {
        let csv = accuracy_csv(&[outcome()]);
        assert!(csv.contains("LEAD,3~5,100.00"));
        assert!(csv.contains("LEAD,3~14,50.00"));
    }

    fn scenario_rows() -> Vec<ScenarioOutcome> {
        use lead_synth::ScenarioKind;
        ScenarioKind::ALL
            .iter()
            .map(|&kind| {
                let mut accuracy = BucketAccuracy::new();
                accuracy.record(4, kind == ScenarioKind::Baseline);
                let mut iou = BucketIou::new();
                iou.record(4, 0.75);
                ScenarioOutcome {
                    scenario: kind,
                    method: "SP-R",
                    accuracy,
                    iou,
                    excluded_test_samples: kind.index(),
                }
            })
            .collect()
    }

    #[test]
    fn scenario_table_has_one_row_per_scenario() {
        let t = scenario_table("Robustness per scenario", &scenario_rows());
        assert!(t.contains("method: SP-R"));
        for label in [
            "baseline",
            "tunnel-dropout",
            "clock-skew",
            "spoof-jump",
            "mixed-rates",
            "multi-leg",
        ] {
            assert!(t.contains(label), "missing row `{label}`:\n{t}");
        }
        assert!(t.contains("0.750"));
    }

    #[test]
    fn scenario_csv_keeps_scenarios_separate() {
        let csv = scenario_csv(&scenario_rows());
        assert_eq!(csv.lines().count(), 1 + 6);
        assert!(csv.contains("SP-R,baseline,1,0,100.00,0.7500"));
        assert!(csv.contains("SP-R,multi-leg,1,5,0.00,0.7500"));
    }
}
