//! Paper-style text tables and CSV emission.

use crate::buckets::Bucket;
use crate::runner::EvalOutcome;

/// Formats outcomes as the paper's accuracy table (Tables III / IV): one row
/// per method, one column per stay-point bucket plus the overall column.
pub fn accuracy_table(title: &str, outcomes: &[EvalOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "Acc(%)", "3~5", "6~8", "9~11", "12~14", "3~14"
    ));
    if let Some(first) = outcomes.first() {
        let [s0, s1, s2, s3] = Bucket::ALL.map(|b| match first.accuracy.share(b) {
            Some(p) => format!("({p:.0}%)"),
            None => "(-)".into(),
        });
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            "#Samples", s0, s1, s2, s3, "(100%)"
        ));
    }
    for o in outcomes {
        let [c0, c1, c2, c3] = Bucket::ALL.map(|b| fmt_pct(o.accuracy.acc(b)));
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            o.name,
            c0,
            c1,
            c2,
            c3,
            fmt_pct(o.accuracy.overall())
        ));
    }
    s
}

/// Formats outcomes as the paper's Figure 8 data: mean inference time (ms)
/// per bucket per method.
pub fn timing_table(title: &str, outcomes: &[EvalOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "Time(ms)", "3~5", "6~8", "9~11", "12~14", "3~14"
    ));
    for o in outcomes {
        let [c0, c1, c2, c3] = Bucket::ALL.map(|b| fmt_ms(o.timing.mean_ms(b)));
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            o.name,
            c0,
            c1,
            c2,
            c3,
            fmt_ms(o.timing.overall_mean_ms())
        ));
    }
    s
}

/// Formats outcomes as a mean temporal-IoU table (soft accuracy; not in the
/// paper, see EXPERIMENTS.md).
pub fn iou_table(title: &str, outcomes: &[EvalOutcome]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
        "IoU", "3~5", "6~8", "9~11", "12~14", "3~14"
    ));
    for o in outcomes {
        let [c0, c1, c2, c3] = Bucket::ALL.map(|b| match o.iou.mean(b) {
            Some(v) => format!("{v:.3}"),
            None => "-".into(),
        });
        s.push_str(&format!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>12}\n",
            o.name,
            c0,
            c1,
            c2,
            c3,
            match o.iou.overall() {
                Some(v) => format!("{v:.3}"),
                None => "-".into(),
            }
        ));
    }
    s
}

/// Formats a per-epoch loss curve (Figures 9–10) as `epoch,loss` CSV lines.
pub fn curve_csv(name: &str, curve: &[f32]) -> String {
    let mut s = String::from("series,epoch,loss\n");
    for (i, l) in curve.iter().enumerate() {
        s.push_str(&format!("{name},{},{l:.6}\n", i + 1));
    }
    s
}

/// CSV rows of an accuracy table (`method,bucket,accuracy_pct`).
pub fn accuracy_csv(outcomes: &[EvalOutcome]) -> String {
    let mut s = String::from("method,bucket,accuracy_pct\n");
    for o in outcomes {
        for &b in &Bucket::ALL {
            if let Some(a) = o.accuracy.acc(b) {
                s.push_str(&format!("{},{},{a:.2}\n", o.name, b.label()));
            }
        }
        if let Some(a) = o.accuracy.overall() {
            s.push_str(&format!("{},3~14,{a:.2}\n", o.name));
        }
    }
    s
}

fn fmt_pct(v: Option<f64>) -> String {
    match v {
        Some(p) => format!("{p:.1}"),
        None => "-".into(),
    }
}

fn fmt_ms(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.2}"),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BucketAccuracy, BucketIou};
    use crate::timing::BucketTiming;
    use lead_core::pipeline::TrainingReport;
    use std::time::Duration;

    fn outcome() -> EvalOutcome {
        let mut accuracy = BucketAccuracy::new();
        accuracy.record(4, true);
        accuracy.record(7, false);
        let mut timing = BucketTiming::new();
        timing.record(4, Duration::from_millis(5));
        timing.record(7, Duration::from_millis(9));
        let mut iou = BucketIou::new();
        iou.record(4, 1.0);
        iou.record(7, 0.4);
        EvalOutcome {
            name: "LEAD",
            accuracy,
            timing,
            iou,
            report: TrainingReport::default(),
            train_seconds: 1.0,
            excluded_test_samples: 0,
        }
    }

    #[test]
    fn accuracy_table_contains_rows_and_headers() {
        let t = accuracy_table("Table III", &[outcome()]);
        assert!(t.contains("Table III"));
        assert!(t.contains("3~5"));
        assert!(t.contains("LEAD"));
        assert!(t.contains("100.0"));
        assert!(t.contains("50.0")); // overall
    }

    #[test]
    fn timing_table_contains_ms() {
        let t = timing_table("Figure 8", &[outcome()]);
        assert!(t.contains("5.00"));
        assert!(t.contains("9.00"));
    }

    #[test]
    fn iou_table_formats_means() {
        let t = iou_table("Soft accuracy", &[outcome()]);
        assert!(t.contains("1.000"));
        assert!(t.contains("0.400"));
        assert!(t.contains("0.700")); // overall mean
    }

    #[test]
    fn curve_csv_is_one_line_per_epoch() {
        let csv = curve_csv("HA in LEAD", &[0.5, 0.25]);
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("HA in LEAD,2,0.250000"));
    }

    #[test]
    fn accuracy_csv_has_per_bucket_rows() {
        let csv = accuracy_csv(&[outcome()]);
        assert!(csv.contains("LEAD,3~5,100.00"));
        assert!(csv.contains("LEAD,3~14,50.00"));
    }
}
