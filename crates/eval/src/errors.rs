//! Error analysis beyond the paper's exact-hit `Acc`: where do detections go
//! wrong?
//!
//! A miss can still be useful to a regulator (one endpoint right, the other
//! off by one stay). This module decomposes detections into endpoint-level
//! outcomes, which the EXPERIMENTS discussion uses to characterise the
//! residual errors of the scaled-down reproduction.

use lead_core::processing::Candidate;

/// Endpoint-level outcome of one detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionOutcome {
    /// Both endpoints exact (the paper's "hit").
    Exact,
    /// The loading stay is right, the unloading stay is not.
    LoadingOnly,
    /// The unloading stay is right, the loading stay is not.
    UnloadingOnly,
    /// Both endpoints wrong.
    BothWrong,
}

/// Aggregated endpoint-level error statistics.
#[derive(Debug, Clone, Default)]
pub struct ErrorBreakdown {
    exact: usize,
    loading_only: usize,
    unloading_only: usize,
    both_wrong: usize,
    /// Sum of |detected − truth| over both endpoints (stay-index distance).
    total_offset: usize,
}

impl ErrorBreakdown {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies and records one detection against its ground truth.
    pub fn record(&mut self, detected: Candidate, truth: Candidate) -> DetectionOutcome {
        let load_ok = detected.start_sp == truth.start_sp;
        let unload_ok = detected.end_sp == truth.end_sp;
        let outcome = match (load_ok, unload_ok) {
            (true, true) => DetectionOutcome::Exact,
            (true, false) => DetectionOutcome::LoadingOnly,
            (false, true) => DetectionOutcome::UnloadingOnly,
            (false, false) => DetectionOutcome::BothWrong,
        };
        match outcome {
            DetectionOutcome::Exact => self.exact += 1,
            DetectionOutcome::LoadingOnly => self.loading_only += 1,
            DetectionOutcome::UnloadingOnly => self.unloading_only += 1,
            DetectionOutcome::BothWrong => self.both_wrong += 1,
        }
        self.total_offset +=
            detected.start_sp.abs_diff(truth.start_sp) + detected.end_sp.abs_diff(truth.end_sp);
        outcome
    }

    /// Number of recorded detections.
    pub fn total(&self) -> usize {
        self.exact + self.loading_only + self.unloading_only + self.both_wrong
    }

    /// Share (%) of exact hits.
    pub fn exact_pct(&self) -> Option<f64> {
        self.pct(self.exact)
    }

    /// Share (%) of detections with at least one correct endpoint.
    pub fn partial_or_better_pct(&self) -> Option<f64> {
        self.pct(self.exact + self.loading_only + self.unloading_only)
    }

    /// Mean stay-index offset per detection (0 for all-exact).
    pub fn mean_offset(&self) -> Option<f64> {
        (self.total() > 0).then(|| self.total_offset as f64 / self.total() as f64)
    }

    fn pct(&self, count: usize) -> Option<f64> {
        (self.total() > 0).then(|| count as f64 / self.total() as f64 * 100.0)
    }

    /// A one-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} detections: {} exact, {} loading-only, {} unloading-only, {} both-wrong (mean offset {:.2})",
            self.total(),
            self.exact,
            self.loading_only,
            self.unloading_only,
            self.both_wrong,
            self.mean_offset().unwrap_or(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(a: usize, b: usize) -> Candidate {
        Candidate::new(a, b)
    }

    #[test]
    fn outcomes_are_classified() {
        let mut e = ErrorBreakdown::new();
        assert_eq!(e.record(c(1, 3), c(1, 3)), DetectionOutcome::Exact);
        assert_eq!(e.record(c(1, 4), c(1, 3)), DetectionOutcome::LoadingOnly);
        assert_eq!(e.record(c(0, 3), c(1, 3)), DetectionOutcome::UnloadingOnly);
        assert_eq!(e.record(c(0, 5), c(1, 3)), DetectionOutcome::BothWrong);
        assert_eq!(e.total(), 4);
        assert_eq!(e.exact_pct(), Some(25.0));
        assert_eq!(e.partial_or_better_pct(), Some(75.0));
    }

    #[test]
    fn mean_offset_counts_both_endpoints() {
        let mut e = ErrorBreakdown::new();
        e.record(c(1, 3), c(1, 3)); // offset 0
        e.record(c(0, 5), c(2, 3)); // offset 2 + 2 = 4
        assert_eq!(e.mean_offset(), Some(2.0));
    }

    #[test]
    fn empty_breakdown_reports_none() {
        let e = ErrorBreakdown::new();
        assert_eq!(e.exact_pct(), None);
        assert_eq!(e.mean_offset(), None);
        assert!(e.summary().contains("0 detections"));
    }
}
