//! Experiment harness regenerating the paper's evaluation (Section VI):
//! per-bucket accuracy (Tables III–IV), inference timing (Figure 8), and
//! training-loss curves (Figures 9–10).
//!
//! - [`buckets`] — the paper's stay-point buckets 3–5 / 6–8 / 9–11 / 12–14;
//! - [`metrics`] — the `Acc` metric of Equation (14), bucketed;
//! - [`timing`] — per-bucket mean inference time;
//! - [`runner`] — trains any method on a [`lead_synth::Dataset`] and
//!   evaluates it on the test split;
//! - [`scenarios`] — per-scenario robustness rows (accuracy and IoU under
//!   each named GPS pathology, never averaged away);
//! - [`errors`] — endpoint-level error decomposition of detections;
//! - [`svg`] — SVG map rendering of trajectories and detections;
//! - [`report`] — paper-style text tables and CSV emission.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod buckets;
pub mod errors;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod svg;
pub mod timing;

pub use buckets::Bucket;
pub use errors::{DetectionOutcome, ErrorBreakdown};
pub use metrics::{BucketAccuracy, IntervalError};
pub use runner::{train_and_evaluate, EvalOutcome, Method, SweepStats, TrainedModel};
pub use scenarios::{evaluate_scenarios, ScenarioOutcome};
pub use timing::BucketTiming;
