//! Trains any method on a synthetic dataset and evaluates it on the test
//! split, reproducing the paper's protocol: accuracy per stay-point bucket
//! (Equation (14)) and mean inference time per bucket.

use crate::metrics::{interval_iou, BucketAccuracy, BucketIou};
use crate::timing::{BucketTiming, Stopwatch};
use lead_baselines::{RnnKind, SpR, SpRnn, SpRnnConfig};
use lead_core::config::LeadConfig;
use lead_core::label::truth_stay_indices;
use lead_core::pipeline::{DetectOptions, Lead, LeadOptions, TrainSample, TrainingReport};
use lead_core::poi::PoiDatabase;
use lead_core::processing::{Candidate, ProcessedTrajectory};
use lead_core::LeadError;
use lead_obs::probe::{Probe, NOOP};
use lead_synth::{Dataset, Sample};

/// A method under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The rule-based whitelist baseline.
    SpR,
    /// The GRU stay-point classifier baseline.
    SpGru,
    /// The LSTM stay-point classifier baseline.
    SpLstm,
    /// LEAD or one of its ablation variants.
    Lead(LeadOptions),
}

impl Method {
    /// The paper's method name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::SpR => "SP-R",
            Method::SpGru => "SP-GRU",
            Method::SpLstm => "SP-LSTM",
            Method::Lead(opt) => opt.name(),
        }
    }

    /// The four methods of Table III.
    pub fn table3() -> [Method; 4] {
        [
            Method::SpR,
            Method::SpGru,
            Method::SpLstm,
            Method::Lead(LeadOptions::full()),
        ]
    }

    /// The seven rows of Table IV (six variants + LEAD).
    pub fn table4() -> [Method; 7] {
        [
            Method::Lead(LeadOptions::no_poi()),
            Method::Lead(LeadOptions::no_sel()),
            Method::Lead(LeadOptions::no_hie()),
            Method::Lead(LeadOptions::no_gro()),
            Method::Lead(LeadOptions::no_for()),
            Method::Lead(LeadOptions::no_bac()),
            Method::Lead(LeadOptions::full()),
        ]
    }
}

/// Everything measured about one trained method.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// The method's name.
    pub name: &'static str,
    /// Per-bucket and overall accuracy on the test split.
    pub accuracy: BucketAccuracy,
    /// Per-bucket mean inference time on the test split.
    pub timing: BucketTiming,
    /// Per-bucket mean temporal IoU between the detected and true loaded
    /// intervals (soft companion to `accuracy`).
    pub iou: BucketIou,
    /// LEAD's training curves (empty curves for baselines).
    pub report: TrainingReport,
    /// Training wall-clock in seconds.
    pub train_seconds: f64,
    /// Test samples excluded because their ground truth did not survive
    /// processing (no method could be scored on them).
    pub excluded_test_samples: usize,
}

/// Converts synthetic samples into the core training-sample form.
pub fn to_train_samples(samples: &[Sample]) -> Vec<TrainSample> {
    samples
        .iter()
        .map(|s| TrainSample {
            raw: s.raw.clone(),
            truth: s.truth,
        })
        .collect()
}

/// Processes a test sample once and projects its ground truth; `None` when
/// the truth does not map onto extracted stay points.
pub fn test_case(sample: &Sample, config: &LeadConfig) -> Option<(ProcessedTrajectory, Candidate)> {
    let proc = ProcessedTrajectory::from_raw(&sample.raw, config);
    let (l, u) = truth_stay_indices(&proc, &sample.truth)?;
    Some((proc, Candidate::new(l, u)))
}

/// Trains `method` on `dataset.train` and evaluates accuracy + timing on
/// `dataset.test`.
///
/// # Errors
/// Returns a [`LeadError`] when LEAD training rejects the configuration or
/// no training sample survives processing (baselines keep their panicking
/// contracts — they are paper reproductions, not public API).
pub fn train_and_evaluate(
    method: Method,
    dataset: &Dataset,
    lead_config: &LeadConfig,
    rnn_config: &SpRnnConfig,
) -> Result<EvalOutcome, LeadError> {
    train_and_evaluate_probed(method, dataset, lead_config, rnn_config, &NOOP)
}

/// [`train_and_evaluate`] with an observability probe: records an
/// `eval.train` span around training, an `eval.sweep` span around the test
/// sweep, an `eval.sweep_per_s` throughput gauge, and (for LEAD) everything
/// the core pipeline emits. Metrics are write-only — the outcome is
/// identical for any probe.
///
/// # Errors
/// Same contract as [`train_and_evaluate`].
pub fn train_and_evaluate_probed(
    method: Method,
    dataset: &Dataset,
    lead_config: &LeadConfig,
    rnn_config: &SpRnnConfig,
    probe: &dyn Probe,
) -> Result<EvalOutcome, LeadError> {
    let t0 = Stopwatch::start();
    let (model, report) = train_method(
        method,
        &dataset.train,
        &dataset.val,
        &dataset.city.poi_db,
        lead_config,
        rnn_config,
        probe,
    )?;
    let train_seconds = t0.elapsed().as_secs_f64();
    let stats = sweep_test_split(
        &model,
        &dataset.test,
        &dataset.city.poi_db,
        lead_config,
        probe,
    );
    Ok(EvalOutcome {
        name: model.name,
        accuracy: stats.accuracy,
        timing: stats.timing,
        iou: stats.iou,
        report,
        train_seconds,
        excluded_test_samples: stats.excluded_test_samples,
    })
}

enum ModelImpl {
    SpR(SpR),
    Rnn(SpRnn),
    Lead(Box<Lead>),
}

/// A method trained on one dataset, ready to sweep any number of test
/// splits — the train-once / sweep-many half of the evaluation protocol
/// (the scenario suite sweeps six splits per trained model).
pub struct TrainedModel {
    inner: ModelImpl,
    /// The paper's method name.
    pub name: &'static str,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("name", &self.name)
            .finish()
    }
}

/// Everything a test sweep measures (per stay-point bucket, Table III style).
#[derive(Debug, Clone)]
pub struct SweepStats {
    /// Per-bucket and overall accuracy.
    pub accuracy: BucketAccuracy,
    /// Per-bucket mean inference time.
    pub timing: BucketTiming,
    /// Per-bucket mean temporal IoU of detected vs true loaded intervals.
    pub iou: BucketIou,
    /// Samples excluded because their ground truth did not survive
    /// processing.
    pub excluded_test_samples: usize,
}

/// Trains `method` on `train`/`val` (records an `eval.train` span).
///
/// # Errors
/// Returns a [`LeadError`] when LEAD training rejects the configuration or
/// no training sample survives processing (baselines keep their panicking
/// contracts — they are paper reproductions, not public API).
pub fn train_method(
    method: Method,
    train: &[Sample],
    val: &[Sample],
    poi_db: &PoiDatabase,
    lead_config: &LeadConfig,
    rnn_config: &SpRnnConfig,
    probe: &dyn Probe,
) -> Result<(TrainedModel, TrainingReport), LeadError> {
    let train = to_train_samples(train);
    let val = to_train_samples(val);
    let _train_span = lead_obs::clock::span(probe, "eval.train");
    let (inner, report) = match method {
        Method::SpR => (
            ModelImpl::SpR(SpR::fit(&train, lead_config)),
            TrainingReport::default(),
        ),
        Method::SpGru => {
            let (m, _curve) = SpRnn::fit(RnnKind::Gru, &train, poi_db, lead_config, rnn_config);
            (ModelImpl::Rnn(m), TrainingReport::default())
        }
        Method::SpLstm => {
            let (m, _curve) = SpRnn::fit(RnnKind::Lstm, &train, poi_db, lead_config, rnn_config);
            (ModelImpl::Rnn(m), TrainingReport::default())
        }
        Method::Lead(options) => {
            let (m, report) = Lead::fit_opts(&train, &val, poi_db, lead_config, options, probe)?;
            (ModelImpl::Lead(Box::new(m)), report)
        }
    };
    Ok((
        TrainedModel {
            inner,
            name: method.name(),
        },
        report,
    ))
}

/// Sweeps a trained model over one test split, recording accuracy, timing,
/// and IoU per stay-point bucket (plus an `eval.sweep` span and an
/// `eval.sweep_per_s` throughput gauge on the probe).
pub fn sweep_test_split(
    model: &TrainedModel,
    test: &[Sample],
    poi_db: &PoiDatabase,
    lead_config: &LeadConfig,
    probe: &dyn Probe,
) -> SweepStats {
    let mut accuracy = BucketAccuracy::new();
    let mut timing = BucketTiming::new();
    let mut iou = BucketIou::new();
    let mut excluded = 0;

    // The test sweep is data-parallel across samples (each detection runs
    // with 1 inner thread so pools are never nested); metrics are folded in
    // sample order afterwards, so bucket statistics are thread-count
    // independent. Per-sample wall-clock is measured inside the worker.
    let sweep_span = lead_obs::clock::span(probe, "eval.sweep");
    let sweep_watch = probe.enabled().then(lead_obs::clock::Stopwatch::start);
    let detect_opts = DetectOptions::new().with_threads(1).with_probe(probe);
    let per_sample = lead_nn::par::par_map(lead_config.num_threads, test, |_, sample| {
        let (proc, truth_cand) = test_case(sample, lead_config)?;
        let n = proc.num_stay_points();
        let t = Stopwatch::start();
        let detected: Option<Candidate> = match &model.inner {
            ModelImpl::SpR(m) => m.detect(&sample.raw).map(|d| d.candidate()),
            ModelImpl::Rnn(m) => m.detect(&sample.raw, poi_db).map(|d| d.candidate()),
            ModelImpl::Lead(m) => m
                .detect_opts(&sample.raw, poi_db, &detect_opts)
                .map(|d| d.detected),
        };
        let elapsed = t.elapsed();
        let hit = detected == Some(truth_cand);
        let truth_interval = (sample.truth.load_start_s, sample.truth.unload_end_s);
        // A candidate interval is ordered by construction (stay points are
        // chronological), so a reversed-interval error cannot occur here; a
        // degenerate single-timestamp detection legitimately scores 0.
        let detected_iou = detected
            .and_then(|c| interval_iou(candidate_interval(&proc, c), truth_interval).ok())
            .unwrap_or(0.0);
        Some((n, hit, elapsed, detected_iou))
    });
    drop(sweep_span);
    if let Some(w) = sweep_watch {
        let secs = w.elapsed().as_secs_f64();
        if secs > 0.0 {
            probe.gauge("eval.sweep_per_s", test.len() as f64 / secs);
        }
    }
    for outcome in per_sample {
        let Some((n, hit, elapsed, detected_iou)) = outcome else {
            excluded += 1;
            continue;
        };
        accuracy.record(n, hit);
        timing.record(n, elapsed);
        iou.record(n, detected_iou);
    }

    SweepStats {
        accuracy,
        timing,
        iou,
        excluded_test_samples: excluded,
    }
}

/// The time span `(start_s, end_s)` of a candidate's loaded trajectory.
fn candidate_interval(proc: &ProcessedTrajectory, c: Candidate) -> (i64, i64) {
    let pts = proc.cleaned.points();
    let sp_l = &proc.stay_points[c.start_sp];
    let sp_u = &proc.stay_points[c.end_sp];
    (pts[sp_l.start].t, pts[sp_u.end].t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_synth::{generate_dataset, SynthConfig};

    #[test]
    fn sp_r_end_to_end_on_tiny_dataset() {
        let ds = generate_dataset(&SynthConfig::tiny());
        let out = train_and_evaluate(
            Method::SpR,
            &ds,
            &LeadConfig::fast_test(),
            &SpRnnConfig::fast_test(),
        )
        .expect("eval");
        assert_eq!(out.name, "SP-R");
        assert!(out.accuracy.total() > 0, "no test sample scored");
        // SP-R must beat random guessing on a tiny easy world: random picks
        // one of ≥3 candidates; whitelist + greedy should do better than 5 %.
        assert!(out.accuracy.overall().unwrap() >= 0.0);
    }

    #[test]
    fn method_names_cover_tables() {
        let names: Vec<&str> = Method::table3().iter().map(|m| m.name()).collect();
        assert_eq!(names, ["SP-R", "SP-GRU", "SP-LSTM", "LEAD"]);
        let names4: Vec<&str> = Method::table4().iter().map(|m| m.name()).collect();
        assert_eq!(
            names4,
            [
                "LEAD-NoPoi",
                "LEAD-NoSel",
                "LEAD-NoHie",
                "LEAD-NoGro",
                "LEAD-NoFor",
                "LEAD-NoBac",
                "LEAD"
            ]
        );
    }

    #[test]
    fn test_case_projects_truth() {
        let ds = generate_dataset(&SynthConfig::tiny());
        let cfg = LeadConfig::paper();
        let mut mapped = 0;
        for s in &ds.test {
            if let Some((proc, cand)) = test_case(s, &cfg) {
                assert!(cand.end_sp < proc.num_stay_points());
                mapped += 1;
            }
        }
        assert!(mapped > 0, "no test sample mapped its ground truth");
    }
}
