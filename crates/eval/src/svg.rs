//! SVG rendering of trajectories and detections — the visual counterpart of
//! the paper's Figures 1 and 3, and the fastest way to see *why* a detection
//! hit or missed.
//!
//! The renderer is deliberately dependency-free: it emits a self-contained
//! SVG string with the urban core, the relevant sites, the raw trajectory,
//! its stay points, and the detected loaded trajectory highlighted.

use lead_core::processing::ProcessedTrajectory;
use lead_geo::{BoundingBox, GpsPoint};
use std::fmt::Write as _;

/// Visual styling of one rendered overlay layer.
#[derive(Debug, Clone, Copy)]
struct Style {
    stroke: &'static str,
    width: f64,
    opacity: f64,
}

/// A renderer mapping WGS84 points into a fixed-size SVG canvas.
#[derive(Debug)]
pub struct SvgMap {
    bbox: BoundingBox,
    width: f64,
    height: f64,
    body: String,
}

impl SvgMap {
    /// Creates a canvas covering `bbox` at `width` pixels (height follows the
    /// aspect ratio).
    ///
    /// # Panics
    /// Panics if the bounding box is degenerate or `width` non-positive.
    pub fn new(bbox: BoundingBox, width: f64) -> Self {
        assert!(width > 0.0, "canvas width must be positive");
        assert!(
            bbox.lat_span() > 0.0 && bbox.lng_span() > 0.0,
            "degenerate bounding box"
        );
        let height = width * bbox.lat_span() / bbox.lng_span();
        Self {
            bbox,
            width,
            height,
            body: String::new(),
        }
    }

    fn xy(&self, lat: f64, lng: f64) -> (f64, f64) {
        let x = (lng - self.bbox.min_lng) / self.bbox.lng_span() * self.width;
        // SVG y grows downward; latitude grows upward.
        let y = (self.bbox.max_lat - lat) / self.bbox.lat_span() * self.height;
        (x, y)
    }

    /// Draws a polyline through `points`.
    pub fn polyline(
        &mut self,
        points: &[GpsPoint],
        stroke: &'static str,
        width: f64,
        opacity: f64,
    ) {
        if points.len() < 2 {
            return;
        }
        let style = Style {
            stroke,
            width,
            opacity,
        };
        let mut d = String::with_capacity(points.len() * 16);
        for (i, p) in points.iter().enumerate() {
            let (x, y) = self.xy(p.lat, p.lng);
            let _ = write!(d, "{}{x:.1},{y:.1}", if i == 0 { "M" } else { " L" });
        }
        let _ = writeln!(
            self.body,
            r#"<path d="{d}" fill="none" stroke="{}" stroke-width="{}" stroke-opacity="{}"/>"#,
            style.stroke, style.width, style.opacity
        );
    }

    /// Draws a filled circle at `(lat, lng)`.
    pub fn circle(&mut self, lat: f64, lng: f64, r_px: f64, fill: &str, opacity: f64) {
        let (x, y) = self.xy(lat, lng);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r_px}" fill="{fill}" fill-opacity="{opacity}"/>"#
        );
    }

    /// Draws a circle outline of `radius_m` meters around `(lat, lng)` (e.g.
    /// the urban core).
    pub fn ring_m(&mut self, lat: f64, lng: f64, radius_m: f64, stroke: &str) {
        let r_deg = lead_geo::distance::meters_to_lat_deg(radius_m);
        let r_px = r_deg / self.bbox.lat_span() * self.height;
        let (x, y) = self.xy(lat, lng);
        let _ = writeln!(
            self.body,
            r#"<circle cx="{x:.1}" cy="{y:.1}" r="{r_px:.1}" fill="none" stroke="{stroke}" stroke-dasharray="6 4"/>"#
        );
    }

    /// Adds a text label.
    pub fn label(&mut self, lat: f64, lng: f64, text: &str, size_px: u32) {
        let (x, y) = self.xy(lat, lng);
        let _ = writeln!(
            self.body,
            r#"<text x="{x:.1}" y="{y:.1}" font-size="{size_px}" font-family="sans-serif">{}</text>"#,
            text.replace('&', "&amp;").replace('<', "&lt;")
        );
    }

    /// Finalises the SVG document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" \
             viewBox=\"0 0 {:.0} {:.0}\">\n<rect width=\"100%\" height=\"100%\" fill=\"#fafaf7\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

/// Renders a processed trajectory with its detected loaded subtrajectory
/// highlighted: raw track in grey, loaded segment in red, stay points as
/// dots (loading/unloading endpoints enlarged).
pub fn render_detection(
    proc: &ProcessedTrajectory,
    detected: lead_core::processing::Candidate,
    canvas_px: f64,
) -> String {
    let Some(bbox) = BoundingBox::from_points(proc.cleaned.points()) else {
        // Nothing to draw; emit a well-formed empty document.
        return String::from("<svg xmlns=\"http://www.w3.org/2000/svg\"/>");
    };
    let bbox = bbox.expanded(0.005);
    let mut map = SvgMap::new(bbox, canvas_px);

    map.polyline(proc.cleaned.points(), "#888888", 1.2, 0.8);
    let (a, b) = proc.candidate_point_range(detected);
    map.polyline(&proc.cleaned.points()[a..=b], "#cc2222", 2.4, 0.9);

    for (k, sp) in proc.stay_points.iter().enumerate() {
        if let Some((lat, lng)) = proc.cleaned.slice(sp.start, sp.end).centroid() {
            let endpoint = k == detected.start_sp || k == detected.end_sp;
            let (r, fill) = if endpoint {
                (6.0, "#cc2222")
            } else {
                (3.5, "#2255cc")
            };
            map.circle(lat, lng, r, fill, 0.9);
            map.label(lat, lng, &format!("sp{k}"), 10);
        }
    }
    map.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lead_core::config::LeadConfig;
    use lead_core::processing::Candidate;
    use lead_geo::Trajectory;

    fn demo_proc() -> ProcessedTrajectory {
        let mut pts = Vec::new();
        for block in 0..3 {
            let lng = 120.9 + block as f64 * 0.05;
            let t0 = block as i64 * 1800;
            for k in 0..10 {
                pts.push(GpsPoint::new(32.0, lng, t0 + k * 120));
            }
            pts.push(GpsPoint::new(32.0, lng + 0.02, t0 + 1200));
            pts.push(GpsPoint::new(32.0, lng + 0.04, t0 + 1320));
        }
        ProcessedTrajectory::from_raw(&Trajectory::new(pts), &LeadConfig::paper())
    }

    #[test]
    fn render_produces_well_formed_svg() {
        let proc = demo_proc();
        assert!(proc.num_stay_points() >= 2);
        let svg = render_detection(&proc, Candidate::new(0, 1), 800.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("<path"));
        // One circle per stay point plus the background rect.
        assert_eq!(svg.matches("<circle").count(), proc.num_stay_points());
        assert!(svg.contains("sp0"));
        // Balanced tags.
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn coordinates_map_into_canvas() {
        let bbox = BoundingBox::new(31.0, 120.0, 32.0, 121.0);
        let map = SvgMap::new(bbox, 500.0);
        let (x, y) = map.xy(32.0, 120.0); // top-left corner
        assert!((x - 0.0).abs() < 1e-9 && (y - 0.0).abs() < 1e-9);
        let (x, y) = map.xy(31.0, 121.0); // bottom-right corner
        assert!((x - 500.0).abs() < 1e-9 && (y - map.height).abs() < 1e-9);
    }

    #[test]
    fn labels_escape_markup() {
        let bbox = BoundingBox::new(31.0, 120.0, 32.0, 121.0);
        let mut map = SvgMap::new(bbox, 100.0);
        map.label(31.5, 120.5, "<Zhongtian & Co>", 10);
        let svg = map.finish();
        assert!(svg.contains("&lt;Zhongtian &amp; Co>"));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_bbox_rejected() {
        let _ = SvgMap::new(BoundingBox::new(31.0, 120.0, 31.0, 121.0), 100.0);
    }
}
