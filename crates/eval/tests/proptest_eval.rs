//! Property-based tests of the evaluation metrics.

use lead_eval::metrics::{interval_iou, BucketAccuracy};
use proptest::prelude::*;

proptest! {
    #[test]
    fn interval_iou_is_a_bounded_symmetric_similarity(
        a in 0i64..5_000,
        alen in 1i64..5_000,
        b in 0i64..5_000,
        blen in 1i64..5_000,
    ) {
        let x = (a, a + alen);
        let y = (b, b + blen);
        let v = interval_iou(x, y).unwrap();
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((v - interval_iou(y, x).unwrap()).abs() < 1e-12);
        prop_assert!((interval_iou(x, x).unwrap() - 1.0).abs() < 1e-12);
        // Disjoint intervals score zero.
        let z = (a + alen + 1, a + alen + 2);
        prop_assert_eq!(interval_iou(x, z), Ok(0.0));
        // Degenerate-but-ordered intervals score zero instead of panicking;
        // reversed ones are typed errors.
        prop_assert_eq!(interval_iou((a, a), y), Ok(0.0));
        prop_assert!(interval_iou((a + alen, a), y).is_err());
    }

    #[test]
    fn bucket_accuracy_totals_are_consistent(
        records in prop::collection::vec((3usize..15, any::<bool>()), 0..60),
    ) {
        let mut acc = BucketAccuracy::new();
        for &(n, hit) in &records {
            acc.record(n, hit);
        }
        prop_assert_eq!(acc.total(), records.len());
        if records.is_empty() {
            prop_assert_eq!(acc.overall(), None);
        } else {
            let hits = records.iter().filter(|(_, h)| *h).count();
            let expect = hits as f64 / records.len() as f64 * 100.0;
            prop_assert!((acc.overall().unwrap() - expect).abs() < 1e-9);
            // Bucket shares sum to 100 %.
            let share_sum: f64 = lead_eval::Bucket::ALL
                .iter()
                .filter_map(|&b| acc.share(b))
                .sum();
            prop_assert!((share_sum - 100.0).abs() < 1e-9);
        }
    }
}
