//! Property tests of the lossless tokenizer: for arbitrary compositions of
//! pathological source fragments, the concatenation of token texts must
//! reproduce the input byte-for-byte, and re-lexing must yield an identical
//! stream (kinds, texts, lines, columns). The vendored proptest has no
//! string strategies, so sources are composed from a fragment table via
//! index vectors.

use lead_lint::lex::{tokenize, TokenKind};
use proptest::prelude::*;

/// Pathological building blocks: raw strings with `#` fences, nested block
/// comments, CRLF line endings, unterminated literals/comments, multi-line
/// string bodies, byte/char literals, lifetimes, and stray braces.
const FRAGMENTS: &[&str] = &[
    "fn f() {}\n",
    "let s = \"str with // no comment\";\n",
    "let r = r#\"raw \"quoted\" body\"#;\n",
    "let r2 = r##\"fence r#\" inside\"#\"##;\n",
    "let e = r\"\";\n",
    "/* block /* nested */ still comment */\n",
    "// line comment\n",
    "/// doc comment\n",
    "//! inner doc\n",
    "/** block doc */\n",
    "let c = '{'; let n = '\\n'; let b = b'\\xff';\n",
    "let multi = \"line one\nline two\";\n",
    "let bytes = b\"across\nlines\";\n",
    "let lt: &'static str = \"x\";\n",
    "let n = 1_000_000usize + 0xfe + 1.5e-3;\n",
    "\r\n",
    "   \t \n",
    "#[derive(Debug)]\nstruct S;\n",
    "let v = vec![1, 2, 3];\n",
    "}{)(\n",
    "no final newline",
    "r#type",
    "'a\n",
];

/// Tail-only fragments: these swallow everything after them, so they are
/// appended last (losslessness must hold regardless).
const TAILS: &[&str] = &[
    "",
    "/* unterminated",
    "\"unterminated str",
    "r##\"unterminated raw",
];

fn source() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(0..FRAGMENTS.len(), 0..24),
        0..TAILS.len(),
    )
        .prop_map(|(idxs, tail)| {
            let mut s = String::new();
            for i in idxs {
                s.push_str(FRAGMENTS[i]);
            }
            s.push_str(TAILS[tail]);
            s
        })
}

/// The comparable projection of a token stream (texts, kinds, positions).
fn shape(src: &str) -> Vec<(TokenKind, String, usize, usize)> {
    tokenize(src)
        .iter()
        .map(|t| (t.kind, t.text.to_string(), t.line, t.col))
        .collect()
}

proptest! {
    #[test]
    fn concatenated_tokens_reproduce_the_source(src in source()) {
        let joined: String = tokenize(&src).iter().map(|t| t.text).collect();
        prop_assert_eq!(joined, src);
    }

    #[test]
    fn relexing_yields_an_identical_stream(src in source()) {
        prop_assert_eq!(shape(&src), shape(&src));
    }

    #[test]
    fn every_token_is_nonempty_and_positions_are_one_based(src in source()) {
        for t in tokenize(&src) {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.line >= 1 && t.col >= 1);
        }
    }
}

// Deterministic pins for the nastiest single cases, so a failure names the
// exact feature instead of a shrunk fragment soup.

#[test]
fn crlf_and_missing_final_newline_round_trip() {
    for src in ["fn a() {}\r\nfn b() {}\r\n", "let x = 1;", "\r\n\r\n", ""] {
        let joined: String = tokenize(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }
}

#[test]
fn raw_string_fences_lex_as_single_terminated_literals() {
    let src = "let r = r##\"body with \"# inside\"##;\n";
    let strs: Vec<_> = tokenize(src)
        .into_iter()
        .filter(|t| matches!(t.kind, TokenKind::Str { .. }))
        .collect();
    assert_eq!(strs.len(), 1, "{strs:?}");
    assert_eq!(strs[0].text, "r##\"body with \"# inside\"##");
    assert!(matches!(
        strs[0].kind,
        TokenKind::Str {
            raw: true,
            terminated: true
        }
    ));
}

#[test]
fn nested_block_comment_is_one_token_and_tracks_lines() {
    let src = "/* outer /* inner\n*/ tail */ fn f() {}\n";
    let toks = tokenize(src);
    assert!(matches!(
        toks.first().map(|t| t.kind),
        Some(TokenKind::BlockComment {
            terminated: true,
            ..
        })
    ));
    let f = toks
        .iter()
        .find(|t| t.text == "fn")
        .expect("fn survives after the comment");
    assert_eq!((f.line, f.col), (2, 12));
}

#[test]
fn multi_line_string_advances_line_and_resets_col() {
    let src = "let s = \"a\nbc\"; let t = 1;\n";
    let toks = tokenize(src);
    let t = toks
        .iter()
        .find(|tok| tok.text == "t")
        .expect("t after the literal");
    assert_eq!((t.line, t.col), (2, 10));
}
