//! Property tests of the lossless tokenizer: for arbitrary compositions of
//! pathological source fragments, the concatenation of token texts must
//! reproduce the input byte-for-byte, and re-lexing must yield an identical
//! stream (kinds, texts, lines, columns). The vendored proptest has no
//! string strategies, so sources are composed from a fragment table via
//! index vectors.

use lead_lint::lex::{tokenize, TokenKind};
use proptest::prelude::*;

/// Pathological building blocks: raw strings with `#` fences, nested block
/// comments, CRLF line endings, unterminated literals/comments, multi-line
/// string bodies, byte/char literals, lifetimes, and stray braces.
const FRAGMENTS: &[&str] = &[
    "fn f() {}\n",
    "let s = \"str with // no comment\";\n",
    "let r = r#\"raw \"quoted\" body\"#;\n",
    "let r2 = r##\"fence r#\" inside\"#\"##;\n",
    "let e = r\"\";\n",
    "/* block /* nested */ still comment */\n",
    "// line comment\n",
    "/// doc comment\n",
    "//! inner doc\n",
    "/** block doc */\n",
    "let c = '{'; let n = '\\n'; let b = b'\\xff';\n",
    "let multi = \"line one\nline two\";\n",
    "let bytes = b\"across\nlines\";\n",
    "let lt: &'static str = \"x\";\n",
    "let n = 1_000_000usize + 0xfe + 1.5e-3;\n",
    "\r\n",
    "   \t \n",
    "#[derive(Debug)]\nstruct S;\n",
    "let v = vec![1, 2, 3];\n",
    "}{)(\n",
    "no final newline",
    "r#type",
    "'a\n",
    // Shapes the call-site extractor must not misparse: macro_rules! bodies
    // (nested matchers full of braces), where-clause braces, and
    // turbofish-heavy call expressions.
    "macro_rules! m { ($x:expr) => {{ $x + 1 }}; ($($t:tt)*) => { $($t)* }; }\n",
    "fn w<T>() -> T where T: Default + Clone { T::default() }\n",
    "impl<T> S<T> where T: Copy { fn g(&self) -> usize { self.v.len() } }\n",
    "let v = xs.iter().map(|x| x * 2).collect::<Vec<_>>();\n",
    "let p = \"7\".parse::<i32>().ok();\n",
    "let m = BTreeMap::<String, Vec<u8>>::new();\n",
    "fn call() { helper::<a::B, c::D<E>>(x, y) }\n",
];

/// Tail-only fragments: these swallow everything after them, so they are
/// appended last (losslessness must hold regardless).
const TAILS: &[&str] = &[
    "",
    "/* unterminated",
    "\"unterminated str",
    "r##\"unterminated raw",
];

fn source() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(0..FRAGMENTS.len(), 0..24),
        0..TAILS.len(),
    )
        .prop_map(|(idxs, tail)| {
            let mut s = String::new();
            for i in idxs {
                s.push_str(FRAGMENTS[i]);
            }
            s.push_str(TAILS[tail]);
            s
        })
}

/// The comparable projection of a token stream (texts, kinds, positions).
fn shape(src: &str) -> Vec<(TokenKind, String, usize, usize)> {
    tokenize(src)
        .iter()
        .map(|t| (t.kind, t.text.to_string(), t.line, t.col))
        .collect()
}

/// The comparable projection of the block IR's item extraction.
fn item_shape(src: &str) -> Vec<(String, Option<String>, usize, usize, Option<(usize, usize)>)> {
    lead_lint::blocks::build(&tokenize(src))
        .items
        .iter()
        .map(|it| {
            (
                format!("{:?}", it.kind),
                it.name.clone(),
                it.line,
                it.col,
                it.body.map(|b| (b.open_line, b.close_line)),
            )
        })
        .collect()
}

proptest! {
    #[test]
    fn concatenated_tokens_reproduce_the_source(src in source()) {
        let joined: String = tokenize(&src).iter().map(|t| t.text).collect();
        prop_assert_eq!(joined, src);
    }

    #[test]
    fn relexing_yields_an_identical_stream(src in source()) {
        prop_assert_eq!(shape(&src), shape(&src));
    }

    #[test]
    fn every_token_is_nonempty_and_positions_are_one_based(src in source()) {
        for t in tokenize(&src) {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.line >= 1 && t.col >= 1);
        }
    }

    #[test]
    fn item_extraction_is_stable_and_well_formed(src in source()) {
        let lines = src.lines().count().max(1);
        let items = item_shape(&src);
        prop_assert_eq!(&items, &item_shape(&src));
        for (_, _, line, col, body) in items {
            prop_assert!(line >= 1 && line <= lines && col >= 1);
            if let Some((open, close)) = body {
                prop_assert!(open >= line && close >= open);
            }
        }
    }

    #[test]
    fn call_extraction_is_stable_and_names_are_idents(src in source()) {
        let toks = tokenize(&src);
        let calls = lead_lint::callgraph::extract_calls(&toks);
        prop_assert_eq!(&calls, &lead_lint::callgraph::extract_calls(&toks));
        for c in calls {
            prop_assert!(c.line >= 1);
            prop_assert!(!c.name.is_empty());
            prop_assert!(c.name.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_'));
            // A method call never also carries a path qualifier.
            prop_assert!(!(c.is_method && c.qualifier.is_some()));
        }
    }
}

// Deterministic pins for the nastiest single cases, so a failure names the
// exact feature instead of a shrunk fragment soup.

#[test]
fn crlf_and_missing_final_newline_round_trip() {
    for src in ["fn a() {}\r\nfn b() {}\r\n", "let x = 1;", "\r\n\r\n", ""] {
        let joined: String = tokenize(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }
}

#[test]
fn raw_string_fences_lex_as_single_terminated_literals() {
    let src = "let r = r##\"body with \"# inside\"##;\n";
    let strs: Vec<_> = tokenize(src)
        .into_iter()
        .filter(|t| matches!(t.kind, TokenKind::Str { .. }))
        .collect();
    assert_eq!(strs.len(), 1, "{strs:?}");
    assert_eq!(strs[0].text, "r##\"body with \"# inside\"##");
    assert!(matches!(
        strs[0].kind,
        TokenKind::Str {
            raw: true,
            terminated: true
        }
    ));
}

#[test]
fn nested_block_comment_is_one_token_and_tracks_lines() {
    let src = "/* outer /* inner\n*/ tail */ fn f() {}\n";
    let toks = tokenize(src);
    assert!(matches!(
        toks.first().map(|t| t.kind),
        Some(TokenKind::BlockComment {
            terminated: true,
            ..
        })
    ));
    let f = toks
        .iter()
        .find(|t| t.text == "fn")
        .expect("fn survives after the comment");
    assert_eq!((f.line, f.col), (2, 12));
}

#[test]
fn macro_rules_body_round_trips_and_extracts_no_fn_items() {
    let src = "macro_rules! m {\n    ($x:expr) => {{ $x + 1 }};\n    ($($t:tt)*) => { fn_like($($t)*) };\n}\n\nfn real() {}\n";
    let joined: String = tokenize(src).iter().map(|t| t.text).collect();
    assert_eq!(joined, src);
    let items = lead_lint::blocks::build(&tokenize(src)).items;
    let fns: Vec<_> = items
        .iter()
        .filter(|it| it.kind == lead_lint::blocks::ItemKind::Fn)
        .collect();
    assert_eq!(fns.len(), 1, "{fns:?}");
    assert_eq!(fns[0].name.as_deref(), Some("real"));
}

#[test]
fn where_clause_braces_do_not_break_body_spans() {
    let src = "fn w<T>() -> Vec<T>\nwhere\n    T: Default + Clone,\n{\n    vec![T::default()]\n}\n";
    let items = lead_lint::blocks::build(&tokenize(src)).items;
    assert_eq!(items.len(), 1, "{items:?}");
    assert_eq!(items[0].name.as_deref(), Some("w"));
    let body = items[0].body.expect("fn has a body");
    assert_eq!((body.open_line, body.close_line), (4, 6));
}

#[test]
fn turbofish_chains_extract_the_right_call_names() {
    let src =
        "fn f(xs: &[u32]) -> Vec<u32> {\n    xs.iter().map(|x| x * 2).collect::<Vec<u32>>()\n}\n";
    let calls = lead_lint::callgraph::extract_calls(&tokenize(src));
    let names: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(names, vec!["iter", "map", "collect"], "{calls:?}");
    assert!(calls.iter().all(|c| c.is_method), "{calls:?}");
}

#[test]
fn multi_line_string_advances_line_and_resets_col() {
    let src = "let s = \"a\nbc\"; let t = 1;\n";
    let toks = tokenize(src);
    let t = toks
        .iter()
        .find(|tok| tok.text == "t")
        .expect("t after the literal");
    assert_eq!((t.line, t.col), (2, 10));
}
