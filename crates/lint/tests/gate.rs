//! End-to-end gate tests: the `lead-lint` binary against synthetic
//! workspaces (exit codes, diagnostics format) and a self-check that the
//! real shipped workspace is clean.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn write(path: &Path, content: &str) {
    fs::create_dir_all(path.parent().expect("file path has a parent")).expect("mkdir");
    fs::write(path, content).expect("write fixture file");
}

/// Builds a minimal fake workspace under `CARGO_TARGET_TMPDIR` and returns
/// its root. `core_lib` becomes `crates/core/src/lib.rs`.
fn fake_workspace(name: &str, core_lib: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fake workspace");
    }
    write(
        &root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    );
    write(&root.join("crates/core/src/lib.rs"), core_lib);
    root
}

fn run_gate(root: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lead-lint"))
        .arg("--root")
        .arg(root)
        .output()
        .expect("run lead-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

#[test]
fn seeded_violation_fails_the_gate_with_file_line_diagnostics() {
    let root = fake_workspace(
        "gate-dirty",
        "//! Seeded violation.\n\nfn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    let (code, stdout) = run_gate(&root);
    assert_eq!(code, 1, "a violation must fail CI; output:\n{stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs:4:6: [panic]"),
        "diagnostic must carry file:line:col and the rule id:\n{stdout}"
    );
    assert!(
        stdout.contains("o.unwrap()"),
        "diagnostic must quote the offending line:\n{stdout}"
    );
    assert!(stdout.contains("1 diagnostic(s)"), "{stdout}");
}

#[test]
fn clean_workspace_passes_the_gate() {
    let root = fake_workspace(
        "gate-clean",
        "//! Clean crate.\n\n/// Adds one.\npub fn add_one(x: u32) -> u32 {\n    x + 1\n}\n",
    );
    let (code, stdout) = run_gate(&root);
    assert_eq!(code, 0, "clean workspace must pass; output:\n{stdout}");
    assert!(stdout.contains("lead-lint: clean"), "{stdout}");
}

#[test]
fn waived_violation_passes_but_reasonless_waiver_fails() {
    let waived = "//! Waived violation.\n\nfn f(o: Option<u32>) -> u32 {\n    \
                  // lint: allow(panic): fixture invariant, documented here\n    \
                  o.unwrap()\n}\n";
    let (code, _) = run_gate(&fake_workspace("gate-waived", waived));
    assert_eq!(code, 0, "a justified waiver silences the rule");

    let reasonless = "//! Reasonless waiver.\n\nfn f(o: Option<u32>) -> u32 {\n    \
                      // lint: allow(panic)\n    o.unwrap()\n}\n";
    let (code, stdout) = run_gate(&fake_workspace("gate-reasonless", reasonless));
    assert_eq!(
        code, 1,
        "a waiver without a reason must not count:\n{stdout}"
    );
    assert!(stdout.contains("bad-waiver"), "{stdout}");
}

#[test]
fn usage_errors_exit_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_lead-lint"))
        .arg("--no-such-flag")
        .output()
        .expect("run lead-lint");
    assert_eq!(out.status.code(), Some(2));
}

/// The tentpole acceptance check: the shipped workspace itself passes the
/// gate with zero unwaived diagnostics.
#[test]
fn shipped_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint is two levels below the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").is_file(), "workspace root found");
    let diags = lead_lint::scan_workspace(&root).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "the shipped workspace must pass its own gate:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
