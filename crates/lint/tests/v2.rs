//! v2 gate tests: the cross-file rule families (R7 layering, R8
//! error-contract, R9 scope-drift), JSON output, the baseline ratchet, the
//! diagnostic sort order, and the waiver edge cases — all against synthetic
//! workspaces under `CARGO_TARGET_TMPDIR`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn write(path: &Path, content: &str) {
    fs::create_dir_all(path.parent().expect("file path has a parent")).expect("mkdir");
    fs::write(path, content).expect("write fixture file");
}

/// A fresh fixture workspace root (virtual `[workspace]` manifest only;
/// tests add crates on top).
fn ws(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture workspace");
    }
    write(
        &root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    );
    root
}

/// Writes a fixture crate manifest with the given package name, lead class,
/// and `[dependencies]` entries (`name = {{ path = … }}` lines).
fn crate_manifest(root: &Path, dir: &str, package: &str, class: &str, deps: &[&str]) {
    let mut toml = format!(
        "[package]\nname = \"{package}\"\n\n[package.metadata.lead]\nclass = \"{class}\"\n\n[dependencies]\n"
    );
    for d in deps {
        toml.push_str(&format!("{d} = {{ path = \"../x\" }}\n"));
    }
    write(&root.join(dir).join("Cargo.toml"), &toml);
}

/// A classified fixture crate root carrying the crate-attr discipline the
/// R10 audit demands of library crates, so layering/scope tests stay focused
/// on their own rule.
fn lib_rs(doc: &str) -> String {
    format!("//! {doc}\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n")
}

fn run(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lead-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run lead-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

fn tuples(diags: &[lead_lint::diag::Diagnostic]) -> Vec<(String, usize, &'static str)> {
    diags
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect()
}

// ---------------------------------------------------------------------------
// R7 — layering
// ---------------------------------------------------------------------------

#[test]
fn undeclared_import_fires_layering() {
    let root = ws("v2-undeclared");
    crate_manifest(&root, "crates/core", "lead-core", "result-lib", &[]);
    crate_manifest(&root, "crates/geo", "lead-geo", "lib", &[]);
    write(&root.join("crates/geo/src/lib.rs"), &lib_rs("Geo."));
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("{}\nuse lead_geo::point;\n", lib_rs("Core.")),
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(
        tuples(&diags),
        vec![("crates/core/src/lib.rs".to_string(), 5, "layering")],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("without a declared dependency"));
    assert!(diags[0].message.contains("lead-geo"));
}

#[test]
fn declared_import_on_a_sanctioned_edge_is_clean() {
    let root = ws("v2-declared");
    crate_manifest(
        &root,
        "crates/core",
        "lead-core",
        "result-lib",
        &["lead-geo"],
    );
    crate_manifest(&root, "crates/geo", "lead-geo", "lib", &[]);
    write(&root.join("crates/geo/src/lib.rs"), &lib_rs("Geo."));
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("{}\nuse lead_geo::point;\n", lib_rs("Core.")),
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn core_depending_on_eval_inverts_the_dag_and_fails() {
    let root = ws("v2-inverted");
    crate_manifest(
        &root,
        "crates/core",
        "lead-core",
        "result-lib",
        &["lead-eval"],
    );
    crate_manifest(&root, "crates/eval", "lead-eval", "result-lib", &[]);
    write(&root.join("crates/core/src/lib.rs"), &lib_rs("Core."));
    write(&root.join("crates/eval/src/lib.rs"), &lib_rs("Eval."));
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "layering");
    assert_eq!(diags[0].file, "crates/core/Cargo.toml");
    assert!(diags[0].message.contains("may not depend on `lead-eval`"));
}

#[test]
fn dependency_cycle_is_reported_once() {
    let root = ws("v2-cycle");
    crate_manifest(&root, "crates/alpha", "alpha", "lib", &["beta"]);
    crate_manifest(&root, "crates/beta", "beta", "lib", &["alpha"]);
    write(&root.join("crates/alpha/src/lib.rs"), &lib_rs("A."));
    write(&root.join("crates/beta/src/lib.rs"), &lib_rs("B."));
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(diags.len(), 1, "one cycle, one diagnostic: {diags:?}");
    assert_eq!(diags[0].rule, "layering");
    assert!(diags[0].message.contains("dependency cycle"));
    assert!(diags[0].message.contains("alpha -> beta -> alpha"));
}

// ---------------------------------------------------------------------------
// R8 — error-contract
// ---------------------------------------------------------------------------

#[test]
fn fallible_pub_fn_without_errors_doc_fires_in_doc_crates() {
    let src =
        "//! Doc.\n\n/// Does a thing.\npub fn f() -> Result<(), ConfigError> {\n    Ok(())\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/api.rs", src);
    assert_eq!(
        tuples(&diags),
        vec![("crates/core/src/api.rs".to_string(), 4, "error-contract")],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("# Errors"));
}

#[test]
fn errors_doc_section_satisfies_the_contract() {
    let src = "//! Doc.\n\n/// Does a thing.\n///\n/// # Errors\n/// When the thing fails.\n\
               pub fn f() -> Result<(), ConfigError> {\n    Ok(())\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/api.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn string_error_type_is_banned_in_all_library_crates() {
    // crates/geo is not a doc crate, so only the stringly-error ban applies.
    let src = "//! Geo.\n\npub fn g() -> Result<u32, String> {\n    Ok(1)\n}\n";
    let diags = lead_lint::scan_source("crates/geo/src/x.rs", src);
    assert_eq!(
        tuples(&diags),
        vec![("crates/geo/src/x.rs".to_string(), 3, "error-contract")],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("String"));
}

#[test]
fn boxed_dyn_error_is_banned_even_when_documented() {
    let src = "//! Doc.\n\n/// Does a thing.\n///\n/// # Errors\n/// Various.\n\
               pub fn f() -> Result<(), Box<dyn std::error::Error>> {\n    Ok(())\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/api.rs", src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "error-contract");
    assert!(diags[0].message.contains("Box<dyn std::error::Error>"));
}

#[test]
fn multi_line_signatures_and_io_result_aliases_are_seen() {
    // The signature spans lines; `std::io::Result` names no error parameter,
    // so only the missing `# Errors` section fires.
    let src = "//! Doc.\n\n/// Writes.\npub fn w<W: Write>(\n    w: &mut W,\n) -> std::io::Result<()> {\n    Ok(())\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/fixture_io.rs", src);
    assert_eq!(
        tuples(&diags),
        vec![(
            "crates/nn/src/fixture_io.rs".to_string(),
            4,
            "error-contract"
        )],
        "{diags:?}"
    );
}

#[test]
fn infallible_pub_fns_are_exempt() {
    let src = "//! Doc.\n\n/// Adds.\npub fn add(x: u32) -> u32 {\n    x + 1\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/api.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// R9 — scope-drift
// ---------------------------------------------------------------------------

#[test]
fn unclassified_new_crate_fires_scope_drift() {
    let root = ws("v2-unclassified");
    write(
        &root.join("crates/newthing/Cargo.toml"),
        "[package]\nname = \"newthing\"\n",
    );
    write(&root.join("crates/newthing/src/lib.rs"), "//! New.\n");
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(
        tuples(&diags),
        vec![("crates/newthing/Cargo.toml".to_string(), 1, "scope-drift")],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("unclassified"));
}

#[test]
fn metadata_class_disagreeing_with_the_table_fires_scope_drift() {
    let root = ws("v2-mismatch");
    crate_manifest(&root, "crates/core", "lead-core", "lib", &[]);
    write(&root.join("crates/core/src/lib.rs"), &lib_rs("Core."));
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "scope-drift");
    assert!(diags[0].message.contains("disagrees"));
    assert_eq!(diags[0].line, 5, "anchored at the class line");
}

// ---------------------------------------------------------------------------
// Sort order and the R1–R6 regression workspace
// ---------------------------------------------------------------------------

/// One seeded violation per single-file rule family, pinned to exact
/// `(file, line, rule)` triples: this is the R1–R6 regression against the
/// pre-refactor line-oriented scanner, and the `(path, line, rule)` sort pin
/// in one test.
#[test]
fn r1_to_r6_regression_workspace_pins_rules_lines_and_order() {
    let root = ws("v2-regression");
    write(
        &root.join("crates/core/src/lib.rs"),
        "//! Regression fixture.\n\
         \n\
         fn f() {\n\
             let m = std::collections::HashMap::<u32, u32>::new();\n\
             let _ = m.get(&0).unwrap();\n\
             let t = std::time::Instant::now();\n\
             let _ = t;\n\
             std::thread::spawn(|| {});\n\
         }\n\
         \n\
         pub fn undocumented() {}\n",
    );
    write(
        &root.join("crates/nn/src/lib.rs"),
        "//! NN fixture.\n\
         \n\
         fn g(x: f32, n: f64) -> f32 {\n\
             let _ = n as f32;\n\
             if x == 0.0 {}\n\
             x\n\
         }\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(
        tuples(&diags),
        vec![
            ("crates/core/src/lib.rs".to_string(), 4, "hash-order"),
            ("crates/core/src/lib.rs".to_string(), 5, "panic"),
            ("crates/core/src/lib.rs".to_string(), 6, "wall-clock"),
            ("crates/core/src/lib.rs".to_string(), 8, "thread-spawn"),
            ("crates/core/src/lib.rs".to_string(), 11, "missing-doc"),
            ("crates/nn/src/lib.rs".to_string(), 4, "float-cast"),
            ("crates/nn/src/lib.rs".to_string(), 5, "float-eq"),
        ],
        "{diags:?}"
    );
}

#[test]
fn same_line_diagnostics_sort_by_col_then_rule() {
    let root = ws("v2-sort");
    // One line violating two rules: `panic` fires at the `.unwrap()` (col
    // 14) and `float-cast` at the `as` (col 32); with columns in the sort
    // key the earlier column now comes first, not the smaller rule id.
    write(
        &root.join("crates/nn/src/lib.rs"),
        "//! Sort fixture.\n\nfn g(v: &[f32]) -> i32 {\n    v.first().unwrap().round() as i32\n}\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(
        tuples(&diags),
        vec![
            ("crates/nn/src/lib.rs".to_string(), 4, "panic"),
            ("crates/nn/src/lib.rs".to_string(), 4, "float-cast"),
        ],
        "{diags:?}"
    );
    assert_eq!(
        diags.iter().map(|d| d.col).collect::<Vec<_>>(),
        vec![14, 32],
        "columns point at the offending tokens: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Waiver edge cases
// ---------------------------------------------------------------------------

#[test]
fn waiving_one_of_two_rules_on_a_line_keeps_the_other_and_stays_hygienic() {
    let src = "//! Doc.\n\nfn g(v: &[f32]) -> i32 {\n    \
               v.first().unwrap().round() as i32 // lint: allow(panic): fixture invariant\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/lib.rs", src);
    // `panic` is silenced, `float-cast` still fires, and the waiver is NOT
    // reported as unused (it matched the panic violation).
    assert_eq!(
        tuples(&diags),
        vec![("crates/nn/src/lib.rs".to_string(), 4, "float-cast")],
        "{diags:?}"
    );
}

#[test]
fn waiver_inside_cfg_test_that_matches_nothing_is_unused() {
    let src = "//! Doc.\n\n#[cfg(test)]\nmod tests {\n    fn t() {\n        \
               let x: Option<u32> = None;\n        \
               let _ = x.unwrap(); // lint: allow(panic): rules are off in tests anyway\n    }\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/api.rs", src);
    assert_eq!(
        tuples(&diags),
        vec![("crates/core/src/api.rs".to_string(), 7, "unused-waiver")],
        "{diags:?}"
    );
}

#[test]
fn unknown_rule_in_waiver_lists_the_valid_ids() {
    let src = "//! Doc.\n\nfn f(o: Option<u32>) -> u32 {\n    \
               o.unwrap() // lint: allow(no-such-rule): typo\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/api.rs", src);
    let bad = diags
        .iter()
        .find(|d| d.rule == "bad-waiver")
        .expect("bad-waiver fires");
    for id in lead_lint::rules::RULE_IDS {
        assert!(
            bad.message.contains(id),
            "bad-waiver must list `{id}`: {}",
            bad.message
        );
    }
    // The unwaived violation still fires.
    assert!(diags.iter().any(|d| d.rule == "panic"), "{diags:?}");
}

#[test]
fn waiver_on_final_line_without_trailing_newline_works_end_to_end() {
    let src =
        "//! Doc.\n\nfn f(o: Option<u32>) -> u32 { o.unwrap() } // lint: allow(panic): fixture";
    let diags = lead_lint::scan_source("crates/core/src/api.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// JSON output
// ---------------------------------------------------------------------------

#[test]
fn json_report_for_a_clean_workspace_is_the_exact_golden_bytes() {
    let root = ws("v2-json-clean");
    write(&root.join("crates/core/src/lib.rs"), "//! Clean.\n");
    let (code, stdout) = run(&root, &["--format", "json"]);
    assert_eq!(code, 0);
    assert_eq!(stdout, "{\"version\":1,\"count\":0,\"diagnostics\":[]}\n");
}

#[test]
fn json_report_is_byte_stable_across_runs_and_fails_on_diagnostics() {
    let root = ws("v2-json-dirty");
    write(
        &root.join("crates/core/src/lib.rs"),
        "//! Dirty.\n\nfn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    let (code1, out1) = run(&root, &["--format", "json"]);
    let (code2, out2) = run(&root, &["--format", "json"]);
    assert_eq!(code1, 1, "diagnostics still fail in JSON mode");
    assert_eq!(code2, 1);
    assert_eq!(
        out1, out2,
        "two runs over the same tree must emit identical bytes"
    );
    assert!(out1.starts_with("{\"version\":1,\"count\":1,\"diagnostics\":[{\"file\":\"crates/core/src/lib.rs\",\"line\":4,\"col\":6,\"rule\":\"panic\","), "{out1}");
    assert!(out1.ends_with("]}\n"), "{out1}");
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

fn dirty_ws(name: &str) -> PathBuf {
    let root = ws(name);
    write(
        &root.join("crates/core/src/lib.rs"),
        "//! Dirty.\n\nfn f(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n",
    );
    root
}

#[test]
fn baselined_diagnostic_passes_the_gate() {
    let root = dirty_ws("v2-ratchet-known");
    let baseline = root.join("lint.baseline");
    write(&baseline, "# known debt\ncrates/core/src/lib.rs:4:panic\n");
    let (code, stdout) = run(
        &root,
        &["--baseline", baseline.to_str().expect("utf-8 path")],
    );
    assert_eq!(code, 0, "baselined diagnostic must not fail CI:\n{stdout}");
    assert!(stdout.contains("lead-lint: clean"), "{stdout}");
}

#[test]
fn new_diagnostic_fails_despite_a_baseline() {
    let root = dirty_ws("v2-ratchet-new");
    let baseline = root.join("lint.baseline");
    write(&baseline, "# unrelated entry\nsrc/other.rs:1:panic\n");
    let (code, stdout) = run(
        &root,
        &["--baseline", baseline.to_str().expect("utf-8 path")],
    );
    assert_eq!(code, 1, "a new diagnostic must fail:\n{stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs:4:6: [panic]"),
        "{stdout}"
    );
    // The unmatched entry is also stale.
    assert!(stdout.contains("stale-baseline"), "{stdout}");
}

#[test]
fn fixed_but_still_baselined_diagnostic_fails_as_stale() {
    let root = ws("v2-ratchet-stale");
    write(&root.join("crates/core/src/lib.rs"), "//! Fixed.\n");
    let baseline = root.join("lint.baseline");
    write(&baseline, "crates/core/src/lib.rs:4:panic\n");
    let (code, stdout) = run(
        &root,
        &["--baseline", baseline.to_str().expect("utf-8 path")],
    );
    assert_eq!(code, 1, "a stale baseline entry must fail:\n{stdout}");
    assert!(stdout.contains("[stale-baseline]"), "{stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs:4:panic"),
        "{stdout}"
    );
}

#[test]
fn missing_baseline_file_is_a_usage_error() {
    let root = dirty_ws("v2-ratchet-missing");
    let (code, _) = run(&root, &["--baseline", "/nonexistent/lint.baseline"]);
    assert_eq!(code, 2);
}

#[test]
fn list_rules_includes_the_cross_file_families() {
    let out = Command::new(env!("CARGO_BIN_EXE_lead-lint"))
        .arg("--list-rules")
        .output()
        .expect("run lead-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let rules: Vec<&str> = stdout.lines().collect();
    assert_eq!(rules.len(), 14, "{stdout}");
    for id in [
        "layering",
        "error-contract",
        "scope-drift",
        "unsafe-contract",
        "hot-loop-alloc",
        "panic-path",
        "determinism-taint",
    ] {
        assert!(rules.contains(&id), "{stdout}");
    }
}
