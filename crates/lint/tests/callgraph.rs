//! R12 (`panic-path`) and R13 (`determinism-taint`) fire/no-fire matrix:
//! direct, transitive (≥ 2 hops), cross-crate, waived (site-line and
//! declaration-line), and `#[cfg(test)]`-exempt cases for each family —
//! per-file cases through `scan_source`, cross-crate cases through
//! `scan_workspace` on fixture workspaces — plus the `explain` subcommand
//! and the byte-stable witness-path JSON pin.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn write(path: &Path, content: &str) {
    fs::create_dir_all(path.parent().expect("file path has a parent")).expect("mkdir");
    fs::write(path, content).expect("write fixture file");
}

fn ws(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture workspace");
    }
    write(
        &root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    );
    root
}

/// Writes a fixture crate manifest with the given package name, lead class,
/// and `[dependencies]` entries.
fn crate_manifest(root: &Path, dir: &str, package: &str, class: &str, deps: &[&str]) {
    let mut toml = format!(
        "[package]\nname = \"{package}\"\n\n[package.metadata.lead]\nclass = \"{class}\"\n\n[dependencies]\n"
    );
    for d in deps {
        toml.push_str(&format!("{d} = {{ path = \"../x\" }}\n"));
    }
    write(&root.join(dir).join("Cargo.toml"), &toml);
}

/// Crate-root attrs the R10 audit demands of library crates.
const ATTRS: &str = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";

fn rules_of(diags: &[lead_lint::diag::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

fn run(root: &Path, extra: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lead-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("run lead-lint");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (out.status.code().unwrap_or(-1), stdout)
}

// ---------------------------------------------------------------------------
// R12 — panic-path
// ---------------------------------------------------------------------------

#[test]
fn direct_panic_in_a_result_lib_pub_fn_fires_r2_and_r12() {
    let src = "//! E.\n\npub fn entry(o: Option<u32>) -> u32 {\n    o.unwrap()\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert_eq!(rules_of(&diags), vec!["panic", "panic-path"], "{diags:?}");
    let r12 = &diags[1];
    assert_eq!((r12.line, r12.col), (3, 5));
    assert!(r12.message.contains("`pub fn entry`"), "{}", r12.message);
    assert!(
        r12.message
            .contains("entry: panics at crates/eval/src/lib.rs:4 (`.unwrap()`)"),
        "{}",
        r12.message
    );
}

#[test]
fn transitive_two_hops_reports_the_full_witness_path() {
    let src = "//! E.\n\n\
               pub fn entry(v: &[u32]) -> u32 {\n    helper(v)\n}\n\n\
               fn helper(v: &[u32]) -> u32 {\n    inner(v)\n}\n\n\
               fn inner(v: &[u32]) -> u32 {\n    \
               // lint: allow(panic): fixture — length asserted by caller\n    \
               v[0]\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert_eq!(rules_of(&diags), vec!["panic-path"], "{diags:?}");
    assert!(
        diags[0]
            .message
            .contains("entry → helper → inner: panics at crates/eval/src/lib.rs:13"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("(indexing by literal `[0]`)"),
        "{}",
        diags[0].message
    );
}

#[test]
fn cross_crate_panic_path_through_a_declared_dep() {
    let root = ws("cg-cross-panic");
    crate_manifest(&root, "crates/eval", "lead-eval", "result-lib", &["lead-synth"]);
    crate_manifest(&root, "crates/synth", "lead-synth", "lib", &[]);
    write(
        &root.join("crates/eval/src/lib.rs"),
        &format!(
            "//! E.\n{ATTRS}\nuse lead_synth::boom;\n\n\
             pub fn entry(n: u32) -> u32 {{\n    boom(n)\n}}\n"
        ),
    );
    write(
        &root.join("crates/synth/src/lib.rs"),
        &format!(
            "//! S.\n{ATTRS}\n\
             /// Boom.\npub fn boom(n: u32) -> u32 {{\n    deep(n)\n}}\n\n\
             fn deep(n: u32) -> u32 {{\n    let v = vec![n, n];\n    \
             // lint: allow(panic): fixture — index in range by construction\n    \
             v[0]\n}}\n"
        ),
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(rules_of(&diags), vec!["panic-path"], "{diags:?}");
    assert_eq!(diags[0].file, "crates/eval/src/lib.rs");
    assert!(
        diags[0]
            .message
            .contains("entry → boom → deep: panics at crates/synth/src/lib.rs:13"),
        "{}",
        diags[0].message
    );
}

#[test]
fn site_waiver_covering_panic_path_silences_r12() {
    let src = "//! E.\n\npub fn entry(o: Option<u32>) -> u32 {\n    \
               // lint: allow(panic, panic-path): fixture — checked by caller\n    \
               o.unwrap()\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn decl_waiver_certifies_the_whole_fn() {
    let src = "//! E.\n\n\
               // lint: allow(panic-path): fixture — entry validates its input first\n\
               pub fn entry(v: &[u32]) -> u32 {\n    helper(v)\n}\n\n\
               fn helper(v: &[u32]) -> u32 {\n    \
               // lint: allow(panic): fixture — length asserted by caller\n    \
               v[0]\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unused_decl_waiver_is_flagged() {
    let src = "//! E.\n\n\
               // lint: allow(panic-path): fixture — nothing to certify\n\
               pub fn entry(n: u32) -> u32 {\n    n + 1\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert_eq!(rules_of(&diags), vec!["unused-waiver"], "{diags:?}");
    assert_eq!(diags[0].line, 3);
}

#[test]
fn cfg_test_panics_are_exempt_from_r12() {
    let src = "//! E.\n\npub fn entry(n: u32) -> u32 {\n    n\n}\n\n\
               #[cfg(test)]\nmod tests {\n    \
               pub fn entry_t(o: Option<u32>) -> u32 {\n        o.unwrap()\n    }\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn debug_assert_sites_are_exempt_from_r12() {
    let src = "//! E.\n\npub fn entry(v: &[u32]) -> u32 {\n    \
               debug_assert!(v[0] > 0);\n    0\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert_eq!(rules_of(&diags), vec!["panic"], "{diags:?}"); // R2 still sees it
}

#[test]
fn non_result_crates_have_no_r12_entries() {
    let src = "//! S.\n\npub fn entry(o: Option<u32>) -> u32 {\n    \
               // lint: allow(panic): fixture\n    o.unwrap()\n}\n";
    let diags = lead_lint::scan_source("crates/synth/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn private_fns_are_not_entries() {
    let src = "//! E.\n\nfn quiet(o: Option<u32>) -> u32 {\n    \
               // lint: allow(panic): fixture\n    o.unwrap()\n}\n\n\
               pub(crate) fn half(o: Option<u32>) -> u32 {\n    quiet(o)\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// R13 — determinism-taint
// ---------------------------------------------------------------------------

#[test]
fn hashset_reached_through_a_helper_fires_r13() {
    let src = "//! E.\n\n\
               pub fn entry(v: &[u32]) -> usize {\n    helper(v)\n}\n\n\
               fn helper(v: &[u32]) -> usize {\n    \
               // lint: allow(hash-order): fixture — drained via len only\n    \
               let s: std::collections::HashSet<u32> = v.iter().copied().collect();\n    \
               s.len()\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert_eq!(rules_of(&diags), vec!["determinism-taint"], "{diags:?}");
    assert!(
        diags[0]
            .message
            .contains("entry → helper: tainted at crates/eval/src/lib.rs:9 (`HashSet` iteration order)"),
        "{}",
        diags[0].message
    );
}

#[test]
fn clock_laundered_through_a_helper_crate_fires_r13() {
    let root = ws("cg-cross-clock");
    crate_manifest(&root, "crates/eval", "lead-eval", "result-lib", &["lead-synth"]);
    crate_manifest(&root, "crates/synth", "lead-synth", "lib", &[]);
    write(
        &root.join("crates/eval/src/lib.rs"),
        &format!(
            "//! E.\n{ATTRS}\nuse lead_synth::now_ms;\n\n\
             pub fn entry() -> u64 {{\n    now_ms()\n}}\n"
        ),
    );
    // Legal under the per-line rules: synth is not result-affecting, so R5
    // never sees this clock read. Only the propagation catches it.
    write(
        &root.join("crates/synth/src/lib.rs"),
        &format!(
            "//! S.\n{ATTRS}\n\
             /// Now.\npub fn now_ms() -> u64 {{\n    \
             let t = std::time::Instant::now();\n    \
             t.elapsed().subsec_millis() as u64\n}}\n"
        ),
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(rules_of(&diags), vec!["determinism-taint"], "{diags:?}");
    assert_eq!(diags[0].file, "crates/eval/src/lib.rs");
    assert!(
        diags[0]
            .message
            .contains("entry → now_ms: tainted at crates/synth/src/lib.rs:7 (`Instant` wall-clock read)"),
        "{}",
        diags[0].message
    );
}

#[test]
fn sanctioned_simd_env_probe_is_not_taint() {
    let src = "//! P.\n\n/// Probe.\npub fn forced() -> bool {\n    \
               std::env::var(\"LEAD_SIMD_FORCE\").is_ok()\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/probe.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn other_env_reads_are_taint() {
    let src = "//! P.\n\n/// Probe.\npub fn forced() -> bool {\n    \
               std::env::var(\"LEAD_BACKEND\").is_ok()\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/probe.rs", src);
    assert_eq!(rules_of(&diags), vec!["determinism-taint"], "{diags:?}");
    assert!(
        diags[0]
            .message
            .contains("forced: tainted at crates/nn/src/probe.rs:5 (`env::var` read)"),
        "{}",
        diags[0].message
    );
}

#[test]
fn taint_site_waiver_silences_r13() {
    let src = "//! E.\n\npub fn entry(v: &[u32]) -> usize {\n    \
               // lint: allow(hash-order, determinism-taint): fixture — len only\n    \
               let s: std::collections::HashSet<u32> = v.iter().copied().collect();\n    \
               s.len()\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn cfg_test_taint_is_exempt_from_r13() {
    let src = "//! E.\n\npub fn entry(n: u32) -> u32 {\n    n\n}\n\n\
               #[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    \
               pub fn uniq(v: &[u32]) -> usize {\n        \
               v.iter().copied().collect::<HashSet<u32>>().len()\n    }\n}\n";
    let diags = lead_lint::scan_source("crates/eval/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// Witness determinism: byte-stable JSON
// ---------------------------------------------------------------------------

#[test]
fn witness_json_is_byte_stable() {
    let root = ws("cg-json-golden");
    crate_manifest(&root, "crates/eval", "lead-eval", "result-lib", &[]);
    write(
        &root.join("crates/eval/src/lib.rs"),
        &format!(
            "//! E.\n{ATTRS}\n\
             pub fn entry(o: Option<u32>) -> u32 {{\n    \
             // lint: allow(panic): fixture — caller checks\n    o.unwrap()\n}}\n"
        ),
    );
    let (code1, out1) = run(&root, &["--format", "json"]);
    let (code2, out2) = run(&root, &["--format", "json"]);
    assert_eq!(code1, 1);
    assert_eq!(out1, out2, "JSON output must be byte-stable across runs");
    let expected = concat!(
        "{\"version\":1,\"count\":1,\"diagnostics\":[",
        "{\"file\":\"crates/eval/src/lib.rs\",\"line\":5,\"col\":5,\"rule\":\"panic-path\",",
        "\"message\":\"`pub fn entry` can reach a panic site: entry: panics at ",
        "crates/eval/src/lib.rs:7 (`.unwrap()`) — public APIs of result-affecting crates ",
        "must be panic-free end to end (R12); return a typed error, or waive a step with ",
        "`// lint: allow(panic-path): <reason>`\",",
        "\"snippet\":\"pub fn entry(o: Option<u32>) -> u32 {\"}",
        "]}\n"
    );
    assert_eq!(out1, expected);
}

// ---------------------------------------------------------------------------
// The explain subcommand and derived help
// ---------------------------------------------------------------------------

fn run_bare(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_lead-lint"))
        .args(args)
        .output()
        .expect("run lead-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn explain_without_a_target_lists_the_whole_catalog() {
    let (code, stdout, _) = run_bare(&["explain"]);
    assert_eq!(code, 0);
    for (num, id) in [("R1", "hash-order"), ("R12", "panic-path"), ("R13", "determinism-taint")] {
        assert!(stdout.contains(num), "{stdout}");
        assert!(stdout.contains(id), "{stdout}");
    }
    // One line per catalog entry plus the trailing hint.
    let rule_lines = stdout.lines().filter(|l| l.starts_with('R')).count();
    assert_eq!(rule_lines, lead_lint::rules::RULE_DOCS.len(), "{stdout}");
}

#[test]
fn explain_by_number_prints_doc_and_waiver_syntax() {
    let (code, stdout, _) = run_bare(&["explain", "R12"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("R12 `panic-path`"), "{stdout}");
    assert!(stdout.contains("witness path"), "{stdout}");
    assert!(stdout.contains("// lint: allow(panic-path):"), "{stdout}");
}

#[test]
fn explain_by_rule_id_works() {
    let (code, stdout, _) = run_bare(&["explain", "determinism-taint"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("R13 `determinism-taint`"), "{stdout}");
    assert!(stdout.contains("LEAD_SIMD_FORCE"), "{stdout}");
}

#[test]
fn explain_r4_covers_both_halves() {
    let (code, stdout, _) = run_bare(&["explain", "R4"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("R4a `float-cast`"), "{stdout}");
    assert!(stdout.contains("R4b `float-eq`"), "{stdout}");
}

#[test]
fn explain_unknown_rule_is_a_usage_error() {
    let (code, _, stderr) = run_bare(&["explain", "R99"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("unknown rule"), "{stderr}");
    assert!(stderr.contains("panic-path"), "{stderr}");
}

#[test]
fn help_derives_the_rule_range_from_the_catalog() {
    let (code, stdout, _) = run_bare(&["--help"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("R1-R13"), "{stdout}");
    assert!(stdout.contains("explain"), "{stdout}");
}
