//! R10 (`unsafe-contract`) and R11 (`hot-loop-alloc`) fire/no-fire matrix:
//! the sanctioned-unsafe allowlist, the `// SAFETY:` discipline, the
//! crate-attr audit, `#[allow(unsafe_code)]` placement, kernel tagging, and
//! waiver interplay — per-file cases through `scan_source`, manifest-scoped
//! cases through `scan_workspace` on fixture workspaces.

use std::fs;
use std::path::{Path, PathBuf};

fn write(path: &Path, content: &str) {
    fs::create_dir_all(path.parent().expect("file path has a parent")).expect("mkdir");
    fs::write(path, content).expect("write fixture file");
}

fn ws(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear stale fixture workspace");
    }
    write(
        &root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    );
    root
}

/// A fixture crate manifest with a lead class and optional kernel tag.
fn manifest(root: &Path, dir: &str, package: &str, class: &str, kernel: Option<&str>) {
    let mut toml = format!(
        "[package]\nname = \"{package}\"\n\n[package.metadata.lead]\nclass = \"{class}\"\n"
    );
    if let Some(k) = kernel {
        toml.push_str(&format!("kernel = \"{k}\"\n"));
    }
    write(&root.join(dir).join("Cargo.toml"), &toml);
}

/// The crate-root attrs the R10 audit demands of a non-sanctioned library.
const ATTRS: &str = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";

fn rules_of(diags: &[lead_lint::diag::Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// ---------------------------------------------------------------------------
// R10 per-file: sites and SAFETY discipline
// ---------------------------------------------------------------------------

#[test]
fn unsafe_outside_the_allowlist_fires() {
    let src = "//! F.\n\nfn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&diags), vec!["unsafe-contract"], "{diags:?}");
    assert_eq!((diags[0].line, diags[0].col), (4, 5));
    assert!(diags[0]
        .message
        .contains("outside the sanctioned allowlist"));
    assert!(diags[0].message.contains("`crates/nn::simd`"));
}

#[test]
fn sanctioned_unsafe_with_a_safety_comment_is_clean() {
    let src = "//! F.\n\nfn f(p: *const f32) -> f32 {\n    \
               // SAFETY: `p` points at a live f32 owned by the caller.\n    \
               unsafe { *p }\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/simd/kernel.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn sanctioned_unsafe_without_a_safety_comment_fires() {
    let src = "//! F.\n\nfn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/simd/kernel.rs", src);
    assert_eq!(rules_of(&diags), vec!["unsafe-contract"], "{diags:?}");
    assert!(diags[0].message.contains("without a `// SAFETY:` comment"));
}

#[test]
fn empty_safety_text_fires() {
    let src = "//! F.\n\nfn f(p: *const f32) -> f32 {\n    // SAFETY:\n    unsafe { *p }\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/simd/kernel.rs", src);
    assert_eq!(rules_of(&diags), vec!["unsafe-contract"], "{diags:?}");
    assert!(diags[0].message.contains("empty"));
}

#[test]
fn same_line_safety_comment_counts() {
    let src = "//! F.\n\nfn f(p: *const f32) -> f32 {\n    \
               unsafe { *p } // SAFETY: caller keeps `p` alive\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/simd/kernel.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn safety_comment_above_attribute_lines_counts() {
    // `#[target_feature]` sits between the SAFETY comment and the unsafe fn;
    // attribute lines are transparent to the upward walk.
    let src = "//! F.\n\n// SAFETY: only reached after is_x86_feature_detected!(\"avx2\").\n\
               #[target_feature(enable = \"avx2\")]\nunsafe fn k() {}\n";
    let diags = lead_lint::scan_source("crates/nn/src/simd/kernel.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_inside_cfg_test_is_exempt() {
    let src = "//! F.\n\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let x = 0u8;\n        \
               let _ = unsafe { core::ptr::read(&x) };\n    }\n}\n";
    let diags = lead_lint::scan_source("crates/core/src/x.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_in_strings_and_comments_is_invisible() {
    let src = "//! F.\n\n// the word unsafe in prose is fine\nfn f() -> &'static str {\n    \
               \"unsafe { }\"\n}\n";
    let diags = lead_lint::scan_source("crates/geo/src/x.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn waived_unsafe_site_is_silenced() {
    let src = "//! F.\n\nfn f(p: *const f32) -> f32 {\n    \
               // lint: allow(unsafe-contract): doc exemplar, justified in review\n    \
               unsafe { *p }\n}\n";
    let diags = lead_lint::scan_source("crates/nn/src/simd/kernel.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// R10 per-file: allow(unsafe_code) placement
// ---------------------------------------------------------------------------

#[test]
fn allow_unsafe_code_outside_sanctioned_declarations_fires() {
    let src = "//! F.\n#![allow(unsafe_code)]\n";
    let diags = lead_lint::scan_source("crates/core/src/lib.rs", src);
    assert_eq!(rules_of(&diags), vec!["unsafe-contract"], "{diags:?}");
    assert!(diags[0].message.contains("allow(unsafe_code)"));
}

#[test]
fn allow_unsafe_code_on_the_sanctioned_mod_declaration_is_legal() {
    let src = "//! N.\n\n/// Kernels.\n#[allow(unsafe_code)]\npub mod simd;\n";
    let diags = lead_lint::scan_source("crates/nn/src/lib.rs", src);
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// R10 workspace half: the crate-attr audit
// ---------------------------------------------------------------------------

#[test]
fn library_crate_missing_forbid_unsafe_code_fires() {
    let root = ws("r10-no-forbid");
    manifest(&root, "crates/geo", "lead-geo", "lib", None);
    write(
        &root.join("crates/geo/src/lib.rs"),
        "//! G.\n#![deny(missing_docs)]\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(rules_of(&diags), vec!["unsafe-contract"], "{diags:?}");
    assert_eq!(diags[0].file, "crates/geo/src/lib.rs");
    assert!(diags[0].message.contains("forbid(unsafe_code)"));
}

#[test]
fn library_crate_missing_deny_missing_docs_fires() {
    let root = ws("r10-no-docs");
    manifest(&root, "crates/geo", "lead-geo", "lib", None);
    write(
        &root.join("crates/geo/src/lib.rs"),
        "//! G.\n#![forbid(unsafe_code)]\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(rules_of(&diags), vec!["unsafe-contract"], "{diags:?}");
    assert!(diags[0].message.contains("missing_docs"));
}

#[test]
fn sanctioned_crate_must_use_deny_not_forbid() {
    let root = ws("r10-nn-forbid");
    manifest(&root, "crates/nn", "lead-nn", "result-lib", None);
    write(
        &root.join("crates/nn/src/lib.rs"),
        "//! N.\n#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(rules_of(&diags), vec!["unsafe-contract"], "{diags:?}");
    assert!(diags[0].message.contains("forbid"), "{diags:?}");
}

#[test]
fn sanctioned_crate_with_deny_unsafe_code_is_clean() {
    let root = ws("r10-nn-deny");
    manifest(&root, "crates/nn", "lead-nn", "result-lib", None);
    write(
        &root.join("crates/nn/src/lib.rs"),
        "//! N.\n#![deny(unsafe_code)]\n#![deny(missing_docs)]\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------------
// R11 — hot-loop-alloc
// ---------------------------------------------------------------------------

/// A module whose loop body allocates: one `push` inside the loop, the
/// `Vec::new` hoisted above it (which must stay silent).
const HOT: &str =
    "//! Hot.\n\nfn grow(xs: &[u32]) -> Vec<u32> {\n    let mut out = Vec::new();\n    \
                   for &x in xs {\n        out.push(x);\n    }\n    out\n}\n";

#[test]
fn alloc_in_a_loop_of_a_kernel_tagged_module_fires() {
    let root = ws("r11-kernel");
    manifest(&root, "crates/core", "lead-core", "result-lib", Some("hot"));
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("//! C.\n{ATTRS}"),
    );
    write(&root.join("crates/core/src/hot.rs"), HOT);
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(rules_of(&diags), vec!["hot-loop-alloc"], "{diags:?}");
    assert_eq!(
        (diags[0].file.as_str(), diags[0].line),
        ("crates/core/src/hot.rs", 6)
    );
    assert!(diags[0].message.contains("`push`"));
}

#[test]
fn same_code_outside_the_kernel_tag_is_clean() {
    let root = ws("r11-cold");
    manifest(&root, "crates/core", "lead-core", "result-lib", Some("hot"));
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("//! C.\n{ATTRS}"),
    );
    write(&root.join("crates/core/src/cold.rs"), HOT);
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn kernel_true_tags_the_whole_crate() {
    let root = ws("r11-whole");
    manifest(
        &root,
        "crates/core",
        "lead-core",
        "result-lib",
        Some("true"),
    );
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("//! C.\n{ATTRS}"),
    );
    write(&root.join("crates/core/src/anywhere.rs"), HOT);
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(rules_of(&diags), vec!["hot-loop-alloc"], "{diags:?}");
}

#[test]
fn untagged_crate_never_fires_r11() {
    let root = ws("r11-untagged");
    manifest(&root, "crates/core", "lead-core", "result-lib", None);
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("//! C.\n{ATTRS}"),
    );
    write(&root.join("crates/core/src/hot.rs"), HOT);
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn macro_allocations_in_loops_fire_per_pattern() {
    let root = ws("r11-macros");
    manifest(&root, "crates/core", "lead-core", "result-lib", Some("hot"));
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("//! C.\n{ATTRS}"),
    );
    write(
        &root.join("crates/core/src/hot.rs"),
        "//! Hot.\n\nfn f(n: usize) {\n    for _ in 0..n {\n        let v = vec![0u8];\n        \
         let s = String::new();\n        drop((v, s));\n    }\n}\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert_eq!(
        rules_of(&diags),
        vec!["hot-loop-alloc", "hot-loop-alloc"],
        "{diags:?}"
    );
    assert_eq!(
        diags.iter().map(|d| d.line).collect::<Vec<_>>(),
        vec![5, 6],
        "{diags:?}"
    );
}

#[test]
fn waived_hot_loop_alloc_is_silenced() {
    let root = ws("r11-waived");
    manifest(&root, "crates/core", "lead-core", "result-lib", Some("hot"));
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("//! C.\n{ATTRS}"),
    );
    write(
        &root.join("crates/core/src/hot.rs"),
        "//! Hot.\n\nfn grow(xs: &[u32]) -> Vec<u32> {\n    let mut out = Vec::new();\n    \
         for &x in xs {\n        \
         // lint: allow(hot-loop-alloc): amortised growth, measured in benches\n        \
         out.push(x);\n    }\n    out\n}\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn allocations_in_test_loops_are_exempt() {
    let root = ws("r11-tests");
    manifest(&root, "crates/core", "lead-core", "result-lib", Some("hot"));
    write(
        &root.join("crates/core/src/lib.rs"),
        &format!("//! C.\n{ATTRS}"),
    );
    write(
        &root.join("crates/core/src/hot.rs"),
        "//! Hot.\n\n#[cfg(test)]\nmod tests {\n    fn t() {\n        let mut v = Vec::new();\n        \
         for i in 0..4 {\n            v.push(i);\n        }\n    }\n}\n",
    );
    let diags = lead_lint::scan_workspace(&root).expect("scan");
    assert!(diags.is_empty(), "{diags:?}");
}
