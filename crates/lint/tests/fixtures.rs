//! Per-rule fixture tests: each fixture under `fixtures/` is scanned under a
//! pretend workspace path so the scope tables apply, and the diagnostics are
//! compared against the exact `(rule, line)` pairs annotated in the fixture.

use lead_lint::scan_source;

fn fires(rel_path: &str, fixture: &str) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = scan_source(rel_path, fixture)
        .into_iter()
        .map(|d| (d.rule.to_string(), d.line))
        .collect();
    // scan_source reports rule violations before waiver-hygiene findings;
    // sort by line for stable comparisons.
    v.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    v
}

#[test]
fn hash_order_fixture() {
    let got = fires(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/hash_order.rs"),
    );
    assert_eq!(
        got,
        vec![("hash-order".into(), 3), ("hash-order".into(), 10)]
    );
}

#[test]
fn panic_fixture() {
    let got = fires(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/panic.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("panic".into(), 4),
            ("panic".into(), 5),
            ("panic".into(), 6),
            ("panic".into(), 8),
        ]
    );
}

#[test]
fn thread_spawn_fixture() {
    let got = fires(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/thread_spawn.rs"),
    );
    assert_eq!(
        got,
        vec![("thread-spawn".into(), 5), ("thread-spawn".into(), 10)]
    );
}

#[test]
fn float_fixture() {
    let got = fires(
        "crates/nn/src/fixture.rs",
        include_str!("../fixtures/float.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("float-cast".into(), 5),
            ("float-cast".into(), 6),
            ("float-cast".into(), 8),
            ("float-cast".into(), 9),
            ("float-cast".into(), 9),
            ("float-eq".into(), 20),
            ("float-eq".into(), 21),
            ("float-eq".into(), 22),
        ]
    );
}

#[test]
fn float_rules_only_apply_in_kernel_scope() {
    // The same source under a non-kernel path (lead_synth) yields no R4
    // diagnostics at all.
    let got = fires(
        "crates/synth/src/fixture.rs",
        include_str!("../fixtures/float.rs"),
    );
    assert!(
        got.iter()
            .all(|(r, _)| r != "float-cast" && r != "float-eq"),
        "non-kernel paths must not fire R4: {got:?}"
    );
}

#[test]
fn wall_clock_fixture() {
    let got = fires(
        "crates/eval/src/fixture.rs",
        include_str!("../fixtures/wall_clock.rs"),
    );
    assert_eq!(
        got,
        vec![("wall-clock".into(), 4), ("wall-clock".into(), 7)]
    );
}

#[test]
fn wall_clock_is_sanctioned_in_timing_rs() {
    // The very same source inside the one sanctioned file is clean (its
    // waiver then shows up as unused, which is the desired hygiene nudge).
    let got = fires(
        "crates/eval/src/timing.rs",
        include_str!("../fixtures/wall_clock.rs"),
    );
    assert!(
        got.iter().all(|(r, _)| r != "wall-clock"),
        "timing.rs is R5-exempt: {got:?}"
    );
}

#[test]
fn missing_doc_fixture() {
    let got = fires(
        "crates/nn/src/fixture.rs",
        include_str!("../fixtures/missing_doc.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("missing-doc".into(), 3),
            ("missing-doc".into(), 8),
            ("missing-doc".into(), 17),
        ]
    );
}

#[test]
fn waiver_hygiene_fixture() {
    let got = fires(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/waiver_hygiene.rs"),
    );
    assert_eq!(
        got,
        vec![
            ("bad-waiver".into(), 4),
            ("panic".into(), 7),
            ("bad-waiver".into(), 8),
            ("unused-waiver".into(), 13),
        ]
    );
}

#[test]
fn bench_and_cli_crates_are_exempt_from_result_rules() {
    let src = include_str!("../fixtures/wall_clock.rs");
    assert!(
        fires("crates/cli/src/fixture.rs", src)
            .iter()
            .all(|(r, _)| r != "wall-clock"),
        "cli crate is not result-affecting"
    );
    let panics = include_str!("../fixtures/panic.rs");
    assert!(
        fires("crates/cli/src/fixture.rs", panics)
            .iter()
            .all(|(r, _)| r != "panic"),
        "cli crate may panic"
    );
}
