//! Fixture: R3 thread-spawn. Scanned under a pretend `crates/core/src/` path
//! (any path except `crates/nn/src/par.rs` is outside the sanctioned pool).

fn fires() {
    let h = std::thread::spawn(|| 1 + 1); // FIRE: thread-spawn (line 5)
    let _ = h.join();
}

fn scoped_fires() {
    std::thread::scope(|_s| {}); // FIRE: thread-spawn (line 10)
}

fn waived() {
    // lint: allow(thread-spawn): watchdog thread, never touches results
    std::thread::spawn(|| ());
}

fn mentions_in_docs_are_fine() {
    // `thread::spawn` in a plain comment without code is fine.
}
