//! Fixture: R6 missing-doc. Scanned under a pretend `crates/nn/src/` path.

pub fn undocumented() {} // FIRE: missing-doc (line 3)

/// Documented: fine.
pub fn documented() {}

pub struct Bare; // FIRE: missing-doc (line 8)

/// Documented struct with an attribute between doc and item: fine.
#[derive(Debug, Clone)]
pub struct Attributed {
    /// Field docs are rustc's job (`deny(missing_docs)`), not this rule's.
    pub field: u32,
}

pub const LIMIT: usize = 8; // FIRE: missing-doc (line 17)

// lint: allow(missing-doc): internal re-export surface documented at the definition site
pub fn waived_item() {}

fn private_needs_no_docs() {}

pub use std::cmp::Ordering; // re-exports delegated to rustc's deny(missing_docs)
