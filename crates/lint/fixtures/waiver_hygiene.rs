//! Fixture: waiver hygiene. Scanned under a pretend `crates/core/src/` path.

fn bad_waivers(o: Option<u32>) -> u32 {
    // lint: allow(panic)
    // ^ FIRE: bad-waiver (line 4) — no reason given. The expect below is
    //   therefore NOT covered and fires too (the bad waiver is ignored).
    let a = o.expect("boom"); // FIRE: panic (line 7)
    let b = 1u32; // lint: allow(made-up-rule): FIRE: bad-waiver (line 8) — unknown rule id
    a + b
}

fn unused_waivers(v: &[u32]) -> usize {
    // lint: allow(panic): FIRE: unused-waiver (line 13) — the next line is clean
    v.len()
}
