//! Fixture: R1 hash-order. Scanned under a pretend `crates/core/src/` path.

use std::collections::HashMap; // FIRE: hash-order (line 3)
use std::collections::BTreeMap; // clean: ordered map

// lint: allow(hash-order): keys are sorted before iteration, order never observed
fn waived() -> HashMap<u32, u32> {
    // The waiver on the comment line above covers only its own next line;
    // this second use fires again.
    HashMap::new() // FIRE: hash-order (line 10)
}

fn same_line_waiver() {
    let _ = HashMap::<u8, u8>::new(); // lint: allow(hash-order): populated then drained in sorted order
}

fn clean(m: &BTreeMap<u32, u32>) -> usize {
    m.len()
}
