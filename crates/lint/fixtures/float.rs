//! Fixture: R4 float-cast / float-eq. Scanned under a pretend
//! `crates/nn/src/` path so the numeric-kernel scope applies.

fn casts(x: f64, y: f32, n: usize) -> f32 {
    let a = x as f32; // FIRE: float-cast (line 5)
    let b = y as i32; // FIRE: float-cast (line 6)
    let c = n as f64; // widening to f64: not flagged
    let d = n.checked_ilog2().unwrap_or(0) as f32; // FIRE: float-cast (line 8)
    a + b as f32 + c as f32 + d // FIRE: float-cast twice (line 9: both casts)
}

fn exempt_sources(v: &[f32]) -> f32 {
    let n = v.len() as f32; // len(): exact below 2^24, not flagged
    let k = v.iter().count() as f32; // count(): not flagged
    let lit = 3 as f32; // integer literal: not flagged
    n + k + lit
}

fn comparisons(a: f32, b: f64) -> bool {
    let bad = a == 0.0; // FIRE: float-eq (line 20)
    let bad2 = b != 1.5; // FIRE: float-eq (line 21)
    let inf = a == f32::INFINITY; // FIRE: float-eq (line 22)
    let ok = a.abs() < 1e-6;
    let ints = 3 == 4;
    bad || bad2 || inf || ok || ints
}

fn waived(a: f32) -> bool {
    // lint: allow(float-eq): exact-zero sparsity skip; tolerance would change results
    a == 0.0
}
