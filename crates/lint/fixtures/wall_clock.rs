//! Fixture: R5 wall-clock. Scanned under a pretend `crates/eval/src/` path
//! (not `timing.rs`, the one sanctioned home for clock reads).

use std::time::Instant; // FIRE: wall-clock (line 4)

fn fires() -> u64 {
    let t = std::time::SystemTime::now(); // FIRE: wall-clock (line 7)
    let _ = t;
    0
}

fn waived() {
    // lint: allow(wall-clock): progress logging only, never enters results
    let _t = Instant::now();
}

fn duration_is_fine(d: std::time::Duration) -> f64 {
    d.as_secs_f64()
}
