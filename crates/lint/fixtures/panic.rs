//! Fixture: R2 panic-freedom. Scanned under a pretend `crates/core/src/` path.

fn fires(v: &[u32], o: Option<u32>) -> u32 {
    let a = o.unwrap(); // FIRE: panic (line 4)
    let b = v.first().expect("non-empty"); // FIRE: panic (line 5)
    let c = v[0]; // FIRE: panic (line 6)
    if a > 3 {
        panic!("boom"); // FIRE: panic (line 8)
    }
    a + b + c
}

fn asserts_are_fine(v: &[u32]) -> u32 {
    assert!(!v.is_empty(), "deliberate contract check");
    debug_assert!(v.len() < 100);
    let i = v.len() - 1;
    v[i] // computed index: not flagged
}

fn waived(o: Option<u32>) -> u32 {
    // lint: allow(panic): construction invariant — caller always passes Some
    o.expect("always Some")
}

fn strings_and_arrays() -> &'static str {
    let _zeros = [0u8; 4]; // array repeat, not indexing
    "call .unwrap() and v[0] in a string is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v.first().copied().unwrap(), v[0]);
    }
}
