//! `lead-lint` — the workspace's static-analysis gate.
//!
//! LEAD's detection output must be reproducible to be trustworthy for a
//! safety-critical workload (hazardous-chemicals transport). PR 1 established
//! a hard contract — bit-identical `c-vec`s and detection distributions at
//! any thread count, and no panics on degenerate GPS days — and this crate
//! enforces it mechanically instead of by convention.
//!
//! The tool is a plain lexical/line-level scanner (no `syn`, no
//! dependencies, so it runs in the offline build environment). It strips
//! string literals and comments, tracks `#[cfg(test)]` regions by brace
//! depth, and applies the rule catalog of [`rules`] to every workspace
//! source file. Diagnostics are printed as `file:line: [rule] message` with
//! the offending snippet; any diagnostic makes the binary exit non-zero,
//! which is how `scripts/ci.sh` gates merges.
//!
//! # Rule catalog
//!
//! | id            | contract                                                        |
//! |---------------|-----------------------------------------------------------------|
//! | `hash-order`  | R1: no `HashMap`/`HashSet` in result-affecting crates           |
//! | `panic`       | R2: no `unwrap`/`expect`/`panic!`/literal indexing in libraries |
//! | `thread-spawn`| R3: all parallelism goes through `lead_nn::par`                 |
//! | `float-cast`  | R4a: no unguarded numeric narrowing in the numeric kernels      |
//! | `float-eq`    | R4b: no float `==`/`!=` against literals/consts in kernels      |
//! | `wall-clock`  | R5: timing only in `lead_eval::timing` and benches              |
//! | `missing-doc` | R6: every `pub` item in `lead_core`/`lead_nn` is documented     |
//!
//! # Waivers
//!
//! A violation can be waived where the flagged construct is deliberate, but
//! the waiver must carry a written justification. The syntax is a line
//! comment on the offending line (or on a comment-only line directly above
//! it):
//!
//! ```text
//! let h = hs.last().expect("non-empty"); // lint: allow(panic): asserted non-empty above
//! ```
//!
//! A waiver with no reason, an unknown rule name, or one that waives nothing
//! is itself a diagnostic (`bad-waiver` / `unused-waiver`), so the gate also
//! keeps waiver hygiene honest.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod rules;
pub mod scan;
pub mod walk;

use diag::Diagnostic;

/// Scans one source file (given as its workspace-relative path with forward
/// slashes, plus its contents) and returns every diagnostic.
///
/// This is the single entry point shared by the binary and the test suite:
/// fixtures are scanned by handing their contents in under a pretend
/// workspace path so rule scoping can be exercised.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lines = scan::preprocess(source);
    rules::apply(rel_path, &lines)
}

/// Scans the whole workspace rooted at `root` and returns all diagnostics,
/// sorted by file and line. `Err` reports an I/O problem (unreadable file or
/// directory), which the binary also treats as a gate failure.
pub fn scan_workspace(root: &std::path::Path) -> Result<Vec<Diagnostic>, String> {
    let files = walk::workspace_sources(root)?;
    let mut diags = Vec::new();
    for rel in &files {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        diags.extend(scan_source(rel, &source));
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}
