//! `lead-lint` — the workspace's static-analysis gate.
//!
//! LEAD's detection output must be reproducible to be trustworthy for a
//! safety-critical workload (hazardous-chemicals transport). PR 1 established
//! a hard contract — bit-identical `c-vec`s and detection distributions at
//! any thread count, and no panics on degenerate GPS days — and this crate
//! enforces it mechanically instead of by convention.
//!
//! The tool is built on a lossless hand-rolled tokenizer ([`lex`] — no
//! `syn`, no dependencies, so it runs in the offline build environment).
//! [`scan`] replays the token stream into per-line code/comment views
//! (string literals blanked, comments routed aside) and tracks
//! `#[cfg(test)]` regions by brace depth; [`blocks`] builds a block-aware
//! IR over the same token stream (brace tree, fn/impl/mod item extraction,
//! loop spans, `unsafe` sites) for the structural rules; [`rules`] applies
//! the catalog to every workspace source file, and [`workspace`] adds the
//! cross-file checks over the parsed manifests ([`manifest`]). Diagnostics
//! are printed as `file:line:col: [rule] message` with the offending
//! snippet (or as JSON); any diagnostic makes the binary exit non-zero,
//! which is how `scripts/ci.sh` gates merges.
//!
//! # Rule catalog
//!
//! | id            | contract                                                        |
//! |---------------|-----------------------------------------------------------------|
//! | `hash-order`  | R1: no `HashMap`/`HashSet` in result-affecting crates           |
//! | `panic`       | R2: no `unwrap`/`expect`/`panic!`/literal indexing in libraries |
//! | `thread-spawn`| R3: all parallelism goes through `lead_nn::par`                 |
//! | `float-cast`  | R4a: no unguarded numeric narrowing in the numeric kernels      |
//! | `float-eq`    | R4b: no float `==`/`!=` against literals/consts in kernels      |
//! | `wall-clock`  | R5: timing only in `lead_eval::timing` and benches              |
//! | `missing-doc` | R6: every `pub` item in `lead_core`/`lead_nn` is documented     |
//! | `layering`    | R7: imports are declared, acyclic, and on the sanctioned DAG    |
//! | `error-contract` | R8: fallible `pub fn`s document `# Errors`; no stringly errors |
//! | `scope-drift` | R9: every crate is classified; scope tables stay current        |
//! | `unsafe-contract` | R10: `unsafe` only in sanctioned modules, each site SAFETY-commented; library crates carry the crate-root lint attrs |
//! | `hot-loop-alloc` | R11: no allocation/clone calls in loop bodies of kernel-tagged modules |
//! | `panic-path`  | R12: no `pub fn` of a result-affecting crate transitively reaches a panic site |
//! | `determinism-taint` | R13: no nondeterminism source reachable from result-affecting public APIs |
//!
//! R7–R9 are cross-file: they combine each file's token-level imports with a
//! parsed subset of every workspace `Cargo.toml` ([`manifest`]), so an
//! undeclared `use`, a dependency edge outside the sanctioned DAG, or a new
//! crate missing from the classification tables fails the gate.
//!
//! R12–R13 are interprocedural: [`callgraph`] extracts every `fn` item and
//! call site from the token stream + block IR, resolves calls lexically
//! across the workspace (unresolved calls are opaque — assumed clean), and
//! propagates panic sites and nondeterminism taint along the resulting
//! graph, reporting a full witness path (`a → b → c: panics at file:line`)
//! anchored at the offending public entry point. Run `lead-lint explain R12`
//! for the rule docs.
//!
//! R10 confines `unsafe` to the allowlist in `rules::SANCTIONED_UNSAFE`
//! (initially `lead_nn::simd`): every site there needs a non-empty
//! `// SAFETY:` comment directly above, every library crate outside the
//! allowlist must actually carry `#![forbid(unsafe_code)]` +
//! `#![deny(missing_docs)]`, and sanctioned crates downgrade to
//! `#![deny(unsafe_code)]` with `#[allow(unsafe_code)]` permitted only on
//! the sanctioned module's declaration. R11 reads the block IR's loop spans
//! inside modules tagged `[package.metadata.lead] kernel = …` and flags
//! allocation calls (`Vec::new`, `push`, `collect`, `clone`, `format!`, …)
//! in loop bodies, keeping kernel inner loops allocation-free.
//!
//! # Output and ratchet
//!
//! The binary prints `file:line: [rule] message` by default, or a byte-stable
//! JSON document with `--format json`. `--baseline <file>` enables ratchet
//! mode: diagnostics listed in the baseline are suppressed, new ones fail,
//! and baseline entries that no longer fire fail as `stale-baseline` so the
//! baseline can only shrink.
//!
//! # Waivers
//!
//! A violation can be waived where the flagged construct is deliberate, but
//! the waiver must carry a written justification. The syntax is a line
//! comment on the offending line (or on a comment-only line directly above
//! it):
//!
//! ```text
//! let h = hs.last().expect("non-empty"); // lint: allow(panic): asserted non-empty above
//! ```
//!
//! A waiver with no reason, an unknown rule name, or one that waives nothing
//! is itself a diagnostic (`bad-waiver` / `unused-waiver`), so the gate also
//! keeps waiver hygiene honest.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod blocks;
pub mod callgraph;
pub mod diag;
pub mod lex;
pub mod manifest;
pub mod rules;
pub mod scan;
pub mod walk;
pub mod workspace;

use diag::Diagnostic;

/// Scans one source file (given as its workspace-relative path with forward
/// slashes, plus its contents) and returns every diagnostic.
///
/// This is the single entry point shared by the binary and the test suite:
/// fixtures are scanned by handing their contents in under a pretend
/// workspace path so rule scoping can be exercised.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let view = scan::preprocess_file(source);
    let inputs = [callgraph::SourceFile {
        rel: rel_path,
        source,
        view: &view,
    }];
    let analysis = callgraph::analyze(&inputs, &[]);
    let mut diags = rules::apply_file_with(rel_path, &view, None, analysis.used_for(rel_path));
    diags.extend(analysis.diags);
    diags
}

/// Scans the whole workspace rooted at `root` and returns all diagnostics,
/// sorted by `(file, line, col, rule)`. `Err` reports an I/O problem
/// (unreadable file or directory), which the binary also treats as a gate
/// failure.
///
/// Unlike [`scan_source`], this runs the cross-file families too: each
/// file's imports are checked against its crate's manifest (R7), the
/// manifest-level layering/classification checks run once over the whole
/// workspace (R7/R9), and the interprocedural families (R12/R13) propagate
/// over the workspace-wide call graph ([`callgraph`]).
pub fn scan_workspace(root: &std::path::Path) -> Result<Vec<Diagnostic>, String> {
    let files = walk::workspace_sources(root)?;
    let manifests = manifest::workspace_manifests(root)?;
    // Load everything first: the call graph needs the whole workspace.
    let mut sources = Vec::with_capacity(files.len());
    for rel in &files {
        let full = root.join(rel);
        let source = std::fs::read_to_string(&full)
            .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
        let view = scan::preprocess_file(&source);
        sources.push((rel.as_str(), source, view));
    }
    let inputs: Vec<callgraph::SourceFile<'_>> = sources
        .iter()
        .map(|(rel, source, view)| callgraph::SourceFile { rel, source, view })
        .collect();
    let analysis = callgraph::analyze(&inputs, &manifests);
    let mut diags = Vec::new();
    for (rel, source, view) in &sources {
        let imports = workspace::imports(source);
        let checks = rules::FileChecks {
            imports: &imports,
            manifests: &manifests,
        };
        diags.extend(rules::apply_file_with(
            rel,
            view,
            Some(&checks),
            analysis.used_for(rel),
        ));
    }
    diags.extend(analysis.diags);
    diags.extend(workspace::workspace_checks(root, &manifests));
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(diags)
}
