//! Baseline ratchet: suppress known diagnostics, fail on new ones, and fail
//! on baseline entries that no longer fire.
//!
//! The baseline file lists one known diagnostic per line as
//! `file:line:rule` (column numbers are deliberately *not* part of the key,
//! so unrelated edits on a line never churn the baseline); blank lines and
//! `#` comments are allowed. Ratchet mode
//! (`--baseline <file>`) subtracts matched diagnostics from the report, so
//! legacy debt doesn't block CI — but any *new* diagnostic still fails, and
//! a baseline entry whose diagnostic has been fixed fails as
//! `stale-baseline` (anchored at the baseline file and entry line). The
//! baseline can therefore only ever shrink, never grow silently.

use crate::diag::Diagnostic;

/// One `file:line:rule` baseline entry, with its own line in the baseline
/// file for stale-entry diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Workspace-relative path of the baselined diagnostic.
    pub file: String,
    /// 1-based line of the baselined diagnostic.
    pub line: usize,
    /// Rule id of the baselined diagnostic.
    pub rule: String,
    /// 1-based line of this entry inside the baseline file.
    pub entry_line: usize,
}

/// Parses baseline `source`. Malformed lines are an error (a typo'd
/// baseline silently suppressing nothing would defeat the ratchet).
pub fn parse(source: &str) -> Result<Vec<Entry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parse_one = || -> Option<Entry> {
            // `file:line:rule`, splitting from the right: paths contain no
            // `:` on the platforms we build on, but stay defensive anyway.
            let (rest, rule) = line.rsplit_once(':')?;
            let (file, line_no) = rest.rsplit_once(':')?;
            let line_no: usize = line_no.trim().parse().ok()?;
            Some(Entry {
                file: file.trim().to_string(),
                line: line_no,
                rule: rule.trim().to_string(),
                entry_line: idx + 1,
            })
        };
        match parse_one() {
            Some(e) => entries.push(e),
            None => {
                return Err(format!(
                    "baseline line {}: expected `file:line:rule`, got `{line}`",
                    idx + 1
                ))
            }
        }
    }
    Ok(entries)
}

/// Applies the ratchet: removes diagnostics matched by an entry, and turns
/// every unmatched entry into a `stale-baseline` diagnostic at the baseline
/// file itself. The result is re-sorted by `(file, line, col, rule)`.
///
/// Matching is exact on `(file, line, rule)` — two diagnostics of different
/// rules on one line need two entries.
pub fn apply(
    mut diags: Vec<Diagnostic>,
    entries: &[Entry],
    baseline_rel_path: &str,
) -> Vec<Diagnostic> {
    let mut matched = vec![false; entries.len()];
    diags.retain(|d| {
        let hit = entries
            .iter()
            .position(|e| e.file == d.file && e.line == d.line && e.rule == d.rule);
        match hit {
            Some(i) => {
                matched[i] = true;
                false
            }
            None => true,
        }
    });
    for (e, _) in entries.iter().zip(&matched).filter(|(_, m)| !**m) {
        diags.push(Diagnostic {
            file: baseline_rel_path.to_string(),
            line: e.entry_line,
            col: 1,
            rule: "stale-baseline",
            message: format!(
                "baseline entry `{}:{}:{}` no longer fires — delete it so the \
                 ratchet keeps tightening",
                e.file, e.line, e.rule
            ),
            snippet: format!("{}:{}:{}", e.file, e.line, e.rule),
        });
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &'static str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            col: 1,
            rule,
            message: "m".to_string(),
            snippet: "s".to_string(),
        }
    }

    #[test]
    fn parses_entries_comments_and_blanks() {
        let src = "# legacy debt\n\ncrates/core/src/model.rs:41:panic\nsrc/main.rs:7:float-cast\n";
        let entries = parse(src).expect("parses");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].file, "crates/core/src/model.rs");
        assert_eq!(entries[0].line, 41);
        assert_eq!(entries[0].rule, "panic");
        assert_eq!(entries[0].entry_line, 3);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(parse("not a baseline entry\n").is_err());
        assert!(parse("a.rs:notanumber:panic\n").is_err());
    }

    #[test]
    fn matched_suppressed_new_kept_stale_reported() {
        let entries = parse("a.rs:1:panic\nb.rs:9:float-cast\n").expect("parses");
        let out = apply(
            vec![diag("a.rs", 1, "panic"), diag("c.rs", 2, "panic")],
            &entries,
            "lint.baseline",
        );
        // a.rs suppressed; c.rs (new) kept; b.rs entry stale.
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].file, "c.rs");
        assert_eq!(out[1].file, "lint.baseline");
        assert_eq!(out[1].rule, "stale-baseline");
        assert_eq!(out[1].line, 2);
    }

    #[test]
    fn same_line_different_rules_need_separate_entries() {
        let entries = parse("a.rs:1:panic\n").expect("parses");
        let out = apply(
            vec![diag("a.rs", 1, "panic"), diag("a.rs", 1, "float-cast")],
            &entries,
            "lint.baseline",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "float-cast");
    }

    #[test]
    fn empty_baseline_changes_nothing() {
        let entries = parse("").expect("parses");
        let out = apply(vec![diag("a.rs", 1, "panic")], &entries, "lint.baseline");
        assert_eq!(out.len(), 1);
    }
}
