//! A minimal, dependency-free `Cargo.toml` reader for the crate-layering
//! rules.
//!
//! This is *not* a TOML parser: it understands exactly the subset the
//! workspace manifests use — `[section]` headers, `key = value` lines,
//! dotted keys (`lead-geo.workspace = true`), and `#` comments — and records
//! the 1-based line of every dependency entry so layering diagnostics can
//! point at the declaration itself.

use std::path::Path;

/// One declared dependency.
#[derive(Debug, Clone)]
pub struct Dep {
    /// The package name as declared (dashes, e.g. `lead-core`).
    pub name: String,
    /// 1-based line of the declaration in the manifest.
    pub line: usize,
    /// True for `[dev-dependencies]` entries.
    pub dev: bool,
}

/// The parsed subset of one `Cargo.toml`.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Workspace-relative directory of the crate (`""` for the root crate,
    /// `crates/core`, `vendor/rand`, …), forward slashes.
    pub rel_dir: String,
    /// Workspace-relative path of the manifest file itself.
    pub rel_path: String,
    /// `[package] name`, when present (virtual workspace roots have none).
    pub package: Option<String>,
    /// Declared `[dependencies]` and `[dev-dependencies]`.
    pub deps: Vec<Dep>,
    /// `[package.metadata.lead] class = "…"`, with its line.
    pub lead_class: Option<(String, usize)>,
    /// `[package.metadata.lead] kernel = …`, with its line: `"true"` tags
    /// the whole crate as a hot kernel (R11 `hot-loop-alloc`), a
    /// comma-separated list tags the named top-level modules only.
    pub lead_kernel: Option<(String, usize)>,
    /// True for `vendor/*` shims (registered as known packages, but exempt
    /// from the layering and scope rules).
    pub vendored: bool,
}

impl Manifest {
    /// Whether `pkg` is declared as a dependency; `include_dev` also accepts
    /// `[dev-dependencies]` entries.
    pub fn declares(&self, pkg: &str, include_dev: bool) -> bool {
        self.deps
            .iter()
            .any(|d| d.name == pkg && (include_dev || !d.dev))
    }
}

/// Parses one manifest source. `rel_dir`/`rel_path` are stored verbatim.
pub fn parse(rel_dir: &str, rel_path: &str, source: &str, vendored: bool) -> Manifest {
    let mut m = Manifest {
        rel_dir: rel_dir.to_string(),
        rel_path: rel_path.to_string(),
        package: None,
        deps: Vec::new(),
        lead_class: None,
        lead_kernel: None,
        vendored,
    };
    let mut section = String::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(end) = rest.find(']') else { continue };
            section = rest[..end].trim().to_string();
            // `[dependencies.foo]` declares `foo` directly in the header.
            for (sect, dev) in [("dependencies.", false), ("dev-dependencies.", true)] {
                if let Some(name) = section.strip_prefix(sect) {
                    m.deps.push(Dep {
                        name: unquote(name).to_string(),
                        line: idx + 1,
                        dev,
                    });
                }
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let value = line[eq + 1..].trim();
        match section.as_str() {
            "package" if key == "name" => m.package = Some(unquote(value).to_string()),
            "dependencies" | "dev-dependencies" => {
                // `lead-geo.workspace = true` and `rand = { path = … }` both
                // name the package in the first key segment.
                let name = key.split('.').next().unwrap_or(key);
                m.deps.push(Dep {
                    name: unquote(name).to_string(),
                    line: idx + 1,
                    dev: section == "dev-dependencies",
                });
            }
            "package.metadata.lead" if key == "class" => {
                m.lead_class = Some((unquote(value).to_string(), idx + 1));
            }
            "package.metadata.lead" if key == "kernel" => {
                m.lead_kernel = Some((unquote(value).to_string(), idx + 1));
            }
            _ => {}
        }
    }
    m
}

/// Reads every workspace manifest: the root `Cargo.toml`, `crates/*`, and
/// `vendor/*` (the latter flagged [`Manifest::vendored`]). Missing files are
/// skipped; unreadable ones are an error.
pub fn workspace_manifests(root: &Path) -> Result<Vec<Manifest>, String> {
    let mut out = Vec::new();
    let root_toml = root.join("Cargo.toml");
    if root_toml.is_file() {
        out.push(read_one(root, "", "Cargo.toml", false)?);
    }
    for (tree, vendored) in [("crates", false), ("vendor", true)] {
        let dir = root.join(tree);
        if !dir.is_dir() {
            continue;
        }
        for entry in crate::walk::read_dir_sorted(&dir)? {
            let toml = entry.join("Cargo.toml");
            if !toml.is_file() {
                continue;
            }
            let Some(name) = entry.file_name().map(|n| n.to_string_lossy().into_owned()) else {
                continue;
            };
            let rel_dir = format!("{tree}/{name}");
            let rel_path = format!("{rel_dir}/Cargo.toml");
            out.push(read_one(root, &rel_dir, &rel_path, vendored)?);
        }
    }
    Ok(out)
}

fn read_one(
    root: &Path,
    rel_dir: &str,
    rel_path: &str,
    vendored: bool,
) -> Result<Manifest, String> {
    let full = root.join(rel_path);
    let source = std::fs::read_to_string(&full)
        .map_err(|e| format!("cannot read {}: {e}", full.display()))?;
    Ok(parse(rel_dir, rel_path, &source, vendored))
}

/// Drops a `#` comment unless the `#` sits inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> &str {
    s.trim().trim_matches('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "lead-core" # the framework crate

[package.metadata.lead]
class = "result-lib"
kernel = "simd,ops"

[dependencies]
lead-geo.workspace = true
rand = { path = "../vendor/rand" }

[dev-dependencies]
proptest.workspace = true

[dependencies.lead-nn]
workspace = true
"#;

    #[test]
    fn parses_name_deps_and_class() {
        let m = parse("crates/core", "crates/core/Cargo.toml", SAMPLE, false);
        assert_eq!(m.package.as_deref(), Some("lead-core"));
        assert_eq!(
            m.lead_class.as_ref().map(|c| c.0.as_str()),
            Some("result-lib")
        );
        assert_eq!(
            m.lead_kernel.as_ref().map(|k| k.0.as_str()),
            Some("simd,ops")
        );
        assert!(m.declares("lead-geo", false));
        assert!(m.declares("rand", false));
        assert!(m.declares("lead-nn", false), "dotted section form");
        assert!(!m.declares("proptest", false), "dev-dep needs include_dev");
        assert!(m.declares("proptest", true));
        let geo = m.deps.iter().find(|d| d.name == "lead-geo").expect("geo");
        assert_eq!(geo.line, 10);
    }

    #[test]
    fn workspace_sections_are_not_dependencies() {
        let src = "[workspace.dependencies]\nlead-geo = { path = \"crates/geo\" }\n";
        let m = parse("", "Cargo.toml", src, false);
        assert!(m.deps.is_empty());
    }
}
