//! The rule catalog (R1–R6) and its application to preprocessed lines.
//!
//! Rule scoping is by workspace-relative path. The catalog (mirrored in
//! DESIGN.md) distinguishes three file classes:
//!
//! - **library crates** (`lead_core`, `lead_nn`, `lead_geo`, `lead_eval`,
//!   `lead_baselines`, `lead_synth`, `lead_obs`) — must be panic-free (R2)
//!   on degenerate input;
//! - **result-affecting crates** (`lead_core`, `lead_nn`, `lead_eval`,
//!   `lead_obs`) — everything feeding the `c-vec`s, probability
//!   distributions, and evaluation reports; must be order-deterministic (R1)
//!   and wall-clock free (R5 — with `lead_eval::timing` and
//!   `lead_obs::clock` as the two sanctioned wall-clock homes);
//! - **numeric kernels** (`lead_nn`, `lead_core::detection`,
//!   `lead_core::encoding`, `lead_core::features`) — must not narrow floats
//!   or compare them exactly without a guard (R4).
//!
//! R3 (thread spawning) and waiver hygiene apply to every scanned file; R6
//! (doc comments) applies to `lead_core`, `lead_nn`, and `lead_obs`. Test
//! code (`#[cfg(test)]` regions; `tests/` and `benches/` trees are never
//! scanned) is exempt from everything except waiver hygiene.
//!
//! The structural rules ride on the block IR ([`crate::blocks`]): R10
//! (`unsafe-contract`) confines `unsafe` to the sanctioned-module allowlist
//! ([`SANCTIONED_UNSAFE`]) and demands a `// SAFETY:` justification directly
//! above every site, and R11 (`hot-loop-alloc`) bans allocation calls inside
//! loop bodies of kernel-tagged modules (`[package.metadata.lead] kernel`).
//!
//! The interprocedural families — R12 (`panic-path`) and R13
//! (`determinism-taint`) — live in [`crate::callgraph`] and propagate this
//! module's site detection along the workspace call graph.

use std::collections::BTreeSet;

use crate::blocks::ItemKind;
use crate::diag::Diagnostic;
use crate::manifest::Manifest;
use crate::scan::{FileView, Line};
use crate::workspace::{self, Import};

/// One rule's user-facing documentation: the `lead-lint explain` source of
/// truth, mirrored by the DESIGN.md §10 table.
pub struct RuleDoc {
    /// The rule number as printed in docs (`"R4a"`/`"R4b"` share R4).
    pub num: &'static str,
    /// The machine-readable identifier, as used in waivers.
    pub id: &'static str,
    /// One-paragraph description: what the rule enforces, and why.
    pub doc: &'static str,
    /// An example waiver line for the rule.
    pub waiver: &'static str,
}

/// The rule catalog documentation, in catalog order. [`RULE_IDS`] is derived
/// from this table, so the identifier list can never drift from the docs.
pub const RULE_DOCS: [RuleDoc; 14] = [
    RuleDoc {
        num: "R1",
        id: "hash-order",
        doc: "`HashMap`/`HashSet` are banned in result-affecting crates \
              (lead-core, lead-nn, lead-eval, lead-obs): their iteration order \
              varies across processes and silently reorders floating-point \
              reductions, breaking the bit-identical parity contract. Use \
              `BTreeMap`/`BTreeSet`, or sort explicitly before iterating.",
        waiver: "// lint: allow(hash-order): order never observed, drained via sorted keys",
    },
    RuleDoc {
        num: "R2",
        id: "panic",
        doc: "Library crates must not panic on degenerate input: `panic!`, \
              `todo!`, `unimplemented!`, `unreachable!`, `.unwrap()`, \
              `.expect(…)`, and indexing by integer literal are all flagged. \
              Degenerate GPS days are data, not bugs — degrade to \
              `Result`/`Option` with a typed error.",
        waiver: "// lint: allow(panic): length checked two lines above",
    },
    RuleDoc {
        num: "R3",
        id: "thread-spawn",
        doc: "`thread::spawn`/`thread::scope`/`thread::Builder` are allowed \
              only in `lead_nn::par`, the fixed-order reduction layer; ad-hoc \
              threads reintroduce scheduling nondeterminism that the parity \
              tests cannot see.",
        waiver: "// lint: allow(thread-spawn): watchdog thread, results never cross it",
    },
    RuleDoc {
        num: "R4a",
        id: "float-cast",
        doc: "In numeric kernels, `as` casts to integer types truncate floats \
              silently (NaN → 0), and `… as f32` narrows silently. Funnel \
              conversions through the guarded helpers in `lead_nn::num`, or \
              cast only from `len()`/`count()`/integer literals.",
        waiver: "// lint: allow(float-cast): value proven in [0, 255] above",
    },
    RuleDoc {
        num: "R4b",
        id: "float-eq",
        doc: "Exact `==`/`!=` against float literals or float constants in \
              numeric kernels is brittle under reassociation and FMA. Compare \
              with a tolerance, use `is_finite()`-style predicates, or compare \
              bit patterns explicitly.",
        waiver: "// lint: allow(float-eq): sentinel value assigned, never computed",
    },
    RuleDoc {
        num: "R5",
        id: "wall-clock",
        doc: "`Instant`/`SystemTime` reads are banned in result-affecting \
              crates outside the two sanctioned timing homes \
              (`lead_eval::timing`, `lead_obs::clock`): wall-clock values in \
              the result path make runs irreproducible.",
        waiver: "// lint: allow(wall-clock): feeds a log line, never a result",
    },
    RuleDoc {
        num: "R6",
        id: "missing-doc",
        doc: "Every `pub` item of the documented crates (lead-core, lead-nn, \
              lead-data, lead-obs) carries a doc comment; the public surface \
              is the paper-reproduction contract and stays self-describing.",
        waiver: "// lint: allow(missing-doc): generated shim, documented at the trait",
    },
    RuleDoc {
        num: "R7",
        id: "layering",
        doc: "Crate imports must follow the sanctioned dependency DAG in the \
              classification table (`rules::CRATES`); an import that skips a \
              layer or inverts an edge couples crates the architecture keeps \
              apart. Dev-dependencies are legal inside `#[cfg(test)]`.",
        waiver: "// lint: allow(layering): transitional, tracked in ROADMAP item 4",
    },
    RuleDoc {
        num: "R8",
        id: "error-contract",
        doc: "Fallible public APIs return typed errors: `Result<_, String>` \
              and `Box<dyn Error>` are unmatchable and banned as library \
              error types, and in documented crates every `pub fn` returning \
              `Result` carries an `# Errors` doc section.",
        waiver: "// lint: allow(error-contract): FFI boundary, stringly by design",
    },
    RuleDoc {
        num: "R9",
        id: "scope-drift",
        doc: "The classification table and the tree must agree: every crate \
              directory appears in `rules::CRATES`, every manifest's \
              `[package.metadata.lead] class` matches the table, and every \
              sanctioned-scope path exists. Drift here silently widens or \
              voids the other rules.",
        waiver: "// lint: allow(scope-drift): crate split in flight, table follows",
    },
    RuleDoc {
        num: "R10",
        id: "unsafe-contract",
        doc: "`unsafe` is confined to the sanctioned-module allowlist \
              (`lead_nn::simd`), each site carrying a non-empty `// SAFETY:` \
              justification directly above, and `allow(unsafe_code)` may \
              re-open only a sanctioned module's crate-root declaration.",
        waiver: "// lint: allow(unsafe-contract): justification lives on the wrapper above",
    },
    RuleDoc {
        num: "R11",
        id: "hot-loop-alloc",
        doc: "Loop bodies of kernel-tagged modules (`[package.metadata.lead] \
              kernel`) must not allocate (`push`/`collect`/`clone`/`Vec::new`/\
              `format!`/…): per-iteration allocation is the dominant \
              avoidable cost in the NN hot paths — hoist or reuse buffers.",
        waiver: "// lint: allow(hot-loop-alloc): runs once per epoch, not per sample",
    },
    RuleDoc {
        num: "R12",
        id: "panic-path",
        doc: "Interprocedural: no `pub fn` of a result-affecting crate may \
              transitively reach a panic site (R2's detection) through the \
              workspace call graph — a reachable panic takes down every \
              caller at fleet scale. Sites inside `#[cfg(test)]` or on \
              `debug_assert!` lines are exempt; diagnostics print the full \
              witness path. A waiver on a site line exempts that site; on a \
              `fn` declaration line it certifies the whole function.",
        waiver: "// lint: allow(panic-path): guarded by the validate() call above",
    },
    RuleDoc {
        num: "R13",
        id: "determinism-taint",
        doc: "Interprocedural: nondeterminism sources — wall-clock reads \
              outside the sanctioned timing homes, `HashMap`/`HashSet` \
              iteration, environment reads other than the sanctioned \
              `LEAD_SIMD_FORCE` probe, and thread identity — must not be \
              reachable from result-affecting crates' public APIs, even when \
              laundered through helper crates the per-line rules cannot see \
              across. Waiver placement works as in R12.",
        waiver: "// lint: allow(determinism-taint): value feeds telemetry, not results",
    },
];

/// The machine-readable rule identifiers, as used in waivers. Derived from
/// [`RULE_DOCS`] so the two can never drift.
pub const RULE_IDS: [&str; 14] = {
    let mut ids = [""; 14];
    let mut i = 0;
    while i < RULE_DOCS.len() {
        ids[i] = RULE_DOCS[i].id;
        i += 1;
    }
    ids
};

/// A crate's role in the workspace, deciding which rule families apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Library code feeding the detection results: panic-free (R2),
    /// order-deterministic (R1), wall-clock free (R5), typed errors (R8).
    ResultLib,
    /// Library code off the result path: panic-free (R2), typed errors (R8).
    Lib,
    /// Binaries and benches: free to panic, read the clock, use hash maps.
    Bin,
    /// Developer tooling (the lint gate itself): like `Bin`, but must stay
    /// dependency-free.
    Tool,
}

impl Class {
    /// Every class, for validation and diagnostics.
    pub const ALL: [Class; 4] = [Class::ResultLib, Class::Lib, Class::Bin, Class::Tool];

    /// The metadata string used in `[package.metadata.lead] class = "…"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Class::ResultLib => "result-lib",
            Class::Lib => "lib",
            Class::Bin => "bin",
            Class::Tool => "tool",
        }
    }
}

/// One classified workspace crate.
pub struct CrateInfo {
    /// Workspace-relative crate directory (`""` for the root crate).
    pub dir: &'static str,
    /// The package name in `Cargo.toml`.
    pub package: &'static str,
    /// The crate's class; `[package.metadata.lead]` must agree (R9).
    pub class: Class,
    /// Whether R6 (`missing-doc`) and the R8 `# Errors` requirement apply.
    pub doc: bool,
    /// Sanctioned workspace dependencies (R7); ignored for `Bin`.
    pub allowed: &'static [&'static str],
}

/// The classification table — the single source of truth shared by the
/// per-file scope helpers, the layering rules (R7), and the scope-drift
/// audit (R9). Mirrored in DESIGN.md §10; adding a crate without extending
/// this table is itself a diagnostic.
pub const CRATES: [CrateInfo; 11] = [
    CrateInfo {
        dir: "",
        package: "lead",
        class: Class::Bin,
        doc: false,
        allowed: &[],
    },
    CrateInfo {
        dir: "crates/baselines",
        package: "lead-baselines",
        class: Class::Lib,
        doc: false,
        allowed: &["lead-geo", "lead-nn", "lead-core"],
    },
    CrateInfo {
        dir: "crates/bench",
        package: "lead-bench",
        class: Class::Bin,
        doc: false,
        allowed: &[],
    },
    CrateInfo {
        dir: "crates/core",
        package: "lead-core",
        class: Class::ResultLib,
        doc: true,
        allowed: &["lead-geo", "lead-data", "lead-nn", "lead-obs"],
    },
    CrateInfo {
        dir: "crates/data",
        package: "lead-data",
        class: Class::Lib,
        doc: true,
        allowed: &["lead-geo"],
    },
    CrateInfo {
        dir: "crates/eval",
        package: "lead-eval",
        class: Class::ResultLib,
        doc: false,
        allowed: &[
            "lead-geo",
            "lead-nn",
            "lead-synth",
            "lead-core",
            "lead-baselines",
            "lead-obs",
        ],
    },
    CrateInfo {
        dir: "crates/geo",
        package: "lead-geo",
        class: Class::Lib,
        doc: false,
        allowed: &[],
    },
    CrateInfo {
        dir: "crates/lint",
        package: "lead-lint",
        class: Class::Tool,
        doc: false,
        allowed: &[],
    },
    CrateInfo {
        dir: "crates/nn",
        package: "lead-nn",
        class: Class::ResultLib,
        doc: true,
        allowed: &["lead-obs"],
    },
    CrateInfo {
        dir: "crates/obs",
        package: "lead-obs",
        class: Class::ResultLib,
        doc: true,
        allowed: &[],
    },
    CrateInfo {
        dir: "crates/synth",
        package: "lead-synth",
        class: Class::Lib,
        doc: false,
        allowed: &["lead-geo", "lead-data", "lead-core"],
    },
];

const KERNEL_PATHS: [&str; 3] = [
    "crates/nn/src/",
    "crates/core/src/detection/",
    "crates/core/src/encoding/",
];

/// Files where wall-clock reads are the point (R5 exemption).
const TIMING_FILES: [&str; 2] = ["crates/eval/src/timing.rs", "crates/obs/src/clock.rs"];

/// The one module allowed to create threads (R3 exemption).
const PAR_FILES: [&str; 1] = ["crates/nn/src/par.rs"];

/// One sanctioned-unsafe module: the only places R10 permits the `unsafe`
/// keyword, each site still requiring a `// SAFETY:` justification.
pub struct SanctionedUnsafe {
    /// Workspace-relative directory of the crate hosting the module.
    pub crate_dir: &'static str,
    /// The module name as declared at the crate root (`pub mod simd;`).
    pub module: &'static str,
    /// Workspace-relative path prefix of the module's sources (a
    /// `/`-suffixed directory).
    pub path: &'static str,
}

/// The sanctioned-unsafe allowlist (R10). Growing it is a reviewed change
/// to the lint gate, mirrored in DESIGN.md §10.
pub const SANCTIONED_UNSAFE: [SanctionedUnsafe; 1] = [SanctionedUnsafe {
    crate_dir: "crates/nn",
    module: "simd",
    path: "crates/nn/src/simd/",
}];

/// The sanctioned-unsafe entry covering `rel` (a workspace-relative source
/// path), when any does.
pub fn sanctioned_unsafe_file(rel: &str) -> Option<&'static SanctionedUnsafe> {
    SANCTIONED_UNSAFE.iter().find(|s| rel.starts_with(s.path))
}

/// The classification-table entry for a crate directory (`""` = root).
pub fn crate_info_by_dir(dir: &str) -> Option<&'static CrateInfo> {
    CRATES.iter().find(|c| c.dir == dir)
}

/// Every scope-table path whose existence R9 verifies on the real
/// workspace (`/`-suffixed entries are directories).
pub fn scope_paths() -> impl Iterator<Item = &'static str> {
    KERNEL_PATHS
        .iter()
        .chain(TIMING_FILES.iter())
        .chain(PAR_FILES.iter())
        .copied()
        .chain(SANCTIONED_UNSAFE.iter().map(|s| s.path))
}

/// Whether `rel` is one of the two sanctioned wall-clock homes (R5/R13).
pub(crate) fn is_timing_file(rel: &str) -> bool {
    TIMING_FILES.contains(&rel)
}

/// The classification of the crate owning `rel` (a workspace-relative source
/// path), when it is in the table.
pub(crate) fn class_of(rel: &str) -> Option<&'static CrateInfo> {
    if rel.starts_with("src/") {
        return crate_info_by_dir("");
    }
    CRATES
        .iter()
        .find(|c| !c.dir.is_empty() && rel.strip_prefix(c.dir).is_some_and(|r| r.starts_with('/')))
}

fn is_lib(rel: &str) -> bool {
    class_of(rel).is_some_and(|c| matches!(c.class, Class::Lib | Class::ResultLib))
}

fn is_result_affecting(rel: &str) -> bool {
    class_of(rel).is_some_and(|c| c.class == Class::ResultLib)
}

fn is_kernel(rel: &str) -> bool {
    KERNEL_PATHS.iter().any(|p| rel.starts_with(p)) || rel == "crates/core/src/features.rs"
}

fn is_doc_scope(rel: &str) -> bool {
    class_of(rel).is_some_and(|c| c.doc)
}

/// The cross-file context available when scanning a whole workspace: the
/// file's extracted imports plus every parsed manifest. Absent for the
/// single-file [`crate::scan_source`] entry point.
pub struct FileChecks<'a> {
    /// Imports extracted from this file's token stream.
    pub imports: &'a [Import],
    /// Every workspace manifest (including vendored shims).
    pub manifests: &'a [Manifest],
}

/// Applies the single-file catalog to one file's scan view.
pub fn apply(rel_path: &str, view: &FileView) -> Vec<Diagnostic> {
    apply_file(rel_path, view, None)
}

/// Applies the full catalog — the single-file rules plus, when `checks` is
/// present, the per-import layering rule (R7) and the manifest-scoped R11 —
/// to one file.
pub fn apply_file(
    rel_path: &str,
    view: &FileView,
    checks: Option<&FileChecks<'_>>,
) -> Vec<Diagnostic> {
    apply_file_with(rel_path, view, checks, &[])
}

/// [`apply_file`], with `(line index, rule)` waivers already consumed by the
/// interprocedural pass ([`crate::callgraph`]) fed in so waiver hygiene
/// accounts for them.
pub fn apply_file_with(
    rel_path: &str,
    view: &FileView,
    checks: Option<&FileChecks<'_>>,
    pre_used: &[(usize, String)],
) -> Vec<Diagnostic> {
    let lines = view.lines.as_slice();
    let mut diags = Vec::new();
    // Which (line index, rule) pairs got waived, to detect unused waivers.
    // Tracked per (line, rule) — a line carrying violations of two rules
    // with only one waived must keep the waived rule silenced, fire the
    // other, and report no waiver-hygiene noise.
    let mut used_waivers: Vec<(usize, String)> = pre_used.to_vec();

    for (i, line) in lines.iter().enumerate() {
        let mut fire = |rule: &'static str, col: usize, message: String| {
            if let Some(w) = waiver_for(lines, i, rule) {
                used_waivers.push(w);
                return;
            }
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: line.number,
                col,
                rule,
                message,
                snippet: line.raw.clone(),
            });
        };

        // R7 applies inside `#[cfg(test)]` too (dev-dependencies become
        // legal there); everything else is exempt in test regions.
        if let Some(checks) = checks {
            for import in checks.imports.iter().filter(|im| im.line == line.number) {
                if let Some(msg) =
                    workspace::check_import(rel_path, line.in_test, import, checks.manifests)
                {
                    fire("layering", import.col, msg);
                }
            }
        }
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();

        if is_result_affecting(rel_path) {
            check_hash_order(code, &mut fire);
            if !TIMING_FILES.contains(&rel_path) {
                check_wall_clock(code, &mut fire);
            }
        }
        if is_lib(rel_path) {
            check_panic(code, &mut fire);
            check_error_contract(rel_path, lines, i, &mut fire);
        }
        if !PAR_FILES.contains(&rel_path) {
            check_thread_spawn(code, &mut fire);
        }
        if is_kernel(rel_path) {
            check_float_cast(code, &mut fire);
            check_float_eq(code, &mut fire);
        }
        if is_doc_scope(rel_path) {
            check_missing_doc(lines, i, &mut fire);
        }
    }

    // Structural rules over the block IR (R10, R11). These fire at
    // arbitrary line indexes, so they use an index-taking variant of the
    // waiver-aware `fire` above.
    {
        let mut fire_at = |i: usize, col: usize, rule: &'static str, message: String| {
            if let Some(w) = waiver_for(lines, i, rule) {
                used_waivers.push(w);
                return;
            }
            diags.push(Diagnostic {
                file: rel_path.to_string(),
                line: lines[i].number,
                col,
                rule,
                message,
                snippet: lines[i].raw.clone(),
            });
        };
        check_unsafe_contract(rel_path, view, &mut fire_at);
        if let Some(checks) = checks {
            if kernel_tagged(rel_path, checks.manifests) {
                check_hot_loop_alloc(view, &mut fire_at);
            }
        }
    }

    check_waiver_hygiene(rel_path, lines, &used_waivers, &mut diags);
    diags
}

/// Returns the satisfied waiver covering `rule` at line index `i`: either on
/// the line itself or on a comment-only line directly above.
pub(crate) fn waiver_for(lines: &[Line], i: usize, rule: &str) -> Option<(usize, String)> {
    let covers = |idx: usize| {
        lines[idx]
            .waivers
            .iter()
            .any(|w| w.rules.iter().any(|r| r == rule) && !w.reason.is_empty())
    };
    if covers(i) {
        return Some((i, rule.to_string()));
    }
    if i > 0 && lines[i - 1].is_comment_only() && covers(i - 1) {
        return Some((i - 1, rule.to_string()));
    }
    None
}

// ---------------------------------------------------------------------------
// R1 — hash-order
// ---------------------------------------------------------------------------

fn check_hash_order(code: &str, fire: &mut impl FnMut(&'static str, usize, String)) {
    for name in ["HashMap", "HashSet"] {
        if let Some(pos) = find_word(code, name) {
            fire(
                "hash-order",
                pos + 1,
                format!(
                    "`{name}` in a result-affecting crate: iteration order is \
                     nondeterministic and breaks the parity contract — use \
                     `BTreeMap`/`BTreeSet` or an explicit sort"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// R2 — panic
// ---------------------------------------------------------------------------

/// One potential panic site on a code line, shared between R2 (which fires
/// `message` at the site) and R12 (which propagates `what` along the call
/// graph).
pub(crate) struct PanicSite {
    /// 0-based byte position of the site on the line.
    pub pos: usize,
    /// Short description for witness paths (`` `.unwrap()` ``).
    pub what: String,
    /// The full R2 diagnostic message.
    pub message: String,
}

/// R2's site detection over one code line, in catalog pattern order.
pub(crate) fn panic_sites(code: &str) -> Vec<PanicSite> {
    let mut sites = Vec::new();
    for pat in [".unwrap()", ".expect("] {
        if let Some(pos) = code.find(pat) {
            sites.push(PanicSite {
                pos,
                what: format!("`{pat}`"),
                message: format!(
                    "`{pat}` in library code: degenerate GPS days must degrade to \
                     `Result`/`Option`, not panic"
                ),
            });
        }
    }
    for mac in ["panic!", "todo!", "unimplemented!", "unreachable!"] {
        if find_word(code, mac.trim_end_matches('!')).is_some() {
            if let Some(pos) = code.find(mac) {
                sites.push(PanicSite {
                    pos,
                    what: format!("`{mac}`"),
                    message: format!("`{mac}` in library code: return a typed error instead"),
                });
            }
        }
    }
    if let Some(idx) = find_literal_index(code) {
        sites.push(PanicSite {
            pos: idx.0,
            what: format!("indexing by literal `{}`", &code[idx.0..idx.1]),
            message: format!(
                "indexing by literal `{}` in library code: panics when the \
                 collection is shorter — use `.get(…)`, `.first()`, or destructuring",
                &code[idx.0..idx.1]
            ),
        });
    }
    sites
}

fn check_panic(code: &str, fire: &mut impl FnMut(&'static str, usize, String)) {
    for site in panic_sites(code) {
        fire("panic", site.pos + 1, site.message);
    }
}

/// Finds `expr[<int literal>]` indexing: a `[` preceded by an identifier
/// char, `)`, or `]`, whose content is all digits/underscores.
fn find_literal_index(code: &str) -> Option<(usize, usize)> {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']') {
            continue;
        }
        let mut j = i + 1;
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
            j += 1;
        }
        if j > i + 1 && bytes.get(j) == Some(&b']') {
            return Some((i, j + 1));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R3 — thread-spawn
// ---------------------------------------------------------------------------

fn check_thread_spawn(code: &str, fire: &mut impl FnMut(&'static str, usize, String)) {
    for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
        if let Some(pos) = code.find(pat) {
            fire(
                "thread-spawn",
                pos + 1,
                format!(
                    "`{pat}` outside `lead_nn::par`: all parallelism must go \
                     through the fixed-order reduction layer"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// R4a — float-cast
// ---------------------------------------------------------------------------

const INT_TYPES: [&str; 12] = [
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

fn check_float_cast(code: &str, fire: &mut impl FnMut(&'static str, usize, String)) {
    let mut from = 0usize;
    while let Some(pos) = find_word_from(code, "as", from) {
        from = pos + 2;
        // Token after `as `.
        let after = code[pos + 2..].trim_start();
        let target = after
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .next()
            .unwrap_or("");
        // Token before ` as` (trailing non-space run).
        let before = code[..pos].trim_end();
        if INT_TYPES.contains(&target) {
            fire(
                "float-cast",
                pos + 1,
                format!(
                    "`as {target}` in a numeric kernel: `as` truncates floats \
                     silently (NaN → 0) — use a guarded conversion helper \
                     (`lead_nn::num`) or checked conversion"
                ),
            );
        } else if target == "f32" && !int_source_exempt(before) {
            fire(
                "float-cast",
                pos + 1,
                "`… as f32` in a numeric kernel narrows silently — funnel \
                 through `lead_nn::num` (finite/exactness-guarded) or cast \
                 from `len()`/an integer literal"
                    .to_string(),
            );
        }
    }
}

/// Sources that are obviously integral (and small), for which `as f32` is
/// deterministic and exact: `len()`, `count()`, or a bare integer literal.
fn int_source_exempt(before: &str) -> bool {
    if before.ends_with("len()") || before.ends_with("count()") {
        return true;
    }
    let tail: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    !tail.is_empty() && tail.chars().all(|c| c.is_ascii_digit() || c == '_')
}

// ---------------------------------------------------------------------------
// R4b — float-eq
// ---------------------------------------------------------------------------

fn check_float_eq(code: &str, fire: &mut impl FnMut(&'static str, usize, String)) {
    let bytes = code.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let two = &bytes[i..i + 2];
        let is_eq = two == b"==" && (i == 0 || !matches!(bytes[i - 1], b'=' | b'!' | b'<' | b'>'));
        let is_ne = two == b"!=" && bytes.get(i + 2) != Some(&b'=');
        if !(is_eq || is_ne) || bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        let rhs = code[i + 2..].trim_start();
        let lhs = code[..i].trim_end();
        if token_is_floaty(first_operand(rhs)) || token_is_floaty(&last_operand(lhs)) {
            fire(
                "float-eq",
                i + 1,
                "exact float comparison in a numeric kernel: `==`/`!=` on floats \
                 is brittle — compare with a tolerance, use `is_finite()`/\
                 `is_sign_positive()`, or compare bit patterns explicitly"
                    .to_string(),
            );
            return; // one diagnostic per line is enough
        }
    }
}

fn first_operand(s: &str) -> &str {
    let s = s.strip_prefix('-').unwrap_or(s);
    let end = s
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == ':'))
        .unwrap_or(s.len());
    &s[..end]
}

fn last_operand(s: &str) -> String {
    s.chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.' || *c == ':')
        .collect::<String>()
        .chars()
        .rev()
        .collect()
}

/// Whether a comparison operand is a float literal (`0.0`, `1e-6`, `2f32`)
/// or a float special constant (`f32::NAN`, `f64::INFINITY`, …).
fn token_is_floaty(tok: &str) -> bool {
    if tok.is_empty() {
        return false;
    }
    for special in ["INFINITY", "NEG_INFINITY", "NAN", "EPSILON"] {
        if (tok.starts_with("f32::")
            || tok.starts_with("f64::")
            || tok.contains("::f32::")
            || tok.contains("::f64::"))
            && tok.ends_with(special)
        {
            return true;
        }
    }
    let numeric = tok.strip_suffix("f32").or_else(|| tok.strip_suffix("f64"));
    let (body, had_suffix) = match numeric {
        Some(b) => (b, true),
        None => (tok, false),
    };
    if body.is_empty() || !body.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let looks_numeric = body
        .chars()
        .all(|c| c.is_ascii_digit() || c == '.' || c == '_' || c == 'e' || c == 'E' || c == '-');
    looks_numeric && (body.contains('.') || body.contains('e') || body.contains('E') || had_suffix)
}

// ---------------------------------------------------------------------------
// R5 — wall-clock
// ---------------------------------------------------------------------------

fn check_wall_clock(code: &str, fire: &mut impl FnMut(&'static str, usize, String)) {
    for pat in ["Instant", "SystemTime"] {
        if let Some(pos) = find_word(code, pat) {
            fire(
                "wall-clock",
                pos + 1,
                format!(
                    "`{pat}` in result-affecting code: wall-clock reads make runs \
                     irreproducible — timing belongs in `lead_eval::timing` \
                     (e.g. `Stopwatch`) or the bench crate"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// R6 — missing-doc
// ---------------------------------------------------------------------------

const DOC_ITEMS: [&str; 8] = [
    "pub fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub type ",
    "pub const ",
    "pub static ",
    "pub unsafe ",
];

fn check_missing_doc(lines: &[Line], i: usize, fire: &mut impl FnMut(&'static str, usize, String)) {
    let trimmed = lines[i].code.trim_start();
    if !DOC_ITEMS.iter().any(|p| trimmed.starts_with(p)) {
        return;
    }
    let col = lines[i].code.len() - trimmed.len() + 1;
    // Walk upward over attributes; the first non-attribute line decides.
    let mut j = i;
    while j > 0 {
        j -= 1;
        let above = &lines[j];
        let t = above.raw.as_str();
        if t.starts_with("#[") || t.starts_with("#![") || t == ")]" {
            continue;
        }
        if above.is_doc {
            return; // documented
        }
        break;
    }
    let item = trimmed.split('(').next().unwrap_or(trimmed).trim();
    fire(
        "missing-doc",
        col,
        format!("public item `{item}` has no doc comment (R6: every `pub` item in core/nn is documented)"),
    );
}

// ---------------------------------------------------------------------------
// R8 — error-contract
// ---------------------------------------------------------------------------

fn check_error_contract(
    rel_path: &str,
    lines: &[Line],
    i: usize,
    fire: &mut impl FnMut(&'static str, usize, String),
) {
    let trimmed = lines[i].code.trim_start();
    if !(trimmed.starts_with("pub fn ") || trimmed.starts_with("pub const fn ")) {
        return;
    }
    let col = lines[i].code.len() - trimmed.len() + 1;
    let sig = signature_text(lines, i);
    let Some(ret) = return_type(&sig) else {
        return;
    };
    if find_word(&ret, "Result").is_none() {
        return;
    }
    if let Some(err) = result_err_type(&ret) {
        let banned = err == "String"
            || err.ends_with("::String")
            || (err.starts_with("Box<") && err.contains("dyn") && err.contains("Error"));
        if banned {
            fire(
                "error-contract",
                col,
                format!(
                    "`pub fn` returns `Result<_, {err}>`: stringly/boxed errors are \
                     unmatchable — use a typed error (`LeadError` or a crate-local enum)"
                ),
            );
        }
    }
    if is_doc_scope(rel_path) && !has_errors_doc(lines, i) {
        fire(
            "error-contract",
            col,
            "`pub fn` returning `Result` has no `# Errors` doc section: every fallible \
             public API documents its failure modes"
                .to_string(),
        );
    }
}

/// Concatenates the code of the signature starting at line `i`, up to and
/// including the line holding the body `{` or the terminating `;`.
fn signature_text(lines: &[Line], i: usize) -> String {
    let mut sig = String::new();
    for line in lines.iter().skip(i).take(32) {
        sig.push_str(line.code.as_str());
        sig.push(' ');
        if line.code.contains('{') || line.code.trim_end().ends_with(';') {
            break;
        }
    }
    sig
}

/// Extracts the return type of the first `fn` in `sig`: the text between
/// the `->` following the parameter list and the body/terminator. `None`
/// when the fn returns `()` implicitly.
fn return_type(sig: &str) -> Option<String> {
    let fn_pos = find_word(sig, "fn")?;
    let bytes = sig.as_bytes();
    let open = sig[fn_pos..].find('(')? + fn_pos;
    let mut depth = 0i32;
    let mut close = open;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    close = k;
                    break;
                }
            }
            _ => {}
        }
    }
    let rest = &sig[close + 1..];
    let arrow = rest.find("->")?;
    let after = &rest[arrow + 2..];
    let end = after
        .find('{')
        .or_else(|| find_word(after, "where"))
        .or_else(|| after.find(';'))
        .unwrap_or(after.len());
    Some(after[..end].trim().to_string())
}

/// The error type of the outermost `Result<T, E>` in a return type, when it
/// names both parameters (`io::Result<T>` aliases do not).
fn result_err_type(ret: &str) -> Option<String> {
    let pos = find_word(ret, "Result")?;
    let open = ret[pos..].find('<')? + pos;
    let bytes = ret.as_bytes();
    let mut depth = 0i32;
    let mut paren = 0i32;
    let mut comma = None;
    let mut close = None;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(k);
                    break;
                }
            }
            b'(' | b'[' => paren += 1,
            b')' | b']' => paren -= 1,
            b',' if depth == 1 && paren == 0 && comma.is_none() => comma = Some(k),
            _ => {}
        }
    }
    let (comma, close) = (comma?, close?);
    Some(ret[comma + 1..close].trim().to_string())
}

/// Whether the doc block directly above item line `i` (attributes skipped)
/// contains an `# Errors` section.
fn has_errors_doc(lines: &[Line], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let above = &lines[j];
        let t = above.raw.as_str();
        if t.starts_with("#[") || t.starts_with("#![") || t == ")]" {
            continue;
        }
        if above.is_doc {
            if above.raw.contains("# Errors") {
                return true;
            }
            continue;
        }
        break;
    }
    false
}

// ---------------------------------------------------------------------------
// R10 — unsafe-contract (per-file half; the crate-attr half lives in
// workspace.rs)
// ---------------------------------------------------------------------------

/// The outcome of looking for the `// SAFETY:` comment above a site.
enum Safety {
    /// A non-empty justification was found.
    Justified,
    /// A `// SAFETY:` marker exists but carries no text.
    Empty,
    /// No `// SAFETY:` comment directly above the site.
    Missing,
}

fn check_unsafe_contract(
    rel_path: &str,
    view: &FileView,
    fire: &mut impl FnMut(usize, usize, &'static str, String),
) {
    let lines = view.lines.as_slice();
    let sanctioned = sanctioned_unsafe_file(rel_path);
    for site in &view.blocks.unsafe_sites {
        let i = site.line - 1;
        if lines.get(i).is_none_or(|l| l.in_test) {
            continue;
        }
        if sanctioned.is_none() {
            fire(
                i,
                site.col,
                "unsafe-contract",
                format!(
                    "`unsafe` outside the sanctioned allowlist — only {} may contain \
                     unsafe code (R10); keep this safe or extend \
                     rules::SANCTIONED_UNSAFE in a reviewed change",
                    sanctioned_list()
                ),
            );
            continue;
        }
        match safety_state(lines, i) {
            Safety::Justified => {}
            Safety::Empty => fire(
                i,
                site.col,
                "unsafe-contract",
                "the `// SAFETY:` comment above this `unsafe` is empty — state the \
                 invariant that makes the operation sound"
                    .to_string(),
            ),
            Safety::Missing => fire(
                i,
                site.col,
                "unsafe-contract",
                "`unsafe` without a `// SAFETY:` comment directly above — every \
                 sanctioned site documents why it is sound"
                    .to_string(),
            ),
        }
    }
    // `#[allow(unsafe_code)]` may only re-open a sanctioned module, and only
    // as an attribute on that module's declaration at its crate root.
    if sanctioned.is_none() {
        for (i, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            let Some(pos) = line.code.find("allow(unsafe_code)") else {
                continue;
            };
            let legal = SANCTIONED_UNSAFE.iter().any(|s| {
                rel_path == format!("{}/src/lib.rs", s.crate_dir)
                    && view.blocks.items.iter().any(|item| {
                        item.kind == ItemKind::Mod
                            && item.name.as_deref() == Some(s.module)
                            && item.attr_lines.contains(&line.number)
                    })
            });
            if !legal {
                fire(
                    i,
                    pos + 1,
                    "unsafe-contract",
                    format!(
                        "`allow(unsafe_code)` outside the sanctioned-module \
                         declarations — only the crate-root declaration of {} may \
                         re-open unsafe",
                        sanctioned_list()
                    ),
                );
            }
        }
    }
}

/// Renders the sanctioned-module allowlist for diagnostics.
fn sanctioned_list() -> String {
    SANCTIONED_UNSAFE
        .iter()
        .map(|s| format!("`{}::{}`", s.crate_dir, s.module))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Looks for the `// SAFETY:` comment covering the site at line index `i`:
/// on the site's own line, or directly above it with attribute lines and
/// comment continuation lines treated as transparent.
fn safety_state(lines: &[Line], i: usize) -> Safety {
    if let Some(state) = safety_in_comment(&lines[i].comment) {
        return state;
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        let code_t = l.code.trim();
        // Attribute lines (`#[target_feature(…)]`, a split `)]`) sit between
        // the SAFETY comment and the `unsafe fn` — walk through them.
        if code_t.starts_with('#') || code_t == ")]" {
            continue;
        }
        if !code_t.is_empty() {
            break; // a code line separates the site from any comment above
        }
        if let Some(state) = safety_in_comment(&l.comment) {
            return state;
        }
        if l.raw.is_empty() {
            break; // a blank line detaches the comment block
        }
        // A non-SAFETY comment line: keep walking, the marker may sit at
        // the top of a multi-line justification.
    }
    Safety::Missing
}

/// Classifies one line's comment channel as a SAFETY marker, if it is one.
fn safety_in_comment(comment: &str) -> Option<Safety> {
    let rest = comment.trim().strip_prefix("SAFETY:")?;
    Some(if rest.trim().is_empty() {
        Safety::Empty
    } else {
        Safety::Justified
    })
}

// ---------------------------------------------------------------------------
// R11 — hot-loop-alloc
// ---------------------------------------------------------------------------

/// Whether `rel_path` lies in a kernel-tagged module: its owning manifest
/// declares `[package.metadata.lead] kernel = "true"` (whole crate) or a
/// comma-separated list of top-level modules (`kernel = "simd"` covers
/// `src/simd.rs` and `src/simd/**`).
fn kernel_tagged(rel_path: &str, manifests: &[Manifest]) -> bool {
    let Some(m) = workspace::manifest_for(rel_path, manifests) else {
        return false;
    };
    let Some((val, _)) = m.lead_kernel.as_ref() else {
        return false;
    };
    if val == "true" {
        return true;
    }
    let src = if m.rel_dir.is_empty() {
        "src/".to_string()
    } else {
        format!("{}/src/", m.rel_dir)
    };
    let Some(rest) = rel_path.strip_prefix(src.as_str()) else {
        return false;
    };
    val.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .any(|module| {
            rest.strip_prefix(module)
                .is_some_and(|r| r == ".rs" || r.starts_with('/'))
        })
}

/// Method-call allocation patterns (matched after a `.`).
const ALLOC_METHODS: [&str; 6] = [
    ".push(",
    ".collect(",
    ".collect::<",
    ".to_vec()",
    ".clone()",
    ".to_owned()",
];

/// Path/macro allocation patterns (matched at an identifier boundary).
const ALLOC_PATHS: [&str; 7] = [
    "Vec::new",
    "Vec::with_capacity",
    "Box::new",
    "String::new",
    "String::from",
    "vec!",
    "format!",
];

fn check_hot_loop_alloc(
    view: &FileView,
    fire: &mut impl FnMut(usize, usize, &'static str, String),
) {
    // Nested loops cover overlapping ranges; dedupe so a line fires once.
    let mut loop_lines: BTreeSet<usize> = BTreeSet::new();
    for span in view.blocks.loop_spans() {
        for ln in span.open_line..=span.close_line {
            loop_lines.insert(ln);
        }
    }
    for &ln in &loop_lines {
        let Some(line) = view.lines.get(ln - 1) else {
            continue;
        };
        if line.in_test {
            continue;
        }
        let code = line.code.as_str();
        for pat in ALLOC_METHODS {
            if let Some(pos) = code.find(pat) {
                fire(
                    ln - 1,
                    pos + 2,
                    "hot-loop-alloc",
                    hot_loop_message(pat.trim_start_matches('.')),
                );
            }
        }
        for pat in ALLOC_PATHS {
            if let Some(pos) = code.find(pat) {
                let boundary = pos == 0 || !is_ident_byte(code.as_bytes()[pos - 1]);
                if boundary {
                    fire(ln - 1, pos + 1, "hot-loop-alloc", hot_loop_message(pat));
                }
            }
        }
    }
}

fn hot_loop_message(what: &str) -> String {
    let what = what
        .trim_end_matches('<')
        .trim_end_matches(':')
        .trim_end_matches('(');
    format!(
        "`{what}` allocates inside a loop body of a kernel-tagged module (R11) — \
         hoist the allocation out of the hot loop, reuse a buffer, or waive with \
         a justification"
    )
}

// ---------------------------------------------------------------------------
// Waiver hygiene
// ---------------------------------------------------------------------------

fn check_waiver_hygiene(
    rel_path: &str,
    lines: &[Line],
    used: &[(usize, String)],
    diags: &mut Vec<Diagnostic>,
) {
    for (i, line) in lines.iter().enumerate() {
        for w in &line.waivers {
            for rule in &w.rules {
                if !RULE_IDS.contains(&rule.as_str()) {
                    diags.push(Diagnostic {
                        file: rel_path.to_string(),
                        line: line.number,
                        col: 1,
                        rule: "bad-waiver",
                        message: format!(
                            "waiver names unknown rule `{rule}` (known: {})",
                            RULE_IDS.join(", ")
                        ),
                        snippet: line.raw.clone(),
                    });
                    continue;
                }
                if w.reason.is_empty() {
                    diags.push(Diagnostic {
                        file: rel_path.to_string(),
                        line: line.number,
                        col: 1,
                        rule: "bad-waiver",
                        message: format!(
                            "waiver for `{rule}` carries no justification — every \
                             waiver must state why the contract holds"
                        ),
                        snippet: line.raw.clone(),
                    });
                    continue;
                }
                if !used.iter().any(|(ui, ur)| *ui == i && ur == rule) {
                    diags.push(Diagnostic {
                        file: rel_path.to_string(),
                        line: line.number,
                        col: 1,
                        rule: "unused-waiver",
                        message: format!("waiver for `{rule}` matches no violation — remove it"),
                        snippet: line.raw.clone(),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lexical helpers
// ---------------------------------------------------------------------------

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Finds `word` with identifier boundaries on both sides.
pub(crate) fn find_word(code: &str, word: &str) -> Option<usize> {
    find_word_from(code, word, 0)
}

fn find_word_from(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(rel) = code.get(start..).and_then(|s| s.find(word)) {
        let pos = start + rel;
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}
