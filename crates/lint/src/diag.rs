//! Diagnostic representation and rendering.

use std::fmt;

/// One rule violation (or waiver-hygiene problem) at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule id (`hash-order`, `panic`, …, or `bad-waiver`/`unused-waiver`).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}
