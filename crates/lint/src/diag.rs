//! Diagnostic representation and rendering (text and byte-stable JSON).

use std::fmt;

/// One rule violation (or waiver-hygiene problem) at a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column in the *code view* of the line (strings blanked,
    /// comments removed). Line-level and workspace-level findings use 1.
    pub col: usize,
    /// The rule id (`hash-order`, `panic`, …, or `bad-waiver`/`unused-waiver`).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )?;
        write!(f, "    | {}", self.snippet)
    }
}

/// Renders diagnostics as a compact JSON document with a trailing newline.
///
/// The emission is byte-stable: no maps, no floats, fields in a fixed order,
/// strings escaped the same way on every platform. CI diffs and the golden
/// test rely on two runs over the same tree producing identical bytes.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":1,\"count\":");
    out.push_str(&diags.len().to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"file\":");
        json_string(&mut out, &d.file);
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"col\":");
        out.push_str(&d.col.to_string());
        out.push_str(",\"rule\":");
        json_string(&mut out, d.rule);
        out.push_str(",\"message\":");
        json_string(&mut out, &d.message);
        out.push_str(",\"snippet\":");
        json_string(&mut out, &d.snippet);
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Appends `s` as a JSON string literal, escaping per RFC 8259 (quote,
/// backslash, and control characters; everything else passes through as
/// UTF-8).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &'static str, msg: &str) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            col: 1,
            rule,
            message: msg.to_string(),
            snippet: "let x = 1;".to_string(),
        }
    }

    #[test]
    fn empty_report_shape() {
        assert_eq!(
            to_json(&[]),
            "{\"version\":1,\"count\":0,\"diagnostics\":[]}\n"
        );
    }

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        let d = diag("a.rs", 3, "panic", "say \"no\" to C:\\ paths\tnow");
        let json = to_json(&[d]);
        assert!(json.contains(r#""message":"say \"no\" to C:\\ paths\tnow""#));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn emission_is_deterministic() {
        let ds = [
            diag("a.rs", 1, "panic", "m1"),
            diag("b.rs", 2, "float-cast", "m2"),
        ];
        assert_eq!(to_json(&ds), to_json(&ds));
    }
}
