//! Cross-file analysis: the workspace dependency graph (R7
//! `layering`) and the crate classification audit (R9 `scope-drift`).
//!
//! Per-file rules see one file at a time; these checks see the workspace as
//! a whole. The inputs are the parsed manifests ([`crate::manifest`]) and
//! the `use`/`extern crate` imports extracted from each file's token stream.
//! Three families of diagnostics come out:
//!
//! - **undeclared imports** — a source file names a workspace (or vendored)
//!   crate its own `Cargo.toml` does not declare;
//! - **sanctioned-DAG violations** — a manifest edge that is either part of
//!   a dependency cycle or absent from the crate's allowed-dependency set in
//!   [`crate::rules::CRATES`] (e.g. nothing but bins may depend on
//!   `lead-eval`, and `lead-lint` stays dependency-free);
//! - **scope drift** — a crate missing from the classification table, a
//!   stale table entry whose crate no longer exists, a manifest whose
//!   `[package.metadata.lead] class` disagrees with the table, or a stale
//!   kernel/timing/par path in the scope tables.

use std::path::Path;

use crate::diag::Diagnostic;
use crate::lex::{self, TokenKind};
use crate::manifest::Manifest;
use crate::rules::{self, Class};

/// One `use`/`extern crate` import: the first path segment and its location.
#[derive(Debug, Clone)]
pub struct Import {
    /// The leading path segment (`lead_nn` in `use lead_nn::par::par_map;`).
    pub root: String,
    /// 1-based line of the `use`/`extern crate` keyword.
    pub line: usize,
    /// 1-based byte column of the `use`/`extern crate` keyword.
    pub col: usize,
}

/// Extracts every import root from `source` by walking the token stream
/// (so `use` inside strings, comments, or doc examples is never matched).
pub fn imports(source: &str) -> Vec<Import> {
    let tokens = lex::tokenize(source);
    let code: Vec<&lex::Token<'_>> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace
                    | TokenKind::LineComment { .. }
                    | TokenKind::BlockComment { .. }
            )
        })
        .collect();
    let mut out = Vec::new();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let root = match tok.text {
            "use" => {
                // `use ::foo::…` (absolute) and `use foo::…` both name the
                // crate in the first identifier.
                match code.get(i + 1) {
                    Some(t) if t.kind == TokenKind::Ident => t.text,
                    Some(t) if t.text == ":" => match code.get(i + 3) {
                        Some(t2) if t2.kind == TokenKind::Ident => t2.text,
                        _ => continue,
                    },
                    _ => continue,
                }
            }
            "extern" => match (code.get(i + 1), code.get(i + 2)) {
                (Some(c), Some(name)) if c.text == "crate" && name.kind == TokenKind::Ident => {
                    name.text
                }
                _ => continue,
            },
            _ => continue,
        };
        out.push(Import {
            root: root.to_string(),
            line: tok.line,
            col: tok.col,
        });
    }
    out
}

/// Path roots that never name a workspace crate.
const BUILTIN_ROOTS: [&str; 7] = [
    "std",
    "core",
    "alloc",
    "proc_macro",
    "test",
    "crate",
    "self",
];

/// Resolves one import against the importing file's manifest. Returns a
/// violation message, or `None` when the import is fine (declared, builtin,
/// a local module, or unresolvable because the fixture workspace carries no
/// manifest for this crate).
pub fn check_import(
    rel_path: &str,
    in_test: bool,
    import: &Import,
    manifests: &[Manifest],
) -> Option<String> {
    let root = import.root.as_str();
    if BUILTIN_ROOTS.contains(&root) || root == "super" {
        return None;
    }
    let own = manifest_for(rel_path, manifests)?;
    let own_pkg = own.package.as_deref().unwrap_or("");
    if root == own_pkg.replace('-', "_") {
        return None; // bins importing their own package's lib target
    }
    let dashed = root.replace('_', "-");
    let known = |pkg: &str| manifests.iter().any(|m| m.package.as_deref() == Some(pkg));
    let pkg = if known(root) {
        root.to_string()
    } else if known(&dashed) {
        dashed
    } else if root.starts_with("lead_") {
        return Some(format!(
            "`use {root}` names no workspace crate — the workspace has no package `{dashed}`"
        ));
    } else {
        return None; // std-adjacent or a local module via uniform paths
    };
    if own.declares(&pkg, in_test) {
        return None;
    }
    Some(format!(
        "`use {root}` without a declared dependency: add `{pkg}` to {} {}",
        own.rel_path,
        if in_test {
            "[dependencies] or [dev-dependencies]"
        } else {
            "[dependencies]"
        },
    ))
}

/// The manifest owning `rel_path` (longest matching directory prefix; the
/// root manifest owns `src/`).
pub(crate) fn manifest_for<'m>(rel_path: &str, manifests: &'m [Manifest]) -> Option<&'m Manifest> {
    let mut best: Option<&Manifest> = None;
    for m in manifests {
        let owns = if m.rel_dir.is_empty() {
            rel_path.starts_with("src/")
        } else {
            rel_path
                .strip_prefix(m.rel_dir.as_str())
                .is_some_and(|r| r.starts_with('/'))
        };
        if owns && best.is_none_or(|b| b.rel_dir.len() < m.rel_dir.len()) {
            best = Some(m);
        }
    }
    best
}

/// Runs the manifest-level checks: sanctioned-DAG edges, dependency cycles
/// (R7), and the crate classification audit (R9).
pub fn workspace_checks(root: &Path, manifests: &[Manifest]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_edges(manifests, &mut diags);
    check_cycles(manifests, &mut diags);
    check_classes(manifests, &mut diags);
    check_crate_attrs(root, manifests, &mut diags);
    // Stale-path completeness only applies to the real workspace (root
    // package `lead`): synthetic fixture workspaces are deliberately tiny.
    let is_real = manifests
        .iter()
        .any(|m| m.rel_dir.is_empty() && m.package.as_deref() == Some("lead"));
    if is_real {
        check_completeness(root, manifests, &mut diags);
    }
    diags
}

fn workspace_package<'m>(manifests: &'m [Manifest], pkg: &str) -> Option<&'m Manifest> {
    manifests
        .iter()
        .find(|m| !m.vendored && m.package.as_deref() == Some(pkg))
}

/// R7: every lib-class crate's workspace dependencies must be in its
/// sanctioned set; tool-class crates stay dependency-free.
fn check_edges(manifests: &[Manifest], diags: &mut Vec<Diagnostic>) {
    for m in manifests.iter().filter(|m| !m.vendored) {
        let Some(pkg) = m.package.as_deref() else {
            continue;
        };
        let Some(info) = rules::crate_info_by_dir(&m.rel_dir) else {
            continue; // fixture crates: classified by metadata only, no table
        };
        for dep in m.deps.iter().filter(|d| !d.dev) {
            if workspace_package(manifests, &dep.name).is_none() {
                continue; // vendored shim or external — not a layering edge
            }
            let sanctioned = match info.class {
                Class::Bin => true,
                Class::Tool => false,
                Class::Lib | Class::ResultLib => info.allowed.contains(&dep.name.as_str()),
            };
            if !sanctioned {
                let hint = match info.class {
                    Class::Tool => "the lint gate stays dependency-free".to_string(),
                    _ if info.allowed.is_empty() => format!("`{pkg}` is a leaf crate"),
                    _ => format!("sanctioned deps: {}", info.allowed.join(", ")),
                };
                diags.push(Diagnostic {
                    file: m.rel_path.clone(),
                    line: dep.line,
                    col: 1,
                    rule: "layering",
                    message: format!(
                        "`{pkg}` may not depend on `{}` — {hint} (see the sanctioned \
                         DAG in DESIGN.md §10)",
                        dep.name
                    ),
                    snippet: format!("{} -> {}", pkg, dep.name),
                });
            }
        }
    }
}

/// R7: the workspace dependency graph must stay acyclic.
fn check_cycles(manifests: &[Manifest], diags: &mut Vec<Diagnostic>) {
    let mut pkgs: Vec<&str> = manifests
        .iter()
        .filter(|m| !m.vendored)
        .filter_map(|m| m.package.as_deref())
        .collect();
    pkgs.sort_unstable();
    for &start in &pkgs {
        // Report each cycle once, at its lexicographically smallest member.
        if let Some(cycle) = find_cycle(manifests, start) {
            if cycle.iter().any(|p| p.as_str() < start) {
                continue;
            }
            let m = workspace_package(manifests, start);
            let (file, line) = m
                .and_then(|m| {
                    m.deps
                        .iter()
                        .find(|d| !d.dev && Some(&d.name) == cycle.get(1))
                        .map(|d| (m.rel_path.clone(), d.line))
                })
                .unwrap_or_else(|| ("Cargo.toml".to_string(), 1));
            diags.push(Diagnostic {
                file,
                line,
                col: 1,
                rule: "layering",
                message: format!(
                    "dependency cycle in the workspace graph: {}",
                    cycle.join(" -> ")
                ),
                snippet: cycle.join(" -> "),
            });
        }
    }
}

/// Depth-first search for a cycle through `start`; returns the cycle path
/// (`start -> … -> start`) when one exists.
fn find_cycle(manifests: &[Manifest], start: &str) -> Option<Vec<String>> {
    let mut path = vec![start.to_string()];
    dfs(manifests, start, start, &mut path).then_some(path)
}

fn dfs(manifests: &[Manifest], start: &str, at: &str, path: &mut Vec<String>) -> bool {
    let Some(m) = workspace_package(manifests, at) else {
        return false;
    };
    let mut nexts: Vec<&str> = m
        .deps
        .iter()
        .filter(|d| !d.dev)
        .map(|d| d.name.as_str())
        .filter(|n| workspace_package(manifests, n).is_some())
        .collect();
    nexts.sort_unstable();
    nexts.dedup();
    for next in nexts {
        if next == start {
            path.push(start.to_string());
            return true;
        }
        if path.iter().any(|p| p == next) {
            continue; // a cycle not through `start`; found from its own start
        }
        path.push(next.to_string());
        if dfs(manifests, start, next, path) {
            return true;
        }
        path.pop();
    }
    false
}

/// R9: every crate is classified, and manifest metadata agrees with the
/// classification table.
fn check_classes(manifests: &[Manifest], diags: &mut Vec<Diagnostic>) {
    let valid: Vec<&str> = Class::ALL.iter().map(|c| c.as_str()).collect();
    for m in manifests.iter().filter(|m| !m.vendored) {
        if m.package.is_none() {
            continue; // virtual workspace root (fixtures)
        }
        let table = rules::crate_info_by_dir(&m.rel_dir);
        match (&table, &m.lead_class) {
            (None, None) => diags.push(drift(
                m,
                1,
                format!(
                    "crate `{}` is unclassified: declare `[package.metadata.lead] class` \
                     and add it to the scope tables (rules::CRATES)",
                    m.rel_dir
                ),
            )),
            (Some(info), None) => diags.push(drift(
                m,
                1,
                format!(
                    "missing `[package.metadata.lead]`: declare `class = \"{}\"` to match \
                     the scope tables",
                    info.class.as_str()
                ),
            )),
            (Some(info), Some((class, line))) if class != info.class.as_str() => diags.push(drift(
                m,
                *line,
                format!(
                    "declared class `{class}` disagrees with the scope tables \
                     (rules::CRATES says `{}`)",
                    info.class.as_str()
                ),
            )),
            (None, Some((class, line))) if !valid.contains(&class.as_str()) => diags.push(drift(
                m,
                *line,
                format!(
                    "unknown crate class `{class}` (valid: {})",
                    valid.join(", ")
                ),
            )),
            _ => {}
        }
    }
}

fn drift(m: &Manifest, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        file: m.rel_path.clone(),
        line,
        col: 1,
        rule: "scope-drift",
        message,
        snippet: m.rel_dir.clone(),
    }
}

/// R10 (`unsafe-contract`, crate-attr half): every library-class crate must
/// *actually* carry the crate-root lints the contract assumes. Crates
/// outside the sanctioned-unsafe allowlist need `#![forbid(unsafe_code)]`;
/// crates hosting a sanctioned module downgrade to `#![deny(unsafe_code)]`
/// (so `#[allow(unsafe_code)]` can re-open exactly the sanctioned module)
/// and must not keep `forbid` (which cannot be overridden). Both kinds need
/// `#![deny(missing_docs)]`. The audit is manifest-driven: crates without a
/// resolvable library class (fixture workspaces without metadata) are
/// skipped, as are crates whose `src/lib.rs` cannot be read.
fn check_crate_attrs(root: &Path, manifests: &[Manifest], diags: &mut Vec<Diagnostic>) {
    for m in manifests.iter().filter(|m| !m.vendored) {
        let Some(pkg) = m.package.as_deref() else {
            continue;
        };
        let class = match rules::crate_info_by_dir(&m.rel_dir) {
            Some(info) => info.class,
            None => match m.lead_class.as_ref().and_then(|(c, _)| {
                Class::ALL
                    .iter()
                    .find(|k| k.as_str() == c.as_str())
                    .copied()
            }) {
                Some(c) => c,
                None => continue,
            },
        };
        if !matches!(class, Class::Lib | Class::ResultLib) {
            continue;
        }
        let lib_rel = if m.rel_dir.is_empty() {
            "src/lib.rs".to_string()
        } else {
            format!("{}/src/lib.rs", m.rel_dir)
        };
        let Ok(source) = std::fs::read_to_string(root.join(&lib_rel)) else {
            continue;
        };
        // Attr presence is checked on the comment-stripped code view with
        // whitespace compacted, so a doc comment *describing* the attribute
        // never satisfies the audit.
        let code: String = crate::scan::preprocess(&source)
            .iter()
            .flat_map(|l| l.code.chars())
            .filter(|c| !c.is_whitespace())
            .collect();
        let has = |attr: &str| code.contains(attr);
        let sanctioned = rules::SANCTIONED_UNSAFE
            .iter()
            .find(|s| s.crate_dir == m.rel_dir);
        let mut fire = |message: String| {
            diags.push(Diagnostic {
                file: lib_rel.clone(),
                line: 1,
                col: 1,
                rule: "unsafe-contract",
                message,
                snippet: format!("crate `{pkg}`"),
            });
        };
        match sanctioned {
            None => {
                if !has("#![forbid(unsafe_code)]") {
                    fire(format!(
                        "library crate `{pkg}` must carry `#![forbid(unsafe_code)]` at the \
                         crate root — unsafe is sanctioned only inside the allowlisted \
                         modules (rules::SANCTIONED_UNSAFE)"
                    ));
                }
            }
            Some(s) => {
                if has("#![forbid(unsafe_code)]") {
                    fire(format!(
                        "`{pkg}` hosts the sanctioned unsafe module `{}`: use \
                         `#![deny(unsafe_code)]` at the crate root (with \
                         `#[allow(unsafe_code)]` on the module) — `forbid` cannot be \
                         overridden",
                        s.module
                    ));
                } else if !has("#![deny(unsafe_code)]") {
                    fire(format!(
                        "`{pkg}` hosts the sanctioned unsafe module `{}` and must carry \
                         `#![deny(unsafe_code)]` at the crate root so unsafe stays \
                         opt-in per module",
                        s.module
                    ));
                }
            }
        }
        if !has("#![deny(missing_docs)]") && !has("#![forbid(missing_docs)]") {
            fire(format!(
                "library crate `{pkg}` must carry `#![deny(missing_docs)]` at the \
                 crate root"
            ));
        }
    }
}

/// R9 (real workspace only): classification-table entries and scope-table
/// paths must still exist on disk, so the tables cannot rot.
fn check_completeness(root: &Path, manifests: &[Manifest], diags: &mut Vec<Diagnostic>) {
    let root_drift = |message: String| Diagnostic {
        file: "Cargo.toml".to_string(),
        line: 1,
        col: 1,
        rule: "scope-drift",
        message,
        snippet: "[workspace]".to_string(),
    };
    for info in rules::CRATES.iter().filter(|c| !c.dir.is_empty()) {
        if !manifests.iter().any(|m| m.rel_dir == info.dir) {
            diags.push(root_drift(format!(
                "scope-table entry `{}` (`{}`) has no crate on disk — remove it from \
                 rules::CRATES",
                info.dir, info.package
            )));
        }
    }
    for path in rules::scope_paths() {
        let full = root.join(path.trim_end_matches('/'));
        let ok = if path.ends_with('/') {
            full.is_dir()
        } else {
            full.is_file()
        };
        if !ok {
            diags.push(root_drift(format!(
                "scope-table path `{path}` no longer exists — update the kernel/timing/par \
                 tables in rules.rs"
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imports_come_from_the_token_stream_only() {
        let src = "\
use lead_nn::par;
// use lead_fake::nope;
/// use lead_doc::nope;
let s = \"use lead_str::nope;\";
pub use lead_geo::Point;
extern crate rand;
";
        let got = imports(src);
        let roots: Vec<(&str, usize)> = got.iter().map(|i| (i.root.as_str(), i.line)).collect();
        assert_eq!(roots, vec![("lead_nn", 1), ("lead_geo", 5), ("rand", 6)]);
    }

    #[test]
    fn absolute_paths_resolve_to_their_crate() {
        let got = imports("use ::std::fmt;\nuse crate::diag;\n");
        assert_eq!(got[0].root, "std");
        assert_eq!(got[1].root, "crate");
    }
}
