//! Deterministic workspace source discovery.
//!
//! The gate scans the root crate's `src/` tree and every `crates/*/src`
//! tree. `vendor/` (offline dependency shims), `target/`, and the
//! `tests/`/`benches/`/`fixtures/` trees are never scanned: integration
//! tests and benchmarks are free to `unwrap()` and read the clock.

use std::fs;
use std::path::{Path, PathBuf};

/// Returns every scannable `.rs` file as a workspace-relative path with
/// forward slashes, sorted (so diagnostics are stable across platforms and
/// runs).
pub fn workspace_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in read_dir_sorted(&crates)? {
            let src = entry.join("src");
            if src.is_dir() {
                collect(&src, &mut files)?;
            }
        }
    }
    let mut rel: Vec<String> = files
        .into_iter()
        .filter_map(|f| {
            f.strip_prefix(root)
                .ok()
                .map(|p| p.to_string_lossy().replace('\\', "/"))
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for entry in read_dir_sorted(dir)? {
        if entry.is_dir() {
            collect(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

pub(crate) fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Walks upward from `start` to the workspace root: the first directory
/// containing both `Cargo.toml` and a `crates/` subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
