//! Block-aware IR over the lossless token stream: a brace tree with item
//! extraction (fn/impl/trait/mod boundaries, attributes, doc comments),
//! loop-body spans, and `unsafe` site classification.
//!
//! The per-line views in [`crate::scan`] answer "what does this line say";
//! this module answers "what block does this line live in". The rule catalog
//! uses it for the structural rules — R10 `unsafe-contract` (which `unsafe`
//! sites exist, where `#[allow(unsafe_code)]` is attached) and R11
//! `hot-loop-alloc` (which lines sit inside a loop body) — while the
//! lexical rules R1–R9 keep consuming the per-line view unchanged.
//!
//! The parser is deliberately forgiving: unbalanced delimiters close at end
//! of file, and anything it cannot classify becomes an `Other` block. It
//! never panics on malformed input — broken source should surface as
//! compiler errors, not linter crashes.

use crate::lex::{Token, TokenKind};

/// What introduced a brace-delimited block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// A function body (`fn name(…) { … }`).
    Fn,
    /// An `impl` block.
    Impl,
    /// A `trait` definition block.
    Trait,
    /// An inline module body (`mod name { … }`).
    Mod,
    /// A `for … in … { … }` loop body.
    For,
    /// A `while … { … }` loop body.
    While,
    /// A bare `loop { … }` body.
    Loop,
    /// An `unsafe { … }` block expression.
    Unsafe,
    /// Anything else: struct/enum bodies, match/if arms, closures, struct
    /// literals, blocks opened inside parentheses, …
    Other,
}

/// A line range covered by one block, opening and closing braces included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line of the opening `{`.
    pub open_line: usize,
    /// 1-based line of the closing `}` (last source line when unbalanced).
    pub close_line: usize,
}

/// One brace-delimited block, flat-listed in source order.
#[derive(Debug, Clone)]
pub struct Block {
    /// The classification of the block's header.
    pub kind: BlockKind,
    /// The lines the block covers.
    pub span: Span,
    /// Brace-nesting depth of the block (0 for top-level item bodies).
    pub depth: usize,
}

/// The kind of item a header introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free or associated).
    Fn,
    /// `impl` block.
    Impl,
    /// `trait` definition.
    Trait,
    /// `mod`, inline (`mod m { … }`) or declared (`mod m;`).
    Mod,
}

/// One extracted item: its header location, attributes, doc-comment flag,
/// and body span (absent for braceless declarations like `pub mod simd;`).
#[derive(Debug, Clone)]
pub struct Item {
    /// What kind of item this is.
    pub kind: ItemKind,
    /// The item's name (`fn`/`trait`/`mod` token successor); `None` for
    /// `impl` blocks.
    pub name: Option<String>,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// 1-based byte column of the introducing keyword.
    pub col: usize,
    /// Lines of `#[…]` attributes attached to the item's header.
    pub attr_lines: Vec<usize>,
    /// Whether a doc comment immediately precedes the item.
    pub has_doc: bool,
    /// The body span; `None` for braceless declarations (`mod m;`).
    pub body: Option<Span>,
}

/// What an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe fn …`.
    Fn,
    /// `unsafe impl …`.
    Impl,
    /// `unsafe trait …`.
    Trait,
    /// An `unsafe { … }` block expression.
    Block,
    /// Anything else (`unsafe extern`, stray keyword, …).
    Other,
}

/// One `unsafe` keyword occurrence in code (strings and comments excluded
/// by the tokenizer).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// 1-based byte column of the `unsafe` keyword.
    pub col: usize,
    /// What the keyword introduces.
    pub kind: UnsafeKind,
}

/// The block-aware IR for one source file.
#[derive(Debug, Clone, Default)]
pub struct FileBlocks {
    /// Every brace-delimited block in source order.
    pub blocks: Vec<Block>,
    /// Extracted fn/impl/trait/mod items in source order.
    pub items: Vec<Item>,
    /// Every `unsafe` keyword in code, in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
}

impl FileBlocks {
    /// Line spans of every loop body (`for`/`while`/`loop`), in source
    /// order. Nested loops each contribute their own span.
    pub fn loop_spans(&self) -> impl Iterator<Item = Span> + '_ {
        self.blocks
            .iter()
            .filter(|b| matches!(b.kind, BlockKind::For | BlockKind::While | BlockKind::Loop))
            .map(|b| b.span)
    }
}

/// One significant event in the replayed token stream.
enum Ev {
    /// A code token worth classifying: its text, line, and column.
    Tok(String, usize, usize),
    /// A doc comment (line or block form).
    Doc,
}

/// A header token retained for block classification.
struct HTok {
    text: String,
    line: usize,
    col: usize,
}

/// One still-open `{` on the parse stack.
struct Open {
    kind: BlockKind,
    open_line: usize,
    depth: usize,
    /// Index into `FileBlocks::items` when this block is an item body.
    item: Option<usize>,
    /// The enclosing paren/bracket depth, restored on close.
    saved_paren: usize,
    saved_bracket: usize,
    /// Header length at open time, restored on close for blocks embedded in
    /// an expression so the enclosing statement's header survives (e.g. a
    /// closure body inside a `for … in` iterator chain).
    saved_header: usize,
}

/// Builds the block IR from the lossless token stream of one file.
pub fn build(tokens: &[Token<'_>]) -> FileBlocks {
    let mut evs: Vec<Ev> = Vec::new();
    let mut last_line = 1usize;
    for t in tokens {
        if !matches!(t.kind, TokenKind::Whitespace) {
            last_line = t.line + t.text.matches('\n').count();
        }
        match t.kind {
            TokenKind::Whitespace | TokenKind::Char | TokenKind::Str { .. } => {}
            TokenKind::LineComment { doc } | TokenKind::BlockComment { doc, .. } => {
                if doc {
                    evs.push(Ev::Doc);
                }
            }
            TokenKind::Ident | TokenKind::Number | TokenKind::Lifetime => {
                evs.push(Ev::Tok(t.text.to_string(), t.line, t.col));
            }
            TokenKind::Punct => {
                // Punct tokens are single bytes in the lossless stream.
                evs.push(Ev::Tok(t.text.to_string(), t.line, t.col));
            }
        }
    }

    let mut out = FileBlocks::default();
    let mut stack: Vec<Open> = Vec::new();
    let mut header: Vec<HTok> = Vec::new();
    let mut attr_lines: Vec<usize> = Vec::new();
    let mut pending_doc = false;
    let mut paren: usize = 0;
    let mut bracket: usize = 0;

    // Returns the next code token after `i`, skipping doc events.
    let peek = |evs: &[Ev], mut i: usize| -> Option<String> {
        loop {
            i += 1;
            match evs.get(i)? {
                Ev::Tok(text, _, _) => return Some(text.clone()),
                Ev::Doc => {}
            }
        }
    };

    let mut i = 0usize;
    while i < evs.len() {
        match &evs[i] {
            Ev::Doc => {
                pending_doc = true;
                i += 1;
                continue;
            }
            Ev::Tok(text, line, col) => {
                let (text, line, col) = (text.clone(), *line, *col);
                match text.as_str() {
                    "#" if bracket == 0 && paren == 0 => {
                        // Attribute: skip `#` (and `!`) plus the bracketed
                        // body so attr contents never pollute the header.
                        attr_lines.push(line);
                        let mut j = i + 1;
                        if matches!(evs.get(j), Some(Ev::Tok(t, _, _)) if t == "!") {
                            j += 1;
                        }
                        if matches!(evs.get(j), Some(Ev::Tok(t, _, _)) if t == "[") {
                            let mut depth = 0usize;
                            while let Some(ev) = evs.get(j) {
                                if let Ev::Tok(t, _, _) = ev {
                                    match t.as_str() {
                                        "[" => depth += 1,
                                        "]" => {
                                            depth -= 1;
                                            if depth == 0 {
                                                break;
                                            }
                                        }
                                        _ => {}
                                    }
                                }
                                j += 1;
                            }
                        }
                        i = j + 1;
                        continue;
                    }
                    "unsafe" => {
                        let kind = match peek(&evs, i).as_deref() {
                            Some("fn") => UnsafeKind::Fn,
                            Some("impl") => UnsafeKind::Impl,
                            Some("trait") => UnsafeKind::Trait,
                            Some("{") => UnsafeKind::Block,
                            _ => UnsafeKind::Other,
                        };
                        out.unsafe_sites.push(UnsafeSite { line, col, kind });
                        header.push(HTok { text, line, col });
                    }
                    "(" => {
                        paren += 1;
                        header.push(HTok { text, line, col });
                    }
                    ")" => {
                        paren = paren.saturating_sub(1);
                        header.push(HTok { text, line, col });
                    }
                    "[" => {
                        bracket += 1;
                        header.push(HTok { text, line, col });
                    }
                    "]" => {
                        bracket = bracket.saturating_sub(1);
                        header.push(HTok { text, line, col });
                    }
                    ";" if paren == 0 && bracket == 0 => {
                        // A braceless declaration (`pub mod simd;`) is still
                        // an item worth extracting for attribute checks.
                        if let Some(item) = braceless_item(&header, &attr_lines, pending_doc) {
                            out.items.push(item);
                        }
                        header.clear();
                        attr_lines.clear();
                        pending_doc = false;
                    }
                    "{" => {
                        let inside_expr = paren > 0 || bracket > 0;
                        let kind = if inside_expr {
                            BlockKind::Other
                        } else {
                            classify(&header)
                        };
                        let item = if !inside_expr {
                            item_from_header(&header, kind, &attr_lines, pending_doc).map(|item| {
                                out.items.push(item);
                                out.items.len() - 1
                            })
                        } else {
                            None
                        };
                        stack.push(Open {
                            kind,
                            open_line: line,
                            depth: stack.len(),
                            item,
                            saved_paren: paren,
                            saved_bracket: bracket,
                            saved_header: if inside_expr { header.len() } else { 0 },
                        });
                        paren = 0;
                        bracket = 0;
                        if !inside_expr {
                            header.clear();
                            attr_lines.clear();
                            pending_doc = false;
                        }
                    }
                    "}" => {
                        let mut embedded = false;
                        if let Some(open) = stack.pop() {
                            let span = Span {
                                open_line: open.open_line,
                                close_line: line,
                            };
                            out.blocks.push(Block {
                                kind: open.kind,
                                span,
                                depth: open.depth,
                            });
                            if let Some(idx) = open.item {
                                out.items[idx].body = Some(span);
                            }
                            paren = open.saved_paren;
                            bracket = open.saved_bracket;
                            embedded = open.saved_paren > 0 || open.saved_bracket > 0;
                            if embedded {
                                // A block embedded in an expression (closure
                                // body in an iterator chain, …): restore the
                                // statement header that was in flight.
                                header.truncate(open.saved_header);
                            }
                        }
                        if !embedded {
                            header.clear();
                            attr_lines.clear();
                            pending_doc = false;
                        }
                    }
                    _ => header.push(HTok { text, line, col }),
                }
            }
        }
        i += 1;
    }

    // Unbalanced input: close every open block at the last seen line.
    while let Some(open) = stack.pop() {
        let span = Span {
            open_line: open.open_line,
            close_line: last_line,
        };
        out.blocks.push(Block {
            kind: open.kind,
            span,
            depth: open.depth,
        });
        if let Some(idx) = open.item {
            out.items[idx].body = Some(span);
        }
    }
    out.blocks.sort_by_key(|b| (b.span.open_line, b.depth));
    out
}

/// Classifies a `{` by its header keywords, highest-priority first. `impl`
/// outranks `for` so `impl Trait for Type` never reads as a loop.
fn classify(header: &[HTok]) -> BlockKind {
    let has = |kw: &str| header.iter().any(|t| t.text == kw);
    if has("fn") {
        BlockKind::Fn
    } else if has("mod") {
        BlockKind::Mod
    } else if has("impl") {
        BlockKind::Impl
    } else if has("trait") {
        BlockKind::Trait
    } else if has("for") && has("in") {
        BlockKind::For
    } else if has("while") {
        BlockKind::While
    } else if has("loop") {
        BlockKind::Loop
    } else if header.last().is_some_and(|t| t.text == "unsafe") {
        BlockKind::Unsafe
    } else {
        BlockKind::Other
    }
}

/// Builds the [`Item`] (if any) a brace-opening header introduces.
fn item_from_header(
    header: &[HTok],
    kind: BlockKind,
    attr_lines: &[usize],
    has_doc: bool,
) -> Option<Item> {
    let item_kind = match kind {
        BlockKind::Fn => ItemKind::Fn,
        BlockKind::Impl => ItemKind::Impl,
        BlockKind::Trait => ItemKind::Trait,
        BlockKind::Mod => ItemKind::Mod,
        _ => return None,
    };
    let kw = match item_kind {
        ItemKind::Fn => "fn",
        ItemKind::Impl => "impl",
        ItemKind::Trait => "trait",
        ItemKind::Mod => "mod",
    };
    let pos = header.iter().position(|t| t.text == kw)?;
    let name = match item_kind {
        ItemKind::Impl => None,
        _ => header.get(pos + 1).map(|t| t.text.clone()),
    };
    Some(Item {
        kind: item_kind,
        name,
        line: header[pos].line,
        col: header[pos].col,
        attr_lines: attr_lines.to_vec(),
        has_doc,
        body: None,
    })
}

/// Extracts a braceless `mod name;` declaration from a header ended by `;`.
fn braceless_item(header: &[HTok], attr_lines: &[usize], has_doc: bool) -> Option<Item> {
    let pos = header.iter().position(|t| t.text == "mod")?;
    Some(Item {
        kind: ItemKind::Mod,
        name: header.get(pos + 1).map(|t| t.text.clone()),
        line: header[pos].line,
        col: header[pos].col,
        attr_lines: attr_lines.to_vec(),
        has_doc,
        body: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex;

    fn ir(src: &str) -> FileBlocks {
        build(&lex::tokenize(src))
    }

    #[test]
    fn classifies_fn_mod_impl_trait_and_loops() {
        let src = "\
mod m {
    trait T { fn t(&self); }
    struct S;
    impl T for S {
        fn t(&self) {
            for i in 0..3 { body(i); }
            while go() { body(0); }
            loop { break; }
        }
    }
}
";
        let b = ir(src);
        let kinds: Vec<BlockKind> = b.blocks.iter().map(|x| x.kind).collect();
        assert!(kinds.contains(&BlockKind::Mod));
        assert!(kinds.contains(&BlockKind::Trait));
        assert!(kinds.contains(&BlockKind::Impl));
        assert!(kinds.contains(&BlockKind::Fn));
        assert!(kinds.contains(&BlockKind::For));
        assert!(kinds.contains(&BlockKind::While));
        assert!(kinds.contains(&BlockKind::Loop));
        // `impl T for S` is an impl, never a for-loop.
        assert_eq!(
            b.blocks.iter().filter(|x| x.kind == BlockKind::For).count(),
            1
        );
    }

    #[test]
    fn loop_spans_cover_multiline_bodies() {
        let src = "\
fn f() {
    for i in 0..3 {
        step(i);
    }
}
";
        let b = ir(src);
        let spans: Vec<Span> = b.loop_spans().collect();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].open_line, 2);
        assert_eq!(spans[0].close_line, 4);
    }

    #[test]
    fn closure_in_loop_header_is_not_a_loop_body() {
        // The `{` inside the parens belongs to a closure, not the for body.
        let src = "fn f() { for i in xs.iter().map(|x| { x + 1 }) { use_it(i); } }\n";
        let b = ir(src);
        assert_eq!(b.loop_spans().count(), 1);
        let closures = b
            .blocks
            .iter()
            .filter(|x| x.kind == BlockKind::Other)
            .count();
        assert_eq!(closures, 1);
    }

    #[test]
    fn unsafe_sites_classified_by_successor() {
        let src = "\
unsafe fn f() {}
unsafe impl Send for S {}
unsafe trait T {}
fn g() { unsafe { core() } }
";
        let b = ir(src);
        let kinds: Vec<UnsafeKind> = b.unsafe_sites.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                UnsafeKind::Fn,
                UnsafeKind::Impl,
                UnsafeKind::Trait,
                UnsafeKind::Block
            ]
        );
        assert_eq!(b.unsafe_sites[0].line, 1);
        assert_eq!(b.unsafe_sites[0].col, 1);
        assert_eq!(b.unsafe_sites[3].line, 4);
        assert_eq!(b.unsafe_sites[3].col, 10);
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_invisible() {
        let src = "let s = \"unsafe {\"; // unsafe fn in a comment\n";
        assert!(ir(src).unsafe_sites.is_empty());
    }

    #[test]
    fn braceless_mod_with_attrs_is_an_item() {
        let src = "/// Sanctioned.\n#[allow(unsafe_code)]\npub mod simd;\n";
        let b = ir(src);
        assert_eq!(b.items.len(), 1);
        let item = &b.items[0];
        assert_eq!(item.kind, ItemKind::Mod);
        assert_eq!(item.name.as_deref(), Some("simd"));
        assert_eq!(item.attr_lines, vec![2]);
        assert!(item.has_doc);
        assert!(item.body.is_none());
    }

    #[test]
    fn inline_mod_gets_body_span_and_attrs() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let b = ir(src);
        let m = b
            .items
            .iter()
            .find(|i| i.kind == ItemKind::Mod)
            .expect("mod item");
        assert_eq!(m.name.as_deref(), Some("tests"));
        assert_eq!(m.attr_lines, vec![1]);
        assert_eq!(
            m.body,
            Some(Span {
                open_line: 2,
                close_line: 4
            })
        );
    }

    #[test]
    fn doc_comment_marks_the_next_item_only() {
        let src = "/// Documented.\nfn a() {}\nfn b() {}\n";
        let b = ir(src);
        let fns: Vec<&Item> = b.items.iter().filter(|i| i.kind == ItemKind::Fn).collect();
        assert_eq!(fns.len(), 2);
        assert!(fns[0].has_doc);
        assert!(!fns[1].has_doc);
    }

    #[test]
    fn unbalanced_braces_close_at_eof() {
        let src = "fn f() {\n    loop {\n        step();\n";
        let b = ir(src);
        assert_eq!(b.blocks.len(), 2);
        for blk in &b.blocks {
            assert_eq!(blk.span.close_line, 3);
        }
    }

    #[test]
    fn struct_literal_and_match_are_other() {
        let src = "fn f() { let p = Point { x: 1, y: 2 }; match p { _ => {} } }\n";
        let b = ir(src);
        let others = b
            .blocks
            .iter()
            .filter(|x| x.kind == BlockKind::Other)
            .count();
        assert!(others >= 3, "literal, match, arm: {:?}", b.blocks);
        assert_eq!(b.loop_spans().count(), 0);
    }
}
