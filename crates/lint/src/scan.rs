//! Per-line views over the lossless token stream: code/comment separation,
//! string stripping, `#[cfg(test)]` region tracking, and waiver extraction.
//!
//! The heavy lifting lives in [`crate::lex`]; this module replays the token
//! stream into the per-line *code-only* view the rule catalog consumes, so a
//! pattern inside a string literal or a doc-comment example can never
//! trigger a rule. String literals keep their quotes (`"foo"` becomes `""`),
//! char literals become `''`, and comments are routed to a separate
//! per-line comment channel that the waiver parser reads.

use crate::blocks::{self, FileBlocks};
use crate::lex::{self, TokenKind};

/// The full per-file scan input: the per-line code/comment view plus the
/// block-aware IR, built from a single tokenize pass.
#[derive(Debug, Clone)]
pub struct FileView {
    /// Preprocessed lines (code/comment channels, test regions, waivers).
    pub lines: Vec<Line>,
    /// The block IR: brace tree, items, loop spans, unsafe sites.
    pub blocks: FileBlocks,
}

/// Tokenizes `source` once and builds both the per-line view and the block
/// IR over the same token stream.
pub fn preprocess_file(source: &str) -> FileView {
    let tokens = lex::tokenize(source);
    FileView {
        lines: lines_from(source, &tokens),
        blocks: blocks::build(&tokens),
    }
}

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The code content with string/char-literal bodies and comments removed
    /// (quotes are kept, so `"foo"` becomes `""`).
    pub code: String,
    /// The concatenated comment text of the line (without `//` markers).
    pub comment: String,
    /// The original line, trimmed, for diagnostics.
    pub raw: String,
    /// Whether the line lies in (or opens/closes) a `#[cfg(test)]`/`#[test]`
    /// region.
    pub in_test: bool,
    /// Whether the line is a doc comment (`///`, `//!`, or `/** … */`).
    pub is_doc: bool,
    /// Waivers declared on this line, as parsed from its comments.
    pub waivers: Vec<Waiver>,
}

impl Line {
    /// True when the line carries no code at all (blank or comment-only), in
    /// which case a waiver on it applies to the next code line.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// One `lint: allow(rule, …): reason` annotation.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule ids being waived, exactly as written.
    pub rules: Vec<String>,
    /// The justification text after the rule list (may be empty — the rule
    /// layer then reports a `bad-waiver`).
    pub reason: String,
}

/// Splits `source` into preprocessed [`Line`]s.
pub fn preprocess(source: &str) -> Vec<Line> {
    let tokens = lex::tokenize(source);
    lines_from(source, &tokens)
}

/// Replays an already-tokenized `source` into preprocessed [`Line`]s.
fn lines_from(source: &str, tokens: &[lex::Token<'_>]) -> Vec<Line> {
    let stripped = strip_lines(source, tokens);

    let mut out = Vec::with_capacity(stripped.len());
    let mut depth: i64 = 0;
    // While `Some(d)`, lines are inside a test region that ends when the
    // brace depth returns to `d`.
    let mut test_until_depth: Option<i64> = None;
    // A `#[cfg(test)]` / `#[test]` attribute has been seen and its item's
    // opening brace is still ahead.
    let mut pending_test = false;

    for (idx, (raw_line, stripped_line)) in source.lines().zip(stripped).enumerate() {
        let StrippedLine {
            code,
            comment,
            continued,
        } = stripped_line;

        let trimmed_code = code.trim_start();
        if trimmed_code.starts_with("#[cfg(test)") || trimmed_code.starts_with("#[test]") {
            // Attributes inside an already-open test region must not leak a
            // pending marker past the region's closing brace.
            pending_test = test_until_depth.is_none();
        }

        let in_test_before = test_until_depth.is_some();
        let mut opened_here = false;
        if test_until_depth.is_none() && pending_test && code.contains('{') {
            test_until_depth = Some(depth);
            pending_test = false;
            opened_here = true;
        } else if pending_test && !code.contains('{') && code.contains(';') {
            // `#[cfg(test)] use …;` — a braceless item consumes the attribute.
            pending_test = false;
        }

        for b in code.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(d) = test_until_depth {
            if depth <= d {
                test_until_depth = None;
            }
        }

        let raw_trim = raw_line.trim();
        let is_doc = !continued
            && (raw_trim.starts_with("///")
                || raw_trim.starts_with("//!")
                || raw_trim.starts_with("/**")
                || raw_trim.starts_with("/*!"));

        // Waivers live in regular comments only: doc comments describe the
        // waiver syntax (e.g. in this crate) without declaring one.
        let waivers = if is_doc {
            Vec::new()
        } else {
            parse_waivers(&comment)
        };
        out.push(Line {
            number: idx + 1,
            waivers,
            code,
            comment,
            raw: raw_trim.to_string(),
            in_test: in_test_before || opened_here,
            is_doc,
        });
    }
    out
}

/// The per-line result of replaying the token stream.
struct StrippedLine {
    code: String,
    comment: String,
    /// True when the line starts inside a multi-line string or block comment
    /// opened on an earlier line.
    continued: bool,
}

/// Replays the token stream into per-line code/comment channels.
fn strip_lines(source: &str, tokens: &[lex::Token<'_>]) -> Vec<StrippedLine> {
    let count = source.lines().count();
    let mut lines: Vec<StrippedLine> = (0..count)
        .map(|_| StrippedLine {
            code: String::new(),
            comment: String::new(),
            continued: false,
        })
        .collect();
    let push_code = |lines: &mut Vec<StrippedLine>, line: usize, s: &str| {
        if let Some(l) = lines.get_mut(line - 1) {
            l.code.push_str(s);
        }
    };

    for tok in tokens {
        match tok.kind {
            TokenKind::Whitespace => {
                for (k, seg) in tok.text.split('\n').enumerate() {
                    push_code(&mut lines, tok.line + k, seg.trim_end_matches('\r'));
                }
            }
            TokenKind::Ident | TokenKind::Number | TokenKind::Lifetime | TokenKind::Punct => {
                push_code(&mut lines, tok.line, tok.text);
            }
            TokenKind::Char => push_code(&mut lines, tok.line, "''"),
            TokenKind::Str { terminated, .. } => {
                let newlines = tok.text.matches('\n').count();
                push_code(&mut lines, tok.line, "\"");
                if terminated {
                    push_code(&mut lines, tok.line + newlines, "\"");
                }
                for k in 1..=newlines {
                    if let Some(l) = lines.get_mut(tok.line + k - 1) {
                        l.continued = true;
                    }
                }
            }
            TokenKind::LineComment { .. } => {
                if let Some(l) = lines.get_mut(tok.line - 1) {
                    l.comment.push_str(&tok.text[2..]);
                }
            }
            TokenKind::BlockComment { terminated, .. } => {
                strip_block_comment(&mut lines, tok.line, tok.text, terminated);
                let newlines = tok.text.matches('\n').count();
                for k in 1..=newlines {
                    if let Some(l) = lines.get_mut(tok.line + k - 1) {
                        l.continued = true;
                    }
                }
            }
        }
    }
    lines
}

/// Routes a block comment's inner text (delimiters excluded, nested
/// delimiters too) into the comment channel of each line it spans.
fn strip_block_comment(
    lines: &mut [StrippedLine],
    start_line: usize,
    text: &str,
    terminated: bool,
) {
    let bytes = text.as_bytes();
    // Skip the opening `/*`; drop the closing `*/` when present.
    let end = if terminated {
        bytes.len() - 2
    } else {
        bytes.len()
    };
    let mut line = start_line;
    let mut i = 2;
    while i < end {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'*') => i += 2,
            b'*' if bytes.get(i + 1) == Some(&b'/') => i += 2,
            b'\n' => {
                line += 1;
                i += 1;
            }
            b'\r' if bytes.get(i + 1) == Some(&b'\n') => i += 1,
            _ => {
                // Push whole UTF-8 characters, not bytes.
                let ch_len = utf8_len(bytes[i]);
                if let Some(l) = lines.get_mut(line - 1) {
                    l.comment.push_str(&text[i..usize::min(i + ch_len, end)]);
                }
                i += ch_len;
            }
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Parses every `lint: allow(rule, …)[:—-] reason` annotation out of a
/// line's comment text.
fn parse_waivers(comment: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:") {
        rest = &rest[pos + 5..];
        let after = rest.trim_start();
        let Some(args) = after.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = args[close + 1..]
            .trim_start_matches([':', '-', '—', '–', ' ', '\t'])
            .trim()
            .to_string();
        rest = &args[close + 1..];
        out.push(Waiver { rules, reason });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = preprocess("let x = \"unwrap() HashMap\"; // trailing unwrap()\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("trailing unwrap()"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let lines = preprocess("let x = r#\"panic! \"inner\" HashSet\"#; let y = 1;\n");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("let y = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = preprocess("fn f<'a>(x: &'a str) -> char { '{' }\n");
        // The `{` inside the char literal must not unbalance brace tracking.
        let opens = lines[0].code.matches('{').count();
        let closes = lines[0].code.matches('}').count();
        assert_eq!(opens, closes, "{:?}", lines[0].code);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "let a = 1; /* start\nstill /* nested */ comment\nend */ let b = 2;\n";
        let lines = preprocess(src);
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[2].code.contains("let b = 2;"));
    }

    #[test]
    fn multiline_strings_keep_inner_lines_code_free() {
        let src = "let s = \"one\\\ntwo unwrap()\";\nlet t = 3;\n";
        let lines = preprocess(src);
        assert!(!lines[1].code.contains("unwrap"), "{:?}", lines[1].code);
        assert!(lines[2].code.contains("let t = 3;"));
    }

    #[test]
    fn cfg_test_regions_cover_nested_braces() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() { inner(); }
    #[test]
    fn t() {}
}
fn also_real() {}
";
        let lines = preprocess(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test, "mod line opens the region");
        assert!(lines[3].in_test);
        assert!(lines[5].in_test, "closing brace still in region");
        assert!(!lines[7].in_test);
    }

    #[test]
    fn waiver_parsing_extracts_rules_and_reason() {
        let lines = preprocess("x(); // lint: allow(panic, hash-order): invariant holds\n");
        let w = &lines[0].waivers;
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].rules, vec!["panic", "hash-order"]);
        assert_eq!(w[0].reason, "invariant holds");
    }

    #[test]
    fn waiver_without_reason_is_kept_with_empty_reason() {
        let lines = preprocess("x(); // lint: allow(panic)\n");
        assert_eq!(lines[0].waivers.len(), 1);
        assert!(lines[0].waivers[0].reason.is_empty());
    }

    #[test]
    fn waiver_on_final_line_without_trailing_newline_is_seen() {
        let lines = preprocess("x(); // lint: allow(panic): last line, no newline");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].waivers.len(), 1);
        assert_eq!(lines[0].waivers[0].rules, vec!["panic"]);
    }

    #[test]
    fn doc_comment_examples_are_not_code() {
        let lines = preprocess("/// model.save(\"x\").unwrap();\npub fn save() {}\n");
        assert!(lines[0].is_doc);
        assert!(lines[0].code.trim().is_empty());
        assert!(!lines[1].is_doc);
    }
}
