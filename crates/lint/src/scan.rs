//! Lexical preprocessing: per-line code/comment separation, string
//! stripping, `#[cfg(test)]` region tracking, and waiver extraction.
//!
//! The scanner is deliberately not a Rust parser. It understands just enough
//! of the token grammar — string/char literals (including raw strings),
//! nested block comments, line comments, brace depth — to hand [`crate::rules`]
//! a faithful *code-only* view of each line, so that a pattern inside a
//! string literal or a doc-comment example can never trigger a rule.

/// One preprocessed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The code content with string/char-literal bodies and comments removed
    /// (quotes are kept, so `"foo"` becomes `""`).
    pub code: String,
    /// The concatenated comment text of the line (without `//` markers).
    pub comment: String,
    /// The original line, trimmed, for diagnostics.
    pub raw: String,
    /// Whether the line lies in (or opens/closes) a `#[cfg(test)]`/`#[test]`
    /// region.
    pub in_test: bool,
    /// Whether the line is a doc comment (`///`, `//!`, or `/** … */`).
    pub is_doc: bool,
    /// Waivers declared on this line, as parsed from its comments.
    pub waivers: Vec<Waiver>,
}

impl Line {
    /// True when the line carries no code at all (blank or comment-only), in
    /// which case a waiver on it applies to the next code line.
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty()
    }
}

/// One `lint: allow(rule, …): reason` annotation.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// The rule ids being waived, exactly as written.
    pub rules: Vec<String>,
    /// The justification text after the rule list (may be empty — the rule
    /// layer then reports a `bad-waiver`).
    pub reason: String,
}

/// The lexer state that survives across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    /// Inside a (possibly nested) `/* … */` comment; the payload is the
    /// nesting depth.
    BlockComment(u32),
    /// Inside a normal `"…"` string.
    Str,
    /// Inside a raw string `r##"…"##`; the payload is the `#` count.
    RawStr(u32),
}

/// Splits `source` into preprocessed [`Line`]s.
pub fn preprocess(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;
    let mut depth: i64 = 0;
    // While `Some(d)`, lines are inside a test region that ends when the
    // brace depth returns to `d`.
    let mut test_until_depth: Option<i64> = None;
    // A `#[cfg(test)]` / `#[test]` attribute has been seen and its item's
    // opening brace is still ahead.
    let mut pending_test = false;

    for (idx, raw_line) in source.lines().enumerate() {
        let (code, comment, next_mode) = strip_line(raw_line, mode);
        let started_in_code = mode == Mode::Code;
        mode = next_mode;

        let trimmed_code = code.trim_start();
        if trimmed_code.starts_with("#[cfg(test)") || trimmed_code.starts_with("#[test]") {
            // Attributes inside an already-open test region must not leak a
            // pending marker past the region's closing brace.
            pending_test = test_until_depth.is_none();
        }

        let in_test_before = test_until_depth.is_some();
        let mut opened_here = false;
        if test_until_depth.is_none() && pending_test && code.contains('{') {
            test_until_depth = Some(depth);
            pending_test = false;
            opened_here = true;
        } else if pending_test && !code.contains('{') && code.contains(';') {
            // `#[cfg(test)] use …;` — a braceless item consumes the attribute.
            pending_test = false;
        }

        for b in code.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
        }
        if let Some(d) = test_until_depth {
            if depth <= d {
                test_until_depth = None;
            }
        }

        let raw_trim = raw_line.trim();
        let is_doc = started_in_code
            && (raw_trim.starts_with("///")
                || raw_trim.starts_with("//!")
                || raw_trim.starts_with("/**")
                || raw_trim.starts_with("/*!"));

        // Waivers live in regular comments only: doc comments describe the
        // waiver syntax (e.g. in this crate) without declaring one.
        let waivers = if is_doc {
            Vec::new()
        } else {
            parse_waivers(&comment)
        };
        out.push(Line {
            number: idx + 1,
            waivers,
            code,
            comment,
            raw: raw_trim.to_string(),
            in_test: in_test_before || opened_here,
            is_doc,
        });
    }
    out
}

/// Strips one raw line given the entry `mode`, returning the code portion,
/// the comment text, and the mode the next line starts in.
fn strip_line(line: &str, mut mode: Mode) -> (String, String, Mode) {
    let bytes = line.as_bytes();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;
    while i < bytes.len() {
        match mode {
            Mode::BlockComment(d) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    i += 2;
                    mode = if d <= 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(d - 1)
                    };
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    i += 2;
                    mode = Mode::BlockComment(d + 1);
                } else {
                    comment.push(bytes[i] as char);
                    i += 1;
                }
            }
            Mode::Str => {
                if bytes[i] == b'\\' {
                    i += 2; // skip the escaped byte (may run past EOL harmlessly)
                } else if bytes[i] == b'"' {
                    code.push('"');
                    i += 1;
                    mode = Mode::Code;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if bytes[i] == b'"' && has_hashes(bytes, i + 1, hashes) {
                    i += 1 + hashes as usize;
                    code.push('"');
                    mode = Mode::Code;
                } else {
                    i += 1;
                }
            }
            Mode::Code => {
                let b = bytes[i];
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    comment.push_str(&line[i + 2..]);
                    i = bytes.len();
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    i += 2;
                    mode = Mode::BlockComment(1);
                } else if b == b'"' {
                    code.push('"');
                    i += 1;
                    mode = Mode::Str;
                } else if b == b'r' && !prev_is_ident(&code) && raw_str_hashes(bytes, i).is_some() {
                    let hashes = raw_str_hashes(bytes, i).unwrap_or(0);
                    code.push('"');
                    i += 2 + hashes as usize; // consume `r`, hashes, opening quote
                    mode = Mode::RawStr(hashes);
                } else if b == b'\'' {
                    // Char literal vs. lifetime: a char literal closes with a
                    // quote within a few bytes; a lifetime does not.
                    if let Some(len) = char_literal_len(bytes, i) {
                        code.push('\'');
                        code.push('\'');
                        i += len;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(b as char);
                    i += 1;
                }
            }
        }
    }
    // A string literal never spans lines in this codebase except raw strings
    // and escaped newlines; treat an unterminated plain string as continuing.
    (code, comment, mode)
}

fn has_hashes(bytes: &[u8], from: usize, n: u32) -> bool {
    let n = n as usize;
    bytes.len() >= from + n && bytes[from..from + n].iter().all(|&b| b == b'#')
}

/// If `bytes[i..]` starts a raw string (`r"`, `r#"`, `br"`…), returns the
/// number of `#`s.
fn raw_str_hashes(bytes: &[u8], i: usize) -> Option<u32> {
    let mut j = i + 1;
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(hashes)
}

fn prev_is_ident(code: &str) -> bool {
    code.bytes()
        .last()
        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Length in bytes of a char literal starting at `i` (which holds `'`), or
/// `None` when this is a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: find the closing quote within a short window
            // (covers \n, \', \\, \u{…}, \x7f).
            let mut j = i + 2;
            let end = usize::min(bytes.len(), i + 12);
            while j < end {
                if bytes[j] == b'\'' {
                    return Some(j + 1 - i);
                }
                j += 1;
            }
            None
        }
        Some(_) if bytes.get(i + 2) == Some(&b'\'') => Some(3),
        _ => None,
    }
}

/// Parses every `lint: allow(rule, …)[:—-] reason` annotation out of a
/// line's comment text.
fn parse_waivers(comment: &str) -> Vec<Waiver> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:") {
        rest = &rest[pos + 5..];
        let after = rest.trim_start();
        let Some(args) = after.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = args.find(')') else {
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let reason = args[close + 1..]
            .trim_start_matches([':', '-', '—', '–', ' ', '\t'])
            .trim()
            .to_string();
        rest = &args[close + 1..];
        out.push(Waiver { rules, reason });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = preprocess("let x = \"unwrap() HashMap\"; // trailing unwrap()\n");
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("trailing unwrap()"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let lines = preprocess("let x = r#\"panic! \"inner\" HashSet\"#; let y = 1;\n");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("let y = 1;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = preprocess("fn f<'a>(x: &'a str) -> char { '{' }\n");
        // The `{` inside the char literal must not unbalance brace tracking.
        let opens = lines[0].code.matches('{').count();
        let closes = lines[0].code.matches('}').count();
        assert_eq!(opens, closes, "{:?}", lines[0].code);
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "let a = 1; /* start\nstill /* nested */ comment\nend */ let b = 2;\n";
        let lines = preprocess(src);
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[2].code.contains("let b = 2;"));
    }

    #[test]
    fn cfg_test_regions_cover_nested_braces() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() { inner(); }
    #[test]
    fn t() {}
}
fn also_real() {}
";
        let lines = preprocess(src);
        assert!(!lines[0].in_test);
        assert!(lines[2].in_test, "mod line opens the region");
        assert!(lines[3].in_test);
        assert!(lines[5].in_test, "closing brace still in region");
        assert!(!lines[7].in_test);
    }

    #[test]
    fn waiver_parsing_extracts_rules_and_reason() {
        let lines = preprocess("x(); // lint: allow(panic, hash-order): invariant holds\n");
        let w = &lines[0].waivers;
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].rules, vec!["panic", "hash-order"]);
        assert_eq!(w[0].reason, "invariant holds");
    }

    #[test]
    fn waiver_without_reason_is_kept_with_empty_reason() {
        let lines = preprocess("x(); // lint: allow(panic)\n");
        assert_eq!(lines[0].waivers.len(), 1);
        assert!(lines[0].waivers[0].reason.is_empty());
    }

    #[test]
    fn doc_comment_examples_are_not_code() {
        let lines = preprocess("/// model.save(\"x\").unwrap();\npub fn save() {}\n");
        assert!(lines[0].is_doc);
        assert!(lines[0].code.trim().is_empty());
        assert!(!lines[1].is_doc);
    }
}
