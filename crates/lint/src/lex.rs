//! A lossless, dependency-free token stream over Rust source text.
//!
//! This is the foundation the rest of the analyzer is built on: the
//! line-oriented preprocessing of [`crate::scan`] and the cross-file import
//! extraction of [`crate::workspace`] both replay this stream instead of
//! re-implementing string/comment handling. The lexer understands just
//! enough of the Rust token grammar — identifiers, numbers, plain and raw
//! string literals (including multi-line bodies), char literals vs.
//! lifetimes, line and nested block comments, punctuation — to classify
//! every byte of the input exactly once.
//!
//! **Lossless** means the concatenation of every token's text reproduces the
//! source byte-for-byte, so downstream passes can reconstruct any per-line
//! view (and diagnostics can quote the original text) without a second copy
//! of the lexing rules.

/// The classification of one [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Spaces, tabs, carriage returns, and newlines.
    Whitespace,
    /// An identifier or keyword (`fn`, `use`, `HashMap`, `r#type`, …).
    Ident,
    /// A numeric literal (`42`, `0.5`, `1e-6`, `0xff`, `2f32`).
    Number,
    /// A lifetime (`'a`) — distinguished from [`TokenKind::Char`].
    Lifetime,
    /// A char literal (`'x'`, `'\n'`, `'{'`).
    Char,
    /// A string literal. `raw` marks `r"…"`/`r#"…"#` forms; `terminated` is
    /// false only when the file ends inside the literal.
    Str {
        /// Whether this is a raw string literal.
        raw: bool,
        /// Whether the closing delimiter was found before end of input.
        terminated: bool,
    },
    /// A `// …` comment running to end of line. `doc` marks `///` and `//!`.
    LineComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// A `/* … */` comment (possibly nested and multi-line). `doc` marks
    /// `/** … */` and `/*! … */`; `terminated` is false only at end of input.
    BlockComment {
        /// Whether this is a doc comment.
        doc: bool,
        /// Whether the closing delimiter was found before end of input.
        terminated: bool,
    },
    /// Any other single byte (punctuation, operators, braces).
    Punct,
}

/// One token: a kind, the exact source text, and the 1-based line/column its
/// first byte sits on.
#[derive(Debug, Clone)]
pub struct Token<'s> {
    /// The classification.
    pub kind: TokenKind,
    /// The exact slice of the source, delimiters included.
    pub text: &'s str,
    /// 1-based line number of the token's first byte.
    pub line: usize,
    /// 1-based byte column of the token's first byte on its line.
    pub col: usize,
}

/// Tokenizes `source` losslessly: the concatenated `text` of the returned
/// tokens equals `source`.
pub fn tokenize(source: &str) -> Vec<Token<'_>> {
    Lexer {
        src: source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        // Last byte that would reach the *code* view of the current line
        // (strings contribute their quotes, comments nothing). Used to keep
        // the raw-string heuristic identical to the historical per-line
        // scanner: `r"` only opens a raw string when it does not directly
        // extend an identifier (`attr"` is not a raw string).
        last_code_byte: None,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    col: usize,
    last_code_byte: Option<u8>,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token<'s>> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let start_line = self.line;
            let start_col = self.col;
            let kind = self.next_kind();
            let text = &self.src[start..self.pos];
            // Track line/column numbers and the last code-visible byte.
            for &b in &self.bytes[start..self.pos] {
                if b == b'\n' {
                    self.line += 1;
                    self.col = 1;
                } else {
                    self.col += 1;
                }
            }
            self.update_last_code_byte(kind, text);
            out.push(Token {
                kind,
                text,
                line: start_line,
                col: start_col,
            });
        }
        out
    }

    fn update_last_code_byte(&mut self, kind: TokenKind, text: &str) {
        match kind {
            TokenKind::Whitespace => {
                // A newline starts a fresh code line (empty so far); other
                // whitespace reaches the code view verbatim.
                self.last_code_byte = if text.contains('\n') {
                    None
                } else {
                    text.bytes().last()
                };
            }
            TokenKind::Ident | TokenKind::Number | TokenKind::Lifetime | TokenKind::Punct => {
                self.last_code_byte = text.bytes().last();
            }
            TokenKind::Str { .. } => self.last_code_byte = Some(b'"'),
            TokenKind::Char => self.last_code_byte = Some(b'\''),
            TokenKind::LineComment { .. } => {}
            TokenKind::BlockComment { .. } => {
                if text.contains('\n') {
                    self.last_code_byte = None;
                }
            }
        }
    }

    /// Consumes one token starting at `self.pos` and returns its kind.
    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|&b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
                {
                    self.pos += 1;
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                let doc = {
                    let third = self.peek(2);
                    // `////…` is an ordinary comment, like rustdoc treats it.
                    (third == Some(b'/') && self.peek(3) != Some(b'/')) || third == Some(b'!')
                };
                while self.bytes.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
                TokenKind::LineComment { doc }
            }
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.plain_str(),
            b'r' | b'b' if self.raw_str_start().is_some() => {
                let hashes = self.raw_str_start().unwrap_or(0);
                self.raw_str(hashes)
            }
            b'\'' => self.char_or_lifetime(),
            _ if b.is_ascii_digit() => {
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.')
                {
                    // Stop `1..n` range punctuation from being eaten.
                    if self.bytes[self.pos] == b'.' && self.peek(1) == Some(b'.') {
                        break;
                    }
                    self.pos += 1;
                }
                TokenKind::Number
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                // `r#ident` raw identifiers.
                if (b == b'r' || b == b'b')
                    && self.peek(1) == Some(b'#')
                    && self
                        .peek(2)
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
                {
                    self.pos += 2;
                }
                while self
                    .bytes
                    .get(self.pos)
                    .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    self.pos += 1;
                }
                TokenKind::Ident
            }
            _ => {
                // Advance by whole UTF-8 characters so token boundaries
                // always fall on char boundaries.
                self.pos += utf8_len(b);
                TokenKind::Punct
            }
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn block_comment(&mut self) -> TokenKind {
        let doc = matches!(self.peek(2), Some(b'*') | Some(b'!'))
            // `/**/` is empty, not a doc comment.
            && !(self.peek(2) == Some(b'*') && self.peek(3) == Some(b'/'));
        self.pos += 2;
        let mut depth = 1u32;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                self.pos += 2;
                depth -= 1;
                if depth == 0 {
                    return TokenKind::BlockComment {
                        doc,
                        terminated: true,
                    };
                }
            } else if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                self.pos += 2;
                depth += 1;
            } else {
                self.pos += 1;
            }
        }
        TokenKind::BlockComment {
            doc,
            terminated: false,
        }
    }

    fn plain_str(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2, // may run past EOL/EOF harmlessly
                b'"' => {
                    self.pos += 1;
                    return TokenKind::Str {
                        raw: false,
                        terminated: true,
                    };
                }
                _ => self.pos += 1,
            }
        }
        self.pos = self.bytes.len();
        TokenKind::Str {
            raw: false,
            terminated: false,
        }
    }

    /// If the bytes at `self.pos` start a raw string (`r"`, `r#"`, …) in a
    /// position where one can start, returns the `#` count.
    fn raw_str_start(&self) -> Option<u32> {
        if self.bytes[self.pos] != b'r' {
            return None;
        }
        // `foo r"…"` starts one; `bar"…"` where `r` extends an identifier
        // does not (matches the historical scanner's `prev_is_ident` check).
        if self
            .last_code_byte
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            return None;
        }
        let mut j = self.pos + 1;
        let mut hashes = 0u32;
        while self.bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        (self.bytes.get(j) == Some(&b'"')).then_some(hashes)
    }

    fn raw_str(&mut self, hashes: u32) -> TokenKind {
        self.pos += 2 + hashes as usize; // `r`, hashes, opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' && self.has_hashes(self.pos + 1, hashes) {
                self.pos += 1 + hashes as usize;
                return TokenKind::Str {
                    raw: true,
                    terminated: true,
                };
            }
            self.pos += 1;
        }
        TokenKind::Str {
            raw: true,
            terminated: false,
        }
    }

    fn has_hashes(&self, from: usize, n: u32) -> bool {
        let n = n as usize;
        self.bytes.len() >= from + n && self.bytes[from..from + n].iter().all(|&b| b == b'#')
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        if let Some(len) = char_literal_len(self.bytes, self.pos) {
            self.pos += len;
            return TokenKind::Char;
        }
        // Lifetime: the quote plus any identifier run.
        self.pos += 1;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
        {
            self.pos += 1;
        }
        TokenKind::Lifetime
    }
}

/// Byte length of the UTF-8 character starting with byte `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Length in bytes of a char literal starting at `i` (which holds `'`), or
/// `None` when this is a lifetime.
fn char_literal_len(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: find the closing quote within a short window
            // (covers \n, \', \\, \u{…}, \x7f).
            let mut j = i + 2;
            let end = usize::min(bytes.len(), i + 12);
            while j < end {
                if bytes[j] == b'\'' {
                    return Some(j + 1 - i);
                }
                j += 1;
            }
            None
        }
        Some(_) if bytes.get(i + 2) == Some(&b'\'') => Some(3),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> String {
        tokenize(src).iter().map(|t| t.text).collect()
    }

    #[test]
    fn concatenation_is_lossless() {
        let srcs = [
            "fn main() { println!(\"hi {}\", 1 + 2); }\n",
            "let r = r#\"raw \"inner\" text\"#; // done\n",
            "/* outer /* inner */ still */ let x = 'a';\n",
            "let lt: &'static str = \"s\"; let c = '{';\n",
            "let multi = \"line one\\\n  line two\";\n",
            "#[cfg(test)]\nmod tests {\n    use super::*;\n}\n",
            "no trailing newline",
        ];
        for src in srcs {
            assert_eq!(texts(src), *src, "lossless for {src:?}");
        }
    }

    #[test]
    fn kinds_are_classified() {
        let toks = tokenize("use lead_nn::par; // x\n");
        let kinds: Vec<_> = toks
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(kinds[0], (TokenKind::Ident, "use"));
        assert_eq!(kinds[1], (TokenKind::Ident, "lead_nn"));
        assert_eq!(kinds[2], (TokenKind::Punct, ":"));
        assert_eq!(kinds[4], (TokenKind::Ident, "par"));
        assert!(matches!(
            kinds.last().unwrap().0,
            TokenKind::LineComment { doc: false }
        ));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let toks = tokenize("a\n/* one\ntwo */\nb\n");
        let a = toks.iter().find(|t| t.text == "a").unwrap();
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        let c = toks
            .iter()
            .find(|t| matches!(t.kind, TokenKind::BlockComment { .. }))
            .unwrap();
        assert_eq!((a.line, c.line, b.line), (1, 2, 4));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = tokenize("fn f<'a>(x: &'a str) -> char { '{' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "'{'"));
    }

    #[test]
    fn raw_strings_and_doc_comments() {
        let toks = tokenize("/// doc\nlet x = r#\"panic! \"q\" \"#;\n");
        assert!(matches!(toks[0].kind, TokenKind::LineComment { doc: true }));
        assert!(toks.iter().any(|t| matches!(
            t.kind,
            TokenKind::Str {
                raw: true,
                terminated: true
            }
        )));
    }
}
