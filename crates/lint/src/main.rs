//! The `lead-lint` binary: scans the workspace and exits non-zero on any
//! diagnostic. See the library docs for the rule catalog, waiver syntax,
//! JSON output, and the baseline ratchet.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

/// `lead-lint explain [R<N>|<rule-id>]`: prints rule documentation from the
/// catalog table ([`lead_lint::rules::RULE_DOCS`]) — the same source of
/// truth DESIGN.md §10 mirrors. With no argument, lists every rule.
fn explain(target: Option<&str>) -> ExitCode {
    let docs = &lead_lint::rules::RULE_DOCS;
    let Some(target) = target else {
        for d in docs {
            let first = d
                .doc
                .split(". ")
                .next()
                .unwrap_or(d.doc)
                .trim_end_matches('.');
            println!("{:<4} {:<18} {first}.", d.num, d.id);
        }
        println!(
            "\nrun `lead-lint explain R<N>` (or a rule id) for the full doc and waiver syntax"
        );
        return ExitCode::SUCCESS;
    };
    let want = target.to_ascii_lowercase();
    // `R4` matches both halves (R4a/R4b); ids and exact nums match one rule.
    let hits: Vec<_> = docs
        .iter()
        .filter(|d| {
            let num = d.num.to_ascii_lowercase();
            num == want || d.id == want || num.trim_end_matches(['a', 'b']) == want
        })
        .collect();
    if hits.is_empty() {
        eprintln!(
            "lead-lint: unknown rule `{target}` (known: {})",
            lead_lint::rules::RULE_IDS.join(", ")
        );
        return ExitCode::from(2);
    }
    for (k, d) in hits.iter().enumerate() {
        if k > 0 {
            println!();
        }
        println!("{} `{}`\n", d.num, d.id);
        println!("{}\n", d.doc);
        println!("waiver (on the offending line, or a comment-only line directly above):");
        println!("    {}", d.waiver);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lead-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => {
                    eprintln!("lead-lint: unknown format `{other}` (text|json)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("lead-lint: --format needs a value (text|json)");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline = Some(p),
                None => {
                    eprintln!("lead-lint: --baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for id in lead_lint::rules::RULE_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "explain" => {
                let target = args.next();
                return explain(target.as_deref());
            }
            "--help" | "-h" => {
                // The rule range derives from the catalog so it cannot drift.
                let last = lead_lint::rules::RULE_DOCS[lead_lint::rules::RULE_DOCS.len() - 1].num;
                println!(
                    "usage: lead-lint [--root DIR] [--format text|json] [--baseline FILE] [--list-rules]\n\
                     \x20      lead-lint explain [R<N>|<rule-id>]\n\n\
                     Scans the LEAD workspace sources and fails on violations of the\n\
                     determinism, panic-freedom, unsafe-contract, and architecture rule\n\
                     catalog (R1-{last}, see DESIGN.md; `lead-lint explain` prints it).\n\
                     Waive a deliberate violation with a justified line comment:\n\
                     '// lint: allow(<rule>): <reason>'.\n\n\
                     --baseline enables ratchet mode: diagnostics listed in FILE (one\n\
                     'file:line:rule' per line) are suppressed, new diagnostics fail,\n\
                     and entries that no longer fire fail as stale-baseline."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lead-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("lead-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match lead_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "lead-lint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let mut diags = match lead_lint::scan_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lead-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &baseline {
        // The path is resolved against the cwd (as typed), but diagnostics
        // anchor at it verbatim so `lint.baseline:3: [stale-baseline] …`
        // stays copy-pasteable.
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lead-lint: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let entries = match lead_lint::baseline::parse(&source) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("lead-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        diags = lead_lint::baseline::apply(diags, &entries, path);
    }

    match format {
        Format::Json => print!("{}", lead_lint::diag::to_json(&diags)),
        Format::Text => {
            if diags.is_empty() {
                println!("lead-lint: clean");
            } else {
                for d in &diags {
                    println!("{d}");
                }
                println!("lead-lint: {} diagnostic(s)", diags.len());
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
