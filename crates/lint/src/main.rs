//! The `lead-lint` binary: scans the workspace and exits non-zero on any
//! diagnostic. See the library docs for the rule catalog and waiver syntax.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("lead-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for id in lead_lint::rules::RULE_IDS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: lead-lint [--root DIR] [--list-rules]\n\n\
                     Scans the LEAD workspace sources and fails on violations of the\n\
                     determinism & panic-freedom rule catalog (R1-R6, see DESIGN.md).\n\
                     Waive a deliberate violation with a justified line comment:\n\
                     '// lint: allow(<rule>): <reason>'."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lead-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("lead-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match lead_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "lead-lint: no workspace root found above {} (pass --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    match lead_lint::scan_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("lead-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("lead-lint: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lead-lint: {e}");
            ExitCode::from(2)
        }
    }
}
